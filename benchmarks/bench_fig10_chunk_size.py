"""Benchmark regenerating Figure 10 — RECV AP speedup vs chunk size."""

from repro.experiments.partitioning_exp import format_fig10, run_fig10


def test_fig10_chunk_size(benchmark, report):
    series = benchmark.pedantic(
        lambda: run_fig10(
            chunk_sizes=(5, 10, 20, 40, 60, 80, 100),
            node_counts=(4, 8),
            n_questions=8,
        ),
        rounds=1,
        iterations=1,
    )
    for name, pts in series.items():
        speedups = [y for _, y in pts]
        best = max(range(len(pts)), key=lambda i: speedups[i])
        # Interior optimum: neither the smallest nor the largest chunk.
        assert 0 < best < len(pts) - 1, f"{name}: no interior optimum"
    report("Figure 10 — chunk-size sweep", format_fig10(series))
