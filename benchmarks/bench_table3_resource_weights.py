"""Benchmark regenerating Table 3 — per-module resource weights."""

import pytest

from repro.experiments.table3_resource_weights import format_table3, run_table3


def test_table3_resource_weights(benchmark, report):
    rows = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    by_module = {r.module: r for r in rows}
    assert by_module["QA"].cpu_weight == pytest.approx(0.79, abs=0.06)
    assert by_module["PR"].disk_weight == pytest.approx(0.80, abs=0.05)
    report("Table 3 — resource weights", format_table3(rows))
