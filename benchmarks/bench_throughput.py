"""Benchmark — end-to-end throughput, baseline vs optimized hot path.

Runs the perf-regression harness (``repro.experiments.throughput_bench``)
at benchmark scale and adds the rendered comparison to the report.  Only
output equivalence can fail the run; timing numbers are informational
(the JSON trajectory lives in BENCH_throughput.json via
``python -m repro bench``).
"""

from repro.experiments.throughput_bench import (
    BenchConfig,
    format_throughput,
    run_throughput_bench,
    validate_bench_throughput,
)


def test_throughput_hot_path(benchmark, report, json_out):
    summary = benchmark.pedantic(
        run_throughput_bench,
        args=(BenchConfig(n_questions=120, n_unique=60),),
        rounds=1,
        iterations=1,
    )
    validate_bench_throughput(summary)
    assert summary["equivalence"]["equivalent"], summary["equivalence"]
    assert summary["baseline"]["questions_per_sec"] > 0
    assert summary["optimized"]["questions_per_sec"] > 0
    # The default batched columns must be present and gated: every batch
    # size fingerprint-matched the serial optimized run.
    assert set(summary["batched"]) == {"1", "4", "8", "16", "32"}
    assert not summary["equivalence"]["batched_mismatches"]
    assert all(
        s["questions_per_sec"] > 0 for s in summary["batched"].values()
    )
    report("Throughput — term-index hot path", format_throughput(summary))
    json_out("BENCH_throughput", summary)
