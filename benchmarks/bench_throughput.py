"""Benchmark — end-to-end throughput, baseline vs optimized hot path.

Runs the perf-regression harness (``repro.experiments.throughput_bench``)
at benchmark scale and adds the rendered comparison to the report.  Only
output equivalence can fail the run; timing numbers are informational
(the JSON trajectory lives in BENCH_throughput.json via
``python -m repro bench``).
"""

from repro.experiments.throughput_bench import (
    BenchConfig,
    format_throughput,
    run_throughput_bench,
)


def test_throughput_hot_path(benchmark, report):
    summary = benchmark.pedantic(
        run_throughput_bench,
        args=(BenchConfig(n_questions=120, n_unique=60),),
        rounds=1,
        iterations=1,
    )
    assert summary["equivalence"]["equivalent"], summary["equivalence"]
    assert summary["baseline"]["questions_per_sec"] > 0
    assert summary["optimized"]["questions_per_sec"] > 0
    report("Throughput — term-index hot path", format_throughput(summary))
