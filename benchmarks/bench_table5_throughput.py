"""Benchmark regenerating Tables 5-7 — the high-load strategy comparison.

One simulation campaign produces all three tables (the paper's Tables 5,
6 and 7 come from the same runs); the sibling bench files render the
latency and migration views of the same cached results.
"""

import functools

import pytest

from repro.experiments.load_balancing import (
    format_tables_5_6_7,
    run_load_balancing,
)


@functools.lru_cache(maxsize=1)
def _cells():
    return tuple(run_load_balancing(node_counts=(4, 8, 12), seeds=(11, 23)))


def test_table5_throughput(benchmark, report):
    cells = benchmark.pedantic(_cells, rounds=1, iterations=1)
    by_key = {(c.n_nodes, c.strategy): c for c in cells}
    for n in (4, 8, 12):
        dns = by_key[(n, "DNS")].throughput_qpm
        dqa = by_key[(n, "DQA")].throughput_qpm
        assert dqa > dns, f"DQA must beat DNS at {n} processors"
    report("Tables 5-7 — load-balancing comparison", format_tables_5_6_7(list(cells)))
