"""Benchmark regenerating Figure 9 — analytical question speedup curves."""

from repro.experiments.figures import format_fig9, run_fig9


def test_fig9_intra_speedup(benchmark, report):
    panels = benchmark(run_fig9)
    panel_a, panel_b = panels
    # (a) speedup increases with network bandwidth.
    assert panel_a["1 Gbps"][-1][1] > panel_a["1 Mbps"][-1][1]
    # (b) speedup *decreases* as disk bandwidth increases — the paper's
    # counterintuitive Figure 9(b) result.
    assert panel_b["100 Mbps"][-1][1] > panel_b["1 Gbps"][-1][1]
    report("Figure 9 — question speedup curves", format_fig9(panels))
