"""Benchmark regenerating Tables 8-10 — intra-question parallelism.

One low-load campaign (complex questions, one at a time, RECV
partitioning) yields the module times (T8), overhead breakdown (T9) and
analytical-vs-measured speedups (T10).
"""

import functools

import pytest

from repro.experiments.intra_question_exp import (
    format_table8,
    format_table9,
    format_table10,
    run_intra_question,
)


@functools.lru_cache(maxsize=1)
def _rows():
    return tuple(run_intra_question(node_counts=(1, 4, 8, 12), n_questions=12))


def test_table8_module_times(benchmark, report):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    by_n = {r.n_nodes: r for r in rows}
    # PR flat from 8 to 12 (8 sub-collections), AP still improving.
    assert by_n[12].module_times["PR"] == pytest.approx(
        by_n[8].module_times["PR"], rel=0.02
    )
    assert by_n[12].module_times["AP"] < by_n[8].module_times["AP"]
    report("Table 8 — module times", format_table8(list(rows)))


def test_table9_overhead(benchmark, report):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    for r in rows:
        if r.n_nodes == 1:
            continue
        assert sum(r.overhead.values()) < 0.06 * r.response_s
    report("Table 9 — distribution overhead", format_table9(list(rows)))


def test_table10_model_vs_measured(benchmark, report):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    for r in rows:
        if r.n_nodes == 1:
            continue
        assert r.measured_speedup < r.analytical_speedup
    report("Table 10 — analytical vs measured", format_table10(list(rows)))
