"""Benchmark view of Table 7 — migrations at the three scheduling points.

Reuses the cached Tables 5-7 campaign (see bench_table5_throughput).
"""

from bench_table5_throughput import _cells


def test_table7_migrations(benchmark, report):
    cells = benchmark.pedantic(_cells, rounds=1, iterations=1)
    by_key = {(c.n_nodes, c.strategy): c for c in cells}
    rows = ["Workload        DQA QA   DQA PR   DQA AP"]
    for n in (4, 8, 12):
        dqa = by_key[(n, "DQA")]
        # The PR and AP dispatchers must be visibly active under DQA.
        assert dqa.migrations_pr > 0
        assert dqa.migrations_ap > 0
        rows.append(
            f"{8*n:3d} q / {n:2d} p   {dqa.migrations_qa:6.1f}  "
            f"{dqa.migrations_pr:7.1f}  {dqa.migrations_ap:7.1f}"
        )
    report("Table 7 — migrations", "\n".join(rows))
