"""Benchmark regenerating Figure 7 — execution traces for the three
partitioning strategies on a homogeneous 4-node cluster."""

from repro.core import PartitioningStrategy
from repro.experiments.figures import run_fig7_trace


def test_fig7_traces(benchmark, report):
    def traces():
        return {
            s: run_fig7_trace(s)
            for s in (
                PartitioningStrategy.SEND,
                PartitioningStrategy.ISEND,
                PartitioningStrategy.RECV,
            )
        }

    result = benchmark.pedantic(traces, rounds=1, iterations=1)
    for strategy, text in result.items():
        assert "pr-collection" in text
        assert "ap-part" in text
    report(
        "Figure 7 — execution traces",
        "\n\n".join(result[s] for s in result),
    )
