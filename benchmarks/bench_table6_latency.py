"""Benchmark view of Table 6 — response times under the three strategies.

Reuses the cached Tables 5-7 campaign (see bench_table5_throughput).
"""

from bench_table5_throughput import _cells


def test_table6_latency(benchmark, report):
    cells = benchmark.pedantic(_cells, rounds=1, iterations=1)
    by_key = {(c.n_nodes, c.strategy): c for c in cells}
    rows = ["Procs  DNS      INTER    DQA     (mean response, s)"]
    for n in (4, 8, 12):
        dns = by_key[(n, "DNS")].mean_response_s
        inter = by_key[(n, "INTER")].mean_response_s
        dqa = by_key[(n, "DQA")].mean_response_s
        assert dqa <= dns * 1.02, "DQA response must not exceed DNS's"
        rows.append(f"{n:5d}  {dns:7.2f}  {inter:7.2f}  {dqa:7.2f}")
    report("Table 6 — response times", "\n".join(rows))
