"""Benchmark regenerating Table 2 — per-module analysis of the Q/A task."""

import pytest

from repro.experiments.table2_module_analysis import format_table2, run_table2


def test_table2_module_analysis(benchmark, report):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    frac = {r.module: r.fraction for r in rows}
    assert frac["AP"] == pytest.approx(0.697, abs=0.06)
    assert frac["PR"] == pytest.approx(0.265, abs=0.06)
    report("Table 2 — module analysis", format_table2(rows))
