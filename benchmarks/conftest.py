"""Shared benchmark plumbing.

Each benchmark regenerates one table/figure of the paper.  The rendered
sections are printed (visible with ``pytest -s``) and collected into
``benchmarks/bench_report.txt`` at session end, so a single
``pytest benchmarks/ --benchmark-only`` run leaves the full
paper-versus-measured report on disk.
"""

from __future__ import annotations

import pathlib

import pytest

_SECTIONS: list[tuple[str, str]] = []


@pytest.fixture()
def report():
    """Collector: call ``report(name, text)`` with the rendered section."""

    def add(name: str, text: str) -> None:
        _SECTIONS.append((name, text))
        print(f"\n{text}\n")

    return add


def pytest_sessionfinish(session, exitstatus):  # noqa: ANN001
    if not _SECTIONS:
        return
    out = pathlib.Path(__file__).parent / "bench_report.txt"
    chunks = []
    for name, text in _SECTIONS:
        chunks.append(f"### {name}\n\n{text}\n")
    out.write_text("\n".join(chunks))
