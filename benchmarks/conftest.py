"""Shared benchmark plumbing.

Each benchmark regenerates one table/figure of the paper.  The rendered
sections are printed (visible with ``pytest -s``) and collected into
``benchmarks/bench_report.txt`` at session end, so a single
``pytest benchmarks/ --benchmark-only`` run leaves the full
paper-versus-measured report on disk.

``--out DIR`` additionally writes each benchmark's JSON summary (the
same payloads ``python -m repro bench`` / ``loadgen`` check in as
``BENCH_*.json``) into ``DIR`` for artifact upload or trend tooling.
"""

from __future__ import annotations

import json
import pathlib
import typing as t

import pytest

_SECTIONS: list[tuple[str, str]] = []


def pytest_addoption(parser):  # noqa: ANN001
    parser.addoption(
        "--out",
        action="store",
        default=None,
        help="directory to write each benchmark's JSON summary into",
    )


@pytest.fixture()
def report():
    """Collector: call ``report(name, text)`` with the rendered section."""

    def add(name: str, text: str) -> None:
        _SECTIONS.append((name, text))
        print(f"\n{text}\n")

    return add


@pytest.fixture()
def json_out(request):
    """Writer: call ``json_out(name, summary)``; no-op without ``--out``."""
    out = request.config.getoption("--out")

    def write(name: str, summary: dict[str, t.Any]) -> None:
        if out is None:
            return
        directory = pathlib.Path(out)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{name}.json"
        path.write_text(json.dumps(summary, indent=2) + "\n")
        print(f"wrote {path}")

    return write


def pytest_sessionfinish(session, exitstatus):  # noqa: ANN001
    if not _SECTIONS:
        return
    out = pathlib.Path(__file__).parent / "bench_report.txt"
    chunks = []
    for name, text in _SECTIONS:
        chunks.append(f"### {name}\n\n{text}\n")
    out.write_text("\n".join(chunks))
