"""Benchmarks for the extension ablations (DESIGN.md §6)."""

import pytest

from repro.experiments.ablations import (
    format_concurrency_sweep,
    format_dispatcher_ablation,
    format_margin_sweep,
    format_threshold_sweep,
    run_concurrency_sweep,
    run_dispatcher_ablation,
    run_margin_sweep,
    run_threshold_sweep,
)


def test_dispatcher_ablation(benchmark, report):
    rows = benchmark.pedantic(
        lambda: run_dispatcher_ablation(n_nodes=8, seeds=(11, 23)),
        rounds=1,
        iterations=1,
    )
    by_label = {r.label: r for r in rows}
    full = by_label["DQA (full)"].throughput_qpm
    dns = by_label["DNS (no dispatchers)"].throughput_qpm
    assert full > dns
    report("Ablation — scheduling points", format_dispatcher_ablation(rows))


def test_concurrency_sweep(benchmark, report):
    rows = benchmark.pedantic(
        lambda: run_concurrency_sweep(caps=(1, 2, 3, 4, 6, 8), seeds=(11,)),
        rounds=1,
        iterations=1,
    )
    thr = [r.throughput_qpm for r in rows]
    # Section 4.2's shape: throughput rises from 1, peaks at 2-4, and
    # collapses under memory thrash at high concurrency.
    assert max(thr[1:4]) > thr[0]
    assert thr[-1] < max(thr[1:4])
    report("Ablation — simultaneous questions", format_concurrency_sweep(rows))


def test_threshold_sweep(benchmark, report):
    rows = benchmark.pedantic(
        lambda: run_threshold_sweep(thresholds=(0.0, 0.668, 2.672), seeds=(11,)),
        rounds=1,
        iterations=1,
    )
    assert len(rows) == 3
    report("Ablation — migration threshold", format_threshold_sweep(rows))


def test_margin_sweep(benchmark, report):
    rows = benchmark.pedantic(
        lambda: run_margin_sweep(margins=(0.5, 1.1, 2.0), n_questions=6),
        rounds=1,
        iterations=1,
    )
    # Larger margins partition more eagerly: low-load response must not
    # get worse as the margin grows.
    responses = [resp for _margin, resp, _thr in rows]
    assert responses[-1] <= responses[0] * 1.05
    report("Ablation — under-load margin", format_margin_sweep(rows))
