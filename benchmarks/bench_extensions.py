"""Benchmarks for the robustness/prediction extensions (DESIGN.md §6)."""

import pytest

from repro.experiments.prediction_exp import format_prediction, run_prediction
from repro.experiments.robustness_exp import (
    format_cache_skew,
    format_churn,
    format_heterogeneous,
    run_cache_skew,
    run_churn,
    run_heterogeneous,
)


def test_query_cost_prediction(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_prediction(n_questions=60), rounds=1, iterations=1
    )
    # The [7] heuristic must at least rank retrieval cost well.
    assert result.corr_with_pr > 0.6
    report("Extension — query-cost prediction", format_prediction(result))


def test_heterogeneous_cluster(benchmark, report):
    rows = benchmark.pedantic(
        lambda: run_heterogeneous(n_questions=5), rounds=1, iterations=1
    )
    by = {r.strategy: r for r in rows}
    # Receiver-controlled pulling adapts to capacity differences that the
    # cost-balanced sender split cannot see (Tanenbaum's classic result,
    # cited by the paper).
    assert by["RECV"].degradation < by["ISEND"].degradation
    report("Extension — heterogeneous cluster", format_heterogeneous(rows))


def test_node_churn(benchmark, report):
    result = benchmark.pedantic(run_churn, rounds=1, iterations=1)
    assert result.completed_with_retry == result.n_questions
    assert result.throughput_qpm > 0.8 * result.baseline_throughput_qpm
    report("Extension — node churn", format_churn(result))


def test_dns_cache_skew(benchmark, report):
    rows = benchmark.pedantic(
        lambda: run_cache_skew(skews=(0.0, 0.8), seeds=(11, 23)),
        rounds=1,
        iterations=1,
    )
    (skew0, dns0, dqa0), (_skew8, dns8, dqa8) = rows
    # Skew cripples DNS far more than DQA, whose dispatchers absorb it.
    assert dns8 / dns0 < 0.85
    assert dqa8 / dqa0 > dns8 / dns0 + 0.10
    report("Extension — DNS cache skew", format_cache_skew(rows))


def test_inter_model_validation(benchmark, report):
    from repro.experiments.validation_exp import (
        format_inter_validation,
        run_inter_validation,
    )

    points = benchmark.pedantic(
        lambda: run_inter_validation(node_counts=(1, 4, 8, 16), seeds=(11,)),
        rounds=1,
        iterations=1,
    )
    ratios = [
        p.measured_speedup / p.analytical_speedup for p in points[1:]
    ]
    # Measured tracks the analytical scaling shape with a stable
    # contention factor (the model idealizes per-node interference away).
    assert all(0.5 < r <= 1.05 for r in ratios)
    assert max(ratios) - min(ratios) < 0.25
    report(
        "Extension — Eq 23 vs simulation", format_inter_validation(points)
    )


def test_staleness_sweep(benchmark, report):
    from repro.experiments.validation_exp import (
        format_staleness_sweep,
        run_staleness_sweep,
    )

    rows = benchmark.pedantic(
        lambda: run_staleness_sweep(intervals=(1.0, 8.0), seeds=(11, 23)),
        rounds=1,
        iterations=1,
    )
    fresh, stale = rows[0], rows[1]
    # Very stale load tables must not help.
    assert stale[1] <= fresh[1] * 1.05
    report("Extension — monitoring staleness", format_staleness_sweep(rows))


def test_work_stealing(benchmark, report):
    from repro.experiments.stealing_exp import format_stealing, run_stealing

    rows = benchmark.pedantic(
        lambda: run_stealing(seeds=(11, 23)), rounds=1, iterations=1
    )
    by = {r.label: r for r in rows}
    dns = by["DNS (no balancing)"].throughput_qpm
    gradient = by["DNS + gradient model [23]"].throughput_qpm
    dns_steal = by["DNS + stealing (receiver-initiated)"].throughput_qpm
    # Both related-work balancers must outperform the unbalanced baseline.
    assert gradient > dns
    assert dns_steal > dns
    # Combining stealing with DQA is largely redundant (both mechanisms
    # chase the same queue imbalance) — it must at least stay in DQA's
    # ballpark rather than collapse.
    assert (
        by["DQA + stealing"].throughput_qpm
        >= by["DQA (paper)"].throughput_qpm * 0.90
    )
    report("Extension — work stealing", format_stealing(rows))
