"""Benchmark — real serving layer under the overload protocol.

Drives ``repro.serving`` through a below/at/above-saturation sweep and
adds the rendered section to the report.  Only the protocol invariants
can fail the run (conservation, shedding under overload, bounded
accepted-p99); throughput and latency numbers are informational — the
checked-in trajectory lives in BENCH_serving.json via
``python -m repro loadgen``.
"""

from repro.serving import (
    LoadgenConfig,
    format_serving,
    run_loadgen,
    validate_bench_serving,
)


def test_serving_overload(benchmark, report, json_out):
    summary = benchmark.pedantic(
        run_loadgen,
        args=(
            LoadgenConfig(
                n_questions=150,
                n_unique=50,
                workers=3,
                load_factors=(0.5, 1.0, 2.0),
            ),
        ),
        rounds=1,
        iterations=1,
    )
    validate_bench_serving(summary)
    assert summary["ok"], summary["overload"]
    for run in summary["runs"]:
        assert run["conservation_ok"], run["label"]
    over = summary["overload"]
    assert over["shed_nonzero_at_overload"]
    assert over["p99_ratio"] <= over["ratio_limit"]
    report(
        "Serving — admission control under offered load",
        format_serving(summary),
    )
    json_out("BENCH_serving", summary)
