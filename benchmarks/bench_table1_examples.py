"""Benchmark regenerating Table 1 — example answers from the real pipeline."""

from repro.experiments.table1_examples import format_table1, run_table1


def test_table1_examples(benchmark, report):
    examples = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    assert sum(e.correct for e in examples) >= len(examples) - 1
    report("Table 1 — example answers", format_table1(examples))
