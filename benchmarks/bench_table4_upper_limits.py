"""Benchmark regenerating Table 4 — analytical processor limits grid."""

from repro.experiments.table4_upper_limits import format_table4, run_table4
from repro.model import PAPER_TABLE4_N


def test_table4_upper_limits(benchmark, report):
    grid = benchmark(run_table4)
    exact = sum(
        cell.n_max == PAPER_TABLE4_N[(cell.b_disk_label, cell.b_net_label)]
        for cell in grid
    )
    assert exact >= 14
    report("Table 4 — practical upper limits", format_table4(grid))
