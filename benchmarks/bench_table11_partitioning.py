"""Benchmark regenerating Table 11 — SEND/ISEND/RECV AP speedups."""

from repro.experiments.partitioning_exp import format_table11, run_table11


def test_table11_partitioning(benchmark, report):
    rows = benchmark.pedantic(
        lambda: run_table11(node_counts=(4, 8, 12), n_questions=10),
        rounds=1,
        iterations=1,
    )
    for r in rows:
        assert r.send < r.isend, f"SEND must trail ISEND at {r.n_nodes} procs"
        assert r.send < r.recv, f"SEND must trail RECV at {r.n_nodes} procs"
    report("Table 11 — partitioning strategies", format_table11(rows))
