"""Benchmark regenerating Figure 8(a) — analytical system speedup."""

import pytest

from repro.experiments.figures import format_fig8, run_fig8
from repro.model import ModelParameters, system_efficiency


def test_fig8_inter_speedup(benchmark, report):
    series = benchmark(run_fig8)
    # Section 5.1's headline: ~0.9 efficiency at 1000 nodes on 1 Gbps.
    eff = system_efficiency(
        ModelParameters().with_bandwidths(b_net=1e9), 1000
    )
    assert eff == pytest.approx(0.9, abs=0.05)
    # Curves ordered by bandwidth at every x.
    for (x1, y_slow), (_x2, y_fast) in zip(series["10 Mbps"], series["1 Gbps"]):
        assert y_fast >= y_slow
    report("Figure 8 — system speedup vs processors", format_fig8(series))
