"""Attribution invariants over real traced workloads.

The load-bearing guarantees: every question's span tree folds into
categories that sum to its end-to-end latency (no overhead is double
counted or lost), and the distributed-system events the paper models —
migrations, partition retries — show up as spans where they happen.
"""

import pytest

from repro.core import (
    DistributedQASystem,
    RetryPolicy,
    Strategy,
    SystemConfig,
    TaskPolicy,
)
from repro.observability import (
    ATTRIBUTION_CATEGORIES,
    SpanCategory,
    SpanStream,
    attribute_question,
    attribute_workload,
    format_attribution,
)
from repro.observability.names import PARTITION_RETRY_ROUNDS
from repro.workload import staggered_arrivals, trec_mix_profiles

SUM_TOL = 1e-6


@pytest.fixture(scope="module")
def traced_run():
    """One traced DQA workload shared by the invariant tests."""
    system = DistributedQASystem(
        SystemConfig(n_nodes=4, strategy=Strategy.DQA, trace=True, seed=3)
    )
    n = 8
    profiles = trec_mix_profiles(n, seed=3)
    report = system.run_workload(profiles, staggered_arrivals(n, 2.0, seed=3))
    return system, report


class TestQuestionInvariants:
    def test_every_question_has_one_root(self, traced_run):
        system, report = traced_run
        for r in report.results:
            assert len(system.spans.roots(r.qid)) == 1

    def test_categories_sum_to_root_duration(self, traced_run):
        system, _ = traced_run
        for qid in system.spans.question_ids():
            for root in system.spans.roots(qid):
                qa = attribute_question(system.spans, root)
                assert qa.total_attributed_s == pytest.approx(
                    root.duration, abs=SUM_TOL
                )
                assert set(qa.categories) == set(ATTRIBUTION_CATEGORIES)
                assert all(v >= -SUM_TOL for v in qa.categories.values())

    def test_root_duration_matches_sojourn_time(self, traced_run):
        system, report = traced_run
        for r in report.results:
            (root,) = system.spans.roots(r.qid)
            assert root.duration == pytest.approx(r.sojourn_time, abs=SUM_TOL)

    def test_compute_dominates_an_uncontended_run(self, traced_run):
        system, _ = traced_run
        (root,) = system.spans.roots(system.spans.question_ids()[0])
        qa = attribute_question(system.spans, root)
        assert qa.categories["compute"] > 0.5 * qa.wall_s


class TestWorkloadReport:
    def test_report_invariants_and_formatting(self, traced_run):
        system, report = traced_run
        ar = attribute_workload(
            system.spans, system.metrics, report, system.config
        )
        assert ar.n_questions == report.n_questions
        assert ar.max_sum_error() <= SUM_TOL
        # Per-category totals equal the per-question sums, except that the
        # aggregate pass carves monitoring contention out of "other".
        for cat in ATTRIBUTION_CATEGORIES:
            if cat in ("monitoring", "other"):
                continue
            assert ar.categories[cat] == pytest.approx(
                sum(q.categories[cat] for q in ar.questions), abs=SUM_TOL
            )
        # The carve preserves the grand total: categories still sum to the
        # total question wall time.
        assert sum(ar.categories.values()) == pytest.approx(
            ar.total_wall_s, abs=SUM_TOL
        )
        assert ar.categories["monitoring"] >= 0.0
        text = format_attribution(ar)
        assert "compute" in text and "monitoring" in text
        d = ar.to_dict()
        assert d["n_questions"] == report.n_questions

    def test_model_comparison_rows_present(self, traced_run):
        system, report = traced_run
        ar = attribute_workload(
            system.spans, system.metrics, report, system.config
        )
        for row in ("monitoring", "dispatch", "migration+comms"):
            assert row in ar.model_comparison
            assert ar.model_comparison[row]["measured_s"] >= 0.0


class TestMigrationSpans:
    def test_skewed_inter_run_produces_migration_spans(self):
        # Heavy DNS cache skew piles questions on one node; the INTER
        # dispatcher migrates them away (scheduling point 1).
        system = DistributedQASystem(
            SystemConfig(
                n_nodes=4,
                strategy=Strategy.INTER,
                dns_cache_skew=0.9,
                trace=True,
                seed=5,
            )
        )
        n = 8
        report = system.run_workload(
            trec_mix_profiles(n, seed=5), staggered_arrivals(n, 1.0, seed=5)
        )
        assert report.migrations_qa > 0
        migrate = [
            s for s in system.spans.intervals() if s.name == "migrate:qa"
        ]
        assert migrate
        assert all(s.cat == SpanCategory.MIGRATION for s in migrate)
        succeeded = [s for s in migrate if not s.attrs.get("failed")]
        assert len(succeeded) >= report.migrations_qa
        # Migration time lands in the migration bucket of those questions.
        migrated_qids = {s.qid for s in succeeded}
        for qid in migrated_qids:
            (root,) = system.spans.roots(qid)
            qa = attribute_question(system.spans, root)
            assert qa.categories["migration"] > 0.0


class TestRetrySpans:
    def test_worker_failure_records_retry_round_spans(self):
        from repro.core import WorkerFailed, run_sender_controlled
        from repro.observability import MetricsRegistry
        from repro.simulation import Environment

        env = Environment()
        spans = SpanStream()
        metrics = MetricsRegistry()
        processed: dict[int, list] = {0: [], 1: []}

        def executor(nid, items):
            for i, item in enumerate(items):
                if nid == 1 and len(processed[1]) >= 2:
                    raise WorkerFailed(nid, items[i:])
                yield env.timeout(0.1)
                processed[nid].append(item)

        parent = spans.begin("stage:PR", SpanCategory.PARTITION, 9, 0, 0.0)

        def main():
            yield from run_sender_controlled(
                env, [1.0] * 12, [(0, 0.5), (1, 0.5)], executor,
                interleaved=False,
                policy=RetryPolicy(max_rounds=4, backoff_base_s=0.5),
                spans=spans, span_parent=parent, qid=9, metrics=metrics,
            )

        env.run(until=env.process(main()))
        retries = [s for s in spans.intervals() if s.name == "retry:round"]
        assert retries
        assert all(s.cat == SpanCategory.RETRY for s in retries)
        assert all(s.parent_id == parent.sid for s in retries)
        assert all(s.duration > 0 for s in retries)  # the backoff wait
        assert metrics.value(PARTITION_RETRY_ROUNDS) == len(retries)

    def test_receiver_loop_records_retry_rounds_too(self):
        from repro.core import WorkerFailed, run_receiver_controlled
        from repro.observability import MetricsRegistry
        from repro.simulation import Environment

        env = Environment()
        spans = SpanStream()
        metrics = MetricsRegistry()
        done: dict[int, int] = {0: 0, 1: 0}

        def executor(nid, items):
            if nid == 1 and done[1] >= 1:
                raise WorkerFailed(nid, items)
            yield env.timeout(0.1)
            done[nid] += len(items)

        def main():
            yield from run_receiver_controlled(
                env, [1.0] * 8, [0, 1], executor, chunk_size=1,
                policy=RetryPolicy(max_rounds=4, backoff_base_s=0.5),
                spans=spans, qid=9, metrics=metrics,
            )

        env.run(until=env.process(main()))
        assert metrics.value(PARTITION_RETRY_ROUNDS) == len(
            [s for s in spans.intervals() if s.name == "retry:round"]
        )
