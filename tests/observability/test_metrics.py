"""Tests for the metrics registry (counters, gauges, histograms)."""

import pytest

from repro.observability import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1.0)


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("x")
        g.set(4.0)
        g.add(-1.5)
        assert g.value == 2.5


class TestHistogram:
    def test_exact_stats(self):
        h = Histogram("x")
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        d = h.to_dict()
        assert d["count"] == 4
        assert d["sum"] == 10.0
        assert d["min"] == 1.0 and d["max"] == 4.0

    def test_percentiles_ordering(self):
        h = Histogram("x")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(0.5) <= h.percentile(0.95) <= h.percentile(0.99)
        assert 40 <= h.percentile(0.5) <= 60

    def test_count_and_total_exact_under_decimation(self):
        # Decimation bounds memory but never loses count/total/min/max.
        h = Histogram("x", max_samples=64)
        n = 10_000
        for v in range(n):
            h.observe(float(v))
        d = h.to_dict()
        assert d["count"] == n
        assert d["sum"] == float(sum(range(n)))
        assert d["min"] == 0.0 and d["max"] == float(n - 1)
        assert len(h._samples) <= 2 * 64

    def test_empty(self):
        h = Histogram("x")
        assert h.percentile(0.5) == 0.0
        assert h.to_dict()["count"] == 0


class TestMetricsRegistry:
    def test_get_or_create(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.gauge("b") is r.gauge("b")
        assert r.histogram("c") is r.histogram("c")
        assert len(r) == 3
        assert "a" in r and "missing" not in r

    def test_type_mismatch_raises(self):
        r = MetricsRegistry()
        r.counter("a")
        with pytest.raises(TypeError):
            r.gauge("a")

    def test_inc_observe_value(self):
        r = MetricsRegistry()
        r.inc("hits")
        r.inc("hits", 2.0)
        r.observe("wait_s", 0.5)
        r.observe("wait_s", 1.5)
        assert r.value("hits") == 3.0
        assert r.value("wait_s") == 2.0  # histogram -> total
        assert r.value("missing") == 0.0

    def test_to_dict_shapes(self):
        r = MetricsRegistry()
        r.inc("c")
        r.gauge("g").set(1.0)
        r.observe("h", 2.0)
        d = r.to_dict()
        assert d["c"]["type"] == "counter"
        assert d["g"]["type"] == "gauge"
        assert d["h"]["type"] == "histogram"
        assert {"p50", "p95", "p99"} <= set(d["h"])

    def test_names_sorted(self):
        r = MetricsRegistry()
        r.inc("b")
        r.inc("a")
        assert r.names() == ["a", "b"]
