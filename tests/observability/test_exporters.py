"""Exporter round-trips and schema validation."""

import json

import pytest

from repro.observability import (
    MetricsRegistry,
    SpanCategory,
    SpanStream,
    chrome_trace,
    span_to_json,
    validate_chrome_trace,
    validate_jsonl_line,
    write_chrome_trace,
    write_jsonl,
)


def _sample_stream() -> SpanStream:
    s = SpanStream()
    root = s.begin("question", SpanCategory.TASK, qid=7, node_id=2, time=1.0)
    child = s.begin(
        "QP", SpanCategory.COMPUTE, 7, 2, 1.0, parent=root, detail="d"
    )
    s.end(child, 2.0, cpu_s=1.0)
    s.instant("qp-start", 7, 2, 1.0, parent=root)
    s.end(root, 5.0)
    return s


class TestJsonl:
    def test_round_trip_validates(self, tmp_path):
        s = _sample_stream()
        m = MetricsRegistry()
        m.inc("x")
        m.observe("y", 2.0)
        path = write_jsonl(s, tmp_path / "spans.jsonl", metrics=m,
                           header={"n_nodes": 4})
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        for obj in lines:
            validate_jsonl_line(obj)
        assert lines[0]["record"] == "header"
        assert lines[-1]["record"] == "metrics"
        assert sum(1 for o in lines if o["record"] == "span") == len(s.spans)

    def test_span_to_json_optional_fields(self):
        s = _sample_stream()
        root, child, instant = s.spans
        assert "detail" not in span_to_json(root)
        assert span_to_json(child)["detail"] == "d"
        assert span_to_json(child)["attrs"] == {"cpu_s": 1.0}
        assert span_to_json(instant)["t0"] == span_to_json(instant)["t1"]

    def test_rejects_unknown_record(self):
        with pytest.raises(ValueError):
            validate_jsonl_line({"record": "bogus"})

    def test_rejects_missing_field(self):
        obj = span_to_json(_sample_stream().spans[0])
        del obj["qid"]
        with pytest.raises(ValueError):
            validate_jsonl_line(obj)

    def test_rejects_inverted_interval(self):
        obj = span_to_json(_sample_stream().spans[0])
        obj["t1"] = obj["t0"] - 1.0
        with pytest.raises(ValueError):
            validate_jsonl_line(obj)

    def test_rejects_bad_metric_type(self):
        with pytest.raises(ValueError):
            validate_jsonl_line(
                {"record": "metrics", "metrics": {"m": {"type": "exotic"}}}
            )


class TestChromeTrace:
    def test_structure_and_validation(self):
        trace = chrome_trace(_sample_stream(), label="test")
        n = validate_chrome_trace(trace)
        assert n == len(trace["traceEvents"])
        phases = [e["ph"] for e in trace["traceEvents"]]
        assert phases.count("M") == 1  # one node -> one process_name
        assert phases.count("X") == 2  # root + QP
        assert phases.count("i") == 1

    def test_timestamps_are_microseconds(self):
        trace = chrome_trace(_sample_stream())
        root = next(
            e for e in trace["traceEvents"]
            if e.get("ph") == "X" and e["name"] == "question"
        )
        assert root["ts"] == pytest.approx(1.0e6)
        assert root["dur"] == pytest.approx(4.0e6)
        assert root["pid"] == 2 and root["tid"] == 7

    def test_parent_linkage_in_args(self):
        trace = chrome_trace(_sample_stream())
        qp = next(
            e for e in trace["traceEvents"] if e.get("name") == "QP"
        )
        assert qp["args"]["parent"] == 0
        assert qp["args"]["cpu_s"] == 1.0

    def test_write_and_reload(self, tmp_path):
        path = write_chrome_trace(_sample_stream(), tmp_path / "t.json")
        assert validate_chrome_trace(json.loads(path.read_text())) > 0

    def test_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": "nope"})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "Z"}]})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [
                    {"ph": "X", "pid": 0, "tid": 0, "ts": 0.0,
                     "name": "a", "dur": -1.0},
                ]}
            )

    def test_dropped_spans_surface_in_other_data(self):
        s = SpanStream(max_spans=1)
        s.instant("a", 1, 0, 0.0)
        s.instant("b", 1, 0, 0.0)
        assert chrome_trace(s)["otherData"]["dropped_spans"] == 1
