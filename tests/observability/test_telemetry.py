"""Cross-process telemetry: sampling, pack/graft stitching, telemetry.jsonl."""

import json

import pytest

from repro.observability.attribution import attribute_question
from repro.observability.spans import SpanCategory, SpanStream
from repro.observability.telemetry import (
    HeadSampler,
    TelemetryWriter,
    TraceContext,
    graft_spans,
    pack_spans,
    read_telemetry,
    validate_telemetry_file,
    validate_telemetry_line,
    worker_span_records,
)
from repro.qa.question import ModuleTimings


class TestHeadSampler:
    def test_rate_extremes(self):
        assert not any(HeadSampler(0.0).sample(i) for i in range(50))
        assert all(HeadSampler(1.0).sample(i) for i in range(50))

    def test_deterministic_per_seed(self):
        a = [HeadSampler(0.5, seed=3).sample(i) for i in range(300)]
        b = [HeadSampler(0.5, seed=3).sample(i) for i in range(300)]
        assert a == b
        c = [HeadSampler(0.5, seed=4).sample(i) for i in range(300)]
        assert a != c

    def test_rate_is_roughly_honoured(self):
        hits = sum(HeadSampler(0.25, seed=1).sample(i) for i in range(2000))
        assert 0.18 < hits / 2000 < 0.32

    def test_trace_ids_are_unique_and_stable(self):
        s = HeadSampler(1.0, seed=9)
        ids = [s.trace_id(i) for i in range(100)]
        assert len(set(ids)) == 100
        assert ids == [HeadSampler(1.0, seed=9).trace_id(i) for i in range(100)]

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            HeadSampler(1.5)

    def test_trace_context_wire_round_trip(self):
        ctx = TraceContext(trace_id="abc-1", parent_sid=7)
        assert TraceContext.from_wire(ctx.to_wire()) == ctx
        assert TraceContext.from_wire(None) is None


class TestPackGraft:
    def _subtree(self):
        stream = SpanStream()
        root = stream.begin("worker", SpanCategory.COMPUTE, 5, 3, 100.0)
        child = stream.begin(
            "pr", SpanCategory.COMPUTE, 5, 3, 100.1, parent=root
        )
        stream.end(child, 100.4, postings=12)
        stream.end(root, 100.5)
        return stream, root

    def test_pack_is_relative_and_parent_first(self):
        stream, root = self._subtree()
        packed = pack_spans(stream, root)
        assert [p[2] for p in packed] == ["worker", "pr"]
        assert packed[0][1] == -1  # root packs parent -1
        assert packed[0][4] == 0.0 and packed[0][5] == pytest.approx(0.5)
        assert packed[1][4] == pytest.approx(0.1)
        assert packed[1][7] == {"postings": 12}

    def test_graft_round_trip_preserves_structure(self):
        src, root = self._subtree()
        packed = pack_spans(src, root)
        dst = SpanStream()
        parent = dst.begin("service", SpanCategory.COMPUTE, 9, 7, 20.0)
        n = graft_spans(dst, packed, parent, qid=9, node_id=7, t_offset=20.0)
        assert n == 2
        names = {s.name: s for s in dst.spans}
        worker = names["worker"]
        assert worker.parent_id == parent.sid
        assert worker.qid == 9 and worker.node_id == 7
        assert worker.t0 == pytest.approx(20.0)
        assert names["pr"].parent_id == worker.sid
        assert names["pr"].attrs == {"postings": 12}

    def test_graft_into_disabled_stream_is_a_noop(self):
        src, root = self._subtree()
        packed = pack_spans(src, root)
        dst = SpanStream(enabled=False)
        assert graft_spans(dst, packed, None, 0, 0, 0.0) == 0


class TestWorkerSpanRecords:
    def _fold(self, packed, wait_s=0.2, service_s=0.5):
        """Stitch packed spans into a serve/admission/service tree and fold."""
        stream = SpanStream()
        root = stream.begin("serve", SpanCategory.TASK, 1, -1, 10.0)
        adm = stream.begin(
            "admission", SpanCategory.QUEUE, 1, -1, 10.0, parent=root
        )
        stream.end(adm, 10.0 + wait_s)
        service = stream.begin(
            "service", SpanCategory.COMPUTE, 1, 4, 10.0 + wait_s, parent=root
        )
        graft_spans(
            stream, packed, service, qid=1, node_id=4, t_offset=10.0 + wait_s
        )
        stream.end(service, 10.0 + wait_s + service_s)
        stream.end(root, 10.0 + wait_s + service_s + 0.05)
        return stream, root, attribute_question(stream, root)

    def test_attribution_sums_exactly_to_wall(self):
        timings = ModuleTimings(qp=0.1, pr=0.2, ps=0.1, po=0.05, ap=0.05)
        packed = worker_span_records(timings, service_s=0.5)
        _, root, qa = self._fold(packed)
        assert qa.total_attributed_s == pytest.approx(root.duration, abs=1e-12)
        assert qa.categories["queueing"] == pytest.approx(0.2)
        assert qa.categories["compute"] == pytest.approx(0.5)

    def test_module_durations_clip_to_service_time(self):
        # Timings sum to 1.0 but the measured service was only 0.3: the
        # children must clip so the tree (and the fold) stays consistent.
        timings = ModuleTimings(qp=0.4, pr=0.3, ps=0.1, po=0.1, ap=0.1)
        packed = worker_span_records(timings, service_s=0.3)
        _, root, qa = self._fold(packed, service_s=0.3)
        assert qa.total_attributed_s == pytest.approx(root.duration, abs=1e-12)
        assert qa.categories["compute"] == pytest.approx(0.3)

    def test_batched_pr_wrapped_in_stage_span(self):
        timings = ModuleTimings(qp=0.1, pr=0.2, ps=0.1, po=0.05, ap=0.05)
        packed = worker_span_records(
            timings, service_s=0.5, batch=(4, 2, 2.0, 123.0)
        )
        names = [p[2] for p in packed]
        assert "stage:PR-batch" in names
        stage = packed[names.index("stage:PR-batch")]
        assert stage[7]["batch_size"] == 4
        assert stage[7]["sharing_factor"] == 2.0
        _, root, qa = self._fold(packed)
        assert qa.total_attributed_s == pytest.approx(root.duration, abs=1e-12)

    def test_zero_service_time_is_safe(self):
        packed = worker_span_records(ModuleTimings(), service_s=0.0)
        assert packed[0][4] == packed[0][5] == 0.0


class TestTelemetryFile:
    def _write(self, path):
        with TelemetryWriter(path, header={"workers": 2}) as w:
            w.write_sample(
                t_s=1.0, seq=0, qid=7, outcome="answered",
                latency_s=0.2, wait_s=0.05, service_s=0.15,
                worker=4242, sampled=True,
            )
            w.write_sample(
                t_s=1.5, seq=1, qid=8, outcome="shed",
                worker=-1, forced=True, reason="shed:queue_full",
            )
            w.write_slo(
                {
                    "t": 2.0, "state": "warn", "prev_state": "ok",
                    "reasons": ["p99 over target"], "n_answered": 1,
                    "n_shed": 1, "shed_rate": 0.5, "p50_s": 0.2,
                    "p95_s": 0.2, "p99_s": 0.2, "deadline_violations": 0,
                    "utilization": {"4242": 0.4}, "transition": True,
                }
            )
            from repro.observability.metrics import MetricsRegistry

            reg = MetricsRegistry()
            reg.inc("serving.answered")
            reg.histogram("empty.hist")
            w.write_metrics(reg)
        return path

    def test_file_validates_end_to_end(self, tmp_path):
        path = self._write(tmp_path / "telemetry.jsonl")
        assert validate_telemetry_file(path) == 5  # header + 4 records
        records = read_telemetry(path)
        assert records[0]["schema"] == "telemetry/v1"
        assert [r["record"] for r in records] == [
            "header", "sample", "sample", "slo", "metrics",
        ]

    def test_every_line_is_strict_json(self, tmp_path):
        path = self._write(tmp_path / "t.jsonl")
        for line in path.read_text().splitlines():
            json.loads(line)  # and no Infinity/NaN tokens
            assert "Infinity" not in line and "NaN" not in line

    def test_unsampled_unforced_sample_rejected(self):
        with pytest.raises(ValueError, match="neither sampled nor forced"):
            validate_telemetry_line(
                {
                    "record": "sample", "t": 0.0, "seq": 0, "qid": 0,
                    "outcome": "answered", "latency_s": 0.1, "wait_s": 0.0,
                    "service_s": 0.1, "worker": 1,
                    "sampled": False, "forced": False,
                }
            )

    def test_bad_outcome_and_negative_latency_rejected(self):
        base = {
            "record": "sample", "t": 0.0, "seq": 0, "qid": 0,
            "latency_s": 0.1, "wait_s": 0.0, "service_s": 0.1,
            "worker": 1, "sampled": True, "forced": False,
        }
        with pytest.raises(ValueError, match="unknown outcome"):
            validate_telemetry_line({**base, "outcome": "lost"})
        with pytest.raises(ValueError, match="negative"):
            validate_telemetry_line(
                {**base, "outcome": "answered", "latency_s": -0.1}
            )

    def test_empty_file_and_missing_header_rejected(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty telemetry"):
            validate_telemetry_file(empty)
        headless = tmp_path / "headless.jsonl"
        headless.write_text(json.dumps({"record": "metrics", "metrics": {}}) + "\n")
        with pytest.raises(ValueError, match="not a header"):
            validate_telemetry_file(headless)

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="unknown telemetry schema"):
            validate_telemetry_line({"record": "header", "schema": "v999"})

    def test_closed_writer_refuses_writes(self, tmp_path):
        w = TelemetryWriter(tmp_path / "x.jsonl")
        w.close()
        with pytest.raises(RuntimeError):
            w.write_sample(
                t_s=0.0, seq=0, qid=0, outcome="shed", forced=True
            )
