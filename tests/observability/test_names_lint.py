"""Lint: every metric name used in src/ is declared in names.py.

Walks every module under ``src/repro`` with :mod:`ast` and checks that
the first argument of each ``counter()/gauge()/histogram()/inc()/
observe()`` call resolves to a canonical name declared in
:mod:`repro.observability.names`.  Declared values ending in ``.`` (for
example ``SERVING_SHED_PREFIX``) act as prefixes: a call site may build
``PREFIX + suffix`` dynamically.

The point is to keep the vocabulary closed — a typo'd or ad-hoc metric
name fails this test instead of silently forking the namespace.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.observability import names as names_module

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Registry entry points whose first argument is a metric name.
_METRIC_METHODS = {"counter", "gauge", "histogram", "inc", "observe"}

#: Files allowed to use dynamic names: the registry itself synthesizes
#: labeled gauge names while merging worker snapshots, and names.py is
#: the declaration site.
_EXEMPT = {"observability/metrics.py", "observability/names.py"}

DECLARED = {getattr(names_module, n) for n in names_module.__all__}
PREFIXES = {v for v in DECLARED if v.endswith(".")}
EXACT = DECLARED - PREFIXES

#: Names importable from the names module (``from ..names import X``).
_CANONICAL_CONSTANTS = {n: getattr(names_module, n) for n in names_module.__all__}


def _is_names_import(node: ast.ImportFrom) -> bool:
    mod = node.module or ""
    return mod == "repro.observability.names" or mod.endswith(
        "observability.names"
    ) or mod == "names"


class _Resolver(ast.NodeVisitor):
    """Collect, per file, every binding that could feed a metric call.

    Scope handling is deliberately flat (one namespace per file): this
    is a lint, and the codebase convention is that metric-name variables
    are only ever bound to canonical constants.
    """

    def __init__(self) -> None:
        self.bindings: dict[str, set[object]] = {}

    def _bind(self, name: str, values: set[object]) -> None:
        self.bindings.setdefault(name, set()).update(values)

    def _values_of(self, node: ast.expr) -> set[object]:
        """Candidate string values of an expression (empty = opaque)."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return {node.value}
        if isinstance(node, ast.Name):
            if node.id in _CANONICAL_CONSTANTS:
                return {_CANONICAL_CONSTANTS[node.id]}
            return self.bindings.get(node.id, set())
        if isinstance(node, ast.IfExp):
            return self._values_of(node.body) | self._values_of(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List)):
            out: set[object] = set()
            for elt in node.elts:
                out |= self._values_of(elt)
            return out
        return set()

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if _is_names_import(node):
            for alias in node.names:
                target = alias.asname or alias.name
                if alias.name in _CANONICAL_CONSTANTS:
                    self._bind(target, {_CANONICAL_CONSTANTS[alias.name]})
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        values = self._values_of(node.value)
        if values:
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    self._bind(tgt.id, values)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        # ``for name in (POSTINGS_SCANNED, ...)`` binds name to each
        # element of the iterable.
        if isinstance(node.target, ast.Name):
            values = self._values_of(node.iter)
            if values:
                self._bind(node.target.id, values)
        self.generic_visit(node)


def _metric_name_args(tree: ast.AST) -> list[tuple[int, ast.expr]]:
    """(lineno, first-arg expression) of every metric registry call."""
    out = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _METRIC_METHODS
            and node.args
        ):
            out.append((node.lineno, node.args[0]))
    return out


def _check_file(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    resolver = _Resolver()
    resolver.visit(tree)
    problems = []
    rel = path.relative_to(SRC)
    for lineno, arg in _metric_name_args(tree):
        where = f"{rel}:{lineno}"
        if isinstance(arg, ast.BinOp) and isinstance(arg.op, ast.Add):
            # ``PREFIX + suffix``: the left side must be a declared
            # prefix (a value ending in ".").
            lefts = resolver._values_of(arg.left)
            if not lefts:
                problems.append(f"{where}: opaque left side of name concat")
            for value in lefts:
                if value not in PREFIXES:
                    problems.append(
                        f"{where}: concat base {value!r} is not a "
                        "declared prefix"
                    )
            continue
        values = resolver._values_of(arg)
        if not values:
            problems.append(
                f"{where}: metric name {ast.dump(arg)} does not resolve "
                "to a canonical constant"
            )
            continue
        for value in values:
            if not isinstance(value, str):
                problems.append(f"{where}: non-string metric name {value!r}")
            elif value not in EXACT and not any(
                value.startswith(p) for p in PREFIXES
            ):
                problems.append(
                    f"{where}: metric name {value!r} is not declared in "
                    "repro/observability/names.py"
                )
    return problems


def _source_files() -> list[Path]:
    return sorted(
        p
        for p in SRC.rglob("*.py")
        if str(p.relative_to(SRC)) not in _EXEMPT
    )


class TestDeclarations:
    def test_all_exports_resolve_and_are_unique(self):
        values = [getattr(names_module, n) for n in names_module.__all__]
        assert all(isinstance(v, str) and v for v in values)
        assert len(set(values)) == len(values), "duplicate metric values"

    def test_naming_convention(self):
        for value in EXACT:
            assert value == value.lower()
            assert " " not in value
            assert "." in value, f"{value!r} has no subsystem prefix"

    def test_prefixes_end_with_dot(self):
        assert PREFIXES, "expected at least one declared prefix"
        for p in PREFIXES:
            assert p.endswith(".")


class TestCallSites:
    def test_every_metric_call_uses_a_declared_name(self):
        problems = []
        for path in _source_files():
            problems.extend(_check_file(path))
        assert not problems, "\n".join(problems)

    def test_lint_actually_covers_the_serving_layer(self):
        """Guard against the walker silently matching nothing."""
        n_sites = 0
        for path in _source_files():
            tree = ast.parse(path.read_text())
            n_sites += len(_metric_name_args(tree))
        assert n_sites >= 25, f"only {n_sites} call sites found"

    def test_a_typo_is_caught(self, tmp_path):
        bad = SRC / "serving" / "server.py"
        source = bad.read_text()
        # Simulate a typo'd literal at a call site.
        mutated = tmp_path / "server.py"
        mutated.write_text(
            source + "\n\ndef _bad(reg):\n    reg.inc('serving.typo_name')\n"
        )
        # _check_file keys exemptions off the path relative to SRC, so
        # run the core resolution directly.
        tree = ast.parse(mutated.read_text())
        resolver = _Resolver()
        resolver.visit(tree)
        hits = [
            (lineno, arg)
            for lineno, arg in _metric_name_args(tree)
            if isinstance(arg, ast.Constant)
            and arg.value == "serving.typo_name"
        ]
        assert hits
        value = hits[0][1].value
        assert value not in EXACT
        assert not any(value.startswith(p) for p in PREFIXES)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-v"]))
