"""Tests for the span stream and the legacy Tracer compatibility view."""

import pytest

from repro.core.tracing import Tracer
from repro.observability import Span, SpanCategory, SpanStream


class TestSpanStream:
    def test_begin_end_duration(self):
        s = SpanStream()
        span = s.begin("work", SpanCategory.COMPUTE, qid=1, node_id=0, time=1.0)
        s.end(span, 3.5, bytes=42)
        assert span.duration == 2.5
        assert span.attrs == {"bytes": 42}
        assert not span.is_instant

    def test_parent_child_tree(self):
        s = SpanStream()
        root = s.begin("question", SpanCategory.TASK, 1, 0, 0.0)
        child = s.begin(
            "QP", SpanCategory.COMPUTE, 1, 0, 0.0, parent=root
        )
        grand = s.begin(
            "xfer", SpanCategory.COMMS, 1, 0, 0.1, parent=child
        )
        assert s.roots(1) == [root]
        assert s.children(root) == [child]
        assert [x.name for x in s.subtree(root)] == ["question", "QP", "xfer"]
        assert grand.parent_id == child.sid

    def test_instants_separate_from_intervals(self):
        s = SpanStream()
        s.begin("work", SpanCategory.COMPUTE, 1, 0, 0.0)
        s.instant("qp-start", 1, 0, 0.0)
        assert len(s.instants()) == 1
        assert len(s.intervals()) == 1
        assert s.instants()[0].is_instant

    def test_disabled_is_noop_returning_none(self):
        s = SpanStream(enabled=False)
        span = s.begin("work", SpanCategory.COMPUTE, 1, 0, 0.0)
        assert span is None
        s.end(span, 1.0)  # must not raise
        s.instant("e", 1, 0, 0.0)
        assert len(s) == 0

    def test_max_spans_bound_counts_dropped(self):
        s = SpanStream(max_spans=2)
        kept = s.begin("a", SpanCategory.COMPUTE, 1, 0, 0.0)
        s.instant("b", 1, 0, 0.0)
        assert s.begin("c", SpanCategory.COMPUTE, 1, 0, 0.0) is None
        s.instant("d", 1, 0, 0.0)
        assert len(s) == 2
        assert s.dropped == 2
        s.end(kept, 2.0)  # open spans can still be closed at the bound
        assert kept.t1 == 2.0

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            SpanStream(max_spans=0)

    def test_clear(self):
        s = SpanStream(max_spans=1)
        s.instant("a", 1, 0, 0.0)
        s.instant("b", 1, 0, 0.0)
        assert s.dropped == 1
        s.clear()
        assert len(s) == 0 and s.dropped == 0

    def test_question_ids(self):
        s = SpanStream()
        s.instant("a", 3, 0, 0.0)
        s.instant("b", 1, 0, 0.0)
        assert s.question_ids() == [1, 3]


class TestTracerCompatibility:
    def test_events_view_over_instants(self):
        t = Tracer()
        t.record(1.0, 0, 5, "qp-start")
        t.record(2.0, 1, 5, "pr-collection", "c3")
        events = t.events
        assert [(e.time, e.node_id, e.qid, e.kind) for e in events] == [
            (1.0, 0, 5, "qp-start"),
            (2.0, 1, 5, "pr-collection"),
        ]
        assert events[1].detail == "c3"

    def test_disabled_records_nothing(self):
        t = Tracer(enabled=False)
        t.record(1.0, 0, 5, "qp-start")
        assert len(t) == 0

    def test_max_events_bound(self):
        t = Tracer(max_events=3)
        for i in range(10):
            t.record(float(i), 0, 0, "e")
        assert len(t) == 3
        assert t.dropped == 7

    def test_enabled_toggle_delegates_to_stream(self):
        stream = SpanStream(enabled=False)
        t = Tracer(stream=stream)
        assert not t.enabled
        t.enabled = True
        assert stream.enabled
        t.record(0.0, 0, 0, "e")
        assert len(stream.instants()) == 1

    def test_shared_stream_interleaves(self):
        # Durational spans in the shared store never leak into `events`.
        stream = SpanStream()
        t = Tracer(stream=stream)
        stream.begin("question", SpanCategory.TASK, 1, 0, 0.0)
        t.record(0.5, 0, 1, "qp-start")
        assert [e.kind for e in t.events] == ["qp-start"]
