"""Exporter hardening: empty streams, zero-sample histograms, stable pids."""

import json

import pytest

from repro.observability.exporters import (
    chrome_trace,
    validate_chrome_trace,
    validate_jsonl_line,
    write_chrome_trace,
    write_jsonl,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.spans import SpanCategory, SpanStream


def _serving_stream():
    """A stitched-shape stream: server lane (-1) plus two worker pids."""
    stream = SpanStream()
    for qid, pid in ((0, 4242), (1, 77)):
        root = stream.begin("serve", SpanCategory.TASK, qid, pid, float(qid))
        adm = stream.begin(
            "admission", SpanCategory.QUEUE, qid, -1, float(qid), parent=root
        )
        stream.end(adm, qid + 0.1)
        stream.end(root, qid + 0.5)
    return stream


class TestEmptyInputs:
    def test_empty_stream_jsonl_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        reg.histogram("zero.samples")  # never observed
        path = write_jsonl(
            SpanStream(), tmp_path / "empty.jsonl", metrics=reg,
            header={"label": "empty"},
        )
        lines = path.read_text().splitlines()
        assert len(lines) == 2  # header + metrics, no spans
        for line in lines:
            validate_jsonl_line(json.loads(line))

    def test_empty_stream_chrome_trace_validates(self):
        trace = chrome_trace(SpanStream())
        assert validate_chrome_trace(trace) == 0

    def test_zero_sample_histogram_serializes_finite(self):
        reg = MetricsRegistry()
        reg.histogram("h")
        body = reg.to_dict()["h"]
        assert body["min"] == 0.0 and body["max"] == 0.0
        validate_jsonl_line({"record": "metrics", "metrics": reg.to_dict()})

    def test_non_finite_metric_rejected_by_validator(self):
        with pytest.raises(ValueError, match="non-finite"):
            validate_jsonl_line(
                {
                    "record": "metrics",
                    "metrics": {
                        "h": {"type": "histogram", "min": float("inf")}
                    },
                }
            )

    def test_non_finite_span_rejected(self):
        span = {
            "record": "span", "sid": 0, "parent": -1, "name": "x",
            "cat": "task", "qid": 0, "node": 0,
            "t0": float("nan"), "t1": 1.0,
        }
        with pytest.raises(ValueError, match="non-finite"):
            validate_jsonl_line(span)


class TestStablePids:
    def test_default_mode_keeps_raw_node_ids(self):
        trace = chrome_trace(_serving_stream())
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        # Raw mode: pid == node_id, generic N<id> names, no sort index.
        assert {e["pid"] for e in meta} == {-1, 77, 4242}
        assert all(e["name"] == "process_name" for e in meta)
        names = {e["pid"]: e["args"]["name"] for e in meta}
        assert names[4242] == "N4242"

    def test_stable_mode_gives_contiguous_lanes(self):
        trace = chrome_trace(_serving_stream(), stable_pids=True)
        validate_chrome_trace(trace)
        name_meta = {
            e["pid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        # Sorted node ids -1 < 77 < 4242 map to lanes 0, 1, 2.
        assert name_meta == {0: "server", 1: "worker-77", 2: "worker-4242"}
        sort_meta = [
            e for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_sort_index"
        ]
        assert {e["args"]["sort_index"] for e in sort_meta} == {0, 1, 2}
        # Span events are remapped too: nothing references a raw pid.
        span_pids = {
            e["pid"] for e in trace["traceEvents"] if e["ph"] != "M"
        }
        assert span_pids <= {0, 1, 2}

    def test_process_names_override(self):
        trace = chrome_trace(
            _serving_stream(), stable_pids=True,
            process_names={-1: "front-end"},
        )
        names = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert "front-end" in names and "server" not in names

    def test_write_chrome_trace_stable(self, tmp_path):
        path = write_chrome_trace(
            _serving_stream(), tmp_path / "trace.json", stable_pids=True
        )
        validate_chrome_trace(json.loads(path.read_text()))
