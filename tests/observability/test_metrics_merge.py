"""Mergeable metrics: snapshot round-trips and deterministic aggregation."""

import json

from repro.observability.metrics import (
    Histogram,
    MetricsRegistry,
    gauge_label,
    merge_snapshots,
)


def _worker_registry(offset: float) -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.inc("retrieval.postings_scanned", 100 + offset)
    reg.gauge("retrieval.index.memory_bytes").set(1000 + offset)
    for i in range(20):
        reg.observe("serving.service_s", offset + i * 0.01)
    return reg


class TestSnapshot:
    def test_snapshot_is_strict_json(self):
        reg = _worker_registry(0.0)
        reg.histogram("empty.hist")  # zero samples: min/max must not be inf
        text = json.dumps(reg.snapshot(), allow_nan=False)
        assert "Infinity" not in text

    def test_empty_histogram_state_has_null_min_max(self):
        h = Histogram("h")
        state = h.state_dict()
        assert state["count"] == 0
        assert state["min"] is None and state["max"] is None

    def test_snapshot_then_merge_is_identity(self):
        reg = _worker_registry(1.0)
        clone = MetricsRegistry()
        clone.merge_snapshot(reg.snapshot())
        assert clone.snapshot() == reg.snapshot()


class TestMerge:
    def test_counters_sum(self):
        agg = MetricsRegistry()
        agg.merge_snapshot(_worker_registry(0.0).snapshot())
        agg.merge_snapshot(_worker_registry(5.0).snapshot())
        assert agg.counter("retrieval.postings_scanned").value == 205.0

    def test_gauges_keep_labeled_per_source_values(self):
        agg = merge_snapshots(
            {
                "worker=11": _worker_registry(0.0).snapshot(),
                "worker=22": _worker_registry(5.0).snapshot(),
            }
        )
        key_a = gauge_label("retrieval.index.memory_bytes", "worker=11")
        key_b = gauge_label("retrieval.index.memory_bytes", "worker=22")
        assert agg.gauge(key_a).value == 1000.0
        assert agg.gauge(key_b).value == 1005.0
        # The unlabeled name is not clobbered into existence.
        assert "retrieval.index.memory_bytes" not in agg

    def test_histogram_exact_aggregates_add(self):
        a, b = _worker_registry(0.0), _worker_registry(5.0)
        agg = MetricsRegistry()
        agg.merge_snapshot(a.snapshot())
        agg.merge_snapshot(b.snapshot())
        h = agg.histogram("serving.service_s")
        ha = a.histogram("serving.service_s")
        hb = b.histogram("serving.service_s")
        assert h.count == ha.count + hb.count == 40
        assert h.total == ha.total + hb.total
        assert h.min == min(ha.min, hb.min)
        assert h.max == max(ha.max, hb.max)

    def test_merge_order_of_labels_is_irrelevant_for_counters_and_hists(self):
        snaps = {
            "worker=1": _worker_registry(0.0).snapshot(),
            "worker=2": _worker_registry(3.0).snapshot(),
        }
        # merge_snapshots sorts labels, so both dict orders agree.
        agg1 = merge_snapshots(dict(snaps))
        agg2 = merge_snapshots(dict(reversed(list(snaps.items()))))
        assert agg1.snapshot() == agg2.snapshot()

    def test_merge_is_deterministic_under_decimation(self):
        def build():
            a = Histogram("h", max_samples=16)
            b = Histogram("h", max_samples=16)
            for i in range(100):
                a.observe(float(i))
            for i in range(37):
                b.observe(1000.0 + i)
            a.merge_state(b.state_dict())
            return a.state_dict()

        first, second = build(), build()
        assert first == second
        assert len(first["samples"]) < 16  # bound respected after merge

    def test_merge_aligns_strides(self):
        fine = Histogram("h", max_samples=1024)
        coarse = Histogram("h", max_samples=8)
        for i in range(6):
            fine.observe(float(i))
        for i in range(100):
            coarse.observe(float(i))  # forces decimation, stride > 1
        state = coarse.state_dict()
        assert state["stride"] > 1
        fine.merge_state(state)
        assert fine.count == 106
        # Retained set thinned to the coarser stride, then concatenated.
        assert fine.state_dict()["stride"] >= state["stride"]

    def test_merge_empty_histogram_keeps_min_max(self):
        h = Histogram("h")
        h.observe(2.0)
        h.merge_state(Histogram("h").state_dict())
        assert h.count == 1 and h.min == 2.0 and h.max == 2.0

    def test_zero_sample_histograms_merge_cleanly(self):
        h = Histogram("h")
        h.merge_state(Histogram("h").state_dict())
        assert h.count == 0
        assert h.to_dict()["min"] == 0.0  # rendered form stays finite

    def test_unknown_type_rejected(self):
        agg = MetricsRegistry()
        try:
            agg.merge_snapshot({"x": {"type": "mystery", "value": 1}})
        except ValueError as exc:
            assert "mystery" in str(exc)
        else:
            raise AssertionError("expected ValueError")
