"""Round-trip tests for corpus and profile persistence."""

import pytest

from repro.corpus import CorpusConfig, generate_corpus, generate_questions
from repro.corpus.io import load_corpus, save_corpus
from repro.qa import CostModel, SyntheticProfileGenerator
from repro.qa.profile_io import load_profiles, save_profiles


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(
        CorpusConfig(n_collections=2, docs_per_collection=6, vocab_size=300,
                     seed=91)
    )


class TestCorpusRoundTrip:
    def test_documents_identical(self, corpus, tmp_path):
        path = tmp_path / "corpus.json"
        save_corpus(corpus, path)
        loaded = load_corpus(path)
        assert loaded.n_documents == corpus.n_documents
        for a, b in zip(corpus.all_documents(), loaded.all_documents()):
            assert a.doc_id == b.doc_id
            assert a.text == b.text
            assert a.planted == b.planted

    def test_knowledge_identical(self, corpus, tmp_path):
        path = tmp_path / "corpus.json"
        save_corpus(corpus, path)
        loaded = load_corpus(path)
        assert list(loaded.knowledge.entities) == list(corpus.knowledge.entities)
        assert loaded.knowledge.facts == corpus.knowledge.facts
        assert loaded.knowledge.nationalities == corpus.knowledge.nationalities

    def test_config_and_vocab_identical(self, corpus, tmp_path):
        path = tmp_path / "corpus.json"
        save_corpus(corpus, path)
        loaded = load_corpus(path)
        assert loaded.config == corpus.config
        assert loaded.vocabulary == corpus.vocabulary

    def test_gzip_variant(self, corpus, tmp_path):
        path = tmp_path / "corpus.json.gz"
        save_corpus(corpus, path)
        loaded = load_corpus(path)
        assert loaded.size_bytes == corpus.size_bytes
        # Compressed file should actually be smaller than plain JSON.
        plain = tmp_path / "corpus.json"
        save_corpus(corpus, plain)
        assert path.stat().st_size < plain.stat().st_size

    def test_questions_regenerate_identically(self, corpus, tmp_path):
        path = tmp_path / "corpus.json"
        save_corpus(corpus, path)
        loaded = load_corpus(path)
        a = generate_questions(corpus)
        b = generate_questions(loaded)
        assert [(q.text, q.expected_answer) for q in a] == [
            (q.text, q.expected_answer) for q in b
        ]

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 999}')
        with pytest.raises(ValueError, match="format version"):
            load_corpus(path)


class TestProfileRoundTrip:
    def test_profiles_identical(self, tmp_path):
        profiles = SyntheticProfileGenerator(seed=4).generate_many(5)
        path = tmp_path / "profiles.json"
        save_profiles(profiles, path)
        loaded = load_profiles(path)
        assert len(loaded) == 5
        model = CostModel.default()
        for a, b in zip(profiles, loaded):
            assert a.qid == b.qid
            assert a.n_accepted == b.n_accepted
            assert b.sequential_seconds(model) == pytest.approx(
                a.sequential_seconds(model)
            )
            assert b.memory_bytes == a.memory_bytes

    def test_loaded_profiles_run_in_simulation(self, tmp_path):
        from repro.core import DistributedQASystem, SystemConfig

        profiles = SyntheticProfileGenerator(seed=4).generate_many(2)
        path = tmp_path / "profiles.json.gz"
        save_profiles(profiles, path)
        loaded = load_profiles(path)
        report = DistributedQASystem(SystemConfig(n_nodes=2)).run_workload(loaded)
        assert report.n_questions == 2

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": -1}')
        with pytest.raises(ValueError, match="format version"):
            load_profiles(path)
