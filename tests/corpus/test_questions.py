"""Tests for TREC-style question generation."""

import pytest

from repro.corpus import (
    ANSWER_IS_SUBJECT,
    PAPER_EXAMPLE_QUESTIONS,
    CorpusConfig,
    generate_corpus,
    generate_questions,
)
from repro.nlp import EntityType, classify_question


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(
        CorpusConfig(n_collections=2, docs_per_collection=12, vocab_size=300,
                     seed=17)
    )


class TestGeneration:
    def test_one_question_per_unique_fact_key(self, corpus):
        questions = generate_questions(corpus)
        keys = [q.fact.key() for q in questions]
        assert len(keys) == len(set(keys))

    def test_expected_answer_direction(self, corpus):
        for q in generate_questions(corpus):
            if q.fact.relation in ANSWER_IS_SUBJECT:
                assert q.expected_answer == q.fact.subject
            else:
                assert q.expected_answer == q.fact.value

    def test_question_never_contains_its_answer(self, corpus):
        for q in generate_questions(corpus):
            assert q.expected_answer not in q.text, q

    def test_max_questions_subsample_stable(self, corpus):
        a = generate_questions(corpus, max_questions=10, seed=3)
        b = generate_questions(corpus, max_questions=10, seed=3)
        assert [q.qid for q in a] == [q.qid for q in b]
        assert len(a) == 10

    def test_relation_filter(self, corpus):
        qs = generate_questions(corpus, relations={"born_in"})
        assert qs
        assert all(q.fact.relation == "born_in" for q in qs)

    def test_answer_types_recognized_by_classifier(self, corpus):
        """The QP classifier must agree with the generator's ground-truth
        answer type for the overwhelming majority of questions (the
        end-to-end accuracy depends on it)."""
        questions = generate_questions(corpus)
        agree = sum(
            1
            for q in questions
            if classify_question(q.text).answer_type is q.answer_type
        )
        assert agree / len(questions) > 0.9


class TestPaperExamples:
    def test_examples_present_and_typed(self):
        assert len(PAPER_EXAMPLE_QUESTIONS) == 4
        expected_types = [
            EntityType.DISEASE,
            EntityType.LOCATION,
            EntityType.LOCATION,
            EntityType.NATIONALITY,
        ]
        for question, etype in zip(PAPER_EXAMPLE_QUESTIONS, expected_types):
            assert classify_question(question).answer_type is etype
