"""Tests for Zipf vocabulary generation and sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import ZipfSampler, make_vocabulary


class TestVocabulary:
    def test_size_and_uniqueness(self):
        vocab = make_vocabulary(500, seed=1)
        assert len(vocab) == 500
        assert len(set(vocab)) == 500

    def test_deterministic(self):
        assert make_vocabulary(200, seed=5) == make_vocabulary(200, seed=5)

    def test_different_seeds_differ(self):
        assert make_vocabulary(200, seed=1) != make_vocabulary(200, seed=2)

    def test_words_are_lowercase_alpha(self):
        for w in make_vocabulary(300, seed=3):
            assert w.isalpha()
            assert w == w.lower()

    def test_frequent_words_shorter_on_average(self):
        vocab = make_vocabulary(2000, seed=4)
        head = np.mean([len(w) for w in vocab[:200]])
        tail = np.mean([len(w) for w in vocab[-200:]])
        assert head < tail


class TestZipfSampler:
    def test_sample_shape_and_range(self):
        s = ZipfSampler(1000, seed=0)
        idx = s.sample(5000)
        assert idx.shape == (5000,)
        assert idx.min() >= 0
        assert idx.max() < 1000

    def test_rank_frequency_is_zipf_like(self):
        s = ZipfSampler(2000, exponent=1.0, seed=1)
        idx = s.sample(200_000)
        counts = np.bincount(idx, minlength=2000)
        # Top word should appear far more often than the 100th word —
        # roughly by the rank ratio for exponent 1.
        ratio = counts[0] / max(1, counts[99])
        assert 40 < ratio < 250

    def test_topic_shift_changes_tail_not_head(self):
        a = ZipfSampler(1000, topic_shift=0.0, seed=2)
        b = ZipfSampler(1000, topic_shift=0.5, seed=2)
        ia = a.sample(50_000)
        ib = b.sample(50_000)
        ca = np.bincount(ia, minlength=1000)
        cb = np.bincount(ib, minlength=1000)
        head = slice(0, 50)
        # Head (function-word) frequencies stay similar.
        assert np.corrcoef(ca[head], cb[head])[0, 1] > 0.95
        # Tail frequencies get rearranged.
        tail = slice(100, 1000)
        assert np.corrcoef(ca[tail], cb[tail])[0, 1] < 0.9

    def test_seed_determinism(self):
        a = ZipfSampler(500, seed=7).sample(100)
        b = ZipfSampler(500, seed=7).sample(100)
        assert (a == b).all()

    def test_expected_frequency_decreasing_in_rank(self):
        s = ZipfSampler(100, topic_shift=0.0, seed=0)
        f0 = s.expected_frequency(0)
        f50 = s.expected_frequency(50)
        assert f0 > f50 > 0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ZipfSampler(5)
        with pytest.raises(ValueError):
            ZipfSampler(100, topic_shift=1.0)

    @given(shift=st.floats(min_value=0.0, max_value=0.99))
    @settings(max_examples=20, deadline=None)
    def test_probabilities_always_valid(self, shift):
        s = ZipfSampler(200, topic_shift=shift, seed=0)
        idx = s.sample(1000)
        assert ((idx >= 0) & (idx < 200)).all()
