"""Tests for the entity knowledge base."""

import pytest

from repro.corpus import (
    ANSWER_IS_SUBJECT,
    TEMPLATES,
    EntityRecord,
    Fact,
    KnowledgeBase,
    build_knowledge_base,
)
from repro.nlp import EntityType


@pytest.fixture(scope="module")
def kb():
    return build_knowledge_base(seed=7)


class TestBuild:
    def test_deterministic(self):
        a = build_knowledge_base(seed=9)
        b = build_knowledge_base(seed=9)
        assert list(a.entities) == list(b.entities)
        assert a.facts == b.facts

    def test_entity_types_present(self, kb):
        types = {r.type for r in kb.entities.values()}
        assert EntityType.PERSON in types
        assert EntityType.LOCATION in types
        assert EntityType.ORGANIZATION in types
        assert EntityType.DISEASE in types
        assert EntityType.PRODUCT in types

    def test_counts_match_request(self):
        kb = build_knowledge_base(n_persons=10, n_places=8, n_orgs=3,
                                  n_diseases=2, n_products=4, seed=1)
        assert len(kb.by_type(EntityType.PERSON)) == 10
        assert len(kb.by_type(EntityType.ORGANIZATION)) == 3
        assert len(kb.by_type(EntityType.DISEASE)) == 2

    def test_every_fact_relation_has_template(self, kb):
        for fact in kb.facts:
            assert fact.relation in TEMPLATES, fact.relation

    def test_no_duplicate_entities(self, kb):
        names = list(kb.entities)
        assert len(names) == len(set(names))

    def test_nationalities_generated(self, kb):
        assert kb.nationalities
        assert all(n[0].isupper() for n in kb.nationalities)

    def test_persons_have_core_facts(self, kb):
        person = kb.by_type(EntityType.PERSON)[0]
        relations = {f.relation for f in person.facts}
        assert {"born_in", "birth_year", "nationality"} <= relations


class TestKnowledgeBase:
    def test_duplicate_entity_rejected(self):
        kb = KnowledgeBase()
        kb.add_entity(EntityRecord("X", EntityType.PERSON))
        with pytest.raises(ValueError):
            kb.add_entity(EntityRecord("X", EntityType.PERSON))

    def test_len_counts_entities(self, kb):
        assert len(kb) == len(kb.entities)

    def test_gazetteer_covers_entities(self, kb):
        g = kb.gazetteer()
        for name in list(kb.entities)[:20]:
            assert name in g

    def test_gazetteer_covers_named_fact_values(self, kb):
        g = kb.gazetteer()
        for fact in kb.facts:
            if fact.answer_type in (EntityType.PERSON, EntityType.LOCATION):
                assert fact.value in g or fact.value in kb.entities


class TestTemplates:
    def test_statement_templates_mention_subject_and_value(self):
        for rel, (stmt, _q) in TEMPLATES.items():
            assert "{subject}" in stmt
            assert "{value}" in stmt

    def test_question_templates_never_leak_the_answer(self):
        """The question must not reference the field that is the answer."""
        for rel, (_stmt, question) in TEMPLATES.items():
            if rel in ANSWER_IS_SUBJECT:
                assert "{subject}" not in question
            else:
                assert "{value}" not in question

    def test_fact_key(self):
        f = Fact("A", "born_in", "B", EntityType.LOCATION)
        assert f.key() == ("A", "born_in")
