"""Tests for the corpus generator."""

import pytest

from repro.corpus import Corpus, CorpusConfig, generate_corpus
from repro.corpus.knowledge import TEMPLATES


SMALL = CorpusConfig(
    n_collections=4,
    docs_per_collection=10,
    vocab_size=300,
    seed=99,
)


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(SMALL)


class TestStructure:
    def test_collection_count(self, corpus):
        assert len(corpus.collections) == 4

    def test_docs_per_collection(self, corpus):
        for coll in corpus.collections:
            assert len(coll) == 10

    def test_doc_ids_unique_and_dense(self, corpus):
        ids = [d.doc_id for d in corpus.all_documents()]
        assert sorted(ids) == list(range(40))

    def test_collection_ids_consistent(self, corpus):
        for coll in corpus.collections:
            for doc in coll.documents:
                assert doc.collection_id == coll.collection_id

    def test_paragraph_structure(self, corpus):
        doc = corpus.collections[0].documents[0]
        paragraphs = doc.text.split("\n\n")
        assert len(paragraphs) >= 1
        assert all(p.strip() for p in paragraphs)

    def test_size_accounting(self, corpus):
        assert corpus.size_bytes == sum(
            d.size_bytes for d in corpus.all_documents()
        )
        assert corpus.n_documents == 40


class TestDeterminism:
    def test_same_seed_same_text(self):
        a = generate_corpus(SMALL)
        b = generate_corpus(SMALL)
        for da, db in zip(a.all_documents(), b.all_documents()):
            assert da.text == db.text

    def test_different_seed_different_text(self):
        from dataclasses import replace

        a = generate_corpus(SMALL)
        b = generate_corpus(replace(SMALL, seed=100))
        assert any(
            da.text != db.text
            for da, db in zip(a.all_documents(), b.all_documents())
        )


class TestFactPlanting:
    def test_every_fact_planted_somewhere(self, corpus):
        for fact in corpus.knowledge.facts:
            assert corpus.fact_locations(fact), f"fact {fact} not planted"

    def test_planted_fact_text_present(self, corpus):
        for doc in list(corpus.all_documents())[:10]:
            for fact in doc.planted:
                # The statement mentions both subject and value.
                assert fact.subject in doc.text
                stmt, _ = TEMPLATES[fact.relation]
                if "{value}" in stmt:
                    assert fact.value in doc.text

    def test_replication_bounds(self):
        config = CorpusConfig(
            n_collections=2,
            docs_per_collection=30,
            vocab_size=300,
            fact_replication=(2, 2),
            seed=5,
        )
        corpus = generate_corpus(config)
        for fact in corpus.knowledge.facts[:30]:
            assert len(corpus.fact_locations(fact)) == 2


class TestValidation:
    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            generate_corpus(CorpusConfig(n_collections=0))
        with pytest.raises(ValueError):
            generate_corpus(CorpusConfig(docs_per_collection=0))
        with pytest.raises(ValueError):
            generate_corpus(CorpusConfig(vocab_size=10))


class TestTopicBias:
    def test_collections_have_different_word_statistics(self, corpus):
        """Topic shift should make sub-collection vocabularies diverge —
        the source of the paper's uneven PR granularity."""
        from collections import Counter

        def topwords(coll):
            counter = Counter()
            for doc in coll.documents:
                counter.update(doc.text.lower().split())
            return {w for w, _ in counter.most_common(80)}

        first = topwords(corpus.collections[0])
        last = topwords(corpus.collections[-1])
        assert first != last
