"""Tests for the model-calibration utilities."""

import numpy as np
import pytest

from repro.model import ModelParameters, fit_intra_constants, grid_error
from repro.model.calibration import PAPER_TABLE4_N


class TestGridError:
    def test_default_parameters_fit_tightly(self):
        assert grid_error(ModelParameters()) < 0.01

    def test_bad_parameters_fit_poorly(self):
        from dataclasses import replace

        bad = replace(ModelParameters(), d_pr=5e9, t_fix=10.0)
        assert grid_error(bad) > 0.3

    def test_error_is_mean_relative(self):
        # Perturbing one constant slightly moves the error slightly.
        from dataclasses import replace

        base = grid_error(ModelParameters())
        nudged = grid_error(replace(ModelParameters(), v_net=1.30e6))
        assert abs(nudged - base) < 0.2


class TestFitter:
    def test_fitter_recovers_near_optimum_from_bad_start(self):
        """A coarse grid search from a detuned start must land within the
        shipped defaults' accuracy ballpark."""
        from dataclasses import replace

        detuned = replace(
            ModelParameters(), d_pr=0.9e9, t_fix=1.7, v_net=1.4e6
        )
        assert grid_error(detuned) > grid_error(ModelParameters())
        fitted = fit_intra_constants(
            base=detuned,
            d_pr_grid=np.linspace(0.95e9, 1.1e9, 7),
            t_fix_grid=np.linspace(1.3, 1.5, 5),
            v_net_grid=np.linspace(1.1e6, 1.4e6, 7),
        )
        assert grid_error(fitted) < 0.03

    def test_paper_table_complete(self):
        assert len(PAPER_TABLE4_N) == 16
        assert all(v > 0 for v in PAPER_TABLE4_N.values())
