"""Tests for the Section 5 analytical model — including the Table 4
regression that pins the reproduction quality."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import (
    PAPER_TABLE4_N,
    PAPER_TABLE4_S,
    ModelParameters,
    bandwidth_bps,
    dispatch_overhead,
    distribution_overhead,
    grid_error,
    migration_overhead,
    monitoring_overhead,
    parallel_time,
    practical_processor_limit,
    question_speedup,
    question_time,
    sequential_overhead_time,
    system_efficiency,
    system_speedup,
    upper_limit_grid,
)


class TestParameters:
    def test_bandwidth_parsing(self):
        assert bandwidth_bps("1 Mbps") == 1e6
        assert bandwidth_bps("100 Mbps") == 100e6
        assert bandwidth_bps("1 Gbps") == 1e9

    def test_t_pr_depends_on_disk_bandwidth(self):
        p = ModelParameters()
        slow = p.with_bandwidths(b_disk=bandwidth_bps("100 Mbps"))
        fast = p.with_bandwidths(b_disk=bandwidth_bps("1 Gbps"))
        assert slow.t_pr > fast.t_pr

    def test_default_t_pr_near_table8(self):
        """On the testbed disk, PR must take ~38 s (Table 8)."""
        assert ModelParameters().t_pr == pytest.approx(38.0, rel=0.05)

    def test_with_bandwidths_copies(self):
        p = ModelParameters()
        q = p.with_bandwidths(b_net=1e9)
        assert p.b_net == 100e6
        assert q.b_net == 1e9


class TestIntraModel:
    def test_table4_regression(self):
        """>= 14 of 16 N cells must match the paper exactly; all within 1."""
        grid = upper_limit_grid(ModelParameters())
        exact = 0
        for cell in grid:
            paper_n = PAPER_TABLE4_N[(cell.b_disk_label, cell.b_net_label)]
            assert abs(cell.n_max - paper_n) <= 1
            exact += cell.n_max == paper_n
        assert exact >= 14

    def test_table4_speedups_within_five_percent(self):
        grid = upper_limit_grid(ModelParameters())
        for cell in grid:
            paper_s = PAPER_TABLE4_S[(cell.b_disk_label, cell.b_net_label)]
            assert cell.speedup == pytest.approx(paper_s, rel=0.06)

    def test_mean_grid_error_below_one_percent(self):
        assert grid_error(ModelParameters()) < 0.01

    def test_n_max_monotone_in_net_bandwidth(self):
        p = ModelParameters()
        limits = [
            practical_processor_limit(p.with_bandwidths(b_net=bw))
            for bw in (1e6, 10e6, 100e6, 1e9)
        ]
        assert limits == sorted(limits)

    def test_n_max_decreasing_in_disk_bandwidth(self):
        """The paper's counterintuitive result: faster disks shrink the
        practical processor limit (T_par shrinks, overhead doesn't)."""
        p = ModelParameters().with_bandwidths(b_net=1e9)
        limits = [
            practical_processor_limit(p.with_bandwidths(b_disk=bw))
            for bw in (100e6, 250e6, 500e6, 1e9)
        ]
        assert limits == sorted(limits, reverse=True)

    def test_speedup_at_one_processor(self):
        p = ModelParameters()
        s = question_speedup(p, 1)
        # T_1/(T_par + T_seq) slightly below 1 (partitioning overhead).
        assert 0.9 < s <= 1.0

    def test_time_decomposition(self):
        p = ModelParameters()
        assert question_time(p, 10) == pytest.approx(
            parallel_time(p) / 10 + sequential_overhead_time(p)
        )

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            question_time(ModelParameters(), 0)

    @given(n=st.integers(min_value=1, max_value=500))
    @settings(max_examples=50, deadline=None)
    def test_speedup_bounded_by_n_and_by_asymptote(self, n):
        p = ModelParameters()
        s = question_speedup(p, n)
        assert 0 < s <= n
        asymptote = p.t_sequential / sequential_overhead_time(p)
        assert s < asymptote


class TestInterModel:
    def test_efficiency_targets(self):
        """Section 5.1: efficiency ~0.9 at (1000, 1 Gbps) and at
        (100, 100 Mbps)."""
        p = ModelParameters()
        assert system_efficiency(p.with_bandwidths(b_net=1e9), 1000) == pytest.approx(
            0.9, abs=0.05
        )
        assert system_efficiency(
            p.with_bandwidths(b_net=100e6), 100
        ) == pytest.approx(0.9, abs=0.05)

    def test_speedup_increases_with_bandwidth(self):
        p = ModelParameters()
        slow = system_speedup(p.with_bandwidths(b_net=10e6), 500)
        fast = system_speedup(p.with_bandwidths(b_net=1e9), 500)
        assert fast > slow

    def test_overhead_components_positive_and_additive(self):
        p = ModelParameters()
        n = 100
        assert distribution_overhead(p, n) == pytest.approx(
            monitoring_overhead(p, n)
            + dispatch_overhead(p, n)
            + migration_overhead(p, n)
        )
        assert monitoring_overhead(p, n) > 0
        assert migration_overhead(p, n) > 0

    def test_speedup_sublinear(self):
        p = ModelParameters()
        for n in (10, 100, 1000):
            assert system_speedup(p, n) < n

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            system_speedup(ModelParameters(), 0)

    @given(n=st.integers(min_value=1, max_value=2000))
    @settings(max_examples=50, deadline=None)
    def test_efficiency_decreasing_in_n(self, n):
        p = ModelParameters()
        assert system_efficiency(p, n) >= system_efficiency(p, n + 100)
