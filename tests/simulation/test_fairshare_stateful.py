"""Stateful property testing of the fair-share resource.

Drives random sequences of job submissions, cancellations, capacity
changes and time advances against :class:`FairShareResource`, checking
the conservation laws a processor-sharing server must satisfy regardless
of operation order.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.simulation import Environment, FairShareResource


class FairShareMachine(RuleBasedStateMachine):
    """Random operation sequences against one fair-share server."""

    @initialize(capacity=st.floats(min_value=0.5, max_value=8.0))
    def setup(self, capacity):
        self.env = Environment()
        self.resource = FairShareResource(self.env, capacity)
        self.submitted = 0.0
        self.cancelled_remaining = 0.0
        self.jobs = []  # live handles

    @rule(demand=st.floats(min_value=0.01, max_value=20.0))
    def submit(self, demand):
        job = self.resource.use(demand)
        self.submitted += demand
        self.jobs.append(job)

    @rule(dt=st.floats(min_value=0.01, max_value=10.0))
    def advance(self, dt):
        self.env.run(until=self.env.now + dt)

    @rule(index=st.integers(min_value=0, max_value=10**6))
    def cancel_one(self, index):
        live = [j for j in self.jobs if not j.done and not j.cancelled]
        if not live:
            return
        job = live[index % len(live)]
        self.cancelled_remaining += self.resource.cancel(job)

    @rule(capacity=st.floats(min_value=0.5, max_value=8.0))
    def change_capacity(self, capacity):
        self.resource.set_capacity(capacity)

    @invariant()
    def work_is_bounded(self):
        """Live jobs' remaining work lies in [0, demand], and accounting
        brackets the submitted total from both sides."""
        self.resource._advance()  # sync virtual time to now
        remaining_sum = 0.0
        demand_sum = 0.0
        for job in self.jobs:
            if job.done or job.cancelled:
                continue
            remaining = (job._target_v - self.resource._vtime) * job.weight
            assert -1e-6 <= remaining <= job.demand + 1e-6
            remaining_sum += max(0.0, remaining)
            demand_sum += job.demand
        booked = (
            self.resource.completed_units
            + self.resource.cancelled_units
            + self.cancelled_remaining
        )
        accounted_low = booked + remaining_sum
        accounted_high = booked + demand_sum
        assert accounted_low <= self.submitted + 1e-6
        assert accounted_high >= self.submitted - 1e-6

    @invariant()
    def active_count_matches_live_jobs(self):
        live = sum(1 for j in self.jobs if not j.done and not j.cancelled)
        assert self.resource.n_active == live

    def teardown(self):
        # Draining the queue must complete every remaining job, and the
        # final books must balance exactly: everything submitted was
        # either served or returned by a cancellation.
        self.env.run()
        for job in self.jobs:
            assert job.done or job.cancelled
        assert (
            self.resource.completed_units
            + self.resource.cancelled_units
            + self.cancelled_remaining
            == pytest.approx(self.submitted, rel=1e-6, abs=1e-6)
        )


TestFairShareStateful = FairShareMachine.TestCase
TestFairShareStateful.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None
)
