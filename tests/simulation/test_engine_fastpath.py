"""Equivalence of the inlined ``Environment.run`` loops vs ``step()``.

The hot-path rewrite inlined the pop/clock/callback sequence into
``run()`` and made timeout names lazy.  These are only legal if they are
pure overhead removals: every event must still fire at the same time and
in the same order as a manual ``step()`` loop, and crashes must surface
identically.
"""

import random

import pytest

from repro.simulation import Environment
from repro.simulation.engine import EmptySchedule
from repro.simulation.events import Timeout


def _chain_workload(env, record, n_chains=20, chain_len=12, seed=7):
    """Seeded timeout chains; each hop appends (cid, hop, now) to record."""
    rng = random.Random(seed)
    delays = [
        [rng.random() * 5.0 for _ in range(chain_len)]
        for _ in range(n_chains)
    ]

    def chain(cid, ds):
        for hop, d in enumerate(ds):
            yield env.timeout(d)
            record.append((cid, hop, env.now))

    for cid, ds in enumerate(delays):
        env.process(chain(cid, ds))


def _step_all(env):
    while True:
        try:
            env.step()
        except EmptySchedule:
            return


class TestRunMatchesStepping:
    def test_drain_loop_fires_in_step_order(self):
        stepped, ran = [], []
        env_a = Environment()
        _chain_workload(env_a, stepped)
        _step_all(env_a)
        env_b = Environment()
        _chain_workload(env_b, ran)
        env_b.run()
        assert ran == stepped
        assert env_b.now == env_a.now

    def test_until_event_loop_fires_in_step_order(self):
        def probe(env, record):
            for hop in range(5):
                yield env.timeout(1.0)
                record.append(("probe", hop, env.now))

        stepped, ran = [], []
        env_a = Environment()
        _chain_workload(env_a, stepped, n_chains=6, chain_len=8)
        target_a = env_a.process(probe(env_a, stepped))
        while not target_a.processed:
            env_a.step()

        env_b = Environment()
        _chain_workload(env_b, ran, n_chains=6, chain_len=8)
        target_b = env_b.process(probe(env_b, ran))
        env_b.run(until=target_b)

        assert ran == stepped
        assert env_b.now == env_a.now

    def test_horizon_loop_fires_in_step_order(self):
        horizon = 20.0
        stepped, ran = [], []
        env_a = Environment()
        _chain_workload(env_a, stepped)
        while env_a.peek() <= horizon:
            env_a.step()

        env_b = Environment()
        _chain_workload(env_b, ran)
        env_b.run(until=horizon)

        assert ran == stepped
        assert env_b.now == horizon

    def test_crash_surfaces_from_both_drivers(self):
        def bomb(env):
            yield env.timeout(1.0)
            raise ValueError("boom")

        env_a = Environment()
        env_a.process(bomb(env_a))
        with pytest.raises(ValueError, match="boom"):
            _step_all(env_a)

        env_b = Environment()
        env_b.process(bomb(env_b))
        with pytest.raises(ValueError, match="boom"):
            env_b.run()


class TestLazyTimeoutNames:
    def test_default_timeout_has_no_eager_label(self):
        env = Environment()
        to = env.timeout(1.5)
        assert to.name is None

    def test_repr_still_describes_anonymous_timeout(self):
        env = Environment()
        assert "Timeout(1.5)" in repr(env.timeout(1.5))

    def test_explicit_name_is_kept(self):
        env = Environment()
        to = Timeout(env, 2.0, name="heartbeat")
        assert to.name == "heartbeat"
        assert "heartbeat" in repr(to)

    def test_negative_delay_still_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-0.1)
