"""Tests for the shared-medium network model and failure injection."""

import pytest

from repro.simulation import (
    Environment,
    FailureInjector,
    FailureSchedule,
    Network,
    TransferFailed,
)


@pytest.fixture()
def env():
    return Environment()


def make_net(env, bw=100e6, latency=0.0, setup=0.0):
    return Network(
        env, bandwidth_bps=bw, latency_s=latency, connection_setup_s=setup
    )


class TestTransfers:
    def test_transfer_time_matches_bandwidth(self, env):
        net = make_net(env, bw=80e6)  # 10 MB/s
        out = []

        def p():
            dt = yield from net.transfer("a", "b", 5e6)
            out.append(dt)

        env.process(p())
        env.run()
        assert out == [pytest.approx(0.5)]

    def test_latency_added(self, env):
        net = make_net(env, bw=8e6, latency=0.010)  # 1 MB/s
        out = []

        def p():
            dt = yield from net.transfer("a", "b", 1e6)
            out.append(dt)

        env.process(p())
        env.run()
        assert out == [pytest.approx(1.010)]

    def test_connection_setup_charged_only_when_requested(self, env):
        net = make_net(env, bw=8e6, setup=0.1)
        out = []

        def p(new_conn):
            dt = yield from net.transfer("a", "b", 1e6, new_connection=new_conn)
            out.append(dt)

        env.process(p(True))
        env.run()
        env2 = Environment()
        net2 = Network(env2, bandwidth_bps=8e6, latency_s=0.0, connection_setup_s=0.1)
        out2 = []

        def q():
            dt = yield from net2.transfer("a", "b", 1e6, new_connection=False)
            out2.append(dt)

        env2.process(q())
        env2.run()
        assert out[0] - out2[0] == pytest.approx(0.1)

    def test_concurrent_transfers_share_bandwidth(self, env):
        net = make_net(env, bw=80e6)  # 10 MB/s
        done = []

        def p(i):
            yield from net.transfer(i, "dst", 5e6)
            done.append((i, env.now))

        env.process(p(0))
        env.process(p(1))
        env.run()
        # Two 5 MB transfers at shared 10 MB/s: both complete at t=1.0.
        assert [t for _, t in done] == [pytest.approx(1.0)] * 2

    def test_broadcast_occupies_medium_once(self, env):
        net = make_net(env, bw=8e6)  # 1 MB/s
        out = []

        def p():
            dt = yield from net.broadcast("a", 1e6)
            out.append(dt)

        env.process(p())
        env.run()
        assert out == [pytest.approx(1.0)]
        assert net.broadcasts_sent == 1

    def test_zero_byte_transfer(self, env):
        net = make_net(env)
        out = []

        def p():
            dt = yield from net.transfer("a", "b", 0.0)
            out.append(dt)

        env.process(p())
        env.run()
        assert out == [pytest.approx(0.0)]

    def test_negative_size_rejected(self, env):
        net = make_net(env)

        def p():
            yield from net.transfer("a", "b", -1.0)

        env.process(p())
        with pytest.raises(ValueError):
            env.run()

    def test_accounting(self, env):
        net = make_net(env, bw=80e6)

        def p():
            yield from net.transfer("a", "b", 1e6)
            yield from net.broadcast("a", 2e6)

        env.process(p())
        env.run()
        assert net.bytes_transferred == pytest.approx(3e6)
        assert net.messages_sent == 1
        assert net.broadcasts_sent == 1


class TestFailureSemantics:
    def test_transfer_to_down_node_fails_immediately(self, env):
        net = make_net(env)
        net.set_node_up("b", False)
        caught = []

        def p():
            try:
                yield from net.transfer("a", "b", 1e6)
            except TransferFailed as exc:
                caught.append(exc.reason)

        env.process(p())
        env.run()
        assert caught == ["endpoint down"]

    def test_mid_transfer_failure_detected_at_completion(self, env):
        net = make_net(env, bw=8e6)  # 1 MB/s
        caught = []

        def sender():
            try:
                yield from net.transfer("a", "b", 2e6)  # 2 s
            except TransferFailed as exc:
                caught.append((exc.reason, env.now))

        def killer():
            yield env.timeout(1.0)
            net.set_node_up("b", False)

        env.process(sender())
        env.process(killer())
        env.run()
        assert caught == [("endpoint failed mid-transfer", pytest.approx(2.0))]

    def test_broadcast_from_down_node_vanishes(self, env):
        net = make_net(env)
        net.set_node_up("a", False)

        def p():
            yield from net.broadcast("a", 1e6)

        env.process(p())
        env.run()
        assert net.broadcasts_sent == 0
        assert net.bytes_transferred == 0.0

    def test_recovery_restores_reachability(self, env):
        net = make_net(env)
        net.set_node_up("b", False)
        net.set_node_up("b", True)
        assert net.is_up("b")


class TestFailureInjector:
    def test_schedule_applies_transitions_in_order(self, env):
        net = make_net(env)
        transitions = []
        inj = FailureInjector(
            env,
            set_node_up=net.set_node_up,
            on_transition=lambda n, up: transitions.append((env.now, n, up)),
        )
        sched = FailureSchedule().kill_at(2.0, "n1").recover_at(5.0, "n1")
        inj.apply(sched)
        env.run()
        assert transitions == [(2.0, "n1", False), (5.0, "n1", True)]
        assert net.is_up("n1")

    def test_kill_now_immediate(self, env):
        net = make_net(env)
        inj = FailureInjector(env, set_node_up=net.set_node_up)
        inj.kill_now("n2")
        assert not net.is_up("n2")
        assert inj.log == [(0.0, "n2", False)]
