"""Tests for time-weighted statistics helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import RunningMean, TimeWeightedSignal


class TestTimeWeightedSignal:
    def test_constant_signal_average(self):
        s = TimeWeightedSignal(3.0)
        cp = s.checkpoint(0.0)
        assert s.average(cp, 10.0) == pytest.approx(3.0)

    def test_step_signal_average(self):
        s = TimeWeightedSignal(0.0)
        s.set(0.0, 1.0)
        s.set(5.0, 3.0)
        cp0 = (0.0, 0.0)
        # 0..5 at 1, 5..10 at 3 -> mean 2.
        assert s.average(cp0, 10.0) == pytest.approx(2.0)

    def test_add_increments(self):
        s = TimeWeightedSignal(0.0)
        s.add(0.0, 2.0)
        s.add(1.0, -1.0)
        assert s.value == pytest.approx(1.0)
        assert s.integral(2.0) == pytest.approx(2.0 + 1.0)

    def test_windowed_average_with_checkpoint(self):
        s = TimeWeightedSignal(0.0)
        s.set(0.0, 10.0)
        cp = s.checkpoint(4.0)
        s.set(6.0, 0.0)
        # Window 4..8: 10 for 2s, 0 for 2s -> 5.
        assert s.average(cp, 8.0) == pytest.approx(5.0)

    def test_empty_window_returns_instant_value(self):
        s = TimeWeightedSignal(7.0)
        cp = s.checkpoint(3.0)
        assert s.average(cp, 3.0) == 7.0

    def test_time_backwards_rejected(self):
        s = TimeWeightedSignal(0.0)
        s.set(5.0, 1.0)
        with pytest.raises(ValueError):
            s.set(4.0, 2.0)

    @given(
        steps=st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=5.0),
                st.floats(min_value=-10.0, max_value=10.0),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_integral_matches_manual_sum(self, steps):
        s = TimeWeightedSignal(0.0)
        t = 0.0
        manual = 0.0
        value = 0.0
        for dt, v in steps:
            manual += value * dt
            t += dt
            s.set(t, v)
            value = v
        assert s.integral(t) == pytest.approx(manual, rel=1e-9, abs=1e-9)


class TestRunningMean:
    def test_mean_and_variance(self):
        rm = RunningMean()
        for x in [2.0, 4.0, 6.0]:
            rm.add(x)
        assert rm.mean == pytest.approx(4.0)
        assert rm.variance == pytest.approx(4.0)
        assert rm.std == pytest.approx(2.0)
        assert len(rm) == 3

    def test_single_observation_zero_variance(self):
        rm = RunningMean()
        rm.add(5.0)
        assert rm.mean == 5.0
        assert rm.variance == 0.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_matches_numpy(self, xs):
        import numpy as np

        rm = RunningMean()
        for x in xs:
            rm.add(x)
        assert rm.mean == pytest.approx(float(np.mean(xs)), rel=1e-9, abs=1e-6)
        if len(xs) > 1:
            assert rm.variance == pytest.approx(
                float(np.var(xs, ddof=1)), rel=1e-9, abs=1e-6
            )
