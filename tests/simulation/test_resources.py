"""Unit and property tests for fair-share resources and memory."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import (
    Environment,
    FairShareResource,
    MemoryResource,
    SimulationError,
)


@pytest.fixture()
def env():
    return Environment()


def run_jobs(env, resource, jobs):
    """Submit (start, demand) jobs; return list of (idx, finish_time)."""
    done = []

    def worker(i, start, demand, weight=1.0):
        if start > 0:
            yield env.timeout(start)
        job = resource.use(demand, weight=weight)
        yield job.event
        done.append((i, env.now))

    for i, spec in enumerate(jobs):
        env.process(worker(i, *spec))
    env.run()
    return sorted(done)


class TestFairShare:
    def test_single_job_runs_at_full_capacity(self, env):
        r = FairShareResource(env, capacity=2.0)
        done = run_jobs(env, r, [(0.0, 4.0)])
        assert done == [(0, pytest.approx(2.0))]

    def test_two_equal_jobs_share_equally(self, env):
        r = FairShareResource(env, 1.0)
        done = run_jobs(env, r, [(0.0, 1.0), (0.0, 1.0)])
        assert done == [(0, pytest.approx(2.0)), (1, pytest.approx(2.0))]

    def test_staggered_arrival_exact_times(self, env):
        # A alone 0..1 (1 unit done), then shares with B: A's 0.5 left at
        # rate 0.5 -> t=2; B then alone: 0.5 left at rate 1 -> t=2.5.
        r = FairShareResource(env, 1.0)
        done = run_jobs(env, r, [(0.0, 1.5), (1.0, 1.0)])
        assert done == [(0, pytest.approx(2.0)), (1, pytest.approx(2.5))]

    def test_weighted_sharing(self, env):
        # weight 2 vs 1: rates 2/3 and 1/3; both demand 1 ->
        # heavy at t=1.5; light got 0.5 by then, finishes 0.5 later at 2.0.
        r = FairShareResource(env, 1.0)
        done = run_jobs(env, r, [(0.0, 1.0, 2.0), (0.0, 1.0, 1.0)])
        assert done == [(0, pytest.approx(1.5)), (1, pytest.approx(2.0))]

    def test_zero_demand_completes_immediately(self, env):
        r = FairShareResource(env, 1.0)
        done = run_jobs(env, r, [(0.0, 0.0)])
        assert done == [(0, pytest.approx(0.0))]

    def test_capacity_increase_speeds_up(self, env):
        r = FairShareResource(env, 1.0)
        done = []

        def worker():
            job = r.use(2.0)
            yield job.event
            done.append(env.now)

        def booster():
            yield env.timeout(1.0)
            r.set_capacity(2.0)  # 1 unit left now served at 2/s

        env.process(worker())
        env.process(booster())
        env.run()
        assert done == [pytest.approx(1.5)]

    def test_capacity_decrease_slows_down(self, env):
        r = FairShareResource(env, 2.0)
        done = []

        def worker():
            job = r.use(4.0)
            yield job.event
            done.append(env.now)

        def throttler():
            yield env.timeout(1.0)  # 2 units done
            r.set_capacity(1.0)  # 2 left at 1/s

        env.process(worker())
        env.process(throttler())
        env.run()
        assert done == [pytest.approx(3.0)]

    def test_cancel_returns_remaining_demand(self, env):
        r = FairShareResource(env, 1.0)
        remaining = []

        def controller():
            job = r.use(10.0)
            yield env.timeout(3.0)
            remaining.append(r.cancel(job))

        env.process(controller())
        env.run()
        assert remaining == [pytest.approx(7.0)]

    def test_cancel_frees_capacity_for_others(self, env):
        r = FairShareResource(env, 1.0)
        done = []

        def victim():
            job = r.use(100.0)
            yield env.timeout(2.0)
            r.cancel(job)

        def beneficiary():
            job = r.use(3.0)
            yield job.event
            done.append(env.now)

        env.process(victim())
        env.process(beneficiary())
        env.run()
        # beneficiary: 1 unit by t=2 (rate 1/2), 2 left alone -> t=4
        assert done == [pytest.approx(4.0)]

    def test_cancel_finished_job_returns_zero(self, env):
        r = FairShareResource(env, 1.0)
        out = []

        def p():
            job = r.use(1.0)
            yield job.event
            out.append(r.cancel(job))

        env.process(p())
        env.run()
        assert out == [0.0]

    def test_invalid_arguments(self, env):
        with pytest.raises(ValueError):
            FairShareResource(env, 0.0)
        r = FairShareResource(env, 1.0)
        with pytest.raises(ValueError):
            r.use(-1.0)
        with pytest.raises(ValueError):
            r.use(1.0, weight=0.0)
        with pytest.raises(ValueError):
            r.set_capacity(-2.0)

    def test_completed_units_accounting(self, env):
        r = FairShareResource(env, 1.0)
        run_jobs(env, r, [(0.0, 2.0), (0.5, 3.0)])
        assert r.completed_units == pytest.approx(5.0)

    def test_active_jobs_signal(self, env):
        r = FairShareResource(env, 1.0)
        run_jobs(env, r, [(0.0, 2.0), (0.0, 2.0)])
        # Both active 0..4: integral = 2 * 4 = 8.
        assert r.active_jobs.integral(env.now) == pytest.approx(8.0)

    def test_utilization_tracking(self, env):
        r = FairShareResource(env, 1.0)
        cp = r.busy.checkpoint(0.0)
        done = run_jobs(env, r, [(0.0, 2.0)])
        env.run(until=4.0)
        # Busy 0..2 of 0..4.
        assert r.utilization(cp) == pytest.approx(0.5)

    def test_many_equal_jobs_finish_together(self, env):
        n = 20
        r = FairShareResource(env, 1.0)
        done = run_jobs(env, r, [(0.0, 1.0)] * n)
        assert all(t == pytest.approx(float(n)) for _, t in done)

    @given(
        demands=st.lists(
            st.floats(min_value=0.01, max_value=50.0),
            min_size=1,
            max_size=8,
        ),
        starts=st.lists(
            st.floats(min_value=0.0, max_value=10.0),
            min_size=8,
            max_size=8,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_work_conservation_property(self, demands, starts):
        """Total completion time == last-start + makespan of remaining work.

        For a work-conserving single server: the finish time of the whole
        batch equals the time the server spends busy plus idle gaps, and
        total service delivered equals total demand.
        """
        env = Environment()
        r = FairShareResource(env, 1.0)
        done = run_jobs(env, r, list(zip(starts[: len(demands)], demands)))
        assert len(done) == len(demands)
        assert r.completed_units == pytest.approx(sum(demands), rel=1e-6)
        # Busy-time integral equals total demand (capacity 1).
        assert r.busy.integral(env.now) == pytest.approx(sum(demands), rel=1e-6)

    @given(
        demands=st.lists(
            st.floats(min_value=0.05, max_value=20.0), min_size=2, max_size=6
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_simultaneous_jobs_finish_in_demand_order(self, demands):
        """With equal weights and simultaneous start, smaller demand finishes
        no later than larger demand (FairShare preserves demand order)."""
        env = Environment()
        r = FairShareResource(env, 1.0)
        done = dict(run_jobs(env, r, [(0.0, d) for d in demands]))
        order = sorted(range(len(demands)), key=lambda i: demands[i])
        finish = [done[i] for i in order]
        assert finish == sorted(finish)


class TestMemory:
    def test_allocate_release_cycle(self, env):
        m = MemoryResource(env, 100.0)
        m.allocate(60.0)
        assert m.allocated == 60.0
        assert m.overcommit == 0.0
        m.release(60.0)
        assert m.allocated == 0.0

    def test_overcommit_fraction(self, env):
        m = MemoryResource(env, 100.0)
        m.allocate(150.0)
        assert m.overcommit == pytest.approx(0.5)

    def test_pressure_callback_fired(self, env):
        seen = []
        m = MemoryResource(env, 100.0, on_pressure_change=seen.append)
        m.allocate(120.0)
        m.release(30.0)
        assert seen == [pytest.approx(0.2), pytest.approx(0.0)]

    def test_over_release_rejected(self, env):
        m = MemoryResource(env, 100.0)
        m.allocate(10.0)
        with pytest.raises(SimulationError):
            m.release(20.0)

    def test_peak_tracking(self, env):
        m = MemoryResource(env, 100.0)
        m.allocate(40.0)
        m.allocate(40.0)
        m.release(70.0)
        m.allocate(10.0)
        assert m.peak == pytest.approx(80.0)

    def test_negative_amounts_rejected(self, env):
        m = MemoryResource(env, 100.0)
        with pytest.raises(ValueError):
            m.allocate(-1.0)
        with pytest.raises(ValueError):
            m.release(-1.0)
