"""Edge-case tests: engine/resource interactions under interruption,
cancellation and heavy concurrency."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import (
    Environment,
    FairShareResource,
    Interrupt,
    Network,
    TransferFailed,
)


class TestInterruptResourceInteraction:
    def test_interrupted_waiter_cancels_its_job(self):
        """A process interrupted while waiting on a resource should be able
        to cancel the job so capacity returns to others."""
        env = Environment()
        r = FairShareResource(env, 1.0)
        finish = []

        def victim():
            job = r.use(100.0)
            try:
                yield job.event
            except Interrupt:
                r.cancel(job)

        def bystander():
            job = r.use(2.0)
            yield job.event
            finish.append(env.now)

        v = env.process(victim())
        env.process(bystander())

        def killer():
            yield env.timeout(1.0)
            v.interrupt()

        env.process(killer())
        env.run()
        # Bystander: 0.5 done at t=1 (shared), then full speed: 1.5 more.
        assert finish == [pytest.approx(2.5)]

    def test_uncancelled_job_of_dead_process_still_completes(self):
        """If the interrupted process does NOT cancel, the job keeps
        consuming capacity — a deliberate leak the caller owns."""
        env = Environment()
        r = FairShareResource(env, 1.0)

        def victim():
            r.use(3.0)
            try:
                yield env.timeout(100.0)
            except Interrupt:
                pass

        v = env.process(victim())

        def killer():
            yield env.timeout(0.5)
            v.interrupt()

        env.process(killer())
        env.run()
        assert r.completed_units == pytest.approx(3.0)


class TestNetworkEdgeCases:
    def test_many_concurrent_transfers_conserve_bytes(self):
        env = Environment()
        net = Network(env, bandwidth_bps=80e6, latency_s=0.0)
        sizes = [1e5 * (i + 1) for i in range(20)]

        def sender(i, size):
            yield from net.transfer(i, "sink", size)

        for i, size in enumerate(sizes):
            env.process(sender(i, size))
        env.run()
        assert net.bytes_transferred == pytest.approx(sum(sizes))
        assert net.messages_sent == 20

    def test_transfer_failure_does_not_count_bytes(self):
        env = Environment()
        net = Network(env, bandwidth_bps=8e6, latency_s=0.0)
        net.set_node_up("dst", False)

        def sender():
            with pytest.raises(TransferFailed):
                yield from net.transfer("src", "dst", 1e6)

        env.process(sender())
        env.run()
        assert net.bytes_transferred == 0.0

    @given(
        sizes=st.lists(
            st.floats(min_value=1e3, max_value=1e7), min_size=1, max_size=10
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_makespan_equals_total_bytes_over_bandwidth(self, sizes):
        """Work conservation on the shared medium: with simultaneous
        starts and no latency, everything completes exactly when the
        total volume has crossed the link."""
        env = Environment()
        net = Network(env, bandwidth_bps=80e6, latency_s=0.0)

        def sender(i, size):
            yield from net.transfer(i, "sink", size)

        for i, size in enumerate(sizes):
            env.process(sender(i, size))
        env.run()
        assert env.now == pytest.approx(sum(sizes) / 10e6, rel=1e-6)


class TestDeterminismUnderConcurrency:
    def test_complex_scenario_reproducible(self):
        def scenario():
            env = Environment()
            cpu = FairShareResource(env, 1.0)
            disk = FairShareResource(env, 10.0)
            net = Network(env, bandwidth_bps=80e6, latency_s=1e-3)
            log = []

            def worker(i):
                yield env.timeout(i * 0.1)
                job = disk.use(float(i + 1))
                yield job.event
                yield from net.transfer(i, "hub", 1e5 * (i + 1))
                job = cpu.use(0.5 + 0.1 * i)
                yield job.event
                log.append((i, round(env.now, 9)))

            for i in range(12):
                env.process(worker(i))
            env.run()
            return log

        assert scenario() == scenario()
