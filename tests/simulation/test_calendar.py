"""Unit tests for the calendar-queue scheduler backend."""

import random

import pytest

from repro.simulation import CalendarQueue, SeqHeap


def drain(q):
    out = []
    while q:
        out.append(q.pop())
    return out


class TestOrdering:
    def test_pops_in_when_prio_seq_order(self):
        rng = random.Random(7)
        cal = CalendarQueue()
        ref = SeqHeap()
        for i in range(2000):
            when = rng.choice([rng.random() * 50, rng.random() * 0.01])
            prio = rng.choice([0, 1])
            cal.push(f"p{i}", when, prio)
            ref.push(f"p{i}", when, prio)
        got = drain(cal)
        want = [ref.pop() for _ in range(len(ref))]
        assert got == want

    def test_fifo_among_equal_keys(self):
        cal = CalendarQueue()
        for i in range(50):
            cal.push(i, 3.0, 1)
        assert [entry[-1] for entry in drain(cal)] == list(range(50))

    def test_urgent_priority_beats_normal_at_same_time(self):
        cal = CalendarQueue()
        cal.push("normal", 1.0, 1)
        cal.push("urgent", 1.0, 0)
        assert cal.pop()[-1] == "urgent"
        assert cal.pop()[-1] == "normal"

    def test_interleaved_push_pop_matches_reference(self):
        rng = random.Random(23)
        cal = CalendarQueue()
        ref = SeqHeap()
        clock = 0.0
        for i in range(3000):
            if ref and rng.random() < 0.45:
                got, want = cal.pop(), ref.pop()
                assert got == want
                clock = got[0]
            else:
                # Future-only pushes, like a simulation clock produces.
                when = clock + rng.random() * rng.choice([0.01, 1.0, 100.0])
                prio = rng.choice([0, 1])
                cal.push(i, when, prio)
                ref.push(i, when, prio)
        while ref:
            assert cal.pop() == ref.pop()
        assert not cal


class TestInfinity:
    def test_inf_pops_after_every_finite_event(self):
        cal = CalendarQueue()
        cal.push("forever", float("inf"))
        cal.push("soon", 1.0)
        cal.push("later", 1e9)
        assert [e[-1] for e in drain(cal)] == ["soon", "later", "forever"]

    def test_peek_when_on_inf_only(self):
        cal = CalendarQueue()
        cal.push("forever", float("inf"))
        assert cal.peek_when() == float("inf")
        assert len(cal) == 1


class TestEmpty:
    def test_pop_empty_raises_indexerror(self):
        with pytest.raises(IndexError):
            CalendarQueue().pop()

    def test_peek_when_empty_is_inf(self):
        assert CalendarQueue().peek_when() == float("inf")

    def test_bool_and_len(self):
        cal = CalendarQueue()
        assert not cal and len(cal) == 0
        cal.push("x", 1.0)
        assert cal and len(cal) == 1

    def test_non_positive_width_rejected(self):
        with pytest.raises(ValueError):
            CalendarQueue(width=0.0)
        with pytest.raises(ValueError):
            CalendarQueue(width=-1.0)


class TestResizePolicy:
    def test_grows_with_population(self):
        cal = CalendarQueue()
        rng = random.Random(3)
        for i in range(5000):
            cal.push(i, rng.random() * 100.0)
        assert cal.nbuckets > 8
        assert cal.n_resizes > 0

    def test_width_adapts_to_observed_gaps(self):
        cal = CalendarQueue(width=1.0)
        # Events microseconds apart: the 1.0 s default would pile them
        # all into one bucket; a resize must tighten the width.
        for i in range(5000):
            cal.push(i, i * 1e-6)
        assert cal.width < 1.0

    def test_shrinks_when_drained(self):
        cal = CalendarQueue()
        rng = random.Random(5)
        for i in range(5000):
            cal.push(i, rng.random() * 100.0)
        grown = cal.nbuckets
        out = drain(cal)
        assert len(out) == 5000
        assert cal.nbuckets < grown  # a drain-time scan shrank the ring

    def test_same_time_burst_does_not_resize_forever(self):
        cal = CalendarQueue()
        for i in range(5000):
            cal.push(i, 42.0)
        resizes_before = cal.n_resizes
        assert [e[-1] for e in drain(cal)] == list(range(5000))
        # Same-time bursts cannot be split by any width; the occupancy
        # trigger must not thrash on them.
        assert cal.n_resizes <= resizes_before + 1


class TestSparseYears:
    def test_far_future_wraparound(self):
        """Events several ring-laps ahead must still pop in order."""
        cal = CalendarQueue(width=1.0)  # year = 8 s initially
        whens = [3.0, 80.0, 800.0, 8000.0, 80000.0]
        for i, when in enumerate(whens):
            cal.push(i, when)
        assert [e[0] for e in drain(cal)] == whens

    def test_push_behind_scan_position_rewinds(self):
        cal = CalendarQueue(width=1.0)
        cal.push("far", 1000.0)
        assert cal.peek_when() == 1000.0  # scan fast-forwarded
        cal.push("near", 1.0)  # behind the scan position
        assert cal.pop()[-1] == "near"
        assert cal.pop()[-1] == "far"
