"""Tests for randomized failure-schedule generation (repro.simulation.chaos)."""

import math

import pytest

from repro.simulation import ChaosConfig, FailureSchedule, generate_chaos_schedule
from repro.simulation.chaos import FaultInterval, generate_fault_intervals


def _down_intervals(config, n_nodes):
    return generate_fault_intervals(config, n_nodes)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        cfg = ChaosConfig(seed=42, crash_rate=0.01)
        a = generate_chaos_schedule(cfg, 8)
        b = generate_chaos_schedule(cfg, 8)
        assert a.transitions == b.transitions

    def test_different_seeds_differ(self):
        base = [
            generate_chaos_schedule(ChaosConfig(seed=s, crash_rate=0.01), 8).transitions
            for s in range(5)
        ]
        assert len({tuple(t) for t in base}) > 1

    def test_node_count_changes_schedule(self):
        cfg = ChaosConfig(seed=1, crash_rate=0.01)
        small = generate_chaos_schedule(cfg, 2)
        large = generate_chaos_schedule(cfg, 12)
        assert len(large) >= len(small)


class TestScheduleShape:
    def test_zero_rate_empty(self):
        cfg = ChaosConfig(seed=0, crash_rate=0.0)
        assert len(generate_chaos_schedule(cfg, 8)) == 0

    def test_rate_scales_fault_volume(self):
        counts = []
        for rate in (0.001, 0.01, 0.05):
            total = sum(
                len(_down_intervals(ChaosConfig(seed=s, crash_rate=rate), 8))
                for s in range(5)
            )
            counts.append(total)
        assert counts[0] < counts[1] < counts[2]

    def test_intervals_inside_horizon(self):
        cfg = ChaosConfig(seed=3, crash_rate=0.02, horizon_s=300.0, start_s=10.0)
        for iv in _down_intervals(cfg, 8):
            assert iv.start >= cfg.start_s
            assert iv.start < cfg.horizon_s

    def test_per_node_intervals_disjoint(self):
        cfg = ChaosConfig(seed=7, crash_rate=0.05)
        by_node = {}
        for iv in _down_intervals(cfg, 8):
            by_node.setdefault(iv.node_id, []).append(iv)
        for ivs in by_node.values():
            ivs.sort(key=lambda iv: iv.start)
            for a, b in zip(ivs, ivs[1:]):
                assert a.end < b.start

    def test_transitions_alternate_per_node(self):
        cfg = ChaosConfig(seed=9, crash_rate=0.03)
        schedule = generate_chaos_schedule(cfg, 6)
        state = {}
        for _, nid, up in schedule.sorted():
            assert state.get(nid, True) != up  # kill when up, recover when down
            state[nid] = up


class TestFaultKinds:
    def test_permanent_deaths(self):
        cfg = ChaosConfig(
            seed=5, crash_rate=0.02, permanent_prob=1.0, min_live_nodes=1
        )
        intervals = _down_intervals(cfg, 6)
        assert intervals, "expected faults at this rate"
        assert all(iv.permanent for iv in intervals)
        # At most one interval per node: death is final.
        nodes = [iv.node_id for iv in intervals]
        assert len(nodes) == len(set(nodes))

    def test_flapping_produces_short_cycles(self):
        cfg = ChaosConfig(
            seed=5,
            crash_rate=0.01,
            flap_prob=1.0,
            permanent_prob=0.0,
            correlated_prob=0.0,
            flap_period_s=2.0,
            flap_cycles=4,
        )
        intervals = _down_intervals(cfg, 4)
        assert intervals
        for iv in intervals:
            assert iv.end - iv.start <= 2.0 + 1e-9

    def test_correlated_failures_share_interval(self):
        cfg = ChaosConfig(
            seed=2,
            crash_rate=0.01,
            correlated_prob=1.0,
            correlated_extra=2,
            flap_prob=0.0,
            permanent_prob=0.0,
        )
        intervals = _down_intervals(cfg, 8)
        spans = {}
        for iv in intervals:
            spans.setdefault((iv.start, iv.end), set()).add(iv.node_id)
        assert any(len(nodes) >= 2 for nodes in spans.values())


class TestMinLiveFloor:
    @pytest.mark.parametrize("seed", range(8))
    def test_never_below_floor(self, seed):
        n_nodes, min_live = 6, 2
        cfg = ChaosConfig(
            seed=seed,
            crash_rate=0.1,  # brutal: would sink the cluster unchecked
            mean_downtime_s=120.0,
            permanent_prob=0.3,
            min_live_nodes=min_live,
        )
        intervals = _down_intervals(cfg, n_nodes)
        events = []
        for iv in intervals:
            events.append((iv.start, 1))
            if not iv.permanent:
                events.append((iv.end, -1))
        down = 0
        for _, delta in sorted(events):
            down += delta
            assert n_nodes - down >= min_live

    def test_floor_equal_to_cluster_disables_faults(self):
        cfg = ChaosConfig(seed=1, crash_rate=0.1, min_live_nodes=4)
        assert _down_intervals(cfg, 4) == []


class TestValidation:
    def test_bad_horizon(self):
        with pytest.raises(ValueError):
            ChaosConfig(horizon_s=1.0, start_s=5.0)

    def test_bad_rate(self):
        with pytest.raises(ValueError):
            ChaosConfig(crash_rate=-0.1)

    def test_bad_min_live(self):
        with pytest.raises(ValueError):
            ChaosConfig(min_live_nodes=0)

    def test_bad_probability(self):
        with pytest.raises(ValueError):
            ChaosConfig(flap_prob=1.5)

    def test_no_nodes_rejected(self):
        with pytest.raises(ValueError):
            generate_fault_intervals(ChaosConfig(), 0)


class TestFailureScheduleHelpers:
    def test_merge_and_len(self):
        a = FailureSchedule().kill_at(1.0, 0)
        b = FailureSchedule().recover_at(2.0, 0).kill_at(3.0, 1)
        merged = a.merge(b)
        assert merged is a
        assert len(a) == 3
        assert a.node_ids() == {0, 1}

    def test_fault_interval_permanent(self):
        assert FaultInterval(0, 1.0, math.inf).permanent
        assert not FaultInterval(0, 1.0, 2.0).permanent
