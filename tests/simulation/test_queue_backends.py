"""Engine edge cases pinned identically across both queue backends.

Every test runs under ``queue="heap"`` and ``queue="calendar"`` — the
calendar queue is only a legal scheduler if the *observable* engine
behavior (exceptions, peek values, interrupt semantics, firing order)
is indistinguishable from the heap's.
"""

import random

import pytest

from repro.simulation import EmptySchedule, Environment, Interrupt

BACKENDS = ["heap", "calendar"]


@pytest.fixture(params=BACKENDS)
def env(request):
    return Environment(queue=request.param)


class TestBackendSelection:
    def test_queue_impl_property(self):
        assert Environment(queue="heap").queue_impl == "heap"
        assert Environment(queue="calendar").queue_impl == "calendar"
        assert Environment().queue_impl == "heap"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            Environment(queue="fibonacci")


class TestDrainedQueue:
    def test_step_on_fresh_env_raises_empty_schedule(self, env):
        with pytest.raises(EmptySchedule):
            env.step()

    def test_step_after_draining_raises_empty_schedule(self, env):
        env.timeout(1.0)
        env.step()
        with pytest.raises(EmptySchedule):
            env.step()

    def test_peek_on_fresh_env_is_inf(self, env):
        assert env.peek() == float("inf")

    def test_peek_after_draining_is_inf(self, env):
        env.timeout(2.0)
        env.run()
        assert env.peek() == float("inf")
        assert env.now == 2.0

    def test_run_on_empty_env_is_a_noop(self, env):
        env.run()
        assert env.now == 0.0

    def test_run_until_past_last_event_advances_to_horizon(self, env):
        env.timeout(1.0)
        env.run(until=50.0)
        assert env.now == 50.0


class TestFarFutureTimeouts:
    def test_bucket_wraparound_fires_in_order(self, env):
        """Timeouts far beyond any calendar year must fire in order.

        The initial ring is 8 buckets of 1 s — 8 s per lap — so these
        horizons are thousands of laps apart and exercise the sparse
        full-lap fallback (a plain no-op on the heap backend).
        """
        fired = []

        def waiter(tag, delay):
            yield env.timeout(delay)
            fired.append((tag, env.now))

        for tag, delay in [("c", 9e4), ("a", 0.5), ("d", 9e6), ("b", 90.0)]:
            env.process(waiter(tag, delay))
        env.run()
        assert fired == [
            ("a", 0.5), ("b", 90.0), ("c", 9e4), ("d", 9e6)
        ]

    def test_near_event_scheduled_after_far_peek(self, env):
        """Peeking a far-future event then scheduling a near one must not
        skip the near one (the calendar scan has to rewind)."""
        fired = []

        def far():
            yield env.timeout(1000.0)
            fired.append(("far", env.now))

        def spawner():
            yield env.timeout(0.0)
            assert env.peek() == pytest.approx(1000.0)

            def near():
                yield env.timeout(1.0)
                fired.append(("near", env.now))

            env.process(near())

        env.process(far())
        env.process(spawner())
        env.run()
        assert fired == [("near", 1.0), ("far", 1000.0)]


class TestInterruptWhileScheduled:
    def test_interrupting_a_sleeping_process(self, env):
        """An interrupt delivered while the victim's timeout is still in
        the queue: the victim wakes early and the stale timeout firing
        must be a harmless no-op."""
        story = []

        def victim():
            try:
                yield env.timeout(100.0)
                story.append("slept-through")
            except Interrupt as exc:
                story.append(("interrupted", env.now, exc.cause))
            yield env.timeout(1.0)
            story.append(("resumed", env.now))

        v = env.process(victim())

        def killer():
            yield env.timeout(5.0)
            v.interrupt("wake up")

        env.process(killer())
        env.run()
        assert story == [("interrupted", 5.0, "wake up"), ("resumed", 6.0)]
        assert env.now == 100.0  # the stale timeout still fired (no-op)

    def test_interrupt_then_far_future_reschedule(self, env):
        """The interrupted process immediately re-sleeps far in the
        future — the calendar must file the new timeout correctly while
        the orphaned one is still pending."""
        fired = []

        def victim():
            try:
                yield env.timeout(10.0)
            except Interrupt:
                yield env.timeout(5000.0)
                fired.append(env.now)

        v = env.process(victim())

        def killer():
            yield env.timeout(1.0)
            v.interrupt()

        env.process(killer())
        env.run()
        assert fired == [5001.0]


class TestCrossBackendEquivalence:
    def _chain_run(self, queue, seed, n_chains=60, chain_len=25):
        rng = random.Random(seed)
        delays = [
            [rng.random() * rng.choice([0.01, 1.0, 50.0])
             for _ in range(chain_len)]
            for _ in range(n_chains)
        ]
        env = Environment(queue=queue)
        record = []

        def chain(cid, ds):
            for hop, d in enumerate(ds):
                yield env.timeout(d)
                record.append((cid, hop, env.now))

        for cid, ds in enumerate(delays):
            env.process(chain(cid, ds))
        env.run()
        return record, next(env._seq), env.now

    @pytest.mark.parametrize("seed", [1, 17, 99])
    def test_firing_logs_byte_identical(self, seed):
        heap = self._chain_run("heap", seed)
        calendar = self._chain_run("calendar", seed)
        assert heap == calendar

    def test_step_driver_matches_run_driver_on_calendar(self):
        """The public step() path and the inlined run() drain must agree
        on the calendar backend just as they do on the heap."""

        def collect(drive):
            env = Environment(queue="calendar")
            record = []

            def chain(cid):
                for hop in range(10):
                    yield env.timeout(0.1 * ((cid + hop) % 7) + 0.01)
                    record.append((cid, hop, env.now))

            for cid in range(20):
                env.process(chain(cid))
            drive(env)
            return record

        def step_all(env):
            while True:
                try:
                    env.step()
                except EmptySchedule:
                    break

        assert collect(step_all) == collect(lambda env: env.run())
