"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.simulation import (
    EmptySchedule,
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


@pytest.fixture()
def env():
    return Environment()


class TestEnvironmentBasics:
    def test_initial_time_defaults_to_zero(self, env):
        assert env.now == 0.0

    def test_initial_time_override(self):
        assert Environment(initial_time=5.0).now == 5.0

    def test_run_until_number_advances_clock(self, env):
        env.run(until=10.0)
        assert env.now == 10.0

    def test_run_backwards_rejected(self, env):
        env.run(until=5.0)
        with pytest.raises(ValueError):
            env.run(until=1.0)

    def test_step_on_empty_queue_raises(self, env):
        with pytest.raises(EmptySchedule):
            env.step()

    def test_peek_empty_is_inf(self, env):
        assert env.peek() == float("inf")

    def test_peek_returns_next_event_time(self, env):
        env.timeout(3.0)
        assert env.peek() == 3.0


class TestTimeout:
    def test_timeout_fires_at_right_time(self, env):
        times = []

        def p():
            yield env.timeout(2.5)
            times.append(env.now)

        env.process(p())
        env.run()
        assert times == [2.5]

    def test_timeout_value_passed_through(self, env):
        got = []

        def p():
            v = yield env.timeout(1.0, value="hello")
            got.append(v)

        env.process(p())
        env.run()
        assert got == ["hello"]

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_zero_delay_fires_at_current_time(self, env):
        times = []

        def p():
            yield env.timeout(0.0)
            times.append(env.now)

        env.process(p())
        env.run()
        assert times == [0.0]

    def test_same_time_events_fire_in_scheduling_order(self, env):
        order = []

        def p(name):
            yield env.timeout(1.0)
            order.append(name)

        for name in "abcd":
            env.process(p(name))
        env.run()
        assert order == list("abcd")


class TestEvent:
    def test_manual_succeed_delivers_value(self, env):
        evt = env.event()
        got = []

        def waiter():
            got.append((yield evt))

        def firer():
            yield env.timeout(1.0)
            evt.succeed(42)

        env.process(waiter())
        env.process(firer())
        env.run()
        assert got == [42]

    def test_double_trigger_raises(self, env):
        evt = env.event()
        evt.succeed(1)
        with pytest.raises(SimulationError):
            evt.succeed(2)

    def test_fail_requires_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_failed_event_raises_in_waiter(self, env):
        evt = env.event()
        caught = []

        def waiter():
            try:
                yield evt
            except RuntimeError as exc:
                caught.append(str(exc))

        def firer():
            yield env.timeout(1.0)
            evt.fail(RuntimeError("boom"))

        env.process(waiter())
        env.process(firer())
        env.run()
        assert caught == ["boom"]

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            env.event().value

    def test_yield_already_processed_event_resumes_immediately(self, env):
        evt = env.event()
        evt.succeed("early")
        got = []

        def p():
            yield env.timeout(5.0)
            got.append((yield evt))
            got.append(env.now)

        env.process(p())
        env.run()
        assert got == ["early", 5.0]


class TestProcess:
    def test_return_value_via_run_until(self, env):
        def p():
            yield env.timeout(1.0)
            return "result"

        assert env.run(until=env.process(p())) == "result"

    def test_process_is_event_joinable(self, env):
        def child(d):
            yield env.timeout(d)
            return d

        def parent():
            results = yield env.all_of([env.process(child(d)) for d in (3, 1, 2)])
            return sorted(results.values())

        assert env.run(until=env.process(parent())) == [1, 2, 3]

    def test_exception_in_waited_process_propagates(self, env):
        def bad():
            yield env.timeout(1.0)
            raise ValueError("broken child")

        def parent():
            with pytest.raises(ValueError, match="broken child"):
                yield env.process(bad())
            return "handled"

        assert env.run(until=env.process(parent())) == "handled"

    def test_unhandled_exception_crashes_run(self, env):
        def bad():
            yield env.timeout(1.0)
            raise ValueError("unhandled")

        env.process(bad())
        with pytest.raises(ValueError, match="unhandled"):
            env.run()

    def test_non_generator_rejected(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_yield_non_event_rejected(self, env):
        def bad():
            yield 42

        env.process(bad())
        with pytest.raises(TypeError):
            env.run()

    def test_is_alive_lifecycle(self, env):
        def p():
            yield env.timeout(2.0)

        proc = env.process(p())
        assert proc.is_alive
        env.run()
        assert not proc.is_alive

    def test_run_until_event_never_firing_raises(self, env):
        evt = env.event()
        with pytest.raises(SimulationError):
            env.run(until=evt)


class TestInterrupt:
    def test_interrupt_wakes_sleeping_process(self, env):
        log = []

        def sleeper():
            try:
                yield env.timeout(100.0)
                log.append("slept full")
            except Interrupt as i:
                log.append(("interrupted", env.now, i.cause))

        def interrupter(target):
            yield env.timeout(1.0)
            target.interrupt(cause="wake up")

        target = env.process(sleeper())
        env.process(interrupter(target))
        env.run()
        assert log == [("interrupted", 1.0, "wake up")]

    def test_interrupted_process_can_continue(self, env):
        log = []

        def sleeper():
            try:
                yield env.timeout(100.0)
            except Interrupt:
                pass
            yield env.timeout(1.0)
            log.append(env.now)

        def interrupter(target):
            yield env.timeout(2.0)
            target.interrupt()

        target = env.process(sleeper())
        env.process(interrupter(target))
        env.run()
        assert log == [3.0]

    def test_interrupt_finished_process_raises(self, env):
        def quick():
            yield env.timeout(0.5)

        def late(target):
            yield env.timeout(1.0)
            with pytest.raises(SimulationError):
                target.interrupt()

        target = env.process(quick())
        env.process(late(target))
        env.run()

    def test_self_interrupt_rejected(self, env):
        def p():
            with pytest.raises(SimulationError):
                env.active_process.interrupt()
            yield env.timeout(0)

        env.process(p())
        env.run()

    def test_stale_event_after_interrupt_does_not_resume(self, env):
        """The abandoned timeout must not re-wake the process later."""
        log = []

        def sleeper():
            try:
                yield env.timeout(10.0)
            except Interrupt:
                log.append(("intr", env.now))
            yield env.timeout(50.0)
            log.append(("woke", env.now))

        def interrupter(target):
            yield env.timeout(1.0)
            target.interrupt()

        target = env.process(sleeper())
        env.process(interrupter(target))
        env.run()
        assert log == [("intr", 1.0), ("woke", 51.0)]


class TestConditions:
    def test_any_of_returns_on_first(self, env):
        def p():
            result = yield env.any_of([env.timeout(5, "slow"), env.timeout(1, "fast")])
            return (env.now, list(result.values()))

        now, values = env.run(until=env.process(p()))
        assert now == 1.0
        assert values == ["fast"]

    def test_all_of_waits_for_all(self, env):
        def p():
            result = yield env.all_of([env.timeout(5, "a"), env.timeout(1, "b")])
            return (env.now, sorted(result.values()))

        now, values = env.run(until=env.process(p()))
        assert now == 5.0
        assert values == ["a", "b"]

    def test_empty_all_of_fires_immediately(self, env):
        def p():
            yield env.all_of([])
            return env.now

        assert env.run(until=env.process(p())) == 0.0

    def test_condition_with_failed_event_fails(self, env):
        evt = env.event()

        def firer():
            yield env.timeout(1.0)
            evt.fail(RuntimeError("inner"))

        def p():
            with pytest.raises(RuntimeError, match="inner"):
                yield env.all_of([evt, env.timeout(10.0)])
            return "ok"

        env.process(firer())
        assert env.run(until=env.process(p())) == "ok"

    def test_cross_environment_event_rejected(self, env):
        other = Environment()
        with pytest.raises(ValueError):
            env.all_of([Event(other)])


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def build_and_run():
            env = Environment()
            trace = []

            def worker(i):
                yield env.timeout(i * 0.1)
                for k in range(3):
                    yield env.timeout(0.37)
                    trace.append((round(env.now, 9), i, k))

            for i in range(5):
                env.process(worker(i))
            env.run()
            return trace

        assert build_and_run() == build_and_run()
