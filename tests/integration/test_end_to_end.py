"""Full-stack integration: real corpus -> real pipeline -> real profiles
-> distributed simulation."""

import pytest

from repro.core import DistributedQASystem, Strategy, SystemConfig
from repro.corpus import CorpusConfig, generate_corpus, generate_questions
from repro.nlp import EntityRecognizer
from repro.qa import CostModel, QAPipeline, profile_question
from repro.retrieval import IndexedCorpus


@pytest.fixture(scope="module")
def stack():
    corpus = generate_corpus(
        CorpusConfig(n_collections=4, docs_per_collection=15, vocab_size=500,
                     seed=77)
    )
    recognizer = EntityRecognizer(
        corpus.knowledge.gazetteer(),
        extra_nationalities=corpus.knowledge.nationalities,
    )
    pipeline = QAPipeline(IndexedCorpus(corpus), recognizer)
    questions = generate_questions(corpus, max_questions=8, seed=1)
    return pipeline, questions


class TestRealProfilesThroughSimulation:
    def test_real_profile_executes_on_cluster(self, stack):
        pipeline, questions = stack
        model = CostModel.default()
        prof = profile_question(pipeline, questions[0].text, model,
                                qid=questions[0].qid)
        system = DistributedQASystem(SystemConfig(n_nodes=4, strategy=Strategy.DQA))
        report = system.run_workload([prof])
        r = report.results[0]
        assert r.response_time > 0
        assert r.module_times["PR"] > 0

    def test_distribution_speeds_up_real_question(self, stack):
        pipeline, questions = stack
        model = CostModel.default()
        prof = profile_question(pipeline, questions[1].text, model)
        t1 = DistributedQASystem(
            SystemConfig(n_nodes=1, strategy=Strategy.DQA)
        ).run_workload([prof]).results[0].response_time
        t4 = DistributedQASystem(
            SystemConfig(n_nodes=4, strategy=Strategy.DQA)
        ).run_workload([prof]).results[0].response_time
        assert t4 < t1

    def test_pr_width_bounded_by_collections(self, stack):
        pipeline, questions = stack
        model = CostModel.default()
        prof = profile_question(pipeline, questions[2].text, model)
        system = DistributedQASystem(SystemConfig(n_nodes=8, strategy=Strategy.DQA))
        r = system.run_workload([prof]).results[0]
        assert r.pr_partition_width <= len(prof.collections)

    def test_batch_of_real_questions(self, stack):
        pipeline, questions = stack
        model = CostModel.default()
        profiles = [
            profile_question(pipeline, q.text, model, qid=q.qid)
            for q in questions[:6]
        ]
        system = DistributedQASystem(SystemConfig(n_nodes=4, strategy=Strategy.DQA))
        report = system.run_workload(profiles)
        assert report.n_questions == 6
        assert report.throughput_qpm > 0
