"""Integration tests for the chaos campaign and graceful degradation.

The headline guarantees under test:

* **question conservation** — every admitted question is either
  completed, accounted as lost, or still in flight, in every campaign
  cell, at any fault rate;
* **determinism** — same RNG seed + same chaos schedule produces an
  identical trace event sequence and an identical workload report;
* **graceful degradation** — a question whose host dies is re-admitted
  at the front end (up to the retry budget) instead of silently
  vanishing, and its recovery latency is recorded.
"""

import pytest

from repro.core import (
    DistributedQASystem,
    PartitioningStrategy,
    Strategy,
    SystemConfig,
)
from repro.experiments.chaos_campaign import (
    detection_latencies,
    format_campaign,
    run_campaign,
    run_campaign_cell,
)
from repro.simulation import FailureSchedule
from repro.workload import failure_accounting, trec_mix_profiles


class TestCampaignAccounting:
    def test_every_cell_balances(self):
        cells = run_campaign(
            n_nodes=4,
            n_questions=6,
            strategies=[PartitioningStrategy.SEND, PartitioningStrategy.RECV],
            fault_rates=(0.0, 0.01),
            seed=7,
        )
        assert len(cells) == 4
        for cell in cells:
            acc = cell.accounting
            assert acc.balanced
            assert acc.admitted == 6
            assert acc.completed + acc.lost + acc.in_flight == acc.admitted

    def test_zero_fault_rate_loses_nothing(self):
        cells = run_campaign(
            n_nodes=4,
            n_questions=6,
            strategies=[PartitioningStrategy.ISEND],
            fault_rates=(0.0,),
            seed=7,
        )
        (cell,) = cells
        assert cell.injected_kills == 0
        assert cell.accounting.lost == 0
        assert cell.accounting.retries == 0
        assert cell.accounting.completed == 6

    def test_format_campaign_renders_all_cells(self):
        cells = run_campaign(
            n_nodes=4,
            n_questions=4,
            strategies=[PartitioningStrategy.SEND],
            fault_rates=(0.0, 0.01),
            seed=3,
        )
        text = format_campaign(cells)
        assert text.count("SEND") == len(cells)
        assert "fault rate" in text


class TestDeterminism:
    def test_same_seed_identical_cell_and_trace(self):
        runs = [
            run_campaign_cell(
                PartitioningStrategy.RECV,
                0.02,
                n_nodes=4,
                n_questions=8,
                seed=5,
                trace=True,
            )
            for _ in range(2)
        ]
        (cell_a, sys_a), (cell_b, sys_b) = runs
        assert cell_a == cell_b
        assert sys_a.failures.log == sys_b.failures.log
        assert sys_a.monitoring.membership_log == sys_b.monitoring.membership_log
        assert sys_a.tracer.events  # the traced run actually traced
        assert sys_a.tracer.events == sys_b.tracer.events

    def test_same_seed_identical_report_fields(self):
        reports = []
        for _ in range(2):
            _, system = run_campaign_cell(
                PartitioningStrategy.SEND,
                0.015,
                n_nodes=4,
                n_questions=6,
                seed=9,
            )
            r = system.last_report
            reports.append(
                (
                    r.makespan_s,
                    r.n_admitted,
                    r.n_completed,
                    r.n_lost,
                    r.n_retries,
                    tuple(r.recovery_latencies_s),
                    tuple(sorted(p.response_time for p in r.results)),
                )
            )
        assert reports[0] == reports[1]

    def test_different_seed_differs(self):
        cell_a, _ = run_campaign_cell(
            PartitioningStrategy.SEND, 0.02, n_nodes=4, n_questions=6, seed=1
        )
        cell_b, _ = run_campaign_cell(
            PartitioningStrategy.SEND, 0.02, n_nodes=4, n_questions=6, seed=2
        )
        assert cell_a != cell_b


class TestGracefulDegradation:
    def _run_with_host_death(self, retry_budget):
        # Two nodes, DNS placement (no migration): the question lands on
        # node 0 and node 0 dies mid-question.
        system = DistributedQASystem(
            SystemConfig(
                n_nodes=2,
                strategy=Strategy.DNS,
                seed=3,
                question_retry_budget=retry_budget,
            )
        )
        system.failures.apply(FailureSchedule().kill_at(2.0, 0))
        profiles = trec_mix_profiles(1, seed=3)
        report = system.run_workload(profiles, [0.0])
        return report

    def test_host_death_readmits_question(self):
        report = self._run_with_host_death(retry_budget=2)
        assert report.n_retries >= 1
        assert report.n_lost == 0
        assert report.n_completed == 1
        assert report.accounted
        assert report.recovery_latencies_s
        assert report.mean_recovery_latency_s > 0.0

    def test_zero_budget_accounts_loss(self):
        report = self._run_with_host_death(retry_budget=0)
        assert report.n_retries == 0
        assert report.n_lost == 1
        assert report.n_completed == 0
        assert report.accounted
        acc = failure_accounting(report)
        assert acc.balanced
        assert acc.loss_rate == pytest.approx(1.0)

    def test_unbalanced_campaign_raises(self, monkeypatch):
        from repro.experiments import chaos_campaign as cc

        real = cc.run_campaign_cell

        def sabotage(*args, **kwargs):
            cell, system = real(*args, **kwargs)
            bad = cc.FailureAccounting(
                admitted=cell.accounting.admitted + 1,
                completed=cell.accounting.completed,
                lost=cell.accounting.lost,
                in_flight=cell.accounting.in_flight,
                retries=cell.accounting.retries,
                mean_recovery_latency_s=0.0,
            )
            from dataclasses import replace

            return replace(cell, accounting=bad), system

        monkeypatch.setattr(cc, "run_campaign_cell", sabotage)
        with pytest.raises(RuntimeError, match="unaccounted"):
            cc.run_campaign(
                n_nodes=4,
                n_questions=2,
                strategies=[PartitioningStrategy.SEND],
                fault_rates=(0.0,),
                seed=1,
            )


class TestDetectionLatencies:
    def test_matches_kill_to_following_leave(self):
        injector = [(10.0, 1, False), (40.0, 1, True), (60.0, 2, False)]
        membership = [(13.5, 1, False), (41.0, 1, True), (63.0, 2, False)]
        assert detection_latencies(injector, membership) == [3.5, 3.0]

    def test_flap_without_leave_contributes_nothing(self):
        injector = [(10.0, 1, False), (10.5, 1, True)]
        assert detection_latencies(injector, []) == []

    def test_leave_before_kill_not_matched(self):
        injector = [(10.0, 1, False)]
        membership = [(5.0, 1, False)]
        assert detection_latencies(injector, membership) == []


class TestPartitionAbortExport:
    def test_importable_from_core(self):
        # Regression: PartitionAbort was in partitioning.__all__ but
        # missing from repro.core's public surface.
        import repro.core

        assert "PartitionAbort" in repro.core.__all__
        from repro.core import PartitionAbort
        from repro.core.partitioning import PartitionAbort as inner

        assert PartitionAbort is inner
