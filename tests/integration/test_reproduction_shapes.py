"""Integration tests pinning the paper's headline result *shapes*.

These are the acceptance criteria from DESIGN.md §5: the reproduction
must show who wins, by roughly what factor, and where the crossovers
fall — not the testbed's absolute numbers.
"""

import numpy as np
import pytest

from repro.core import (
    DistributedQASystem,
    PartitioningStrategy,
    Strategy,
    SystemConfig,
    TaskPolicy,
)
from repro.qa import SyntheticProfileGenerator, SyntheticProfileParams
from repro.workload import high_load_count, staggered_arrivals, trec_mix_profiles

pytestmark = pytest.mark.slow


def complex_profiles(n, seed=3):
    gen = SyntheticProfileGenerator(SyntheticProfileParams.complex(), seed=seed)
    return gen.generate_many(n)


@pytest.fixture(scope="module")
def intra_rows():
    """Module times at 1/4/8/12 nodes for a fixed complex question set."""
    profiles = complex_profiles(6)
    rows = {}
    for n in (1, 4, 8, 12):
        acc = {k: [] for k in ("QP", "PR", "PS", "PO", "AP")}
        responses = []
        for prof in profiles:
            system = DistributedQASystem(
                SystemConfig(n_nodes=n, strategy=Strategy.DQA)
            )
            r = system.run_workload([prof]).results[0]
            for k in acc:
                acc[k].append(r.module_times[k])
            responses.append(r.response_time)
        rows[n] = {
            **{k: float(np.mean(v)) for k, v in acc.items()},
            "resp": float(np.mean(responses)),
        }
    return rows


class TestIntraQuestionShapes:
    def test_response_time_decreases_with_nodes(self, intra_rows):
        resp = [intra_rows[n]["resp"] for n in (1, 4, 8, 12)]
        assert resp == sorted(resp, reverse=True)

    def test_pr_flat_from_8_to_12_nodes(self, intra_rows):
        """Only 8 sub-collections exist, so PR cannot improve past 8
        processors (Section 6.2's second observation)."""
        assert intra_rows[12]["PR"] == pytest.approx(intra_rows[8]["PR"], rel=0.02)
        assert intra_rows[8]["PR"] < intra_rows[4]["PR"]

    def test_ap_keeps_scaling_to_12(self, intra_rows):
        assert intra_rows[12]["AP"] < intra_rows[8]["AP"] < intra_rows[4]["AP"]

    def test_sequential_modules_unchanged(self, intra_rows):
        for n in (4, 8, 12):
            assert intra_rows[n]["QP"] == pytest.approx(intra_rows[1]["QP"], rel=0.05)
            assert intra_rows[n]["PO"] == pytest.approx(intra_rows[1]["PO"], rel=0.05)

    def test_speedup_meaningful_but_sublinear(self, intra_rows):
        s4 = intra_rows[1]["resp"] / intra_rows[4]["resp"]
        s12 = intra_rows[1]["resp"] / intra_rows[12]["resp"]
        assert 2.5 < s4 < 4.0  # paper measured 3.67
        assert 4.0 < s12 < 9.0  # paper measured 7.48
        assert s12 > s4

    def test_measured_below_analytical(self, intra_rows):
        from repro.model import ModelParameters, question_speedup

        p = ModelParameters()
        for n in (4, 8, 12):
            measured = intra_rows[1]["resp"] / intra_rows[n]["resp"]
            assert measured < question_speedup(p, n)


class TestPartitioningShapes:
    def _ap_time(self, n_nodes, strategy, profiles, chunk=40):
        times = []
        for prof in profiles:
            policy = TaskPolicy(ap_strategy=strategy, ap_chunk_paragraphs=chunk)
            system = DistributedQASystem(
                SystemConfig(n_nodes=n_nodes, strategy=Strategy.DQA, policy=policy)
            )
            times.append(system.run_workload([prof]).results[0].module_times["AP"])
        return float(np.mean(times))

    def test_send_clearly_worst_isend_recv_close(self):
        """Table 11's ordering: SEND clearly worst; ISEND and RECV "very
        close" to each other (Section 4.1.3)."""
        profiles = complex_profiles(6)
        send = self._ap_time(8, PartitioningStrategy.SEND, profiles)
        isend = self._ap_time(8, PartitioningStrategy.ISEND, profiles)
        recv = self._ap_time(8, PartitioningStrategy.RECV, profiles)
        assert send > isend
        assert send > recv
        assert abs(isend - recv) / min(isend, recv) < 0.35

    def test_chunk_size_has_interior_optimum(self):
        """Figure 10: speedup peaks at a middle chunk size."""
        profiles = complex_profiles(5)
        times = {
            chunk: self._ap_time(8, PartitioningStrategy.RECV, profiles, chunk)
            for chunk in (5, 20, 100)
        }
        assert times[20] < times[5]
        assert times[20] < times[100]


class TestLoadBalancingShapes:
    @pytest.fixture(scope="class")
    def high_load(self):
        n_nodes = 8
        n_q = high_load_count(n_nodes)
        out = {}
        for strategy in (Strategy.DNS, Strategy.INTER, Strategy.DQA):
            thr = []
            for seed in (11, 23, 37):
                profiles = trec_mix_profiles(n_q, seed=seed)
                arrivals = staggered_arrivals(n_q, 2.0, seed=seed)
                system = DistributedQASystem(
                    SystemConfig(n_nodes=n_nodes, strategy=strategy)
                )
                rep = system.run_workload(profiles, arrivals)
                thr.append(rep.throughput_qpm)
            out[strategy.value] = float(np.mean(thr))
        return out

    def test_throughput_ordering(self, high_load):
        """Table 5: DNS < INTER < DQA at high load."""
        assert high_load["DNS"] < high_load["INTER"] < high_load["DQA"]

    def test_dqa_gain_substantial(self, high_load):
        """DQA beats DNS by a double-digit percentage."""
        assert high_load["DQA"] / high_load["DNS"] > 1.10
