"""Smoke + correctness tests for the experiment drivers."""

import pytest

from repro.core import PartitioningStrategy
from repro.experiments import EXPERIMENTS, default_context
from repro.experiments.figures import run_fig7_trace, run_fig8, run_fig9
from repro.experiments.intra_question_exp import run_intra_question
from repro.experiments.load_balancing import run_load_balancing
from repro.experiments.partitioning_exp import run_fig10, run_table11
from repro.experiments.report import TextTable, format_series
from repro.experiments.table1_examples import format_table1, run_table1
from repro.experiments.table2_module_analysis import format_table2, run_table2
from repro.experiments.table3_resource_weights import format_table3, run_table3
from repro.experiments.table4_upper_limits import format_table4, run_table4


class TestReport:
    def test_text_table_renders(self):
        t = TextTable("Title", ["a", "b"])
        t.add_row(1, 2.5)
        out = t.render()
        assert "Title" in out
        assert "2.50" in out

    def test_row_arity_checked(self):
        t = TextTable("T", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_format_series_aligns_x(self):
        out = format_series(
            "S", {"one": [(1.0, 2.0)], "two": [(1.0, 3.0), (2.0, 4.0)]}
        )
        assert "S" in out
        assert "4.00" in out


class TestTableDrivers:
    def test_table1_examples_mostly_correct(self):
        examples = run_table1(n_examples=5)
        assert len(examples) == 5
        assert sum(e.correct for e in examples) >= 4
        assert "Table 1" in format_table1(examples)

    def test_table2_fractions_match_paper(self):
        rows = run_table2(n_questions=30)
        frac = {r.module: r.fraction for r in rows}
        assert frac["AP"] == pytest.approx(0.697, abs=0.06)
        assert frac["PR"] == pytest.approx(0.265, abs=0.06)
        assert frac["QP"] < 0.03
        assert "Table 2" in format_table2(rows)

    def test_table3_weights_match_paper(self):
        rows = run_table3(n_questions=3)
        by_module = {r.module: r for r in rows}
        assert by_module["QA"].cpu_weight == pytest.approx(0.79, abs=0.06)
        assert by_module["PR"].cpu_weight == pytest.approx(0.20, abs=0.05)
        assert by_module["AP"].cpu_weight == pytest.approx(1.00, abs=0.01)
        assert "Table 3" in format_table3(rows)

    def test_table4_grid_complete(self):
        grid = run_table4()
        assert len(grid) == 16
        out = format_table4(grid)
        assert "match the paper exactly" in out

    def test_load_balancing_small(self):
        cells = run_load_balancing(node_counts=(4,), seeds=(11,))
        assert len(cells) == 3
        strategies = {c.strategy for c in cells}
        assert strategies == {"DNS", "INTER", "DQA"}

    def test_intra_question_small(self):
        rows = run_intra_question(node_counts=(1, 4), n_questions=3)
        assert rows[0].n_nodes == 1
        assert rows[1].measured_speedup > 1.5
        assert rows[1].analytical_speedup == pytest.approx(3.80, abs=0.2)

    def test_table11_small(self):
        rows = run_table11(node_counts=(4,), n_questions=3)
        assert rows[0].send < rows[0].recv


class TestFigureDrivers:
    def test_fig7_trace_contains_events(self):
        text = run_fig7_trace(PartitioningStrategy.RECV)
        assert "pr-collection" in text
        assert "ap-part" in text

    def test_fig8_curves(self):
        series = run_fig8(max_n=200, step=100)
        assert set(series) == {"10 Mbps", "100 Mbps", "1 Gbps"}
        # Higher bandwidth -> higher speedup at the same N.
        last = {k: v[-1][1] for k, v in series.items()}
        assert last["1 Gbps"] > last["100 Mbps"] > last["10 Mbps"]

    def test_fig9_panels(self):
        a, b = run_fig9(max_n=100, step=50)
        assert "1 Gbps" in a and "100 Mbps" in b
        # Panel b: slower disk -> higher speedup (paper's Fig 9(b)).
        s_slow = b["100 Mbps"][-1][1]
        s_fast = b["1 Gbps"][-1][1]
        assert s_slow > s_fast

    def test_fig10_small(self):
        series = run_fig10(chunk_sizes=(10, 80), node_counts=(4,), n_questions=2)
        pts = series["4 processors"]
        assert pts[0][1] > pts[1][1]  # chunk 10 beats chunk 80


class TestRegistry:
    def test_all_experiments_registered(self):
        expected = {
            "table1", "table2", "table3", "table4", "tables5-7",
            "tables8-10", "table11", "fig7", "fig8", "fig9", "fig10",
            "ablation-dispatchers", "ablation-concurrency",
            "ablation-threshold", "ablation-margin",
        }
        assert expected <= set(EXPERIMENTS)

    def test_context_memoized(self):
        assert default_context() is default_context()
