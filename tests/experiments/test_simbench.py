"""Tests for the simulation-core benchmark (``python -m repro simbench``)."""

import json

import pytest

from repro.experiments.simbench import (
    format_simperf,
    run_event_microbench,
    run_queue_equivalence,
    run_runner_wallclock,
    write_simperf_json,
)


class TestEventMicrobench:
    def test_orders_match_and_counts_agree(self):
        m = run_event_microbench(n_chains=25, chain_len=10, repeats=1)
        assert m["ordering_identical"] is True
        assert m["events"] > 25 * 10  # timeouts plus process bookkeeping
        assert m["baseline"]["elapsed_s"] > 0
        assert m["fast"]["elapsed_s"] > 0
        assert m["speedup"] == pytest.approx(
            m["baseline"]["elapsed_s"] / m["fast"]["elapsed_s"]
        )


class TestQueueEquivalenceGate:
    def test_backends_fire_identically(self):
        g = run_queue_equivalence(n_chains=40, chain_len=12)
        assert g["ordering_identical"] is True
        assert g["events"] > 40 * 12
        assert g["heap"]["elapsed_s"] > 0
        assert g["calendar"]["elapsed_s"] > 0


class TestSingleCoreChaosWarning:
    def test_warning_only_on_single_core_slowdown(self, monkeypatch):
        import repro.experiments.simbench as sb

        calls = {}
        monkeypatch.setattr(
            sb, "run_event_microbench",
            lambda **kw: {"ordering_identical": True},
        )
        monkeypatch.setattr(
            sb, "run_queue_equivalence",
            lambda **kw: {"ordering_identical": True},
        )
        monkeypatch.setattr(
            sb, "run_runner_wallclock", lambda **kw: {"identical": True}
        )
        monkeypatch.setattr(
            sb, "run_index_cache_bench",
            lambda **kw: {
                "roundtrip_identical": True, "queries_identical": True
            },
        )

        def fake_chaos(**kw):
            return dict(calls["chaos"])

        monkeypatch.setattr(sb, "run_chaos_wallclock", fake_chaos)

        def summary(speedup, cores):
            calls["chaos"] = {"identical": True, "speedup": speedup}
            monkeypatch.setattr(sb.os, "cpu_count", lambda: cores)
            return sb.run_simbench()

        assert "warning" in summary(0.82, 1)["chaos"]
        assert "warning" not in summary(1.4, 1)["chaos"]
        assert "warning" not in summary(0.82, 8)["chaos"]

    def test_format_surfaces_the_warning(self):
        from repro.experiments.simbench import format_simperf

        base = {
            "schema": "simperf-v3",
            "cpu_count": 1,
            "queue_impl": "heap",
            "microbench": run_event_microbench(
                n_chains=10, chain_len=5, repeats=1
            ),
            "runner": {
                "sections": ["table4"], "jobs": 1, "serial_s": 1.0,
                "parallel_s": 1.0, "speedup": 1.0, "identical": True,
            },
            "chaos": {
                "jobs": 1, "cells": 9, "serial_s": 1.0, "parallel_s": 1.2,
                "speedup": 0.82, "identical": True,
                "warning": "parallel chaos speedup 0.82x < 1.0 on a "
                "single-core runner",
            },
            "ok": True,
        }
        assert "WARNING" in format_simperf(base)


class TestRunnerWallclock:
    @pytest.mark.slow
    def test_parallel_report_identical(self):
        r = run_runner_wallclock(sections=["table4"], jobs=2)
        assert r["identical"] is True
        assert r["jobs"] == 2
        assert r["serial_s"] > 0 and r["parallel_s"] > 0


class TestSummaryIO:
    def _summary(self):
        micro = run_event_microbench(n_chains=10, chain_len=5, repeats=1)
        return {
            "schema": "simperf-v1",
            "cpu_count": 1,
            "microbench": micro,
            "runner": {
                "sections": ["table4"],
                "jobs": 2,
                "serial_s": 1.0,
                "parallel_s": 0.5,
                "speedup": 2.0,
                "identical": True,
            },
            "chaos": {
                "jobs": 2,
                "cells": 9,
                "serial_s": 1.0,
                "parallel_s": 0.5,
                "speedup": 2.0,
                "identical": True,
            },
            "ok": True,
        }

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_simperf.json"
        out = write_simperf_json(self._summary(), str(path))
        assert out == str(path)
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == "simperf-v1"
        assert loaded["microbench"]["ordering_identical"] is True

    def test_format_mentions_all_three_benchmarks(self):
        text = format_simperf(self._summary())
        assert "event loop" in text
        assert "runner" in text
        assert "chaos" in text
        assert "ordering identical: True" in text
