"""Tests for the simulation-core benchmark (``python -m repro simbench``)."""

import json

import pytest

from repro.experiments.simbench import (
    format_simperf,
    run_event_microbench,
    run_runner_wallclock,
    write_simperf_json,
)


class TestEventMicrobench:
    def test_orders_match_and_counts_agree(self):
        m = run_event_microbench(n_chains=25, chain_len=10, repeats=1)
        assert m["ordering_identical"] is True
        assert m["events"] > 25 * 10  # timeouts plus process bookkeeping
        assert m["baseline"]["elapsed_s"] > 0
        assert m["fast"]["elapsed_s"] > 0
        assert m["speedup"] == pytest.approx(
            m["baseline"]["elapsed_s"] / m["fast"]["elapsed_s"]
        )


class TestRunnerWallclock:
    @pytest.mark.slow
    def test_parallel_report_identical(self):
        r = run_runner_wallclock(sections=["table4"], jobs=2)
        assert r["identical"] is True
        assert r["jobs"] == 2
        assert r["serial_s"] > 0 and r["parallel_s"] > 0


class TestSummaryIO:
    def _summary(self):
        micro = run_event_microbench(n_chains=10, chain_len=5, repeats=1)
        return {
            "schema": "simperf-v1",
            "cpu_count": 1,
            "microbench": micro,
            "runner": {
                "sections": ["table4"],
                "jobs": 2,
                "serial_s": 1.0,
                "parallel_s": 0.5,
                "speedup": 2.0,
                "identical": True,
            },
            "chaos": {
                "jobs": 2,
                "cells": 9,
                "serial_s": 1.0,
                "parallel_s": 0.5,
                "speedup": 2.0,
                "identical": True,
            },
            "ok": True,
        }

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_simperf.json"
        out = write_simperf_json(self._summary(), str(path))
        assert out == str(path)
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == "simperf-v1"
        assert loaded["microbench"]["ordering_identical"] is True

    def test_format_mentions_all_three_benchmarks(self):
        text = format_simperf(self._summary())
        assert "event loop" in text
        assert "runner" in text
        assert "chaos" in text
        assert "ordering identical: True" in text
