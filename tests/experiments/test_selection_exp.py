"""Tests for the collection-selection experiment (``python -m repro select``)."""

import copy
import json

import pytest

from repro.experiments.selection import (
    SelectionConfig,
    format_selection,
    run_selection,
    validate_bench_selection,
    write_selection_json,
)


@pytest.fixture(scope="module")
def summary():
    # Tiny run: enough to exercise all three real-pipeline modes and an
    # off-vs-on simulated pair, quickly.
    return run_selection(
        SelectionConfig(
            n_questions=16,
            n_unique=8,
            warmup=1,
            node_counts=(4,),
            sim_questions_per_node=1,
        )
    )


class TestStructure:
    def test_validates_and_ok(self, summary):
        validate_bench_selection(summary)
        assert summary["ok"]

    def test_exact_mode_is_identical_and_prunes(self, summary):
        assert summary["equivalence"]["exact_identical"]
        assert "exact" not in summary["equivalence"]["mismatches"]
        q = summary["quality"]["exact"]
        assert q["precision_mean"] <= 1.0
        assert q["recall_mean"] == 1.0  # exact never prunes a useful collection
        assert q["answer_agreement"] == 1.0

    def test_predictive_reports_quality_not_identity(self, summary):
        q = summary["quality"]["predictive"]
        assert 0.0 <= q["answer_agreement"] <= 1.0
        assert 0.0 <= q["recall_mean"] <= 1.0
        assert summary["runs"]["predictive"]["postings_scanned_total"] <= (
            summary["runs"]["exhaustive"]["postings_scanned_total"]
        )

    def test_simulated_rows_cover_node_counts(self, summary):
        rows = summary["simulated"]["rows"]
        assert [r["n_nodes"] for r in rows] == [4]
        assert summary["simulated"]["attribution_ok"]

    def test_json_round_trip(self, summary, tmp_path):
        path = write_selection_json(summary, tmp_path / "BENCH_selection.json")
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(summary, sort_keys=True)
        )

    def test_format_mentions_all_modes(self, summary):
        text = format_selection(summary)
        for token in ("exhaustive", "exact", "predictive", "partition-comms"):
            assert token in text


class TestValidatorRejects:
    def test_rejects_wrong_schema(self, summary):
        bad = copy.deepcopy(summary)
        bad["schema"] = "selection-v0"
        with pytest.raises(ValueError, match="schema"):
            validate_bench_selection(bad)

    def test_rejects_recorded_divergence(self, summary):
        bad = copy.deepcopy(summary)
        bad["equivalence"]["exact_identical"] = False
        with pytest.raises(ValueError, match="divergence"):
            validate_bench_selection(bad)

    def test_rejects_missing_quality(self, summary):
        bad = copy.deepcopy(summary)
        del bad["quality"]["predictive"]
        with pytest.raises(ValueError, match="predictive"):
            validate_bench_selection(bad)
