"""Tests for the parallel cell runner and its determinism guarantees.

The contract under test is the one the whole experiment harness rests
on: ``--jobs N`` output is byte-identical to serial output.  The grid
sweeps here are deliberately small so the pool runs (which fork real
worker processes) stay cheap.
"""

import io
import os

import pytest

from repro.experiments.parallel import derive_seed, resolve_jobs, run_cells


class TestResolveJobs:
    def test_none_means_serial(self):
        assert resolve_jobs(None) == 1

    def test_auto_uses_cpu_count(self):
        assert resolve_jobs("auto") == (os.cpu_count() or 1)

    def test_integer_and_integer_string(self):
        assert resolve_jobs(4) == 4
        assert resolve_jobs("4") == 4
        assert resolve_jobs(" AUTO ") == (os.cpu_count() or 1)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)
        with pytest.raises(ValueError):
            resolve_jobs(-2)
        with pytest.raises(ValueError):
            resolve_jobs("many")


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(11, "SEND", 0.0025) == derive_seed(11, "SEND", 0.0025)

    def test_distinct_parts_distinct_seeds(self):
        seeds = {
            derive_seed(11, strategy, rate)
            for strategy in ("SEND", "ISEND", "RECV")
            for rate in (0.0, 0.0025, 1 / 150)
        }
        assert len(seeds) == 9

    def test_base_matters(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_fits_in_63_bits(self):
        s = derive_seed(11, "SEND")
        assert 0 <= s < 2**63


def _square(x):
    """Module-level so the process pool can pickle it."""
    return x * x


class TestRunCells:
    def test_serial_inline(self):
        assert run_cells(_square, [1, 2, 3], jobs=1) == [1, 4, 9]
        assert run_cells(_square, [1, 2, 3], jobs=None) == [1, 4, 9]

    def test_single_cell_never_pools(self):
        assert run_cells(_square, [5], jobs=8) == [25]

    def test_empty(self):
        assert run_cells(_square, [], jobs=4) == []

    def test_pool_preserves_cell_order(self):
        cells = list(range(12))
        assert run_cells(_square, cells, jobs=2) == [_square(c) for c in cells]


class TestCampaignDeterminism:
    @pytest.mark.slow
    def test_chaos_campaign_identical_across_job_counts(self):
        from repro.core import PartitioningStrategy
        from repro.experiments.chaos_campaign import (
            format_campaign,
            run_campaign,
        )

        kwargs = dict(
            n_nodes=4,
            n_questions=6,
            strategies=(PartitioningStrategy.SEND, PartitioningStrategy.RECV),
            fault_rates=(0.0, 1.0 / 200.0),
        )
        serial = run_campaign(jobs=1, **kwargs)
        for jobs in (2, 4):
            parallel = run_campaign(jobs=jobs, **kwargs)
            assert parallel == serial
            assert format_campaign(parallel) == format_campaign(serial)

    @pytest.mark.slow
    def test_runner_report_byte_identical(self):
        from repro.experiments.runner import run_all

        def render(jobs):
            buf = io.StringIO()
            run_all(["table4", "fig8"], stream=buf, jobs=jobs)
            return buf.getvalue()

        serial = render(1)
        assert render(2) == serial
        assert "### table4" in serial
