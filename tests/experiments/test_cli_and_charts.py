"""Tests for the CLI and the ASCII chart renderer."""

import pytest

from repro.cli import main
from repro.experiments.ascii_chart import ascii_chart


class TestAsciiChart:
    def test_contains_title_and_legend(self):
        out = ascii_chart(
            {"fast": [(0, 0), (10, 10)], "slow": [(0, 0), (10, 5)]},
            title="Speedup",
        )
        assert "Speedup" in out
        assert "* fast" in out
        assert "o slow" in out

    def test_axis_labels_show_bounds(self):
        out = ascii_chart({"s": [(1, 2), (100, 50)]}, x_label="N")
        assert "50.0" in out
        assert "2.0" in out
        assert "100" in out

    def test_empty_series(self):
        assert "(no data)" in ascii_chart({}, title="T")

    def test_single_point(self):
        out = ascii_chart({"s": [(5, 5)]})
        assert "*" in out

    def test_fixed_dimensions(self):
        out = ascii_chart(
            {"s": [(0, 0), (1, 1)]}, width=40, height=10, title=""
        )
        body_lines = [l for l in out.splitlines() if "│" in l or "┤" in l]
        assert len(body_lines) == 10

    def test_monotone_series_plots_monotone(self):
        out = ascii_chart({"s": [(x, x) for x in range(11)]}, width=30, height=10)
        rows = [l for l in out.splitlines() if ("│" in l or "┤" in l)]
        # A rising line: top rows (high y) hold markers at high columns, so
        # marker columns decrease scanning top to bottom.
        cols = []
        for row in rows:
            idx = row.find("*")
            if idx >= 0:
                cols.append(idx)
        assert cols == sorted(cols, reverse=True)


class TestCLI:
    def test_model_command(self, capsys):
        main(["model", "--net", "1 Gbps", "--disk", "250 Mbps"])
        out = capsys.readouterr().out
        assert "practical processor limit" in out
        assert "71" in out

    def test_simulate_command(self, capsys):
        main([
            "simulate", "--nodes", "2", "--strategy", "DNS",
            "--questions", "4", "--seed", "3",
        ])
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "DNS on 2 nodes" in out

    def test_ask_command(self, capsys):
        from repro.experiments import default_context

        ctx = default_context()
        question = ctx.questions[0]
        main(["ask", question.text])
        out = capsys.readouterr().out
        assert "Top answers" in out
        assert question.expected_answer.split()[0] in out

    def test_experiments_subset(self, capsys):
        main(["experiments", "table4"])
        out = capsys.readouterr().out
        assert "Table 4" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiments", "nonsense"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
