"""Tests for the scale-out sweep (``python -m repro scale``)."""

import json

import pytest

from repro.experiments.scale import (
    format_scale,
    run_scale,
    write_scale_json,
)


@pytest.fixture(scope="module")
def summary():
    # Tiny truncated sweep: enough to exercise every cell family
    # (primary sweep, heap comparison, legacy baseline) quickly.
    return run_scale(
        node_counts=(2, 4),
        strategies=("RECV",),
        questions_per_node=2,
        seed=11,
        baseline_at=(4,),
    )


class TestSweepStructure:
    def test_schema_and_inputs_recorded(self, summary):
        assert summary["schema"] == "scale-v1"
        assert summary["cpu_count"] >= 1
        assert summary["node_counts"] == [2, 4]
        assert summary["questions_per_node"] == 2

    def test_cell_families_present(self, summary):
        kinds = {
            (c["queue_impl"], c["monitor_shards"] > 0)
            for c in summary["cells"]
        }
        assert ("calendar", True) in kinds  # primary sweep
        assert ("heap", True) in kinds  # queue comparison
        assert ("heap", False) in kinds  # pre-sharding baseline

    def test_cells_carry_perf_counters(self, summary):
        for c in summary["cells"]:
            assert c["events"] > 0
            assert c["wall_s"] > 0
            assert c["events_per_s"] == pytest.approx(
                c["events"] / c["wall_s"]
            )


class TestCrossCheck:
    def test_crosscheck_covers_every_swept_size(self, summary):
        assert [r["n_nodes"] for r in summary["crosscheck"]] == [2, 4]

    def test_relative_error_consistent(self, summary):
        for row in summary["crosscheck"]:
            expect = abs(
                row["measured_speedup"] - row["analytical_speedup"]
            ) / row["analytical_speedup"]
            assert row["rel_err"] == pytest.approx(expect)
            assert row["analytical_speedup"] > 1.0


class TestFiringOrderGate:
    def test_backends_identical_on_seeded_workload(self, summary):
        assert summary["order_identical"] is True
        assert summary["ok"] is True
        for check in summary["order_checks"]:
            assert check["identical"] is True

    def test_baseline_win_rows_are_complete(self, summary):
        assert [w["n_nodes"] for w in summary["baseline_wins"]] == [4]
        w = summary["baseline_wins"][0]
        assert w["new_events_per_s"] > 0
        assert w["baseline_events_per_s"] > 0
        assert isinstance(w["win"], bool)


class TestReporting:
    def test_json_round_trip(self, summary, tmp_path):
        path = tmp_path / "BENCH_scale.json"
        assert write_scale_json(summary, str(path)) == str(path)
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == "scale-v1"
        assert loaded["order_identical"] is True

    def test_format_mentions_the_three_tables(self, summary):
        text = format_scale(summary)
        assert "Eq 23 cross-check" in text
        assert "firing-order gate" in text
        assert "pre-sharding baseline" in text
