"""The checked-in BENCH_*.json artifacts must match their validators.

``validate_bench_throughput`` / ``validate_bench_serving`` are the
schema contracts CI and trend tooling rely on; these tests pin (a) that
the validators accept the artifacts actually checked into the repo, and
(b) that they reject drifted payloads instead of passing vacuously.
"""

from __future__ import annotations

import copy
import json
import pathlib

import pytest

from repro.experiments.scale import validate_bench_scale
from repro.experiments.selection import validate_bench_selection
from repro.experiments.throughput_bench import validate_bench_throughput
from repro.serving import validate_bench_serving

_ROOT = pathlib.Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def throughput_summary():
    return json.loads((_ROOT / "BENCH_throughput.json").read_text())


@pytest.fixture(scope="module")
def serving_summary():
    return json.loads((_ROOT / "BENCH_serving.json").read_text())


class TestThroughputSchema:
    def test_checked_in_artifact_validates(self, throughput_summary):
        validate_bench_throughput(throughput_summary)

    def test_rejects_old_schema_version(self, throughput_summary):
        bad = copy.deepcopy(throughput_summary)
        bad["schema"] = "bench_throughput/v2"
        with pytest.raises(ValueError, match="schema"):
            validate_bench_throughput(bad)

    def test_rejects_missing_batched_columns(self, throughput_summary):
        bad = copy.deepcopy(throughput_summary)
        del bad["batched"]
        with pytest.raises(ValueError, match="batched"):
            validate_bench_throughput(bad)

    def test_rejects_batched_column_without_sharing(self, throughput_summary):
        bad = copy.deepcopy(throughput_summary)
        first = next(iter(bad["batched"]))
        del bad["batched"][first]["sharing_factor_mean"]
        with pytest.raises(ValueError, match="sharing_factor_mean"):
            validate_bench_throughput(bad)

    def test_checked_in_batch_speedup_meets_target(self, throughput_summary):
        """The acceptance floor: >= 1.3x q/s at batch 16 vs batch 1."""
        speedup = throughput_summary["batch_speedup"]
        assert speedup["16"] >= 1.3, speedup
        assert throughput_summary["equivalence"]["equivalent"]


@pytest.fixture(scope="module")
def scale_summary():
    return json.loads((_ROOT / "BENCH_scale.json").read_text())


class TestScaleSchema:
    def test_checked_in_artifact_validates(self, scale_summary):
        validate_bench_scale(scale_summary)

    def test_rejects_old_schema_version(self, scale_summary):
        bad = copy.deepcopy(scale_summary)
        bad["schema"] = "scale-v0"
        with pytest.raises(ValueError, match="schema"):
            validate_bench_scale(bad)

    def test_rejects_order_divergence(self, scale_summary):
        bad = copy.deepcopy(scale_summary)
        bad["order_identical"] = False
        with pytest.raises(ValueError, match="firing-order"):
            validate_bench_scale(bad)

    def test_checked_in_sweep_reaches_1000_nodes(self, scale_summary):
        """The acceptance floor: the paper's extrapolation ran for real,
        firing order held, and the new configuration out-runs the
        pre-sharding baseline in events/sec at N >= 256."""
        assert max(scale_summary["node_counts"]) >= 1000
        assert scale_summary["order_identical"] is True
        checked = [
            row["n_nodes"] for row in scale_summary["crosscheck"]
        ]
        assert set(scale_summary["node_counts"]) <= set(checked)
        wins = {
            w["n_nodes"]: w["win"] for w in scale_summary["baseline_wins"]
        }
        assert any(n >= 256 and won for n, won in wins.items()), wins


@pytest.fixture(scope="module")
def selection_summary():
    return json.loads((_ROOT / "BENCH_selection.json").read_text())


class TestSelectionSchema:
    def test_checked_in_artifact_validates(self, selection_summary):
        validate_bench_selection(selection_summary)

    def test_rejects_old_schema_version(self, selection_summary):
        bad = copy.deepcopy(selection_summary)
        bad["schema"] = "selection-v0"
        with pytest.raises(ValueError, match="schema"):
            validate_bench_selection(bad)

    def test_checked_in_exact_mode_is_identical_and_prunes(
        self, selection_summary
    ):
        assert selection_summary["equivalence"]["exact_identical"]
        assert selection_summary["runs"]["exact"]["prune_rate_mean"] > 0.0
        assert selection_summary["quality"]["exact"]["recall_mean"] == 1.0

    def test_checked_in_predictive_reduces_postings(self, selection_summary):
        runs = selection_summary["runs"]
        assert runs["predictive"]["postings_scanned_reduction"] > 0.0

    def test_checked_in_simulated_comms_shrink(self, selection_summary):
        sim = selection_summary["simulated"]
        assert sim["comms_shrinks"]
        assert all(
            row["partition_comms_reduction"] > 0.0 for row in sim["rows"]
        )


class TestServingSchema:
    def test_checked_in_artifact_validates(self, serving_summary):
        validate_bench_serving(serving_summary)

    def test_rejects_old_schema_version(self, serving_summary):
        bad = copy.deepcopy(serving_summary)
        bad["schema"] = "bench_serving/v1"
        with pytest.raises(ValueError, match="schema"):
            validate_bench_serving(bad)

    def test_rejects_missing_batch_block(self, serving_summary):
        bad = copy.deepcopy(serving_summary)
        del bad["batch"]
        with pytest.raises(ValueError, match="batch"):
            validate_bench_serving(bad)

    def test_rejects_unbalanced_ledger_shape(self, serving_summary):
        bad = copy.deepcopy(serving_summary)
        del bad["runs"][0]["ledger"]["shed"]
        with pytest.raises(ValueError, match="ledger"):
            validate_bench_serving(bad)

    def test_checked_in_runs_conserve(self, serving_summary):
        for run in serving_summary["runs"]:
            led = run["ledger"]
            assert (
                led["answered"] + led["shed"] + led["drained"]
                == led["submitted"]
            ), run["label"]
