"""Cache-plane hygiene: stale-sandbox sweeping and attach contention.

Two failure modes the serving layer must survive:

* pytest sessions killed mid-run leak their per-process
  ``REPRO_CACHE_DIR`` sandboxes into the tempdir —
  :func:`sweep_stale_cache_dirs` reaps exactly the dead-owner ones;
* N worker processes attach to one v2 packed-index artifact while a
  writer deletes and regenerates it — every reader must come back with
  consistent indexes (attached or rebuilt), never a torn/corrupt read.
"""

import multiprocessing
import os
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.corpus import CorpusConfig
from repro.experiments.context import (
    STALE_CACHE_PREFIX,
    corpus_cache_key,
    load_or_build_indexes,
    load_or_generate_corpus,
    sweep_stale_cache_dirs,
)


class TestStaleSweep:
    def _mkdir(self, root, name):
        d = root / name
        d.mkdir()
        (d / "corpus-deadbeef.pkl").write_bytes(b"x")
        return d

    def test_reaps_dead_pid_sandboxes_only(self, tmp_path):
        # A pid from a finished subprocess is genuinely dead.
        proc = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True, text=True, check=True,
        )
        dead_pid = int(proc.stdout.strip())
        dead = self._mkdir(tmp_path, f"{STALE_CACHE_PREFIX}{dead_pid}-aa00")
        live = self._mkdir(
            tmp_path, f"{STALE_CACHE_PREFIX}{os.getpid()}-bb11"
        )
        removed = sweep_stale_cache_dirs(root=tmp_path)
        assert dead in removed and not dead.exists()
        assert live not in removed and live.exists()

    def test_ignores_non_matching_names(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True, text=True, check=True,
        )
        dead_pid = int(proc.stdout.strip())
        # Wrong prefix, no pid segment, pid-is-not-digits: all untouched.
        keep = [
            self._mkdir(tmp_path, f"other-cache-{dead_pid}-aa"),
            self._mkdir(tmp_path, f"{STALE_CACHE_PREFIX}notapid-aa"),
            self._mkdir(tmp_path, STALE_CACHE_PREFIX.rstrip("-")),
        ]
        # A matching *file* (not dir) is also left alone.
        (tmp_path / f"{STALE_CACHE_PREFIX}{dead_pid}-ff").write_bytes(b"x")
        removed = sweep_stale_cache_dirs(root=tmp_path)
        assert removed == []
        assert all(d.exists() for d in keep)

    def test_missing_root_is_a_noop(self, tmp_path):
        assert sweep_stale_cache_dirs(root=tmp_path / "nope") == []

    def test_session_sandbox_is_registered_for_cleanup(self):
        """The conftest fixture points REPRO_CACHE_DIR at a sweepable name."""
        sandbox = os.environ.get("REPRO_CACHE_DIR", "")
        name = os.path.basename(sandbox)
        if not name.startswith(STALE_CACHE_PREFIX):
            pytest.skip("externally supplied REPRO_CACHE_DIR")
        pid_part = name[len(STALE_CACHE_PREFIX):].split("-", 1)[0]
        assert pid_part == str(os.getpid())
        assert Path(sandbox).is_dir()


CORPUS = CorpusConfig(
    n_collections=2, docs_per_collection=10, vocab_size=300, seed=77
)


def _reader(config, cache_dir, rounds, out):
    """Attach to the shared artifact repeatedly; report doc totals."""
    os.environ["REPRO_CACHE_DIR"] = cache_dir
    try:
        corpus = load_or_generate_corpus(config)
        totals = []
        for _ in range(rounds):
            indexes, source, _ = load_or_build_indexes(corpus, config)
            totals.append(
                (sum(len(ix.doc_ids) for ix in indexes), source)
            )
        out.put(("ok", totals))
    except Exception as exc:  # pragma: no cover - the failure we test for
        out.put(("error", f"{type(exc).__name__}: {exc}"))


@pytest.mark.slow
def test_concurrent_attach_while_writer_regenerates(tmp_path):
    """Readers attaching mid-regeneration never observe a torn artifact."""
    cache_dir = str(tmp_path)
    config = CORPUS
    corpus = load_or_generate_corpus(config)

    # Seed the artifact once so the expected totals are known.
    old_env = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = cache_dir
    try:
        indexes, _, _ = load_or_build_indexes(corpus, config)
        expected_total = sum(len(ix.doc_ids) for ix in indexes)
        artifact = tmp_path / f"index-{corpus_cache_key(config)}.pkl"
        assert artifact.exists()

        ctx = multiprocessing.get_context("fork")
        out = ctx.Queue()
        readers = [
            ctx.Process(
                target=_reader, args=(config, cache_dir, 6, out), daemon=True
            )
            for _ in range(3)
        ]
        for p in readers:
            p.start()
        # Writer: repeatedly delete and regenerate the artifact while the
        # readers attach.  Also interleave a deliberately corrupt payload
        # — the self-healing read path must fall back to a rebuild.
        for i in range(6):
            artifact.unlink(missing_ok=True)
            if i % 2 == 0:
                artifact.write_bytes(b"\x80corrupt")
            load_or_build_indexes(corpus, config)
        results = [out.get(timeout=120.0) for _ in readers]
        for p in readers:
            p.join(timeout=30.0)
    finally:
        if old_env is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = old_env

    for status, payload in results:
        assert status == "ok", payload
        for total, source in payload:
            assert total == expected_total
            assert source in ("cache", "built")


def test_corrupt_artifact_self_heals(tmp_path):
    old_env = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path)
    try:
        corpus = load_or_generate_corpus(CORPUS)
        artifact = tmp_path / f"index-{corpus_cache_key(CORPUS)}.pkl"
        artifact.write_bytes(pickle.dumps({"schema": "bogus"}))
        indexes, source, _ = load_or_build_indexes(corpus, CORPUS)
        assert source == "built"
        assert indexes
        # The healed artifact attaches next time.
        _, source2, _ = load_or_build_indexes(corpus, CORPUS)
        assert source2 == "cache"
    finally:
        if old_env is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = old_env
