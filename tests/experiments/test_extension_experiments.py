"""Tests for the extension experiment drivers (small configurations)."""

import pytest

pytestmark = pytest.mark.slow

from repro.experiments.prediction_exp import format_prediction, run_prediction
from repro.experiments.robustness_exp import (
    format_cache_skew,
    format_churn,
    format_heterogeneous,
    run_cache_skew,
    run_churn,
    run_heterogeneous,
)
from repro.experiments.validation_exp import (
    format_inter_validation,
    format_staleness_sweep,
    run_inter_validation,
    run_staleness_sweep,
)


class TestPrediction:
    def test_pr_correlation_strong(self):
        result = run_prediction(n_questions=40)
        assert result.corr_with_pr > 0.6
        assert 0.0 <= result.total_relative_error

    def test_format_mentions_correlations(self):
        result = run_prediction(n_questions=20)
        out = format_prediction(result)
        assert "corr w/ PR" in out


class TestHeterogeneous:
    def test_recv_degrades_least_of_sender_strategies(self):
        rows = run_heterogeneous(n_questions=3)
        by = {r.strategy: r for r in rows}
        assert by["RECV"].degradation < by["ISEND"].degradation
        for r in rows:
            assert r.degradation >= 0.95  # slower nodes never speed things up

    def test_format(self):
        rows = run_heterogeneous(n_questions=2)
        assert "heterogeneous" in format_heterogeneous(rows).lower()


class TestChurn:
    def test_retry_completes_everything(self):
        result = run_churn(n_nodes=8)
        assert result.completed_with_retry == result.n_questions
        assert result.completed_no_retry <= result.completed_with_retry
        assert result.throughput_qpm > 0.7 * result.baseline_throughput_qpm
        assert "churn" in format_churn(result).lower()


class TestCacheSkew:
    def test_dqa_more_robust_than_dns(self):
        rows = run_cache_skew(skews=(0.0, 0.8), seeds=(11,))
        (s0, dns0, dqa0), (s8, dns8, dqa8) = rows
        assert dqa8 / dqa0 > dns8 / dns0
        assert "skew" in format_cache_skew(rows).lower()


class TestModelValidation:
    def test_measured_below_analytical_with_stable_ratio(self):
        points = run_inter_validation(node_counts=(1, 4, 8), seeds=(11,))
        assert points[0].measured_speedup == pytest.approx(1.0)
        for p in points[1:]:
            assert p.measured_speedup <= p.analytical_speedup * 1.05
        assert "Eq 23" in format_inter_validation(points)

    def test_staleness_rows(self):
        rows = run_staleness_sweep(intervals=(1.0, 4.0), seeds=(11,))
        assert len(rows) == 2
        assert all(thr > 0 for _i, thr, _r in rows)
        assert "staleness" in format_staleness_sweep(rows).lower()


class TestStealing:
    def test_stealing_beats_unbalanced_baseline(self):
        from repro.experiments.stealing_exp import format_stealing, run_stealing

        rows = run_stealing(seeds=(11,))
        by = {r.label: r for r in rows}
        dns = by["DNS (no balancing)"]
        steal = by["DNS + stealing (receiver-initiated)"]
        assert steal.throughput_qpm > dns.throughput_qpm
        assert steal.steals_per_run > 0
        assert "stealing" in format_stealing(rows).lower()


class TestGradientBaseline:
    def test_gradient_row_present_and_competitive(self):
        from repro.experiments.stealing_exp import run_stealing

        rows = run_stealing(seeds=(11,))
        by = {r.label: r for r in rows}
        assert "DNS + gradient model [23]" in by
        dns = by["DNS (no balancing)"]
        gradient = by["DNS + gradient model [23]"]
        assert gradient.throughput_qpm > dns.throughput_qpm
        # Hop-by-hop propagation moves questions more times than direct
        # stealing claims them.
        steal = by["DNS + stealing (receiver-initiated)"]
        assert gradient.steals_per_run > steal.steals_per_run
