"""Meta-tests on the public API surface: documentation and conventions.

A reproduction meant for adoption needs every public item documented;
these tests walk the package and enforce it mechanically.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

_SKIP_MODULES = {"repro.__main__"}


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in _SKIP_MODULES:
            continue
        yield importlib.import_module(info.name)


ALL_MODULES = list(_iter_modules())


class TestDocstrings:
    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=lambda m: m.__name__
    )
    def test_module_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), (
            f"{module.__name__} lacks a module docstring"
        )

    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=lambda m: m.__name__
    )
    def test_public_items_documented(self, module):
        undocumented = []
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(name)
        assert not undocumented, (
            f"{module.__name__}: undocumented public items {undocumented}"
        )


class TestExports:
    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=lambda m: m.__name__
    )
    def test_all_entries_resolve(self, module):
        missing = [
            name
            for name in getattr(module, "__all__", [])
            if not hasattr(module, name)
        ]
        assert not missing, f"{module.__name__}: __all__ lists missing {missing}"

    def test_top_level_exports_stable(self):
        expected = {
            "QAPipeline",
            "DistributedQASystem",
            "SystemConfig",
            "Strategy",
            "ModelParameters",
            "generate_corpus",
            "generate_questions",
            "profile_question",
        }
        assert expected <= set(repro.__all__)

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)
