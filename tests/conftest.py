"""Shared fixtures: one session-scoped corpus/index/pipeline stack.

Corpus generation and indexing dominate test-suite wall clock, and
several modules independently rebuilt the same (or an equivalent)
stack.  The fixtures here build the canonical test corpus — 3
collections x 20 docs, vocab 500, seed 31 — exactly once per session;
they are read-only from the tests' point of view, so sharing them is
safe.  Tests that genuinely need a different corpus shape keep their
own local fixtures.
"""

import atexit
import os
import secrets
import shutil
import tempfile

import pytest

from repro.corpus import CorpusConfig, generate_corpus, generate_questions
from repro.nlp import EntityRecognizer
from repro.qa import QAPipeline
from repro.retrieval import IndexedCorpus

#: The canonical test-corpus shape (kept in sync with the docstring).
SHARED_CORPUS_CONFIG = CorpusConfig(
    n_collections=3, docs_per_collection=20, vocab_size=500, seed=31
)


@pytest.fixture(scope="session", autouse=True)
def _cache_sandbox():
    """Point REPRO_CACHE_DIR at a per-session sandbox, and clean it up.

    Every pytest session writes its packed-index artifacts into its own
    ``repro-test-cache-<pid>-<token>`` directory so concurrent sessions
    never share artifacts.  Cleanup is belt-and-braces: the fixture
    finalizer handles normal exits, an ``atexit`` hook handles most
    abnormal ones, and — because neither runs when the process is
    SIGKILLed — each session starts by sweeping sandboxes whose owning
    pid is dead (``sweep_stale_cache_dirs``).  An externally supplied
    REPRO_CACHE_DIR is respected untouched (CI points it at a shared
    cache on purpose).
    """
    from repro.experiments.context import (
        STALE_CACHE_PREFIX,
        sweep_stale_cache_dirs,
    )

    if os.environ.get("REPRO_CACHE_DIR") is not None:
        yield os.environ["REPRO_CACHE_DIR"]
        return
    sweep_stale_cache_dirs()
    sandbox = os.path.join(
        tempfile.gettempdir(),
        f"{STALE_CACHE_PREFIX}{os.getpid()}-{secrets.token_hex(4)}",
    )
    os.makedirs(sandbox, exist_ok=True)
    os.environ["REPRO_CACHE_DIR"] = sandbox

    def _reap() -> None:  # dedicated hook so unregister targets only us
        shutil.rmtree(sandbox, ignore_errors=True)

    atexit.register(_reap)
    try:
        yield sandbox
    finally:
        os.environ.pop("REPRO_CACHE_DIR", None)
        _reap()
        atexit.unregister(_reap)


@pytest.fixture(scope="session")
def shared_corpus():
    """Session-wide generated corpus (3/20/500, seed 31)."""
    return generate_corpus(SHARED_CORPUS_CONFIG)


@pytest.fixture(scope="session")
def shared_indexed_corpus(shared_corpus):
    """The shared corpus wrapped in an IndexedCorpus (built once)."""
    return IndexedCorpus(shared_corpus)


@pytest.fixture(scope="session")
def shared_pipeline(shared_corpus, shared_indexed_corpus):
    """A QAPipeline over the shared index, with the matching recognizer."""
    recognizer = EntityRecognizer(
        shared_corpus.knowledge.gazetteer(),
        extra_nationalities=shared_corpus.knowledge.nationalities,
    )
    return QAPipeline(shared_indexed_corpus, recognizer)


@pytest.fixture(scope="session")
def shared_questions(shared_corpus):
    """Generated questions for the shared corpus."""
    return generate_questions(shared_corpus)
