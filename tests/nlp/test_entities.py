"""Tests for the gazetteer + pattern entity recognizer."""

import pytest

from repro.nlp import Entity, EntityRecognizer, EntityType, Gazetteer


@pytest.fixture()
def recognizer():
    g = Gazetteer()
    g.add("Taj Mahal", EntityType.LOCATION)
    g.add("Pope John Paul II", EntityType.PERSON)
    g.add("Hollywood Cemetery", EntityType.LOCATION)
    g.add("Tourette's Syndrome", EntityType.DISEASE)
    g.add("Acme Industries", EntityType.ORGANIZATION)
    return EntityRecognizer(g)


class TestGazetteer:
    def test_add_and_contains(self):
        g = Gazetteer()
        g.add("New York", EntityType.LOCATION)
        assert "New York" in g
        assert "new york" in g  # case-insensitive
        assert "Boston" not in g

    def test_lookup_returns_type(self):
        g = Gazetteer()
        g.add("Paris", EntityType.LOCATION)
        assert g.lookup(["Paris"]) is EntityType.LOCATION
        assert g.lookup(["paris"]) is EntityType.LOCATION
        assert g.lookup(["London"]) is None

    def test_max_phrase_len_tracks_longest(self):
        g = Gazetteer()
        g.add("A", EntityType.PERSON)
        g.add("One Two Three Four", EntityType.ORGANIZATION)
        assert g.max_phrase_len == 4

    def test_empty_phrase_rejected(self):
        with pytest.raises(ValueError):
            Gazetteer().add("   ", EntityType.PERSON)

    def test_add_many(self):
        g = Gazetteer()
        g.add_many(["a b", "c"], EntityType.PRODUCT)
        assert len(g) == 2


class TestRecognizer:
    def test_gazetteer_phrase_found(self, recognizer):
        ents = recognizer.recognize("I saw the Taj Mahal yesterday")
        assert any(
            e.text == "Taj Mahal" and e.type is EntityType.LOCATION for e in ents
        )

    def test_longest_match_wins(self, recognizer):
        ents = recognizer.recognize("Pope John Paul II spoke")
        persons = [e for e in ents if e.type is EntityType.PERSON]
        assert persons[0].text == "Pope John Paul II"

    def test_spans_point_into_text(self, recognizer):
        text = "They visited Hollywood Cemetery in June 1990."
        for e in recognizer.recognize(text):
            assert text[e.start : e.end] == e.text

    def test_date_month_year(self, recognizer):
        ents = recognizer.recognize("It happened in June 1990 near here")
        dates = [e for e in ents if e.type is EntityType.DATE]
        assert dates and dates[0].text == "June 1990"

    def test_date_full(self, recognizer):
        ents = recognizer.recognize("on January 5, 1999 it rained")
        dates = [e for e in ents if e.type is EntityType.DATE]
        assert dates[0].text == "January 5, 1999"

    def test_bare_year(self, recognizer):
        ents = recognizer.recognize("back in 1987 things differed")
        assert any(e.type is EntityType.DATE and e.text == "1987" for e in ents)

    def test_small_number_is_number_not_year(self, recognizer):
        ents = recognizer.recognize("she bought 42 apples")
        assert any(e.type is EntityType.NUMBER and e.text == "42" for e in ents)

    def test_money(self, recognizer):
        ents = recognizer.recognize("it cost $3 million to build")
        money = [e for e in ents if e.type is EntityType.MONEY]
        assert money and money[0].text == "$3 million"

    def test_percent(self, recognizer):
        ents = recognizer.recognize("roughly 15% of users left")
        assert any(e.type is EntityType.PERCENT for e in ents)

    def test_distance_quantity(self, recognizer):
        ents = recognizer.recognize("the tower rises 300 meters above")
        distances = [e for e in ents if e.type is EntityType.DISTANCE]
        assert distances and distances[0].text == "300 meters"

    def test_duration_quantity(self, recognizer):
        ents = recognizer.recognize("the trip took 3 days in total")
        assert any(e.type is EntityType.DURATION for e in ents)

    def test_nationality(self, recognizer):
        ents = recognizer.recognize("the Polish pope visited")
        assert any(e.type is EntityType.NATIONALITY for e in ents)

    def test_extra_nationalities(self):
        r = EntityRecognizer(Gazetteer(), extra_nationalities=["Golite"])
        ents = r.recognize("a famous Golite explorer")
        assert any(e.type is EntityType.NATIONALITY for e in ents)

    def test_honorific_person(self, recognizer):
        ents = recognizer.recognize("we met Dr. Jane Doe at the lab")
        persons = [e for e in ents if e.type is EntityType.PERSON]
        assert persons and "Jane Doe" in persons[0].text

    def test_unknown_capitalized_run(self, recognizer):
        ents = recognizer.recognize("she flew to Zanzibar City overnight")
        unknown = [e for e in ents if e.type is EntityType.UNKNOWN]
        assert unknown and unknown[0].text == "Zanzibar City"

    def test_sentence_initial_stopword_not_entity(self, recognizer):
        ents = recognizer.recognize("The weather was fine.")
        assert not any(e.text == "The" for e in ents)

    def test_recognize_typed_filters(self, recognizer):
        text = "Pope John Paul II visited the Taj Mahal in 1987"
        only_loc = recognizer.recognize_typed(text, EntityType.LOCATION)
        assert {e.type for e in only_loc} <= {EntityType.LOCATION, EntityType.UNKNOWN}
        assert any(e.text == "Taj Mahal" for e in only_loc)

    def test_recognize_typed_includes_unknown_for_person(self, recognizer):
        text = "Smithers Malone walked in"
        persons = recognizer.recognize_typed(text, EntityType.PERSON)
        assert persons  # unknown capitalized run accepted as weak candidate

    def test_recognize_typed_excludes_unknown_for_date(self, recognizer):
        text = "Smithers Malone walked in"
        dates = recognizer.recognize_typed(text, EntityType.DATE)
        assert dates == []

    def test_empty_text(self, recognizer):
        assert recognizer.recognize("") == []

    def test_no_overlapping_entities(self, recognizer):
        text = "Pope John Paul II met Dr. Alan Smith in June 1990 at the Taj Mahal"
        ents = recognizer.recognize(text)
        for a, b in zip(ents, ents[1:]):
            assert a.end <= b.start
