"""Tests for the Porter stemmer against the published reference behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp import stem

# Classic vectors from Porter's 1980 paper examples.
REFERENCE = {
    "caresses": "caress",
    "ponies": "poni",
    "ties": "ti",
    "caress": "caress",
    "cats": "cat",
    "feed": "feed",
    "agreed": "agre",
    "plastered": "plaster",
    "bled": "bled",
    "motoring": "motor",
    "sing": "sing",
    "conflated": "conflat",
    "troubled": "troubl",
    "sized": "size",
    "hopping": "hop",
    "tanned": "tan",
    "falling": "fall",
    "hissing": "hiss",
    "failing": "fail",
    "filing": "file",
    "happy": "happi",
    "sky": "sky",
    "relational": "relat",
    "conditional": "condit",
    "rational": "ration",
    "valenci": "valenc",
    "hesitanci": "hesit",
    "digitizer": "digit",
    "differently": "differ",
    "analogousli": "analog",
    "vietnamization": "vietnam",
    "predication": "predic",
    "operator": "oper",
    "feudalism": "feudal",
    "decisiveness": "decis",
    "hopefulness": "hope",
    "callousness": "callous",
    "formaliti": "formal",
    "sensitiviti": "sensit",
    "sensibiliti": "sensibl",
    "triplicate": "triplic",
    "formative": "form",
    "formalize": "formal",
    "electriciti": "electr",
    "electrical": "electr",
    "hopeful": "hope",
    "goodness": "good",
    "revival": "reviv",
    "allowance": "allow",
    "inference": "infer",
    "airliner": "airlin",
    "gyroscopic": "gyroscop",
    "adjustable": "adjust",
    "defensible": "defens",
    "irritant": "irrit",
    "replacement": "replac",
    "adjustment": "adjust",
    "dependent": "depend",
    "adoption": "adopt",
    "communism": "commun",
    "activate": "activ",
    "angulariti": "angular",
    "homologous": "homolog",
    "effective": "effect",
    "bowdlerize": "bowdler",
    "probate": "probat",
    "rate": "rate",
    "cease": "ceas",
    "controll": "control",
    "roll": "roll",
}


class TestReferenceVectors:
    @pytest.mark.parametrize("word,expected", sorted(REFERENCE.items()))
    def test_reference(self, word, expected):
        assert stem(word) == expected


class TestBasics:
    def test_lowercases(self):
        assert stem("Running") == stem("running")

    def test_short_words_unchanged(self):
        assert stem("at") == "at"
        assert stem("be") == "be"
        assert stem("I") == "i"

    def test_non_alpha_unchanged(self):
        assert stem("1999") == "1999"
        assert stem("it's") == "it's"

    def test_retrieval_variants_share_stems(self):
        # The property Boolean retrieval relies on.
        groups = [
            ("connect", "connected", "connecting", "connection", "connections"),
            ("invent", "invented", "inventing"),
        ]
        for group in groups:
            stems = {stem(w) for w in group}
            assert len(stems) == 1, f"{group} -> {stems}"

    @given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                   min_size=1, max_size=20))
    @settings(max_examples=300, deadline=None)
    def test_never_longer_never_empty(self, word):
        out = stem(word)
        assert out
        assert len(out) <= len(word)
        assert out.isalpha()

    @given(st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                   min_size=3, max_size=20))
    @settings(max_examples=200, deadline=None)
    def test_deterministic(self, word):
        assert stem(word) == stem(word)
