"""Tests for Falcon-style keyword selection."""

import pytest

from repro.nlp import (
    EntityRecognizer,
    EntityType,
    Gazetteer,
    is_stopword,
    select_keywords,
)


@pytest.fixture()
def recognizer():
    g = Gazetteer()
    g.add("Marion Davies", EntityType.PERSON)
    g.add("Taj Mahal", EntityType.LOCATION)
    return EntityRecognizer(g)


class TestStopwords:
    def test_common_words(self):
        for w in ("the", "is", "of", "and", "where"):
            assert is_stopword(w)

    def test_case_insensitive(self):
        assert is_stopword("The")

    def test_content_words_not_stopwords(self):
        for w in ("telephone", "buried", "capital"):
            assert not is_stopword(w)


class TestSelectKeywords:
    def test_entity_phrase_highest_priority(self, recognizer):
        kws = select_keywords("Where is the actress Marion Davies buried?",
                              recognizer)
        assert kws[0].text == "Marion Davies"
        assert kws[0].priority == 0
        assert kws[0].is_phrase

    def test_phrase_has_one_stem_per_word(self, recognizer):
        kws = select_keywords("Where is the Taj Mahal?", recognizer)
        phrase = [k for k in kws if k.is_phrase][0]
        assert len(phrase.stems) == 2

    def test_stopwords_and_interrogatives_excluded(self, recognizer):
        kws = select_keywords("Where is the actress Marion Davies buried?",
                              recognizer)
        texts = {k.text.lower() for k in kws}
        assert "where" not in texts
        assert "the" not in texts
        assert "is" not in texts

    def test_content_words_included(self, recognizer):
        kws = select_keywords("Where is the actress Marion Davies buried?",
                              recognizer)
        texts = {k.text.lower() for k in kws}
        assert "actress" in texts
        assert "buried" in texts

    def test_priorities_strictly_orderable(self, recognizer):
        kws = select_keywords("Where is the actress Marion Davies buried?",
                              recognizer)
        priorities = [k.priority for k in kws]
        assert priorities == sorted(priorities)

    def test_max_keywords_respected(self, recognizer):
        q = ("Where is the enormous ancient beautiful mysterious gigantic"
             " crumbling labyrinthine subterranean fortress located?")
        kws = select_keywords(q, recognizer, max_keywords=4)
        assert len(kws) <= 4

    def test_duplicate_stems_deduplicated(self, recognizer):
        kws = select_keywords("invent inventing invented?", recognizer)
        stems = [k.stems for k in kws]
        assert len(stems) == len(set(stems))

    def test_without_recognizer(self):
        kws = select_keywords("Who invented the telephone?", None)
        assert any(k.text.lower() == "telephone" for k in kws)

    def test_longer_words_ranked_rarer(self, recognizer):
        kws = select_keywords("What makes a chrysanthemum wilt?", recognizer)
        texts = [k.text.lower() for k in kws]
        assert texts.index("chrysanthemum") < texts.index("wilt")

    def test_empty_question(self, recognizer):
        assert select_keywords("", recognizer) == []

    def test_stems_are_porter(self, recognizer):
        kws = select_keywords("Where is Marion Davies buried?", recognizer)
        buried = [k for k in kws if k.text.lower() == "buried"][0]
        assert buried.stems == ("buri",)
