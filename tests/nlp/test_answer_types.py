"""Tests for question classification (answer-type detection)."""

import pytest

from repro.nlp import EntityType, classify_question


CASES = [
    # The paper's Table 1 questions.
    ("What is the name of the rare neurological disease with symptoms such"
     " as involuntary movements?", EntityType.DISEASE),
    ("Where is the actress Marion Davies buried?", EntityType.LOCATION),
    ("Where is the Taj Mahal?", EntityType.LOCATION),
    ("What is the nationality of Pope John Paul II?", EntityType.NATIONALITY),
    # Interrogative coverage.
    ("Who invented the telephone?", EntityType.PERSON),
    ("Whom did she marry?", EntityType.PERSON),
    ("When was the company founded?", EntityType.DATE),
    ("How many people live in Tokyo?", EntityType.NUMBER),
    ("How much did the project cost?", EntityType.MONEY),
    ("How much rice does it take?", EntityType.NUMBER),
    ("How far is the moon?", EntityType.DISTANCE),
    ("How tall is the Eiffel Tower?", EntityType.DISTANCE),
    ("How long did the war last?", EntityType.DURATION),
    ("How long is the Nile?", EntityType.DISTANCE),
    ("How old was the king?", EntityType.NUMBER),
    # Head nouns.
    ("What city hosted the olympics?", EntityType.LOCATION),
    ("Which country has Paris as its capital?", EntityType.LOCATION),
    ("What year did it happen?", EntityType.DATE),
    ("What company makes trucks?", EntityType.ORGANIZATION),
    ("Which river flows through Cairo?", EntityType.LOCATION),
    ("What president signed the bill?", EntityType.PERSON),
    ("Name the inventor of the radio.", EntityType.PERSON),
    # Definition fallback.
    ("What is photosynthesis?", EntityType.DEFINITION),
]


class TestClassification:
    @pytest.mark.parametrize("question,expected", CASES)
    def test_cases(self, question, expected):
        assert classify_question(question).answer_type is expected

    def test_empty_question(self):
        c = classify_question("")
        assert c.answer_type is EntityType.UNKNOWN
        assert c.rule == "empty"

    def test_rule_is_reported(self):
        assert classify_question("Who did it?").rule == "who"

    def test_unknown_fallback(self):
        c = classify_question("Frobnicate the wug?")
        assert c.answer_type is EntityType.UNKNOWN

    def test_where_embedded(self):
        c = classify_question("In the story, where did they hide it?")
        assert c.answer_type is EntityType.LOCATION

    def test_case_insensitive(self):
        a = classify_question("WHO INVENTED THE TELEPHONE?")
        b = classify_question("who invented the telephone?")
        assert a.answer_type is b.answer_type is EntityType.PERSON
