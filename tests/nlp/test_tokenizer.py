"""Tests for the offset-preserving tokenizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp import Token, is_capitalized, is_number_token, sentences, tokenize


class TestTokenize:
    def test_simple_sentence(self):
        tokens = tokenize("The cat sat.")
        assert [t.text for t in tokens] == ["The", "cat", "sat", "."]

    def test_offsets_point_into_source(self):
        text = "Where is the Taj Mahal?"
        for tok in tokenize(text):
            assert text[tok.start : tok.end] == tok.text

    def test_numbers_with_separators(self):
        tokens = tokenize("about 1,234.56 units")
        assert "1,234.56" in [t.text for t in tokens]

    def test_money_and_percent(self):
        texts = [t.text for t in tokenize("$3 million is 12% of it")]
        assert "$3" in texts
        assert "12%" in texts

    def test_internal_apostrophe_kept(self):
        texts = [t.text for t in tokenize("Tourette's Syndrome")]
        assert "Tourette's" in texts

    def test_punctuation_split_individually(self):
        texts = [t.text for t in tokenize("wait, (really)?")]
        assert texts == ["wait", ",", "(", "really", ")", "?"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_whitespace_only(self):
        assert tokenize("  \n\t ") == []

    def test_token_len_is_span_length(self):
        tok = tokenize("hello")[0]
        assert len(tok) == 5

    def test_is_word_and_is_punct(self):
        tokens = tokenize("cat , 42")
        assert tokens[0].is_word and not tokens[0].is_punct
        assert tokens[1].is_punct and not tokens[1].is_word
        assert not tokens[2].is_word and not tokens[2].is_punct

    @given(st.text(max_size=300))
    @settings(max_examples=150, deadline=None)
    def test_offsets_always_consistent(self, text):
        previous_end = 0
        for tok in tokenize(text):
            assert text[tok.start : tok.end] == tok.text
            assert tok.start >= previous_end
            previous_end = tok.end


class TestSentences:
    def test_two_sentences(self):
        text = "First sentence here. Second one follows."
        spans = sentences(text)
        assert len(spans) == 2
        assert text[spans[0][0] : spans[0][1]].startswith("First")
        assert text[spans[1][0] : spans[1][1]].startswith("Second")

    def test_single_sentence_no_trailing_space(self):
        assert len(sentences("Only one sentence.")) == 1

    def test_empty_text(self):
        assert sentences("") == []

    def test_question_marks_split(self):
        spans = sentences("Is it true? Yes it is.")
        assert len(spans) == 2


class TestHelpers:
    def test_is_capitalized(self):
        toks = tokenize("Paris loves paris")
        assert is_capitalized(toks[0])
        assert not is_capitalized(toks[2])

    def test_is_capitalized_false_for_number(self):
        tok = tokenize("1999")[0]
        assert not is_capitalized(tok)

    def test_is_number_token(self):
        toks = tokenize("42 $5 7% cats")
        assert is_number_token(toks[0])
        assert is_number_token(toks[1])
        assert is_number_token(toks[2])
        assert not is_number_token(toks[3])
