"""Tests for the dense-id term vocabulary (the packed index's coder)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp.vocabulary import MISSING_ID, SHARED_VOCABULARY, Vocabulary


def test_intern_assigns_dense_ids_in_first_seen_order():
    v = Vocabulary()
    assert v.intern("alpha") == 0
    assert v.intern("beta") == 1
    assert v.intern("gamma") == 2
    assert len(v) == 3
    assert v.table() == ["alpha", "beta", "gamma"]


def test_ids_stable_across_reinterning():
    v = Vocabulary()
    first = {term: v.intern(term) for term in ("a", "b", "c", "d")}
    # Re-intern in a different order, interleaved with new terms.
    v.intern("e")
    for term in ("d", "a", "c", "b"):
        assert v.intern(term) == first[term]
    assert v.intern("e") == 4
    assert len(v) == 5


def test_lookup_never_assigns():
    v = Vocabulary(["x"])
    assert v.lookup("y") == MISSING_ID
    assert len(v) == 1
    assert "y" not in v
    assert v.lookup("x") == 0


def test_missing_id_is_negative():
    # The packed layers rely on the sentinel sorting below every real id.
    assert MISSING_ID < 0


def test_term_roundtrip_and_bulk_terms():
    v = Vocabulary(["p", "q", "r"])
    assert [v.term(i) for i in range(3)] == ["p", "q", "r"]
    assert v.terms([2, 0, 1]) == ("r", "p", "q")


def test_term_rejects_sentinel():
    v = Vocabulary(["p"])
    try:
        v.term(MISSING_ID)
    except IndexError:
        pass
    else:  # pragma: no cover - defends the packed-array invariant
        raise AssertionError("term(MISSING_ID) must raise")


def test_matches_prefix():
    v = Vocabulary(["a", "b", "c"])
    assert v.matches_prefix([])
    assert v.matches_prefix(["a", "b"])
    assert v.matches_prefix(["a", "b", "c"])
    assert not v.matches_prefix(["a", "c"])
    assert not v.matches_prefix(["a", "b", "c", "d"])


def test_table_is_a_copy():
    v = Vocabulary(["a"])
    table = v.table()
    table.append("mutant")
    assert len(v) == 1
    assert v.lookup("mutant") == MISSING_ID


def test_shared_vocabulary_is_process_wide_singleton():
    from repro.nlp import SHARED_VOCABULARY as exported

    assert exported is SHARED_VOCABULARY


@settings(max_examples=50, deadline=None)
@given(st.lists(st.text(min_size=1, max_size=8)))
def test_dense_id_space_property(terms):
    """Ids are exactly 0..n-1 for n distinct terms, whatever the order."""
    v = Vocabulary()
    for term in terms:
        v.intern(term)
    distinct = list(dict.fromkeys(terms))
    assert len(v) == len(distinct)
    assert sorted(v.lookup(term) for term in distinct) == list(
        range(len(distinct))
    )
    assert v.table() == distinct
