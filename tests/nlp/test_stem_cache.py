"""Tests for the bounded-LRU stem cache's eviction behaviour."""

from __future__ import annotations

import pytest

from repro.nlp.porter import stem
from repro.nlp.stemming import StemCache


def test_eviction_is_least_recently_used():
    cache = StemCache(maxsize=3)
    for w in ("running", "jumping", "swimming"):
        cache(w)
    # Touch the oldest entry so it becomes the most recent.
    cache("running")
    # Inserting a fourth word must evict "jumping" (now the LRU), not
    # "running" (insertion-oldest but recently used).
    cache("flying")
    misses = cache.misses
    cache("running")
    cache("swimming")
    cache("flying")
    assert cache.misses == misses  # all three still cached
    cache("jumping")
    assert cache.misses == misses + 1  # the evicted one re-derives


def test_capacity_never_exceeded():
    cache = StemCache(maxsize=2)
    for w in ("alpha", "beta", "gamma", "delta", "alpha", "epsilon"):
        cache(w)
        assert len(cache) <= 2


def test_hits_are_case_insensitive():
    cache = StemCache(maxsize=8)
    assert cache("Running") == stem("running")
    hits = cache.hits
    assert cache("RUNNING") == cache("running")
    assert cache.hits == hits + 2  # both case variants hit the same entry
    assert len(cache) == 1


def test_values_always_match_raw_stem():
    cache = StemCache(maxsize=2)  # tiny: constant churn
    words = ["connection", "connected", "relational", "relating", "caresses"]
    for w in words * 2:
        assert cache(w) == stem(w)


def test_clear_resets_counters():
    cache = StemCache(maxsize=4)
    cache("running")
    cache("running")
    cache.clear()
    assert (len(cache), cache.hits, cache.misses) == (0, 0, 0)


def test_maxsize_must_be_positive():
    with pytest.raises(ValueError):
        StemCache(maxsize=0)
