"""Tests for federated collection selection (repro.retrieval.selection).

The exact mode's contract is the load-bearing one: with the selector on,
every answer, paragraph rank, and work counter must be bit-identical to
exhaustive broadcast — pruning may only remove provably-empty collection
visits and synthesize their logical work.  Predictive mode's contract is
weaker (it may lose recall, never questions: empty selections fall back
to exhaustive).  The sketch itself must survive the v2 payload round
trip, including the remap path under a non-prefix vocabulary.
"""

from __future__ import annotations

import pickle
from array import array

import pytest

from repro.corpus.generator import Document, SubCollection
from repro.nlp.vocabulary import Vocabulary
from repro.qa import QAPipeline, Question
from repro.qa.paragraph_retrieval import resolve_collections
from repro.retrieval import IndexedCorpus
from repro.retrieval.inverted_index import CollectionIndex
from repro.retrieval.packing import attach_payload, indexes_to_payload
from repro.retrieval.selection import (
    CollectionSelector,
    CollectionSketch,
    build_sketch,
    sketch_of,
)


def _fingerprint(result):
    return (
        tuple(
            (a.text, a.short, a.long, a.score, a.paragraph_key)
            for a in result.answers
        ),
        result.n_retrieved,
        result.n_accepted,
        result.paragraph_ranks,
        tuple(sorted(result.work.items())),
    )


@pytest.fixture(scope="module")
def recognizer(shared_corpus):
    from repro.nlp import EntityRecognizer

    return EntityRecognizer(
        shared_corpus.knowledge.gazetteer(),
        extra_nationalities=shared_corpus.knowledge.nationalities,
    )


@pytest.fixture(scope="module")
def workload(shared_questions):
    return [(q.qid, q.text) for q in shared_questions[:25]]


# -- exact mode: bit-identity is the whole point -----------------------------------


def test_exact_mode_bit_identical_and_actually_prunes(
    shared_indexed_corpus, recognizer, workload
):
    plain = QAPipeline(shared_indexed_corpus.reconfigured(), recognizer)
    routed_stack = shared_indexed_corpus.reconfigured()
    routed = QAPipeline(
        routed_stack,
        recognizer,
        selector=routed_stack.selector(mode="exact"),
    )
    pruned_total = 0
    for qid, text in workload:
        a = plain.answer(text, qid=qid)
        b = routed.answer(text, qid=qid)
        assert _fingerprint(a) == _fingerprint(b), text
        assert routed.pr.last_decision is not None
        pruned_total += len(routed.pr.last_decision.pruned)
    # The equivalence must not be vacuous: the shared 3-collection corpus
    # is heterogeneous enough that some questions provably skip some
    # collections.
    assert pruned_total > 0


def test_exact_batch_equals_serial_with_selector(
    shared_indexed_corpus, recognizer, workload
):
    stack_a = shared_indexed_corpus.reconfigured()
    serial = QAPipeline(
        stack_a, recognizer, selector=stack_a.selector(mode="exact")
    )
    stack_b = shared_indexed_corpus.reconfigured()
    batched = QAPipeline(
        stack_b, recognizer, selector=stack_b.selector(mode="exact")
    )
    texts = [text for _, text in workload]
    qids = [qid for qid, _ in workload]
    serial_results = [
        serial.answer(text, qid=qid) for qid, text in workload
    ]
    batch_results = batched.answer_batch(texts, qids=qids)
    for a, b in zip(serial_results, batch_results):
        assert _fingerprint(a) == _fingerprint(b)


def test_exact_synthesized_work_matches_real_retrieval(
    shared_indexed_corpus, shared_pipeline, workload
):
    """The synthesized charge equals what really visiting would report."""
    selector = shared_indexed_corpus.selector(mode="exact")
    checked = 0
    for qid, text in workload:
        processed = shared_pipeline.qp.process(Question(qid=qid, text=text))
        keywords = list(processed.keywords)
        decision = selector.select(keywords)
        if not decision.synthesized:
            continue
        pr = shared_pipeline.pr.retrieve(processed)
        real = {w.collection_id: w for w in pr.per_collection}
        for syn in decision.synthesized:
            work = real[syn.collection_id]
            assert work.n_paragraphs == 0
            assert work.doc_bytes_read == 0
            assert work.postings_scanned == syn.postings_scanned
            assert work.relaxation_rounds == syn.relaxation_rounds
            checked += 1
    assert checked > 0


# -- predictive mode ---------------------------------------------------------------


def test_predictive_zero_hit_falls_back_to_exhaustive(shared_indexed_corpus):
    from repro.nlp.keywords import Keyword

    selector = shared_indexed_corpus.selector(mode="predictive", top_k=2)
    ghost = Keyword(
        text="xyzzyplugh", stems=("xyzzyplugh",), priority=0, is_phrase=False
    )
    decision = selector.select([ghost])
    assert decision.fallback
    assert decision.selected == tuple(
        range(shared_indexed_corpus.n_collections)
    )
    assert decision.pruned == ()


def test_predictive_top_k_bounds_the_fanout(
    shared_indexed_corpus, shared_pipeline, workload
):
    selector = shared_indexed_corpus.selector(mode="predictive", top_k=1)
    for qid, text in workload:
        processed = shared_pipeline.qp.process(Question(qid=qid, text=text))
        decision = selector.select(list(processed.keywords))
        if decision.fallback:
            continue
        assert len(decision.selected) <= 1


def test_selector_validates_inputs(shared_indexed_corpus):
    with pytest.raises(ValueError, match="mode"):
        shared_indexed_corpus.selector(mode="oracle")
    with pytest.raises(ValueError, match="top_k"):
        shared_indexed_corpus.selector(mode="predictive", top_k=0)
    with pytest.raises(ValueError, match="threshold"):
        shared_indexed_corpus.selector(mode="predictive", threshold=1.5)


# -- sketches: empty collections, payload round trip, remap ------------------------


def test_empty_subcollection_sketch_prunes_everywhere():
    docs = [
        Document(
            doc_id=0, collection_id=0, title="d0",
            text="alpha beta gamma recall",
        )
    ]
    full = CollectionIndex(SubCollection(collection_id=0, documents=docs))
    vocab = full.vocab
    empty = CollectionIndex(
        SubCollection(collection_id=1, documents=[]), vocabulary=vocab
    )
    sk = build_sketch(empty)
    assert len(sk) == 0 and sk.n_documents == 0 and sk.n_paragraphs == 0

    from repro.nlp.keywords import Keyword
    from repro.nlp.stemming import cached_stem

    kw = Keyword(
        text="alpha", stems=(cached_stem("alpha"),), priority=0, is_phrase=False
    )
    exact = CollectionSelector(
        [build_sketch(full), sk], vocab, mode="exact"
    )
    decision = exact.select([kw])
    assert 1 in decision.pruned  # nothing can match an empty collection
    syn = {w.collection_id: w for w in decision.synthesized}
    assert syn[1].postings_scanned == 0

    predictive = CollectionSelector(
        [build_sketch(full), sk], vocab, mode="predictive"
    )
    p = predictive.select([kw])
    assert p.selected == (0,) and p.pruned == (1,)


def test_sketch_rides_the_payload_and_attach_prepopulates(
    shared_corpus, shared_indexed_corpus
):
    payload = indexes_to_payload(shared_indexed_corpus.indexes)
    for entry in payload["collections"]:
        assert "sketch" in entry
    blob = pickle.dumps(payload)
    attached = attach_payload(shared_corpus, pickle.loads(blob))
    for ix, fresh_ix in zip(attached, shared_indexed_corpus.indexes):
        pre = ix._sketch
        assert pre is not None  # attach populated it, no lazy build needed
        ref = sketch_of(fresh_ix)
        assert pre.stem_ids == ref.stem_ids
        assert pre.dfs == ref.dfs
        assert pre.pfs == ref.pfs
        assert pre.n_documents == ref.n_documents
        assert pre.n_paragraphs == ref.n_paragraphs


def test_sketch_remap_roundtrip_under_non_prefix_vocabulary(shared_corpus):
    fresh = [CollectionIndex(c) for c in shared_corpus.collections]
    payload = pickle.loads(pickle.dumps(indexes_to_payload(fresh)))
    warm = Vocabulary(["zz_unrelated", "yy_other"])  # forces the remap path
    assert not warm.matches_prefix(payload["vocab_table"])
    attached = attach_payload(shared_corpus, payload, vocabulary=warm)
    for ix in attached:
        remapped = ix._sketch
        assert remapped is not None
        ix._sketch = None  # force a fresh derivation under the new vocab
        rebuilt = build_sketch(ix)
        assert remapped.stem_ids == rebuilt.stem_ids
        assert remapped.dfs == rebuilt.dfs
        assert remapped.pfs == rebuilt.pfs


def test_sketch_remapped_resorts_parallel_arrays():
    sk = CollectionSketch(
        collection_id=0,
        stem_ids=array("i", [0, 1, 2]),
        dfs=array("I", [10, 20, 30]),
        pfs=array("I", [1, 2, 3]),
        n_documents=4,
        n_paragraphs=9,
    )
    # Reverse the numbering: old id 0 -> 7, 1 -> 5, 2 -> 3.
    out = sk.remapped([7, 5, 3])
    assert list(out.stem_ids) == [3, 5, 7]
    assert list(out.dfs) == [30, 20, 10]
    assert list(out.pfs) == [3, 2, 1]
    assert out.df_by_id(7) == 10 and out.pf_by_id(3) == 3


# -- the shared collection-ids defaulting helper -----------------------------------


def test_resolve_collections_explicit_ids_win(shared_indexed_corpus):
    selector = shared_indexed_corpus.selector(mode="exact")
    ids, decision = resolve_collections(3, [2], selector=selector, keywords=[])
    assert ids == [2] and decision is None


def test_resolve_collections_defaults_to_all_without_selector():
    ids, decision = resolve_collections(4, None)
    assert ids == [0, 1, 2, 3] and decision is None
