"""Tests for the packed index data plane: layout, payload, and views.

Covers the equivalence contract of the compact rewrite — the packed
:class:`ParagraphTerms` must reproduce the naive tokenize+stem sequence
exactly — plus payload serialization (bit-identical round trip, remap
under a non-prefix vocabulary), structural immutability of the returned
views, and the on-disk v2 artifact's self-healing.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.generator import Document, SubCollection
from repro.nlp.stemming import cached_stem
from repro.nlp.tokenizer import tokenize
from repro.nlp.vocabulary import Vocabulary
from repro.retrieval.inverted_index import CollectionIndex, StemSetView
from repro.retrieval.packing import (
    PAYLOAD_SCHEMA,
    attach_payload,
    indexes_to_payload,
    memory_footprint,
)


def _index(texts: list[str], vocabulary: Vocabulary | None = None) -> CollectionIndex:
    docs = [
        Document(doc_id=i, collection_id=0, title=f"d{i}", text=tx)
        for i, tx in enumerate(texts)
    ]
    return CollectionIndex(
        SubCollection(collection_id=0, documents=docs), vocabulary=vocabulary
    )


# -- the packed layer reproduces the naive path -----------------------------------
_WORDS = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyzABCDE0123456789'.,-", min_size=1, max_size=12
)
_PARAGRAPH = st.lists(_WORDS, min_size=1, max_size=40).map(" ".join)


@settings(max_examples=60, deadline=None)
@given(paragraphs=st.lists(_PARAGRAPH, min_size=1, max_size=4))
def test_paragraph_terms_roundtrip_naive_tokenize_stem(paragraphs):
    """Packed stems_at/tokens == re-running tokenize+stem on the text."""
    text = "\n\n".join(paragraphs)
    index = _index([text])
    for doc_id in index.doc_ids:
        for para, _ in index.paragraphs_of(doc_id):
            terms = index.paragraph_terms(para.key)
            assert terms is not None
            tokens = tokenize(para.text)
            naive = tuple(
                cached_stem(tok.text) if tok.is_word else tok.text
                for tok in tokens
            )
            assert tuple(terms.tokens) == tuple(tokens)
            assert terms.stems_at == naive
            for i, s in enumerate(naive):
                assert i in terms.positions_of(s)


@settings(max_examples=30, deadline=None)
@given(paragraphs=st.lists(_PARAGRAPH, min_size=1, max_size=3))
def test_payload_attach_preserves_paragraph_layer(paragraphs):
    """Attaching the payload under a fresh vocab reproduces every view."""
    text = "\n\n".join(paragraphs)
    docs = [Document(doc_id=0, collection_id=0, title="d", text=text)]
    collection = SubCollection(collection_id=0, documents=docs)

    class _Corpus:
        collections = [collection]

    original = CollectionIndex(collection)
    payload = pickle.loads(pickle.dumps(indexes_to_payload([original])))
    (attached,) = attach_payload(_Corpus(), payload, vocabulary=Vocabulary())
    for doc_id in original.doc_ids:
        for (pa, sa), (pb, sb) in zip(
            original.paragraphs_of(doc_id), attached.paragraphs_of(doc_id)
        ):
            assert pa.key == pb.key
            assert frozenset(sa) == frozenset(sb)
            ta = original.paragraph_terms(pa.key)
            tb = attached.paragraph_terms(pb.key)
            assert ta.stems_at == tb.stems_at
            assert ta.positions == tb.positions


# -- payload round trip -----------------------------------------------------------
@pytest.fixture()
def small_stack():
    texts = [
        "The runner was running in Boston , 1999 .\n\nSecond paragraph here .",
        "alpha beta gamma\n\nbeta gamma delta",
        "gamma delta epsilon runner",
    ]
    return texts, _index(texts)


def _corpus_of(index: CollectionIndex, texts: list[str]):
    docs = [
        Document(doc_id=i, collection_id=0, title=f"d{i}", text=tx)
        for i, tx in enumerate(texts)
    ]

    class _Corpus:
        collections = [SubCollection(collection_id=0, documents=docs)]

    return _Corpus()


def test_payload_roundtrip_bit_identical(small_stack):
    texts, index = small_stack
    blob = pickle.dumps(
        indexes_to_payload([index]), protocol=pickle.HIGHEST_PROTOCOL
    )
    cold = Vocabulary()
    attached = attach_payload(
        _corpus_of(index, texts), pickle.loads(blob), vocabulary=cold
    )
    blob_again = pickle.dumps(
        indexes_to_payload(attached, vocabulary=cold),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    assert blob == blob_again


def test_attach_remaps_under_non_prefix_vocabulary(small_stack):
    """A vocab with conflicting ids forces the remap path; results match."""
    texts, index = small_stack
    payload = pickle.loads(pickle.dumps(indexes_to_payload([index])))
    warm = Vocabulary(["zz_unrelated", "yy_other"])  # ids 0,1 already taken
    assert not warm.matches_prefix(payload["vocab_table"])
    (attached,) = attach_payload(_corpus_of(index, texts), payload, vocabulary=warm)
    for stem_, df in index.iter_terms():
        assert attached.document_frequency(stem_) == df
        assert list(attached.sorted_postings(stem_)) == list(
            index.sorted_postings(stem_)
        )
        assert attached.postings(stem_) == index.postings(stem_)
    for doc_id in index.doc_ids:
        for (pa, sa), (pb, sb) in zip(
            index.paragraphs_of(doc_id), attached.paragraphs_of(doc_id)
        ):
            assert frozenset(sa) == frozenset(sb)
            assert (
                index.paragraph_terms(pa.key).positions
                == attached.paragraph_terms(pb.key).positions
            )


def test_attach_rejects_wrong_schema(small_stack):
    texts, index = small_stack
    payload = indexes_to_payload([index])
    payload["schema"] = "packed-index/v1"
    with pytest.raises(ValueError):
        attach_payload(_corpus_of(index, texts), payload)


def test_attach_rejects_mismatched_corpus(small_stack):
    texts, index = small_stack
    payload = indexes_to_payload([index])
    with pytest.raises(ValueError):
        attach_payload(_corpus_of(index, texts[:-1]), payload)
    assert PAYLOAD_SCHEMA == payload["schema"]


# -- immutability of returned views ----------------------------------------------
def test_sorted_postings_view_is_readonly(small_stack):
    _, index = small_stack
    view = index.sorted_postings(cached_stem("gamma"))
    assert view.readonly
    with pytest.raises(TypeError):
        view[0] = 99


def test_paragraph_stem_sets_are_immutable_views(small_stack):
    _, index = small_stack
    for doc_id in index.doc_ids:
        for _para, stems in index.paragraphs_of(doc_id):
            assert isinstance(stems, StemSetView)
            assert not hasattr(stems, "add")
            # Set-algebra interop with frozenset still works.
            assert (stems & frozenset(stems)) == frozenset(stems)
            assert "surely-not-a-stem" not in stems


def test_global_stems_alias_is_gone():
    import repro.retrieval.inverted_index as m

    assert not hasattr(m, "_GLOBAL_STEMS")


# -- memory accounting ------------------------------------------------------------
def test_memory_footprint_reports_reduction(small_stack):
    _, index = small_stack
    report = memory_footprint([index])
    assert report["packed_bytes"] > 0
    assert report["dict_layout_bytes"] > 0
    assert report["reduction"] == pytest.approx(
        report["dict_layout_bytes"] / report["packed_bytes"]
    )
    assert index.stats.memory_bytes > 0


# -- the on-disk v2 artifact ------------------------------------------------------
def test_disk_cache_attach_and_self_heal(tmp_path, monkeypatch):
    from repro.corpus import CorpusConfig
    from repro.experiments.context import (
        load_or_build_indexes,
        load_or_generate_corpus,
    )

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    config = CorpusConfig(
        n_collections=2, docs_per_collection=10, vocab_size=300, seed=23
    )
    corpus = load_or_generate_corpus(config)
    built, source, _ = load_or_build_indexes(corpus, config)
    assert source == "built"
    cached, source, _ = load_or_build_indexes(corpus, config)
    assert source == "cache"
    for a, b in zip(built, cached):
        for stem_, df in a.iter_terms():
            assert b.document_frequency(stem_) == df
    # Corrupt the artifact: the loader must fall back to a rebuild.
    (artifact,) = list(tmp_path.glob("index-*.pkl"))
    artifact.write_bytes(b"not a pickle")
    healed, source, _ = load_or_build_indexes(corpus, config)
    assert source == "built"
    assert [ix.stats.n_postings for ix in healed] == [
        ix.stats.n_postings for ix in built
    ]


def test_index_cache_selftest_passes(tmp_path, monkeypatch):
    from repro.corpus import CorpusConfig
    from repro.experiments.context import index_cache_selftest

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    report = index_cache_selftest(
        CorpusConfig(
            n_collections=2, docs_per_collection=10, vocab_size=300, seed=29
        ),
        n_questions=4,
    )
    assert report["ok"]
    assert report["roundtrip_identical"]
    assert report["queries_identical"]
    assert report["payload_bytes"] > 0
