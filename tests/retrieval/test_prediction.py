"""Tests for the query-cost prediction heuristic."""

import pytest

from repro.corpus import CorpusConfig, generate_corpus, generate_questions
from repro.nlp import EntityRecognizer, select_keywords
from repro.retrieval import IndexedCorpus
from repro.retrieval.prediction import (
    QueryCostEstimate,
    predict_pr_cost,
    predict_pr_cost_corpus,
)


@pytest.fixture(scope="module")
def setup():
    corpus = generate_corpus(
        CorpusConfig(n_collections=2, docs_per_collection=15, vocab_size=400,
                     seed=61)
    )
    indexed = IndexedCorpus(corpus)
    recognizer = EntityRecognizer(
        corpus.knowledge.gazetteer(),
        extra_nationalities=corpus.knowledge.nationalities,
    )
    return indexed, recognizer, generate_questions(corpus)


class TestPredict:
    def test_empty_keywords(self, setup):
        indexed, _, _ = setup
        est = predict_pr_cost(indexed.indexes[0], [])
        assert est.work_units == 0.0
        assert est.n_terms == 0

    def test_estimate_structure(self, setup):
        indexed, recognizer, questions = setup
        keywords = select_keywords(questions[0].text, recognizer)
        est = predict_pr_cost(indexed.indexes[0], keywords)
        assert isinstance(est, QueryCostEstimate)
        assert est.n_terms >= 1
        assert est.work_units >= 0.0

    def test_common_terms_cost_more(self, setup):
        """A query over frequent terms must predict more work than one
        over rare terms."""
        indexed, _, _ = setup
        index = indexed.indexes[0]
        # Find a frequent and a rare stem from the index itself.
        from repro.nlp import Keyword

        stems = sorted(
            (term for term, _ in index.iter_terms()),
            key=lambda s: index.document_frequency(s),
        )
        rare, frequent = stems[0], stems[-1]
        kw_rare = Keyword(text=rare, stems=(rare,), priority=0)
        kw_freq = Keyword(text=frequent, stems=(frequent,), priority=0)
        assert (
            predict_pr_cost(index, [kw_freq], min_docs=1).work_units
            > predict_pr_cost(index, [kw_rare], min_docs=1).work_units
        )

    def test_corpus_wide_sums_collections(self, setup):
        indexed, recognizer, questions = setup
        keywords = select_keywords(questions[1].text, recognizer)
        total = predict_pr_cost_corpus(indexed, keywords)
        parts = sum(
            predict_pr_cost(ix, keywords).work_units for ix in indexed.indexes
        )
        assert total == pytest.approx(parts)

    def test_prediction_correlates_with_actual_pr_work(self, setup):
        """The [7] heuristic must rank retrieval cost correctly."""
        import numpy as np

        indexed, recognizer, questions = setup
        preds, actual = [], []
        for q in questions[:40]:
            keywords = select_keywords(q.text, recognizer)
            preds.append(predict_pr_cost_corpus(indexed, keywords))
            work = 0.0
            for r in indexed.retrieve_all(keywords):
                work += 8.0 * r.postings_scanned + r.doc_bytes_read
            actual.append(work)
        corr = float(np.corrcoef(preds, actual)[0, 1])
        assert corr > 0.6
