"""Tests for Boolean retrieval with keyword relaxation."""

import pytest

from repro.nlp import Keyword, stem
from repro.retrieval import BooleanRetriever, CollectionIndex

from .test_inverted_index import make_collection


def kw(text, priority=0):
    words = text.split()
    return Keyword(
        text=text,
        stems=tuple(stem(w) for w in words),
        priority=priority,
        is_phrase=len(words) > 1,
    )


@pytest.fixture()
def retriever():
    index = CollectionIndex(
        make_collection(
            [
                "The telephone was invented by Bell.\n\nOther text here.",
                "Bell invented many things including the telephone device.",
                "Telephones are everywhere nowadays.",
                "Gardens have flowers.\n\nBell peppers grow in gardens.",
            ]
        )
    )
    return BooleanRetriever(index, min_docs=1, paragraph_quorum=1.0)


class TestConjunction:
    def test_and_semantics(self, retriever):
        result = retriever.retrieve([kw("telephone"), kw("Bell", 1)])
        assert set(result.matched_docs) == {0, 1}

    def test_single_keyword(self, retriever):
        result = retriever.retrieve([kw("garden")])
        assert result.matched_docs == [3]

    def test_no_match(self, retriever):
        result = retriever.retrieve([kw("spaceship")])
        assert result.matched_docs == []
        assert result.paragraphs == []

    def test_empty_keywords(self, retriever):
        result = retriever.retrieve([])
        assert result.matched_docs == []


class TestRelaxation:
    def test_drops_lowest_priority_keyword(self, retriever):
        # "telephone AND spaceship" matches nothing; relaxation drops the
        # lower-priority "spaceship" and retries.
        result = retriever.retrieve([kw("telephone", 0), kw("spaceship", 5)])
        assert result.matched_docs
        assert [k.text for k in result.used_keywords] == ["telephone"]
        assert result.relaxation_rounds == 2

    def test_min_docs_drives_relaxation(self):
        index = CollectionIndex(
            make_collection(
                [
                    "alpha beta gamma",
                    "alpha beta",
                    "alpha only here",
                ]
            )
        )
        retriever = BooleanRetriever(index, min_docs=3, paragraph_quorum=1.0)
        result = retriever.retrieve([kw("alpha", 0), kw("beta", 1), kw("gamma", 2)])
        # Conjunction of all three matches 1 doc; dropping to just
        # "alpha" reaches 3 docs.
        assert len(result.matched_docs) == 3
        assert [k.text for k in result.used_keywords] == ["alpha"]

    def test_never_drops_last_keyword(self, retriever):
        result = retriever.retrieve([kw("spaceship", 0)])
        assert result.used_keywords and result.matched_docs == []


class TestParagraphExtraction:
    def test_only_quorum_paragraphs_returned(self, retriever):
        result = retriever.retrieve([kw("Bell", 0), kw("pepper", 1)])
        # Doc 3 matches; only its second paragraph contains both words.
        assert len(result.paragraphs) == 1
        assert "peppers" in result.paragraphs[0].text

    def test_quorum_fraction(self):
        index = CollectionIndex(
            make_collection(["alpha beta\n\nalpha gamma\n\ndelta epsilon"])
        )
        half = BooleanRetriever(index, min_docs=1, paragraph_quorum=0.5)
        result = half.retrieve([kw("alpha", 0), kw("beta", 1)])
        # Quorum 0.5 of 2 keywords = 1 keyword: two paragraphs qualify.
        assert len(result.paragraphs) == 2

    def test_phrase_keyword_requires_all_stems(self, retriever):
        result = retriever.retrieve([kw("telephone device")])
        assert result.matched_docs == [1]


class TestAccounting:
    def test_work_counters_populated(self, retriever):
        result = retriever.retrieve([kw("telephone"), kw("Bell", 1)])
        assert result.postings_scanned > 0
        assert result.doc_bytes_read > 0
        assert result.collection_id == 0

    def test_invalid_parameters(self, retriever):
        with pytest.raises(ValueError):
            BooleanRetriever(retriever.index, min_docs=0)
        with pytest.raises(ValueError):
            BooleanRetriever(retriever.index, paragraph_quorum=0.0)
        with pytest.raises(ValueError):
            BooleanRetriever(retriever.index, paragraph_quorum=1.5)
