"""Tests for the materialized paragraph term layer and retrieval hot path.

Covers: ParagraphTerms construction invariants, galloping intersection vs
the reference set intersection (results *and* cost accounting), and the
conjunction cache's logical-work charging.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.generator import Document, SubCollection
from repro.nlp.keywords import Keyword
from repro.nlp.stemming import SHARED_STEM_CACHE, StemCache, cached_stem
from repro.nlp.tokenizer import tokenize
from repro.retrieval.boolean import BooleanRetriever, _intersect_sorted
from repro.retrieval.inverted_index import CollectionIndex


def _index(texts: list[str]) -> CollectionIndex:
    docs = [
        Document(doc_id=i, collection_id=0, title=f"d{i}", text=tx)
        for i, tx in enumerate(texts)
    ]
    return CollectionIndex(SubCollection(collection_id=0, documents=docs))


def _kw(*words: str, priority: int = 0) -> Keyword:
    return Keyword(
        text=" ".join(words),
        stems=tuple(cached_stem(w) for w in words),
        priority=priority,
        is_phrase=len(words) > 1,
    )


# -- ParagraphTerms invariants ----------------------------------------------------
def test_paragraph_terms_cover_every_token():
    index = _index(["The runner was running in Boston , 1999 .\n\nSecond paragraph here ."])
    for doc_id in index.doc_ids:
        for para, _ in index.paragraphs_of(doc_id):
            terms = index.paragraph_terms(para.key)
            assert terms is not None
            tokens = tokenize(para.text)
            assert list(terms.tokens) == tokens
            assert len(terms.stems_at) == len(tokens)
            # positions map is exactly the inverse of stems_at
            for i, s in enumerate(terms.stems_at):
                assert i in terms.positions_of(s)
            assert sum(len(v) for v in terms.positions.values()) == len(tokens)
            # positions are sorted ascending
            for v in terms.positions.values():
                assert list(v) == sorted(v)


def test_paragraph_terms_missing_key_is_none():
    index = _index(["one short document"])
    assert index.paragraph_terms((999, 0)) is None


def test_sorted_postings_match_postings():
    index = _index(
        ["alpha beta gamma", "beta gamma delta", "gamma delta epsilon"]
    )
    for s in ("alpha", "beta", "gamma", "delta", "nope"):
        stemmed = cached_stem(s)
        view = index.sorted_postings(stemmed)
        assert list(view) == sorted(index.postings(stemmed))
        assert view.readonly  # structural "callers must not mutate"


# -- galloping intersection -------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    a=st.lists(st.integers(0, 60), max_size=40),
    b=st.lists(st.integers(0, 60), max_size=40),
)
def test_intersect_sorted_matches_set_intersection(a, b):
    sa, sb = sorted(set(a)), sorted(set(b))
    small, large = (sa, sb) if len(sa) <= len(sb) else (sb, sa)
    assert _intersect_sorted(small, large) == sorted(set(a) & set(b))


def _random_texts(rng: random.Random, n_docs: int) -> list[str]:
    vocab = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta",
             "theta", "running", "Boston", "1999"]
    texts = []
    for _ in range(n_docs):
        paras = []
        for _ in range(rng.randint(1, 3)):
            paras.append(" ".join(rng.choices(vocab, k=rng.randint(4, 20))))
        texts.append("\n\n".join(paras))
    return texts


def test_retriever_fast_path_equals_reference_including_accounting():
    rng = random.Random(5)
    index = _index(_random_texts(rng, 25))
    fast = BooleanRetriever(index, conjunction_cache=64, galloping=True)
    ref = BooleanRetriever(index, conjunction_cache=0, galloping=False)
    kw_pool = ["alpha", "beta", "gamma", "delta", "running", "Boston",
               "1999", "missingword"]
    for trial in range(40):
        n = rng.randint(1, 4)
        kws = [
            _kw(*rng.sample(kw_pool, rng.randint(1, 2)), priority=i)
            for i, _ in enumerate(range(n))
        ]
        a = ref.retrieve(kws)
        b = fast.retrieve(kws)
        assert a.matched_docs == b.matched_docs
        assert [p.key for p in a.paragraphs] == [p.key for p in b.paragraphs]
        assert a.used_keywords == b.used_keywords
        assert a.postings_scanned == b.postings_scanned
        assert a.doc_bytes_read == b.doc_bytes_read
        assert a.relaxation_rounds == b.relaxation_rounds


def test_conjunction_cache_hits_charge_logical_work():
    index = _index(_random_texts(random.Random(9), 20))
    retr = BooleanRetriever(index, conjunction_cache=32)
    kws = [_kw("alpha"), _kw("beta", priority=1)]
    first = retr.retrieve(kws)
    assert retr.cache_stats["misses"] >= 1
    hits_before = retr.cache_stats["hits"]
    second = retr.retrieve(kws)
    assert retr.cache_stats["hits"] > hits_before
    # identical results AND identical charged work on the cached round
    assert second.matched_docs == first.matched_docs
    assert second.postings_scanned == first.postings_scanned
    assert second.doc_bytes_read == first.doc_bytes_read


def test_conjunction_cache_is_bounded():
    index = _index(_random_texts(random.Random(2), 10))
    retr = BooleanRetriever(index, conjunction_cache=4)
    vocab = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta"]
    for i, w in enumerate(vocab):
        retr.retrieve([_kw(w)])
    assert retr.cache_stats["size"] <= 4


def test_cache_disabled_still_correct():
    index = _index(["alpha beta", "beta gamma"])
    retr = BooleanRetriever(index, conjunction_cache=0)
    r = retr.retrieve([_kw("beta")])
    assert r.matched_docs == [0, 1]
    assert retr.cache_stats == {"hits": 0, "misses": 0, "size": 0}


# -- shared stem cache ------------------------------------------------------------
def test_stem_cache_bounded_lru():
    cache = StemCache(maxsize=3)
    for w in ("running", "jumping", "swimming", "flying"):
        cache(w)
    from repro.nlp.porter import stem

    assert len(cache) == 3
    assert cache("flying") == stem("flying")
    assert cache.hits >= 1


def test_shared_cache_used_by_default_index():
    before = len(SHARED_STEM_CACHE)
    _index(["some freshly invented vocabulary paragraph zorblax"])
    # Indexing routed new words through the shared cache.
    assert len(SHARED_STEM_CACHE) >= before
    assert cached_stem("Zorblax") == cached_stem("zorblax")
