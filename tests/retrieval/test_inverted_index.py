"""Tests for the inverted index over synthetic sub-collections."""

import pytest

from repro.corpus import CorpusConfig, generate_corpus
from repro.corpus.generator import Document, SubCollection
from repro.retrieval import CollectionIndex, StemCache, split_paragraphs


def make_collection(texts, collection_id=0):
    docs = [
        Document(doc_id=i, collection_id=collection_id, title=f"doc {i}",
                 text=text)
        for i, text in enumerate(texts)
    ]
    return SubCollection(collection_id, docs)


@pytest.fixture()
def index():
    return CollectionIndex(
        make_collection(
            [
                "The telephone was invented long ago.\n\nBells ring daily.",
                "Inventing telephones requires patience.",
                "Cats chase mice in the garden.",
            ]
        )
    )


class TestIndexing:
    def test_stats(self, index):
        assert index.stats.n_documents == 3
        assert index.stats.n_paragraphs == 4
        assert index.stats.n_postings > 0
        assert index.stats.index_bytes == 8 * index.stats.n_postings

    def test_stemmed_matching(self, index):
        # "invented" and "Inventing" share the stem "invent".
        assert index.document_frequency("invent") == 2

    def test_stopwords_not_indexed(self, index):
        assert index.document_frequency("the") == 0

    def test_postings_carry_term_frequency(self, index):
        postings = index.postings("telephon")
        assert postings[0] == 1
        assert postings[1] == 1

    def test_unknown_stem_empty(self, index):
        assert index.postings("zzzz") == {}
        assert index.document_frequency("zzzz") == 0
        assert index.posting_bytes("zzzz") == 0

    def test_paragraphs_of_document(self, index):
        paras = index.paragraphs_of(0)
        assert len(paras) == 2
        para, stems = paras[0]
        assert "telephone" in para.text
        assert "invent" in stems

    def test_doc_bytes(self, index):
        assert index.doc_bytes(2) == len("Cats chase mice in the garden.")

    def test_doc_ids(self, index):
        assert sorted(index.doc_ids) == [0, 1, 2]

    def test_vocabulary_size_positive(self, index):
        assert index.vocabulary_size() > 5


class TestStemCache:
    def test_caches(self):
        cache = StemCache()
        assert cache("Running") == "run"
        assert cache("running") == "run"
        assert len(cache) == 1

    def test_agrees_with_stemmer(self):
        from repro.nlp import stem

        cache = StemCache()
        for w in ("connection", "invented", "telephones"):
            assert cache(w) == stem(w)


class TestSplitParagraphs:
    def test_basic_split(self):
        paras = split_paragraphs(5, 2, "one\n\ntwo\n\nthree")
        assert [p.text for p in paras] == ["one", "two", "three"]
        assert [p.index for p in paras] == [0, 1, 2]
        assert all(p.doc_id == 5 and p.collection_id == 2 for p in paras)

    def test_blank_chunks_dropped(self):
        paras = split_paragraphs(0, 0, "a\n\n\n\n  \n\nb")
        assert [p.text for p in paras] == ["a", "b"]

    def test_keys_unique(self):
        paras = split_paragraphs(1, 0, "x\n\ny")
        assert paras[0].key != paras[1].key

    def test_size_bytes(self):
        para = split_paragraphs(0, 0, "hello")[0]
        assert para.size_bytes == 5


class TestOnGeneratedCorpus:
    def test_index_full_corpus(self):
        corpus = generate_corpus(
            CorpusConfig(n_collections=2, docs_per_collection=8,
                         vocab_size=300, seed=11)
        )
        index = CollectionIndex(corpus.collections[0])
        assert index.stats.n_documents == 8
        # Planted entity names must be retrievable.
        doc = corpus.collections[0].documents[0]
        if doc.planted:
            from repro.nlp import stem

            word = doc.planted[0].subject.split()[0]
            assert index.document_frequency(stem(word)) >= 1
