"""Tests for corpus-wide index management."""

import pytest

from repro.corpus import CorpusConfig, generate_corpus, generate_questions
from repro.nlp import EntityRecognizer, select_keywords
from repro.retrieval import IndexedCorpus


@pytest.fixture(scope="module")
def indexed():
    corpus = generate_corpus(
        CorpusConfig(n_collections=3, docs_per_collection=15, vocab_size=400,
                     seed=21)
    )
    return IndexedCorpus(corpus)


@pytest.fixture(scope="module")
def recognizer(indexed):
    kb = indexed.corpus.knowledge
    return EntityRecognizer(kb.gazetteer(), extra_nationalities=kb.nationalities)


class TestIndexedCorpus:
    def test_n_collections(self, indexed):
        assert indexed.n_collections == 3

    def test_retrieve_all_covers_every_collection(self, indexed, recognizer):
        q = generate_questions(indexed.corpus)[0]
        keywords = select_keywords(q.text, recognizer)
        results = indexed.retrieve_all(keywords)
        assert [r.collection_id for r in results] == [0, 1, 2]

    def test_retrieve_collection_matches_retrieve_all(self, indexed, recognizer):
        q = generate_questions(indexed.corpus)[3]
        keywords = select_keywords(q.text, recognizer)
        all_results = indexed.retrieve_all(keywords)
        single = indexed.retrieve_collection(1, keywords)
        assert [p.key for p in single.paragraphs] == [
            p.key for p in all_results[1].paragraphs
        ]

    def test_corpus_wide_document_frequency(self, indexed):
        from repro.nlp import stem

        name = next(iter(indexed.corpus.knowledge.entities))
        s = stem(name.split()[0])
        total = indexed.document_frequency(s)
        assert total == sum(ix.document_frequency(s) for ix in indexed.indexes)

    def test_total_stats(self, indexed):
        stats = indexed.total_stats()
        assert stats["n_documents"] == 45
        assert stats["text_bytes"] == indexed.corpus.size_bytes
        assert stats["index_bytes"] == 8 * stats["n_postings"]

    def test_answers_retrievable_for_most_questions(self, indexed, recognizer):
        """End-to-end retrieval recall: the planted answer text must be in
        the retrieved paragraphs for nearly every generated question."""
        questions = generate_questions(indexed.corpus, max_questions=40, seed=1)
        hits = 0
        for q in questions:
            keywords = select_keywords(q.text, recognizer)
            results = indexed.retrieve_all(keywords)
            found = any(
                q.expected_answer in p.text
                for r in results
                for p in r.paragraphs
            )
            hits += found
        assert hits / len(questions) > 0.9
