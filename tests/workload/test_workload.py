"""Tests for workload generation and metrics."""

import numpy as np
import pytest

from repro.workload import (
    high_load_count,
    poisson_arrivals,
    speedup_table,
    staggered_arrivals,
    summarize_latencies,
    trec_mix_profiles,
)


class TestArrivals:
    def test_high_load_count_is_8n(self):
        assert high_load_count(4) == 32
        assert high_load_count(12) == 96

    def test_staggered_non_decreasing_and_bounded(self):
        times = staggered_arrivals(50, max_stagger_s=2.0, seed=1)
        assert times[0] == 0.0
        gaps = np.diff(times)
        assert (gaps >= 0).all()
        assert (gaps <= 2.0).all()

    def test_staggered_deterministic(self):
        assert staggered_arrivals(10, seed=3) == staggered_arrivals(10, seed=3)

    def test_staggered_empty(self):
        assert staggered_arrivals(0) == []

    def test_staggered_negative_rejected(self):
        with pytest.raises(ValueError):
            staggered_arrivals(-1)

    def test_poisson_positive_increasing(self):
        times = poisson_arrivals(20, rate_per_s=2.0, seed=1)
        assert len(times) == 20
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_poisson_rate_validated(self):
        with pytest.raises(ValueError):
            poisson_arrivals(5, rate_per_s=0.0)


class TestTrecMix:
    def test_bimodal_population(self):
        profiles = trec_mix_profiles(100, seed=1)
        from repro.qa import CostModel

        model = CostModel.default()
        times = sorted(p.sequential_seconds(model) for p in profiles)
        # Mixture of ~48 s and ~94 s questions: wide spread, overall mean
        # around 70 s.
        mean = np.mean(times)
        assert 55 < mean < 90
        assert times[10] < 50
        assert times[-10] > 90

    def test_qids_sequential(self):
        profiles = trec_mix_profiles(10, seed=2)
        assert [p.qid for p in profiles] == list(range(10))

    def test_deterministic(self):
        a = trec_mix_profiles(10, seed=5)
        b = trec_mix_profiles(10, seed=5)
        assert [p.ap_cpu_s for p in a] == [p.ap_cpu_s for p in b]


class TestMetrics:
    def _report(self, times):
        from repro.core.qa_task import TaskResult
        from repro.core.system import WorkloadReport

        results = []
        for i, t in enumerate(times):
            r = TaskResult(qid=i, arrival_time=0.0)
            r.start_time = 0.0
            r.end_time = t
            results.append(r)
        return WorkloadReport(
            results=results, makespan_s=max(times), migrations_qa=0,
            migrations_pr=0, migrations_ap=0,
        )

    def test_summary_statistics(self):
        s = summarize_latencies(self._report([1.0, 2.0, 3.0, 4.0]))
        assert s.n == 4
        assert s.mean_s == pytest.approx(2.5)
        assert s.median_s == pytest.approx(2.5)
        assert s.min_s == 1.0
        assert s.max_s == 4.0

    def test_summary_empty(self):
        from repro.core.system import WorkloadReport

        s = summarize_latencies(WorkloadReport([], 0.0, 0, 0, 0))
        assert s.n == 0

    def test_throughput(self):
        report = self._report([30.0, 60.0])
        assert report.throughput_qpm == pytest.approx(2.0)

    def test_speedup_table(self):
        out = speedup_table({"PR": 40.0, "AP": 120.0}, {"PR": 10.0, "AP": 30.0})
        assert out == {"PR": 4.0, "AP": 4.0}

    def test_speedup_table_zero_guard(self):
        out = speedup_table({"PR": 40.0}, {"PR": 0.0})
        assert out["PR"] == 0.0
