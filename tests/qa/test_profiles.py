"""Tests for question profiles (real-pipeline and synthetic)."""

import numpy as np
import pytest

from repro.corpus import CorpusConfig, generate_corpus, generate_questions
from repro.nlp import EntityRecognizer
from repro.qa import (
    CostModel,
    QAPipeline,
    SyntheticProfileGenerator,
    SyntheticProfileParams,
    profile_question,
)
from repro.retrieval import IndexedCorpus


@pytest.fixture(scope="module")
def pipeline():
    corpus = generate_corpus(
        CorpusConfig(n_collections=3, docs_per_collection=12, vocab_size=400,
                     seed=41)
    )
    recognizer = EntityRecognizer(
        corpus.knowledge.gazetteer(),
        extra_nationalities=corpus.knowledge.nationalities,
    )
    return QAPipeline(IndexedCorpus(corpus), recognizer), generate_questions(corpus)


class TestRealProfiles:
    def test_structure(self, pipeline):
        pipe, questions = pipeline
        model = CostModel.default()
        prof = profile_question(pipe, questions[0].text, model, qid=questions[0].qid)
        assert len(prof.collections) == 3
        assert prof.qid == questions[0].qid
        assert prof.qp_cpu_s > 0
        assert prof.n_accepted == len(prof.paragraphs)
        assert prof.n_retrieved >= prof.n_accepted

    def test_memory_in_paper_range(self, pipeline):
        pipe, questions = pipeline
        prof = profile_question(pipe, questions[1].text, CostModel.default())
        lo, hi = CostModel.default().memory_per_question
        assert lo <= prof.memory_bytes <= hi

    def test_aggregates_consistent(self, pipeline):
        pipe, questions = pipeline
        model = CostModel.default()
        prof = profile_question(pipe, questions[2].text, model)
        secs = prof.sequential_module_seconds(model)
        assert prof.sequential_seconds(model) == pytest.approx(sum(secs.values()))
        assert prof.ap_cpu_s == pytest.approx(
            sum(p.ap_cpu_s for p in prof.paragraphs)
        )

    def test_deterministic(self, pipeline):
        pipe, questions = pipeline
        model = CostModel.default()
        a = profile_question(pipe, questions[3].text, model, qid=3)
        b = profile_question(pipe, questions[3].text, model, qid=3)
        assert a.memory_bytes == b.memory_bytes
        assert a.ap_cpu_s == b.ap_cpu_s


class TestSyntheticProfiles:
    def test_average_population_matches_table2(self):
        """Mean module times must match the paper's TREC-9 averages."""
        gen = SyntheticProfileGenerator(seed=1)
        profiles = gen.generate_many(150)
        secs = [p.sequential_module_seconds(gen.model) for p in profiles]
        total = np.mean([sum(s.values()) for s in secs])
        assert total == pytest.approx(94.0, rel=0.10)
        ap_frac = np.mean([s["AP"] for s in secs]) / total
        assert ap_frac == pytest.approx(0.697, abs=0.05)
        pr_frac = np.mean([s["PR"] for s in secs]) / total
        assert pr_frac == pytest.approx(0.265, abs=0.05)

    def test_complex_population_matches_table8(self):
        gen = SyntheticProfileGenerator(SyntheticProfileParams.complex(), seed=2)
        profiles = gen.generate_many(150)
        secs = [p.sequential_module_seconds(gen.model) for p in profiles]
        assert np.mean([s["PR"] for s in secs]) == pytest.approx(38.0, rel=0.10)
        assert np.mean([s["AP"] for s in secs]) == pytest.approx(117.5, rel=0.10)
        assert all(p.n_accepted >= 240 for p in profiles)

    def test_rank_decay_in_ap_costs(self):
        """Earlier (higher-ranked) paragraphs must be costlier on average —
        the property ISEND exploits (Section 4.1.3)."""
        gen = SyntheticProfileGenerator(
            SyntheticProfileParams.complex(), seed=3
        )
        prof = gen.generate(0)
        n = prof.n_accepted
        head = np.mean([p.ap_cpu_s for p in prof.paragraphs[: n // 4]])
        tail = np.mean([p.ap_cpu_s for p in prof.paragraphs[-n // 4 :]])
        assert head > 1.3 * tail

    def test_collection_skew_present(self):
        """PR per-collection costs vary (max/mean well above 1)."""
        gen = SyntheticProfileGenerator(
            SyntheticProfileParams.complex(), seed=4
        )
        ratios = []
        for prof in gen.generate_many(30):
            times = [
                c.cost.seconds_on(gen.model.hardware) for c in prof.collections
            ]
            ratios.append(max(times) / np.mean(times))
        assert 1.2 < np.mean(ratios) < 3.0

    def test_scaled_population(self):
        base = SyntheticProfileParams()
        small = base.scaled(0.5)
        assert small.ap_seconds_mean == pytest.approx(base.ap_seconds_mean / 2)
        assert small.n_accepted_mean == pytest.approx(base.n_accepted_mean / 2)

    def test_determinism(self):
        a = SyntheticProfileGenerator(seed=9).generate_many(5)
        b = SyntheticProfileGenerator(seed=9).generate_many(5)
        for pa, pb in zip(a, b):
            assert pa.ap_cpu_s == pb.ap_cpu_s
            assert pa.n_accepted == pb.n_accepted

    def test_qids_assigned(self):
        profs = SyntheticProfileGenerator(seed=1).generate_many(3, start_qid=10)
        assert [p.qid for p in profs] == [10, 11, 12]
