"""Unit tests for the five Q/A pipeline modules."""

import pytest

from repro.corpus import CorpusConfig, generate_corpus
from repro.nlp import EntityRecognizer, EntityType, Gazetteer, Keyword, stem
from repro.qa import (
    AnswerProcessor,
    ParagraphOrderer,
    ParagraphRetriever,
    ParagraphScorer,
    Question,
    QuestionProcessor,
    ScoredParagraph,
    merge_answers,
)
from repro.qa.question import Answer, ProcessedQuestion
from repro.retrieval import IndexedCorpus, Paragraph


def kw(text, priority=0):
    words = text.split()
    return Keyword(
        text=text,
        stems=tuple(stem(w) for w in words),
        priority=priority,
        is_phrase=len(words) > 1,
    )


def para(text, doc_id=0, index=0):
    return Paragraph(doc_id=doc_id, collection_id=0, index=index, text=text)


@pytest.fixture()
def recognizer():
    g = Gazetteer()
    g.add("Taj Mahal", EntityType.LOCATION)
    g.add("Agra", EntityType.LOCATION)
    g.add("Delhi", EntityType.LOCATION)
    g.add("Alexander Bell", EntityType.PERSON)
    return EntityRecognizer(g)


class TestQuestionProcessor:
    def test_produces_type_and_keywords(self, recognizer):
        qp = QuestionProcessor(recognizer)
        processed = qp.process(Question(0, "Where is the Taj Mahal?"))
        assert processed.answer_type is EntityType.LOCATION
        assert any(k.text == "Taj Mahal" for k in processed.keywords)

    def test_keyword_cap(self, recognizer):
        qp = QuestionProcessor(recognizer, max_keywords=2)
        processed = qp.process(
            Question(0, "Which distant ancient beautiful temple stands there?")
        )
        assert len(processed.keywords) <= 2


class TestParagraphScorer:
    def test_more_keywords_scores_higher(self):
        scorer = ParagraphScorer()
        kws = [kw("temple"), kw("garden", 1)]
        both = scorer.score_one(para("the temple garden is lovely"), [k.stems for k in kws])
        one = scorer.score_one(para("the temple is lovely"), [k.stems for k in kws])
        assert both.score > one.score
        assert both.keywords_present == 2
        assert one.keywords_present == 1

    def test_no_keywords_scores_zero(self):
        scorer = ParagraphScorer()
        sp = scorer.score_one(para("nothing relevant here"), [kw("temple").stems])
        assert sp.score == 0.0
        assert sp.keywords_present == 0

    def test_proximity_beats_distance(self):
        scorer = ParagraphScorer()
        kws = [kw("temple").stems, kw("garden").stems]
        near = scorer.score_one(para("temple garden stands"), kws)
        far = scorer.score_one(
            para("temple " + "filler " * 30 + "garden"), kws
        )
        assert near.score > far.score

    def test_phrase_matching_in_order(self):
        scorer = ParagraphScorer()
        phrase = kw("Taj Mahal")
        hit = scorer.score_one(para("the Taj Mahal gleams"), [phrase.stems])
        miss = scorer.score_one(para("Mahal Taj reversed words"), [phrase.stems])
        assert hit.keywords_present == 1
        assert miss.keywords_present == 0

    def test_score_many(self, recognizer):
        scorer = ParagraphScorer()
        qp = QuestionProcessor(recognizer)
        processed = qp.process(Question(0, "Where is the Taj Mahal?"))
        scored = scorer.score(processed, [para("Taj Mahal is in Agra"), para("x")])
        assert len(scored) == 2


class TestParagraphOrderer:
    def _scored(self, scores):
        return [
            ScoredParagraph(para(f"p{i}", doc_id=i), s, 1)
            for i, s in enumerate(scores)
        ]

    def test_descending_order(self):
        ordered = ParagraphOrderer(0.0).order(self._scored([1.0, 5.0, 3.0]))
        assert [sp.score for sp in ordered] == [5.0, 3.0, 1.0]

    def test_threshold_filters(self):
        ordered = ParagraphOrderer(0.5).order(self._scored([10.0, 6.0, 4.0]))
        assert [sp.score for sp in ordered] == [10.0, 6.0]

    def test_max_accepted_cap(self):
        ordered = ParagraphOrderer(0.0, max_accepted=2).order(
            self._scored([5, 4, 3, 2, 1])
        )
        assert len(ordered) == 2

    def test_all_zero_scores_yield_nothing(self):
        assert ParagraphOrderer(0.25).order(self._scored([0.0, 0.0])) == []

    def test_empty_input(self):
        assert ParagraphOrderer().order([]) == []

    def test_deterministic_tie_break(self):
        scored = self._scored([3.0, 3.0, 3.0])
        a = ParagraphOrderer(0.0).order(scored)
        b = ParagraphOrderer(0.0).order(list(reversed(scored)))
        assert [sp.paragraph.key for sp in a] == [sp.paragraph.key for sp in b]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ParagraphOrderer(threshold_fraction=1.5)
        with pytest.raises(ValueError):
            ParagraphOrderer(max_accepted=0)


class TestAnswerProcessor:
    def _processed(self, recognizer, text="Where is the Taj Mahal?"):
        return QuestionProcessor(recognizer).process(Question(0, text))

    def test_extracts_planted_answer(self, recognizer):
        ap = AnswerProcessor(recognizer)
        processed = self._processed(recognizer)
        sp = ScoredParagraph(
            para("The famous Taj Mahal is located in Agra and attracts visitors."),
            100.0,
            1,
        )
        answers = ap.extract(processed, [sp])
        assert answers
        assert answers[0].text == "Agra"
        assert answers[0].entity_type is EntityType.LOCATION

    def test_question_entity_not_returned_as_answer(self, recognizer):
        ap = AnswerProcessor(recognizer)
        processed = self._processed(recognizer)
        sp = ScoredParagraph(para("The Taj Mahal is in Agra."), 10.0, 1)
        answers = ap.extract(processed, [sp])
        assert all(a.text != "Taj Mahal" for a in answers)

    def test_candidate_near_keywords_beats_far(self, recognizer):
        ap = AnswerProcessor(recognizer)
        processed = self._processed(recognizer)
        text = (
            "The Taj Mahal stands in Agra today. "
            + "filler " * 40
            + "Delhi is a city."
        )
        answers = ap.extract(processed, [ScoredParagraph(para(text), 10.0, 1)])
        assert answers[0].text == "Agra"

    def test_n_answers_cap(self, recognizer):
        ap = AnswerProcessor(recognizer, n_answers=1)
        processed = self._processed(recognizer)
        sp = ScoredParagraph(para("Taj Mahal near Agra and Delhi region."), 10.0, 1)
        assert len(ap.extract(processed, [sp])) <= 1

    def test_short_and_long_windows(self, recognizer):
        ap = AnswerProcessor(recognizer)
        processed = self._processed(recognizer)
        text = "x " * 100 + "the Taj Mahal sits in Agra " + "y " * 100
        answers = ap.extract(processed, [ScoredParagraph(para(text), 10.0, 1)])
        best = answers[0]
        assert len(best.short.encode()) <= 60
        assert len(best.long.encode()) <= 260
        assert "Agra" in best.short
        assert "Agra" in best.long

    def test_no_candidates_no_answers(self, recognizer):
        ap = AnswerProcessor(recognizer)
        processed = self._processed(recognizer)
        sp = ScoredParagraph(para("nothing typed matches here at all"), 10.0, 1)
        assert ap.extract(processed, [sp]) == []

    def test_invalid_n_answers(self, recognizer):
        with pytest.raises(ValueError):
            AnswerProcessor(recognizer, n_answers=0)


class TestMergeAnswers:
    def _ans(self, text, score, key=(0, 0)):
        return Answer(
            text=text, short=text, long=text, score=score,
            paragraph_key=key, entity_type=EntityType.LOCATION,
        )

    def test_global_order(self):
        merged = merge_answers(
            [[self._ans("a", 1.0)], [self._ans("b", 3.0)], [self._ans("c", 2.0)]],
            n_answers=3,
        )
        assert [a.text for a in merged] == ["b", "c", "a"]

    def test_deduplication_keeps_best(self):
        merged = merge_answers(
            [[self._ans("Agra", 1.0, (0, 0))], [self._ans("agra", 5.0, (1, 0))]],
            n_answers=5,
        )
        assert len(merged) == 1
        assert merged[0].score == 5.0

    def test_cap(self):
        groups = [[self._ans(f"x{i}", float(i)) for i in range(10)]]
        assert len(merge_answers(groups, n_answers=3)) == 3

    def test_empty(self):
        assert merge_answers([], 5) == []
        assert merge_answers([[], []], 5) == []
