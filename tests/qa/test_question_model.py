"""Tests for the Q/A data model helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp import EntityType
from repro.qa import ModuleTimings, QAResult, Question
from repro.qa.question import Answer


class TestQuestion:
    def test_size_bytes_utf8(self):
        assert Question(0, "abc").size_bytes == 3
        assert Question(0, "héllo").size_bytes == 6  # é is two bytes


class TestModuleTimings:
    def test_total_sums_modules(self):
        t = ModuleTimings(qp=1.0, pr=2.0, ps=3.0, po=4.0, ap=5.0)
        assert t.total == 15.0

    def test_fractions_sum_to_one(self):
        t = ModuleTimings(qp=1.0, pr=2.0, ps=3.0, po=4.0, ap=5.0)
        assert sum(t.fractions().values()) == pytest.approx(1.0)

    def test_zero_timings_safe(self):
        t = ModuleTimings()
        assert t.total == 0.0
        fractions = t.fractions()
        assert all(v == 0.0 for v in fractions.values())

    @given(
        values=st.lists(
            st.floats(min_value=0.001, max_value=1e3), min_size=5, max_size=5
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_fractions_property(self, values):
        t = ModuleTimings(*values)
        fractions = t.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert all(0 <= v <= 1 for v in fractions.values())


class TestAnswer:
    def _answer(self, long_text):
        return Answer(
            text="x", short="x", long=long_text, score=1.0,
            paragraph_key=(0, 0), entity_type=EntityType.LOCATION,
        )

    def test_size_bytes_is_long_window(self):
        assert self._answer("abcd").size_bytes == 4


class TestQAResult:
    def test_best_is_first_answer(self):
        answers = [
            Answer(text=t, short=t, long=t, score=s, paragraph_key=(0, 0),
                   entity_type=EntityType.LOCATION)
            for t, s in (("a", 9.0), ("b", 5.0))
        ]
        result = QAResult(
            processed=None, answers=answers, n_retrieved=2, n_accepted=2
        )
        assert result.best.text == "a"

    def test_best_none_when_empty(self):
        result = QAResult(processed=None, answers=[], n_retrieved=0, n_accepted=0)
        assert result.best is None
