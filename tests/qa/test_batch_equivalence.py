"""Batched execution (PR 7) must be bit-identical to serial execution.

``QAPipeline.answer_batch`` amortizes work across a batch — duplicate
questions replay their first execution, posting fetches are shared
through a batch-scoped map, PS/AP keyword ids resolve once per question
— but the contract is strict equivalence: answers, paragraph ranks,
work counters, *and* the conjunction/stem cache statistics afterwards
must equal ``[pipeline.answer(q) for q in batch]`` run from the same
starting state.  The Hypothesis properties drive random batches
(duplicates included) through both paths on fresh retriever stacks; the
regression tests pin the cache-statistics replay and the sharing
accounting.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.throughput_bench import _fingerprint
from repro.nlp import EntityRecognizer
from repro.nlp.stemming import SHARED_STEM_CACHE
from repro.observability.metrics import MetricsRegistry
from repro.observability.names import (
    RETRIEVAL_BATCH_POSTINGS_SHARED,
    RETRIEVAL_BATCH_QUESTIONS,
)
from repro.qa import QAPipeline


@pytest.fixture(scope="module")
def stack(shared_corpus, shared_indexed_corpus, shared_questions):
    """Recognizer + question pool; pipelines are built fresh per test."""
    recognizer = EntityRecognizer(
        shared_corpus.knowledge.gazetteer(),
        extra_nationalities=shared_corpus.knowledge.nationalities,
    )
    pool = [q.text for q in shared_questions[:8]]
    # Warm the (global) shared stem cache with every pool question once,
    # so serial and batched runs below start from the same cache state.
    warm = QAPipeline(
        shared_indexed_corpus.reconfigured(conjunction_cache=64),
        recognizer,
    )
    for text in pool:
        warm.answer(text)
    return shared_indexed_corpus, recognizer, pool


def _fresh(indexed, recognizer, cache=64, metrics=None):
    return QAPipeline(
        indexed.reconfigured(conjunction_cache=cache),
        recognizer,
        metrics=metrics,
    )


def _stem_counters() -> tuple[int, int]:
    return SHARED_STEM_CACHE.hits, SHARED_STEM_CACHE.misses


class TestBatchProperty:
    @settings(max_examples=15, deadline=None)
    @given(picks=st.lists(st.integers(0, 7), min_size=1, max_size=10))
    def test_answer_batch_matches_serial(self, stack, picks):
        """Random batches — duplicates likely — fingerprint-match serial."""
        indexed, recognizer, pool = stack
        batch = [pool[i] for i in picks]

        serial = _fresh(indexed, recognizer)
        h0, m0 = _stem_counters()
        expected = [_fingerprint(serial.answer(q)) for q in batch]
        serial_stems = (
            SHARED_STEM_CACHE.hits - h0,
            SHARED_STEM_CACHE.misses - m0,
        )

        batched = _fresh(indexed, recognizer)
        h0, m0 = _stem_counters()
        results = batched.answer_batch(batch)
        batched_stems = (
            SHARED_STEM_CACHE.hits - h0,
            SHARED_STEM_CACHE.misses - m0,
        )

        assert [_fingerprint(r) for r in results] == expected
        assert batched_stems == serial_stems
        assert [
            r.cache_stats for r in serial.indexed.retrievers
        ] == [r.cache_stats for r in batched.indexed.retrievers]

    @settings(max_examples=10, deadline=None)
    @given(i=st.integers(0, 7))
    def test_batch_of_one_matches_serial(self, stack, i):
        indexed, recognizer, pool = stack
        serial = _fresh(indexed, recognizer)
        expected = _fingerprint(serial.answer(pool[i]))
        batched = _fresh(indexed, recognizer)
        [result] = batched.answer_batch([pool[i]])
        assert _fingerprint(result) == expected
        assert batched.last_batch_stats.n_questions == 1
        assert batched.last_batch_stats.n_distinct == 1


class TestBatchRegression:
    def test_empty_batch(self, stack):
        indexed, recognizer, _ = stack
        pipeline = _fresh(indexed, recognizer)
        assert pipeline.answer_batch([]) == []
        assert pipeline.last_batch_stats.n_questions == 0

    def test_cache_stats_survive_eviction_pressure(self, stack):
        """Replay must equal serial even when the conjunction LRU evicts.

        A capacity-2 cache forces evictions between the duplicate's first
        execution and its replay; the replay recomputes evicted entries
        exactly as serial re-execution would, so hit/miss counters match.
        """
        indexed, recognizer, pool = stack
        workload = [pool[0], pool[1], pool[2], pool[0], pool[3], pool[0]]

        serial = _fresh(indexed, recognizer, cache=2)
        h0, m0 = _stem_counters()
        expected = [_fingerprint(serial.answer(q)) for q in workload]
        serial_stems = (
            SHARED_STEM_CACHE.hits - h0,
            SHARED_STEM_CACHE.misses - m0,
        )

        batched = _fresh(indexed, recognizer, cache=2)
        h0, m0 = _stem_counters()
        results = batched.answer_batch(workload)
        batched_stems = (
            SHARED_STEM_CACHE.hits - h0,
            SHARED_STEM_CACHE.misses - m0,
        )

        assert [_fingerprint(r) for r in results] == expected
        assert batched_stems == serial_stems
        assert [
            r.cache_stats for r in serial.indexed.retrievers
        ] == [r.cache_stats for r in batched.indexed.retrievers]

    def test_sharing_stats_account_duplicates(self, stack):
        indexed, recognizer, pool = stack
        workload = [pool[0]] * 3 + [pool[1]] * 2 + [pool[2]]
        pipeline = _fresh(indexed, recognizer)
        results = pipeline.answer_batch(workload)
        stats = pipeline.last_batch_stats
        assert len(results) == 6
        assert stats.n_questions == 6
        assert stats.n_distinct == 3
        assert stats.sharing_factor == pytest.approx(2.0)
        # Duplicates carry the same logical work charge as serial runs,
        # so the amortized charge is below the per-question mean of the
        # distinct executions only through batching of *fetches*; the
        # scanned total itself equals the serial total.
        serial = _fresh(indexed, recognizer)
        serial_scanned = sum(
            serial.answer(q).work["retrieval.postings_scanned"]
            for q in workload
        )
        assert stats.postings_scanned == pytest.approx(serial_scanned)
        assert stats.postings_fetches > 0
        assert stats.postings_shared > 0

    def test_batch_metrics_recorded(self, stack):
        indexed, recognizer, pool = stack
        metrics = MetricsRegistry()
        pipeline = _fresh(indexed, recognizer, metrics=metrics)
        pipeline.answer_batch([pool[0], pool[0], pool[1]])
        assert metrics.value(RETRIEVAL_BATCH_QUESTIONS) == 3.0
        assert metrics.value(RETRIEVAL_BATCH_POSTINGS_SHARED) > 0

    def test_qids_propagate(self, stack):
        indexed, recognizer, pool = stack
        pipeline = _fresh(indexed, recognizer)
        results = pipeline.answer_batch(
            [pool[0], pool[0]], qids=[17, 23]
        )
        assert [r.processed.question.qid for r in results] == [17, 23]
