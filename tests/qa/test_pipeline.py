"""End-to-end tests for the sequential Q/A pipeline."""

import pytest


@pytest.fixture
def setup(shared_pipeline, shared_questions):
    """The session-scoped pipeline stack from tests/conftest.py."""
    return shared_pipeline, shared_questions


class TestEndToEnd:
    def test_answers_are_ranked(self, setup):
        pipeline, questions = setup
        result = pipeline.answer(questions[0].text)
        scores = [a.score for a in result.answers]
        assert scores == sorted(scores, reverse=True)

    def test_accuracy_over_question_sample(self, setup):
        """Most generated questions must be answered correctly in top 5 —
        the reproduction's MRR analogue of Falcon's 66-86 % TREC scores."""
        pipeline, questions = setup
        sample = questions[:60]
        hits = 0
        for q in sample:
            result = pipeline.answer(q.text, qid=q.qid)
            hits += any(
                q.expected_answer.lower() in a.text.lower()
                or a.text.lower() in q.expected_answer.lower()
                for a in result.answers
            )
        assert hits / len(sample) > 0.75

    def test_timings_populated(self, setup):
        pipeline, questions = setup
        result = pipeline.answer(questions[1].text)
        t = result.timings
        assert t.total > 0
        fractions = t.fractions()
        assert abs(sum(fractions.values()) - 1.0) < 1e-9

    def test_work_counters_populated(self, setup):
        from repro.observability.names import N_KEYWORDS, POSTINGS_SCANNED

        pipeline, questions = setup
        result = pipeline.answer(questions[2].text)
        assert result.work[POSTINGS_SCANNED] >= 0
        assert result.work[N_KEYWORDS] >= 1

    def test_accepts_question_object_or_string(self, setup):
        from repro.qa import Question

        pipeline, questions = setup
        a = pipeline.answer(questions[0].text, qid=7)
        b = pipeline.answer(Question(7, questions[0].text))
        assert [x.text for x in a.answers] == [x.text for x in b.answers]

    def test_counts_consistent(self, setup):
        pipeline, questions = setup
        result = pipeline.answer(questions[3].text)
        assert result.n_accepted <= result.n_retrieved

    def test_unanswerable_question_returns_gracefully(self, setup):
        pipeline, _ = setup
        result = pipeline.answer("Where is the Zzyzx Qwerty Pavilion?")
        assert isinstance(result.answers, list)  # may be empty; must not raise

    def test_deterministic(self, setup):
        pipeline, questions = setup
        a = pipeline.answer(questions[5].text)
        b = pipeline.answer(questions[5].text)
        assert [x.text for x in a.answers] == [x.text for x in b.answers]
        assert [x.score for x in a.answers] == [x.score for x in b.answers]
