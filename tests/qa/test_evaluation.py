"""Tests for the answer-quality evaluation module."""

import pytest

from repro.corpus import CorpusConfig, generate_corpus, generate_questions
from repro.corpus.questions import TrecQuestion
from repro.nlp import EntityRecognizer, EntityType
from repro.qa import QAPipeline
from repro.qa.evaluation import (
    EvaluationReport,
    QuestionOutcome,
    evaluate,
    score_result,
)
from repro.qa.question import Answer, QAResult
from repro.retrieval import IndexedCorpus


def make_result(answer_texts):
    answers = [
        Answer(
            text=text, short=text, long=text, score=10.0 - i,
            paragraph_key=(0, 0), entity_type=EntityType.LOCATION,
        )
        for i, text in enumerate(answer_texts)
    ]
    return QAResult(
        processed=None, answers=answers, n_retrieved=1, n_accepted=1
    )


def make_question(expected="Agra", qid=0):
    from repro.corpus.knowledge import Fact

    return TrecQuestion(
        qid=qid,
        text="Where is the Taj Mahal?",
        fact=Fact("Taj Mahal", "located_in", expected, EntityType.LOCATION),
        expected_answer=expected,
        answer_type=EntityType.LOCATION,
    )


class TestScoring:
    def test_rank_one_hit(self):
        outcome = score_result(make_question(), make_result(["Agra", "Delhi"]))
        assert outcome.rank == 1
        assert outcome.reciprocal_rank == 1.0

    def test_rank_three_hit(self):
        outcome = score_result(
            make_question(), make_result(["Delhi", "Pune", "Agra"])
        )
        assert outcome.rank == 3
        assert outcome.reciprocal_rank == pytest.approx(1 / 3)

    def test_miss(self):
        outcome = score_result(make_question(), make_result(["Delhi"]))
        assert outcome.rank is None
        assert outcome.reciprocal_rank == 0.0

    def test_lenient_containment_match(self):
        outcome = score_result(
            make_question(expected="Agra"), make_result(["in Agra today"])
        )
        assert outcome.rank == 1

    def test_case_insensitive(self):
        outcome = score_result(make_question(), make_result(["AGRA"]))
        assert outcome.rank == 1

    def test_empty_answers(self):
        outcome = score_result(make_question(), make_result([]))
        assert outcome.rank is None
        assert outcome.top_answer == ""


class TestReport:
    def _report(self, ranks):
        report = EvaluationReport()
        for i, rank in enumerate(ranks):
            report.outcomes.append(
                QuestionOutcome(
                    qid=i, question="q", expected="e", rank=rank, top_answer="a"
                )
            )
        return report

    def test_mrr(self):
        report = self._report([1, 2, None, 4])
        assert report.mrr == pytest.approx((1 + 0.5 + 0 + 0.25) / 4)

    def test_precision_at_k(self):
        report = self._report([1, 2, 3, None, 7])
        assert report.precision_at(1) == pytest.approx(0.2)
        assert report.precision_at(3) == pytest.approx(0.6)
        assert report.precision_at(10) == pytest.approx(0.8)

    def test_misses(self):
        report = self._report([1, None, None])
        assert len(report.misses()) == 2

    def test_empty_report(self):
        report = EvaluationReport()
        assert report.mrr == 0.0
        assert report.precision_at(5) == 0.0

    def test_summary_string(self):
        report = self._report([1, 2])
        assert "MRR" in report.summary()


class TestEndToEndEvaluation:
    def test_pipeline_quality_floor(self):
        """The reproduction pipeline must clear a quality floor comparable
        to Falcon's TREC regime on its (cleaner) synthetic corpus."""
        corpus = generate_corpus(
            CorpusConfig(n_collections=2, docs_per_collection=15,
                         vocab_size=400, seed=71)
        )
        recognizer = EntityRecognizer(
            corpus.knowledge.gazetteer(),
            extra_nationalities=corpus.knowledge.nationalities,
        )
        pipeline = QAPipeline(IndexedCorpus(corpus), recognizer)
        questions = generate_questions(corpus, max_questions=40, seed=2)
        report = evaluate(pipeline, questions)
        assert report.n == 40
        assert report.precision_at(5) > 0.75
        assert report.mrr > 0.55
