"""Equivalence of the precomputed-term fast path vs the naive reference.

The materialized paragraph term layer must be a pure optimization: PS
ranks, AP answer spans and the Boolean engine's cost accounting have to be
byte-identical whether paragraphs are re-tokenized per question (the seed
implementation) or resolved through the index's precomputed
:class:`ParagraphTerms`.  These property tests drive both paths over
randomized corpora and randomized keyword sets.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus import generate_questions
from repro.corpus.generator import (
    CorpusConfig,
    Document,
    SubCollection,
    generate_corpus,
)
from repro.nlp.entities import EntityRecognizer, EntityType
from repro.nlp.keywords import Keyword
from repro.nlp.stemming import cached_stem
from repro.qa.answer_processing import AnswerProcessor
from repro.qa.paragraph_scoring import (
    ParagraphScorer,
    keyword_positions,
    keyword_positions_from_terms,
)
from repro.qa.pipeline import QAPipeline
from repro.qa.question import ProcessedQuestion, Question
from repro.retrieval.inverted_index import CollectionIndex

# Vocabulary engineered to exercise stemming collisions ("run"/"running"),
# stopwords, capitalization, numbers/percent/money tokens and punctuation.
_VOCAB = [
    "run", "running", "runs", "runner", "question", "questions", "answer",
    "system", "systems", "distributed", "Boston", "Einstein", "Texas",
    "the", "of", "and", "in", "was", "1999", "12%", "$400", "born",
    "capital", "city", "located", ",", ".", "famous", "physicist",
]

_words = st.lists(st.sampled_from(_VOCAB), min_size=4, max_size=40)
_paragraph = _words.map(lambda ws: " ".join(ws))
_doc_paragraphs = st.lists(_paragraph, min_size=1, max_size=4)


def _make_index(doc_paragraphs: list[list[str]]) -> CollectionIndex:
    docs = [
        Document(
            doc_id=i,
            collection_id=0,
            title=f"doc {i}",
            text="\n\n".join(paras),
        )
        for i, paras in enumerate(doc_paragraphs)
    ]
    return CollectionIndex(SubCollection(collection_id=0, documents=docs))


def _make_keywords(kw_specs: list[list[str]]) -> list[Keyword]:
    out = []
    for prio, words in enumerate(kw_specs):
        out.append(
            Keyword(
                text=" ".join(words),
                stems=tuple(cached_stem(w) for w in words),
                priority=prio,
                is_phrase=len(words) > 1,
            )
        )
    return out


_kw_word = st.sampled_from(
    ["run", "running", "question", "Boston", "Einstein", "capital", "1999",
     "physicist", "zzyzx"]  # zzyzx: never in any paragraph
)
_kw_specs = st.lists(
    st.lists(_kw_word, min_size=1, max_size=2), min_size=1, max_size=4
)


@settings(max_examples=40, deadline=None)
@given(docs=st.lists(_doc_paragraphs, min_size=1, max_size=3), kws=_kw_specs)
def test_keyword_positions_fast_path_identical(docs, kws):
    index = _make_index(docs)
    kstems = [kw.stems for kw in _make_keywords(kws)]
    for doc in index.doc_ids:
        for para, _stems in index.paragraphs_of(doc):
            terms = index.paragraph_terms(para.key)
            assert terms is not None
            naive, stems_at = keyword_positions(para.text, kstems)
            fast = keyword_positions_from_terms(terms, kstems)
            assert fast == naive
            assert terms.stems_at == tuple(stems_at)


@settings(max_examples=40, deadline=None)
@given(docs=st.lists(_doc_paragraphs, min_size=1, max_size=3), kws=_kw_specs)
def test_paragraph_scores_and_ranks_identical(docs, kws):
    index = _make_index(docs)
    keywords = _make_keywords(kws)
    processed = ProcessedQuestion(
        question=Question(qid=0, text="what runs in Boston ?"),
        answer_type=EntityType.UNKNOWN,
        keywords=tuple(keywords),
    )
    paragraphs = [
        para
        for doc in index.doc_ids
        for para, _ in index.paragraphs_of(doc)
    ]
    naive = ParagraphScorer().score(processed, paragraphs)
    fast = ParagraphScorer(
        term_lookup=lambda p: index.paragraph_terms(p.key)
    ).score(processed, paragraphs)
    assert [(sp.score, sp.keywords_present) for sp in naive] == [
        (sp.score, sp.keywords_present) for sp in fast
    ]
    rank = lambda scored: [  # noqa: E731
        sp.paragraph.key
        for sp in sorted(scored, key=lambda s: (-s.score, s.paragraph.key))
    ]
    assert rank(naive) == rank(fast)


@settings(max_examples=25, deadline=None)
@given(docs=st.lists(_doc_paragraphs, min_size=1, max_size=3), kws=_kw_specs)
def test_answer_spans_identical(docs, kws):
    index = _make_index(docs)
    keywords = _make_keywords(kws)
    processed = ProcessedQuestion(
        question=Question(qid=0, text="who was born in 1999 ?"),
        answer_type=EntityType.UNKNOWN,
        keywords=tuple(keywords),
    )
    recognizer = EntityRecognizer()
    naive_ap = AnswerProcessor(recognizer)
    fast_ap = AnswerProcessor(
        recognizer, term_lookup=lambda p: index.paragraph_terms(p.key)
    )
    paragraphs = [
        para
        for doc in index.doc_ids
        for para, _ in index.paragraphs_of(doc)
    ]
    scorer = ParagraphScorer()
    processed_paras = scorer.score(processed, paragraphs)
    a = naive_ap.extract(processed, processed_paras)
    b = fast_ap.extract(processed, processed_paras)
    assert [
        (x.text, x.short, x.long, x.score, x.paragraph_key, x.entity_type)
        for x in a
    ] == [
        (x.text, x.short, x.long, x.score, x.paragraph_key, x.entity_type)
        for x in b
    ]


@pytest.mark.slow
def test_full_pipeline_equivalence_on_random_corpora():
    """End-to-end: optimized pipeline == reference pipeline, several seeds."""
    for seed in (3, 11):
        config = CorpusConfig(
            n_collections=2, docs_per_collection=15, seed=seed
        )
        corpus = generate_corpus(config)
        from repro.retrieval import IndexedCorpus

        indexed = IndexedCorpus(corpus)
        recognizer = EntityRecognizer(
            corpus.knowledge.gazetteer(),
            extra_nationalities=corpus.knowledge.nationalities,
        )
        fast = QAPipeline(indexed, recognizer)
        naive = QAPipeline(
            indexed.reconfigured(conjunction_cache=0, galloping=False),
            recognizer,
            use_term_index=False,
        )
        for q in generate_questions(corpus)[:12]:
            a = naive.answer(q.text, qid=q.qid)
            b = fast.answer(q.text, qid=q.qid)
            assert a.paragraph_ranks == b.paragraph_ranks
            assert a.work == b.work  # incl. postings/doc-bytes counters
            assert (a.n_retrieved, a.n_accepted) == (b.n_retrieved, b.n_accepted)
            assert [
                (x.text, x.short, x.long, x.score, x.paragraph_key, x.entity_type)
                for x in a.answers
            ] == [
                (x.text, x.short, x.long, x.score, x.paragraph_key, x.entity_type)
                for x in b.answers
            ]
