"""Tests for the cost model."""

import pytest

from repro.qa import CostModel, ModuleCost, ReferenceHardware


class TestModuleCost:
    def test_seconds_on_reference(self):
        hw = ReferenceHardware(cpu_speed=1.0, disk_bandwidth=25e6)
        cost = ModuleCost(cpu_s=2.0, disk_bytes=50e6)
        assert cost.seconds_on(hw) == pytest.approx(2.0 + 2.0)

    def test_addition(self):
        c = ModuleCost(1.0, 10.0) + ModuleCost(2.0, 20.0)
        assert c.cpu_s == 3.0
        assert c.disk_bytes == 30.0

    def test_scaling(self):
        c = ModuleCost(1.0, 10.0).scaled(2.5)
        assert c.cpu_s == 2.5
        assert c.disk_bytes == 25.0

    def test_faster_cpu_shortens(self):
        fast = ReferenceHardware(cpu_speed=2.0)
        slow = ReferenceHardware(cpu_speed=1.0)
        cost = ModuleCost(cpu_s=4.0, disk_bytes=0.0)
        assert cost.seconds_on(fast) == cost.seconds_on(slow) / 2


class TestCostModel:
    def test_qp_cost_grows_with_keywords(self):
        m = CostModel.default()
        assert m.qp_cost(8).cpu_s > m.qp_cost(2).cpu_s
        assert m.qp_cost(5).disk_bytes == 0.0

    def test_pr_cost_split_matches_table3(self):
        """PR must be ~20 % CPU / 80 % disk on the reference node."""
        m = CostModel.default()
        cost = m.pr_collection_cost(postings_scanned=500, doc_bytes_read=20_000)
        disk_s = cost.disk_bytes / m.hardware.disk_bandwidth
        cpu_fraction = cost.cpu_s / (cost.cpu_s + disk_s)
        assert cpu_fraction == pytest.approx(0.20, abs=0.01)

    def test_pr_cost_has_floor(self):
        m = CostModel.default()
        assert m.pr_collection_cost(0, 0).disk_bytes >= m.pr_base_bytes

    def test_ps_and_ap_pure_cpu(self):
        m = CostModel.default()
        assert m.ps_cost(1000.0).disk_bytes == 0.0
        assert m.ap_paragraph_cost(1000.0, 3).disk_bytes == 0.0

    def test_ap_cost_grows_with_candidates(self):
        m = CostModel.default()
        assert (
            m.ap_paragraph_cost(1000.0, 5).cpu_s
            > m.ap_paragraph_cost(1000.0, 0).cpu_s
        )

    def test_po_cost_superlinear_in_paragraphs(self):
        m = CostModel.default()
        assert m.po_cost(1000).cpu_s > 2 * m.po_cost(100).cpu_s - m.po_base_cpu_s

    def test_with_rates_override(self):
        m = CostModel.default().with_rates(ap_cpu_per_byte=1.0)
        assert m.ap_cpu_per_byte == 1.0
        # Original untouched (frozen dataclass copies).
        assert CostModel.default().ap_cpu_per_byte != 1.0

    def test_memory_range_sane(self):
        lo, hi = CostModel.default().memory_per_question
        # The paper: 25 to 40 MB per question.
        assert lo == pytest.approx(25e6)
        assert hi == pytest.approx(40e6)
