"""Serving micro-batcher (PR 7): amortize execution, change no decision.

The batcher sits strictly *after* admission: decisions (and therefore
the decision digest) are made per question against scheduled arrival
times, then accepted requests are buffered up to ``batch_max`` or until
the oldest has waited ``batch_wait_s``, and handed to one worker as a
single ``answer_batch`` request.  These tests pin the three invariants:

* the accept/shed decision digest is byte-identical to unbatched
  serving for a fixed rate + service estimate;
* conservation still balances exactly (nothing is lost in the buffer —
  ``drain`` flushes before the pool drains);
* flush triggers behave: a full buffer flushes immediately, a partial
  buffer flushes on age via ``poll``, and batched completions carry the
  sharing stats into ``stage:PR-batch`` spans.
"""

from __future__ import annotations

import time
from dataclasses import replace

import pytest

from repro.corpus import CorpusConfig
from repro.serving import LoadgenConfig, QAServer, ServerConfig, run_loadgen
from repro.serving.workers import InlineExecutor

CORPUS = CorpusConfig(
    n_collections=3, docs_per_collection=20, vocab_size=500, seed=31
)

BASE = LoadgenConfig(
    corpus=CORPUS,
    n_questions=40,
    n_unique=12,
    workload_seed=1234,
    workers=0,
    rate_qps=120.0,
    est_service_s=0.03,
    max_queue_depth=3,
    pace=False,
    record_decisions=True,
    drain_timeout_s=30.0,
)


@pytest.fixture(scope="module")
def inline_server_parts(shared_pipeline):
    """Builder for inline micro-batched servers over the shared stack."""

    def build(batch_max: int, batch_wait_s: float = 10.0) -> QAServer:
        return QAServer(
            ServerConfig(
                corpus=CORPUS,
                workers=0,
                batch_max=batch_max,
                batch_wait_s=batch_wait_s,
            ),
            pool=InlineExecutor(shared_pipeline),
        )

    return build


class TestDecisionDigest:
    def test_digest_unchanged_by_batching(self):
        """Batched and unbatched serving shed exactly the same questions."""
        unbatched = run_loadgen(BASE)
        batched = run_loadgen(replace(BASE, batch_max=4))
        a, b = unbatched["runs"][0], batched["runs"][0]
        assert a["decision_digest"] == b["decision_digest"]
        assert a["decisions"] == b["decisions"]
        assert a["ledger"] == b["ledger"]
        assert b["batch"]["batch_max"] == 4
        assert b["batch"]["n_batched_questions"] > 0
        for run in (a, b):
            assert run["conservation_ok"]


class TestFlushBehavior:
    def test_full_buffer_flushes_immediately(
        self, inline_server_parts, shared_questions
    ):
        server = inline_server_parts(batch_max=3)
        with server:
            texts = [q.text for q in shared_questions[:3]]
            for i, text in enumerate(texts[:2]):
                server.submit(text, qid=i, arrival_s=float(i))
            assert len(server._batch_buf) == 2  # below batch_max: held
            server.submit(texts[2], qid=2, arrival_s=2.0)
            assert len(server._batch_buf) == 0  # hit batch_max: flushed
            server.poll()
            ledger = server.drain()
        assert ledger.answered == 3 and ledger.balanced
        spans = [
            s for s in server.spans.spans if s.name == "stage:PR-batch"
        ]
        assert len(spans) == 3
        assert all(s.attrs["batch_size"] == 3 for s in spans)

    def test_partial_buffer_flushes_on_age(
        self, inline_server_parts, shared_questions
    ):
        server = inline_server_parts(batch_max=8, batch_wait_s=0.01)
        with server:
            server.submit(shared_questions[0].text, qid=0, arrival_s=0.0)
            assert len(server._batch_buf) == 1
            server.poll()  # too young: still buffered
            assert len(server._batch_buf) == 1
            time.sleep(0.02)
            server.poll()  # oldest aged out: flushed and executed
            assert len(server._batch_buf) == 0
            ledger = server.drain()
        assert ledger.answered == 1 and ledger.balanced

    def test_drain_flushes_leftovers(
        self, inline_server_parts, shared_questions
    ):
        """Buffered-but-unflushed questions must not be lost at shutdown."""
        server = inline_server_parts(batch_max=8, batch_wait_s=60.0)
        with server:
            for i in range(4):
                server.submit(
                    shared_questions[i].text, qid=i, arrival_s=float(i)
                )
            assert len(server._batch_buf) == 4
            ledger = server.drain()
        assert ledger.answered == 4
        assert ledger.drained == 0
        assert ledger.balanced

    def test_batched_attribution_still_sums(
        self, inline_server_parts, shared_questions
    ):
        """stage:PR-batch spans keep the categories == wall invariant."""
        from repro.observability.attribution import attribute_question

        server = inline_server_parts(batch_max=2, batch_wait_s=0.001)
        with server:
            for i in range(4):
                server.submit(
                    shared_questions[i].text, qid=i, arrival_s=float(i)
                )
                server.poll()
            server.drain()
        checked = 0
        for qid in server.spans.question_ids():
            for root in server.spans.roots(qid):
                qa = attribute_question(server.spans, root)
                assert qa.total_attributed_s == pytest.approx(
                    qa.wall_s, abs=1e-9
                )
                checked += 1
        assert checked == 4
