"""Rolling-window SLO monitor: typed transitions on logical time."""

import json

import pytest

from repro.observability.telemetry import TelemetryWriter
from repro.serving.slo import (
    SLOConfig,
    SLOMonitor,
    SLOState,
    format_top,
    run_top,
)

CFG = SLOConfig(
    window_s=10.0,
    p99_target_s=0.5,
    breach_factor=2.0,
    shed_warn=0.10,
    shed_breach=0.50,
    min_samples=3,
)


def _feed_answered(monitor, t0, n, latency, dt=0.1, **kw):
    for i in range(n):
        monitor.record_answered(t0 + i * dt, latency, **kw)
    return t0 + (n - 1) * dt


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLOConfig(window_s=0.0)
        with pytest.raises(ValueError):
            SLOConfig(p99_target_s=-1.0)
        with pytest.raises(ValueError):
            SLOConfig(breach_factor=0.5)
        with pytest.raises(ValueError):
            SLOConfig(shed_warn=0.5, shed_breach=0.1)
        with pytest.raises(ValueError):
            SLOConfig(min_samples=0)


class TestStateMachine:
    def test_starts_ok_and_stays_ok_when_healthy(self):
        m = SLOMonitor(CFG)
        t = _feed_answered(m, 0.0, 10, latency=0.1)
        report = m.evaluate(t)
        assert report.state is SLOState.OK
        assert not report.transition and not m.transitions
        assert report.p99_s == pytest.approx(0.1)

    def test_min_samples_gate_suppresses_early_judgement(self):
        m = SLOMonitor(CFG)
        m.record_answered(0.0, latency_s=100.0)  # horribly slow, but alone
        report = m.evaluate(0.0)
        assert report.state is SLOState.OK
        assert report.n_answered == 1

    def test_ok_warn_breach_ok_cycle(self):
        m = SLOMonitor(CFG)
        # Healthy.
        t = _feed_answered(m, 0.0, 5, latency=0.1)
        assert m.evaluate(t).state is SLOState.OK
        # p99 above target but below breach_factor x target -> WARN.
        t = _feed_answered(m, t + 0.1, 5, latency=0.7)
        report = m.evaluate(t)
        assert report.state is SLOState.WARN
        assert report.transition and report.prev_state is SLOState.OK
        assert any("p99" in r for r in report.reasons)
        # p99 above 2x target -> BREACH.
        t = _feed_answered(m, t + 0.1, 10, latency=1.5)
        report = m.evaluate(t)
        assert report.state is SLOState.BREACH
        # Window slides past the bad stretch; healthy again -> OK.
        t2 = _feed_answered(m, t + CFG.window_s + 1.0, 5, latency=0.1)
        report = m.evaluate(t2)
        assert report.state is SLOState.OK
        states = [(old.value, new.value) for _, old, new, _ in m.transitions]
        assert states == [("ok", "warn"), ("warn", "breach"), ("breach", "ok")]

    def test_shed_rate_lines(self):
        m = SLOMonitor(CFG)
        t = _feed_answered(m, 0.0, 8, latency=0.1)
        m.record_shed(t, reason="queue_full")  # 1/9 ~ 11% >= warn 10%
        report = m.evaluate(t)
        assert report.state is SLOState.WARN
        assert any("shed rate" in r for r in report.reasons)
        for i in range(8):
            m.record_shed(t + 0.01 * (i + 1), reason="queue_full")
        report = m.evaluate(t + 0.1)  # 9/17 > breach 50%? 9/17=52.9%
        assert report.state is SLOState.BREACH

    def test_deadline_violations_warn_even_when_fast(self):
        m = SLOMonitor(CFG)
        t = _feed_answered(m, 0.0, 5, latency=0.1)
        m.record_answered(t + 0.1, 0.1, deadline_violated=True)
        report = m.evaluate(t + 0.1)
        assert report.state is SLOState.WARN
        assert report.deadline_violations == 1
        assert any("deadline" in r for r in report.reasons)

    def test_window_expiry_trims_outcomes(self):
        m = SLOMonitor(CFG)
        _feed_answered(m, 0.0, 5, latency=1.5)  # breach-worthy
        report = m.evaluate(CFG.window_s + 5.0)  # all expired
        assert report.n_answered == 0
        assert report.state is SLOState.OK

    def test_utilization_per_worker(self):
        m = SLOMonitor(CFG)
        for i in range(4):
            m.record_answered(
                float(i), 0.1, service_s=0.5, worker_pid=100 + (i % 2)
            )
        report = m.evaluate(3.0)
        assert set(report.utilization) == {100, 101}
        # 2 x 0.5s service over a 3s observed span.
        assert report.utilization[100] == pytest.approx(1.0 / 3.0)
        assert all(0.0 <= u <= 1.0 for u in report.utilization.values())

    def test_report_to_dict_is_json_and_stringifies_pids(self):
        m = SLOMonitor(CFG)
        _feed_answered(m, 0.0, 5, latency=0.1, service_s=0.05, worker_pid=7)
        body = m.evaluate(0.5).to_dict()
        text = json.dumps(body, allow_nan=False)
        assert '"7"' in text
        assert body["state"] == "ok" and body["transition"] is False


class TestTopDashboard:
    def _telemetry(self, path, with_slo=True):
        with TelemetryWriter(path, header={"workers": 2}) as w:
            for i in range(6):
                w.write_sample(
                    t_s=float(i), seq=i, qid=i, outcome="answered",
                    latency_s=0.1 + 0.01 * i, wait_s=0.01,
                    service_s=0.08, worker=4000 + (i % 2), sampled=True,
                )
            w.write_sample(
                t_s=6.0, seq=6, qid=6, outcome="shed",
                worker=-1, forced=True, reason="shed:queue_full",
            )
            if with_slo:
                m = SLOMonitor(SLOConfig(p99_target_s=0.05, min_samples=3))
                for i in range(6):
                    m.record_answered(float(i), 0.1 + 0.01 * i)
                w.write_slo(m.evaluate(6.0).to_dict())
        return path

    def test_format_top_renders_state_and_workers(self):
        m = SLOMonitor(CFG)
        _feed_answered(m, 0.0, 5, latency=0.7, service_s=0.3, worker_pid=9)
        text = format_top(
            m.evaluate(0.5).to_dict(),
            samples=[{"qid": 3, "outcome": "answered", "latency_s": 0.7,
                      "worker": 9, "forced": False}],
            totals={"answered": 5},
            source="test",
        )
        assert "SLO WARN" in text
        assert "w9:" in text
        assert "totals: answered=5" in text
        assert "! p99" in text

    def test_run_top_over_file_with_slo_records(self, tmp_path):
        path = self._telemetry(tmp_path / "telemetry.jsonl")
        frames = []
        n = run_top(str(path), follow=False, out=frames.append)
        assert n == 1 and len(frames) == 1
        # The written slo record judged BREACH (p99 0.15s > 2x 0.05s target).
        assert "SLO BREACH" in frames[0]
        assert "answered=6" in frames[0] and "shed=1" in frames[0]

    def test_run_top_replays_samples_when_no_slo_record(self, tmp_path):
        path = self._telemetry(tmp_path / "t.jsonl", with_slo=False)
        frames = []
        run_top(str(path), follow=False, out=frames.append)
        # Fallback replay through a fresh default monitor: the single
        # shed (1/7 ~ 14%) crosses the default 5% warn line.
        assert "SLO WARN" in frames[0]
        assert "shed rate" in frames[0]
        assert "shed=1" in frames[0]

    def test_run_top_missing_file_waits(self, tmp_path):
        frames = []
        run_top(str(tmp_path / "absent.jsonl"), follow=False, out=frames.append)
        assert "waiting for telemetry" in frames[0]

    def test_run_top_follow_caps_at_max_frames(self, tmp_path):
        path = self._telemetry(tmp_path / "telemetry.jsonl")
        frames = []
        n = run_top(
            str(path), follow=True, interval_s=0.0, max_frames=3,
            out=frames.append,
        )
        assert n == 3 and len(frames) == 3
