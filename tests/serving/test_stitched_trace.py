"""Stitched cross-process traces: the PR's acceptance criteria, inline.

A sampled question served through the QAServer must yield ONE span tree
crossing the server/worker boundary whose attribution buckets sum
exactly to its end-to-end wall latency; enabling sampling must not
perturb the admission decision digest; worker metrics snapshots must
merge into the server's aggregated registry.
"""

import hashlib
import json

import pytest

from repro.nlp import EntityRecognizer
from repro.observability.attribution import attribute_question
from repro.observability.metrics import MetricsRegistry, gauge_label
from repro.observability.names import (
    CONJUNCTION_CACHE_HITS,
    POSTINGS_SCANNED,
    SERVING_ANSWERED,
    SERVING_TRACES_SAMPLED,
)
from repro.observability.telemetry import validate_telemetry_file
from repro.qa import QAPipeline
from repro.serving import AdmissionConfig, QAServer, ServerConfig
from repro.serving.protocol import Outcome
from repro.serving.workers import ExecutionResult, InlineExecutor

from ..conftest import SHARED_CORPUS_CONFIG


@pytest.fixture()
def metrics_pipeline(shared_corpus, shared_indexed_corpus):
    """A pipeline over the shared index that records into a registry."""
    recognizer = EntityRecognizer(
        shared_corpus.knowledge.gazetteer(),
        extra_nationalities=shared_corpus.knowledge.nationalities,
    )
    return QAPipeline(
        shared_indexed_corpus, recognizer, metrics=MetricsRegistry()
    )


def _config(**kw):
    kw.setdefault("corpus", SHARED_CORPUS_CONFIG)
    kw.setdefault("workers", 0)
    kw.setdefault(
        "admission",
        AdmissionConfig(
            max_concurrent=8, max_queue_depth=8, est_service_s=0.05
        ),
    )
    kw.setdefault("trace_sample_rate", 1.0)
    return ServerConfig(**kw)


def _serve(server, questions, n=4):
    with server:
        for i, q in enumerate(questions[:n]):
            server.submit(q.text, qid=q.qid, arrival_s=0.02 * i)
            server.poll()
    return server


class TestStitchedTree:
    def test_sampled_question_yields_one_boundary_crossing_tree(
        self, metrics_pipeline, shared_questions
    ):
        server = _serve(
            QAServer(_config(), pool=InlineExecutor(metrics_pipeline)),
            shared_questions,
        )
        answered = [
            r for r in server.responses if r.outcome is Outcome.ANSWERED
        ]
        assert answered and all(r.sampled for r in answered)
        for r in answered:
            roots = server.spans.roots(r.qid)
            assert len(roots) == 1
            names = [s.name for s in server.spans.subtree(roots[0])]
            # Server-side skeleton plus the grafted worker subtree:
            # this single tree crosses the process boundary.
            for required in ("serve", "admission", "service", "worker", "pr"):
                assert required in names, (r.qid, names)
        assert server.metrics.value(SERVING_TRACES_SAMPLED) == len(answered)

    def test_attribution_fold_sums_exactly_to_wall(
        self, metrics_pipeline, shared_questions
    ):
        server = _serve(
            QAServer(_config(), pool=InlineExecutor(metrics_pipeline)),
            shared_questions,
        )
        folded = 0
        for qid in server.spans.question_ids():
            for root in server.spans.roots(qid):
                qa = attribute_question(server.spans, root)
                assert qa.total_attributed_s == pytest.approx(
                    root.duration, abs=1e-9
                )
                assert qa.categories["compute"] > 0.0
                folded += 1
        assert folded >= 4

    def test_batched_tree_has_exactly_one_stage_span(
        self, metrics_pipeline, shared_questions
    ):
        server = _serve(
            QAServer(
                _config(batch_max=3, batch_wait_s=10.0),
                pool=InlineExecutor(metrics_pipeline),
            ),
            shared_questions,
            n=6,
        )
        answered = [
            r for r in server.responses if r.outcome is Outcome.ANSWERED
        ]
        assert answered
        saw_batched = 0
        for r in answered:
            root = server.spans.roots(r.qid)[0]
            names = [s.name for s in server.spans.subtree(root)]
            # The worker subtree carries its own stage:PR-batch span; the
            # server must not synthesize a second one on top of it.
            assert names.count("stage:PR-batch") <= 1, names
            saw_batched += names.count("stage:PR-batch")
            qa = attribute_question(server.spans, root)
            assert qa.total_attributed_s == pytest.approx(
                root.duration, abs=1e-9
            )
        assert saw_batched > 0


class TestForcedTelemetry:
    def test_sheds_are_forced_into_telemetry(
        self, metrics_pipeline, shared_questions, tmp_path
    ):
        path = tmp_path / "telemetry.jsonl"
        config = _config(
            admission=AdmissionConfig(
                max_concurrent=1, max_queue_depth=0, est_service_s=10.0
            ),
            telemetry_path=str(path),
        )
        server = QAServer(config, pool=InlineExecutor(metrics_pipeline))
        with server:
            for i, q in enumerate(shared_questions[:3]):
                server.submit(q.text, qid=q.qid, arrival_s=0.0)
        assert server.ledger.shed == 2
        assert validate_telemetry_file(path) >= 1
        records = [json.loads(line) for line in path.read_text().splitlines()]
        sheds = [r for r in records if r.get("outcome") == "shed"]
        assert len(sheds) == 2
        assert all(s["forced"] for s in sheds)
        assert all(s["reason"].startswith("shed:") for s in sheds)
        # The stream always ends with the final SLO judgement and the
        # aggregated metrics record.
        assert [r["record"] for r in records[-2:]] == ["slo", "metrics"]

    def test_drained_questions_fold_to_pure_queueing(self, tmp_path):
        class NeverPool:
            """Accepts everything, completes nothing."""

            workers = 1
            attach_report = {}

            def start(self):
                pass

            def submit(self, seq, qid, text, submit_wall, trace=None):
                pass

            def poll(self):
                return []

            def drain(self, timeout_s):
                return []

            def stop(self):
                pass

        path = tmp_path / "telemetry.jsonl"
        server = QAServer(
            _config(telemetry_path=str(path)), pool=NeverPool()
        )
        with server:
            server.submit("q0", qid=0, arrival_s=0.0)
            server.submit("q1", qid=1, arrival_s=0.1)
        assert server.ledger.drained == 2
        for qid in (0, 1):
            root = server.spans.roots(qid)[0]
            assert root.attrs["outcome"] == "drained"
            qa = attribute_question(server.spans, root)
            assert qa.total_attributed_s == pytest.approx(
                root.duration, abs=1e-9
            )
            # The whole sojourn was admission queueing.
            assert qa.categories["queueing"] == pytest.approx(
                root.duration, abs=1e-9
            )
        records = [json.loads(line) for line in path.read_text().splitlines()]
        drained = [r for r in records if r.get("outcome") == "drained"]
        assert len(drained) == 2 and all(r["forced"] for r in drained)
        validate_telemetry_file(path)


class TestDigestUnchanged:
    def _decisions(self, rate):
        class CompleteAllPool:
            workers = 1
            attach_report = {}

            def __init__(self):
                self._ready = []

            def start(self):
                pass

            def submit(self, seq, qid, text, submit_wall, trace=None):
                self._ready.append(
                    ExecutionResult(
                        seq=seq, qid=qid, answers=(("stub", 1.0),),
                        wait_s=0.0, service_s=0.001, worker_pid=1,
                    )
                )

            def poll(self):
                out, self._ready = self._ready, []
                return out

            def drain(self, timeout_s):
                return self.poll()

            def stop(self):
                pass

        config = _config(
            admission=AdmissionConfig(
                max_concurrent=2, max_queue_depth=1, est_service_s=0.5
            ),
            trace_sample_rate=rate,
        )
        server = QAServer(config, pool=CompleteAllPool())
        with server:
            for i in range(12):
                server.submit(f"q{i}", qid=i, arrival_s=0.05 * i)
        return server.admission.decision_key()

    def test_sampling_does_not_perturb_admission_digest(self):
        key_off = self._decisions(0.0)
        key_on = self._decisions(1.0)
        assert key_on == key_off
        def digest(key):
            return hashlib.sha256(repr(key).encode()).hexdigest()

        assert digest(key_on) == digest(key_off)
        assert key_on  # non-empty decision sequence


@pytest.mark.slow
class TestLoadgenTelemetry:
    """End-to-end: real workers, sampling on, telemetry + trace on disk."""

    def test_sampled_sweep_emits_stitched_artifacts(self, tmp_path):
        from repro.observability.exporters import validate_chrome_trace
        from repro.serving import LoadgenConfig, run_loadgen
        from repro.serving.loadgen import validate_bench_serving

        telemetry_out = tmp_path / "telemetry.jsonl"
        trace_out = tmp_path / "trace.json"
        summary = run_loadgen(
            LoadgenConfig(
                corpus=SHARED_CORPUS_CONFIG,
                n_questions=40,
                n_unique=15,
                workers=2,
                rate_qps=20.0,
                est_service_s=0.05,
                drain_timeout_s=30.0,
                trace_sample_rate=0.5,
                trace_seed=3,
                telemetry_out=str(telemetry_out),
                trace_out=str(trace_out),
            )
        )
        validate_bench_serving(summary)
        assert summary["schema"] == "bench_serving/v3"
        tel = summary["telemetry"]
        assert tel["trace_sample_rate"] == 0.5
        assert tel["sampled_answered"] > 0
        # The acceptance criterion: stitched trees actually crossed the
        # process boundary (worker-side subtrees were grafted).
        assert tel["stitched_trees"] > 0
        assert summary["observability_overhead"] == {"skipped": True}
        run = summary["runs"][0]
        assert run["sampling"]["stitched_trees"] > 0
        # Per-run telemetry file exists and validates end to end.
        assert validate_telemetry_file(run["telemetry"]["path"]) >= 3
        # The stitched Chrome trace validates and has stable lanes.
        trace = json.loads(trace_out.read_text())
        validate_chrome_trace(trace)
        names = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e.get("ph") == "M" and e.get("name") == "process_name"
        }
        assert "server" in names
        assert any(n.startswith("worker-") for n in names)


class TestMergedWorkerMetrics:
    def test_aggregated_registry_merges_worker_snapshot(
        self, metrics_pipeline, shared_questions
    ):
        server = _serve(
            QAServer(_config(), pool=InlineExecutor(metrics_pipeline)),
            shared_questions,
        )
        agg = server.aggregated_metrics()
        # Server-side counters come through unlabeled...
        assert agg.value(SERVING_ANSWERED) >= 1
        # ...worker-side work counters sum into the canonical name...
        assert agg.value(POSTINGS_SCANNED) > 0
        # ...and worker gauges keep a per-worker label.
        labeled = gauge_label(CONJUNCTION_CACHE_HITS, "worker=0")
        assert labeled in agg
        assert CONJUNCTION_CACHE_HITS not in agg
