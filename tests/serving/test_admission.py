"""Unit tests for the admission state machine and token buckets."""

import pytest

from repro.serving import (
    AdmissionConfig,
    AdmissionController,
    OverloadError,
    ShedReason,
    TokenBucket,
)


def make(**kw):
    return AdmissionController(AdmissionConfig(**kw))


class TestTokenBucket:
    def test_burst_then_deny(self):
        bucket = TokenBucket(rate_qps=1.0, burst=3.0)
        assert [bucket.try_take(0.0) for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refill_on_logical_clock(self):
        bucket = TokenBucket(rate_qps=2.0, burst=1.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        assert bucket.try_take(0.5)  # 0.5 s x 2 q/s = exactly one token

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate_qps=10.0, burst=2.0)
        for _ in range(2):
            assert bucket.try_take(0.0)
        # A long idle period refills to burst, not beyond.
        assert bucket.try_take(100.0)
        assert bucket.try_take(100.0)
        assert not bucket.try_take(100.0)

    def test_clock_regression_is_clamped(self):
        bucket = TokenBucket(rate_qps=1.0, burst=1.0)
        assert bucket.try_take(10.0)
        # Going back in time must not mint tokens.
        assert not bucket.try_take(5.0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_qps=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate_qps=1.0, burst=0.5)


class TestAdmissionConfig:
    def test_effective_deadline_defaults_to_six_services(self):
        assert AdmissionConfig(est_service_s=0.1).effective_deadline_s == pytest.approx(0.6)
        assert AdmissionConfig(deadline_s=1.5).effective_deadline_s == 1.5

    @pytest.mark.parametrize(
        "kw",
        [
            {"max_concurrent": 0},
            {"max_queue_depth": -1},
            {"est_service_s": 0.0},
            {"deadline_s": -1.0},
            {"rate_limit_qps": -1.0},
            {"rate_limit_qps": 1.0, "rate_burst": 0.0},
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            AdmissionConfig(**kw)


class TestAdmissionController:
    def test_idle_admissions_have_zero_wait(self):
        ctl = make(max_concurrent=3, est_service_s=1.0)
        for seq in range(3):
            d = ctl.submit(seq, seq, 0.0)
            assert d.accepted and d.predicted_wait_s == 0.0

    def test_queue_full_sheds_with_typed_reason(self):
        # 3 slots + queue of 2: arrivals 6.. shed QUEUE_FULL.
        ctl = make(max_concurrent=3, max_queue_depth=2, est_service_s=0.1,
                   deadline_s=100.0)
        decisions = [ctl.submit(i, i, 0.0) for i in range(8)]
        assert [d.accepted for d in decisions] == [True] * 5 + [False] * 3
        assert all(
            d.shed_reason is ShedReason.QUEUE_FULL for d in decisions[5:]
        )
        # The shed decision reports the state that justified it.
        assert decisions[5].queue_depth == 2
        assert decisions[5].predicted_wait_s > 0.0

    def test_deadline_shed_before_queue_full(self):
        # Queue is deep enough, but the sojourn budget is one service time:
        # any arrival that must wait is doomed and shed DEADLINE.
        ctl = make(max_concurrent=1, max_queue_depth=10, est_service_s=1.0,
                   deadline_s=1.0)
        assert ctl.submit(0, 0, 0.0).accepted
        d = ctl.submit(1, 1, 0.0)
        assert not d.accepted and d.shed_reason is ShedReason.DEADLINE

    def test_per_question_deadline_overrides_default(self):
        ctl = make(max_concurrent=1, max_queue_depth=10, est_service_s=1.0,
                   deadline_s=10.0)
        assert ctl.submit(0, 0, 0.0).accepted
        tight = ctl.submit(1, 1, 0.0, deadline_s=1.0)
        assert tight.shed_reason is ShedReason.DEADLINE
        loose = ctl.submit(2, 2, 0.0, deadline_s=5.0)
        assert loose.accepted

    def test_slots_free_as_logical_time_advances(self):
        ctl = make(max_concurrent=1, max_queue_depth=0, est_service_s=1.0)
        assert ctl.submit(0, 0, 0.0).accepted
        assert not ctl.submit(1, 1, 0.5).accepted  # still busy until 1.0
        later = ctl.submit(2, 2, 1.5)
        assert later.accepted and later.predicted_wait_s == 0.0

    def test_rate_limit_is_per_client(self):
        ctl = make(rate_limit_qps=1.0, rate_burst=1.0, est_service_s=0.01)
        assert ctl.submit(0, 0, 0.0, client="a").accepted
        denied = ctl.submit(1, 1, 0.0, client="a")
        assert denied.shed_reason is ShedReason.RATE_LIMITED
        # A different client has its own bucket.
        assert ctl.submit(2, 2, 0.0, client="b").accepted

    def test_draining_sheds_everything(self):
        ctl = make()
        ctl.start_draining()
        d = ctl.submit(0, 0, 0.0)
        assert d.shed_reason is ShedReason.DRAINING

    def test_decision_key_is_stable_and_complete(self):
        ctl = make(max_concurrent=1, max_queue_depth=0, est_service_s=1.0)
        ctl.submit(0, 10, 0.0)
        ctl.submit(1, 11, 0.0)
        key = ctl.decision_key()
        assert len(key) == 2
        assert key[0] == (0, 10, True, None, 0.0, 0)
        assert key[1][:4] == (1, 11, False, "queue_full")
        # repr round-trips: this is what the loadgen digests.
        assert eval(repr(key)) == key

    def test_clock_never_runs_backwards(self):
        ctl = make(max_concurrent=1, max_queue_depth=0, est_service_s=1.0)
        assert ctl.submit(0, 0, 5.0).accepted
        # An out-of-order earlier arrival is clamped to the clock (5.0),
        # where the slot is still busy.
        d = ctl.submit(1, 1, 1.0)
        assert not d.accepted
        assert d.arrival_s == 5.0


def test_overload_error_carries_context():
    err = OverloadError(
        ShedReason.QUEUE_FULL, 42, queue_depth=4, predicted_wait_s=0.25
    )
    assert err.reason is ShedReason.QUEUE_FULL
    assert err.qid == 42
    assert err.queue_depth == 4
    assert "queue_full" in str(err)
