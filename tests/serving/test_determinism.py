"""Determinism regression: decisions are a pure function of the seed.

The admission controller decides against *logical* scheduled arrival
times with a fixed service estimate, so the accepted/shed sequence for a
seeded workload must be **byte-identical** across worker counts — the
same invariant the parallel experiment engine keeps for ``--jobs``.
A change that sneaks wall-clock state into admission decisions breaks
these tests immediately.
"""

import pytest

from repro.corpus import CorpusConfig
from repro.serving import LoadgenConfig, run_loadgen

#: Small corpus: these runs rebuild the serving stack per worker count.
CORPUS = CorpusConfig(
    n_collections=3, docs_per_collection=20, vocab_size=500, seed=31
)


def loadgen_config(workers: int) -> LoadgenConfig:
    """A fixed-rate sweep config; only ``workers`` varies across runs.

    The explicit ``rate_qps`` + ``est_service_s`` skip saturation
    calibration (which measures the real machine and would differ per
    worker count by design), and ``pace=False`` floods the server so the
    test is wall-clock-independent.
    """
    return LoadgenConfig(
        corpus=CORPUS,
        n_questions=50,
        n_unique=15,
        workload_seed=1234,
        workers=workers,
        rate_qps=120.0,
        est_service_s=0.03,
        max_queue_depth=3,
        pace=False,
        record_decisions=True,
        drain_timeout_s=30.0,
    )


@pytest.mark.slow
def test_decision_sequence_identical_across_worker_counts():
    results = {w: run_loadgen(loadgen_config(w)) for w in (1, 2, 4)}
    runs = {w: s["runs"][0] for w, s in results.items()}

    digests = {w: r["decision_digest"] for w, r in runs.items()}
    assert len(set(digests.values())) == 1, digests

    # Not just the digest: the full decision sequences match field by
    # field, and so do the terminal ledgers.
    base = runs[1]["decisions"]
    assert len(base) == 50
    for w in (2, 4):
        assert runs[w]["decisions"] == base
    ledgers = {
        w: {k: r["ledger"][k] for k in ("answered", "shed", "drained")}
        for w, r in runs.items()
    }
    assert ledgers[1] == ledgers[2] == ledgers[4]

    # The chosen rate genuinely overloads the model: both outcomes occur,
    # otherwise this regression test would pass vacuously.
    assert runs[1]["ledger"]["shed"] > 0
    assert runs[1]["ledger"]["answered"] > 0
    for r in runs.values():
        assert r["conservation_ok"]


def test_same_seed_same_digest_same_process():
    """Two identical runs in one process agree exactly (inline workers)."""
    a = run_loadgen(loadgen_config(0))
    b = run_loadgen(loadgen_config(0))
    assert a["runs"][0]["decision_digest"] == b["runs"][0]["decision_digest"]
    assert a["runs"][0]["decisions"] == b["runs"][0]["decisions"]


def test_different_seed_different_decisions():
    """The digest actually depends on the workload seed (sanity check)."""
    base = loadgen_config(0)
    a = run_loadgen(base)
    from dataclasses import replace

    b = run_loadgen(replace(base, workload_seed=4321))
    assert (
        a["runs"][0]["decision_digest"] != b["runs"][0]["decision_digest"]
    )
