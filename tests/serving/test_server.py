"""End-to-end serving tests: real workers, real overload, real drain.

These pin the PR's acceptance criteria directly: at an offered load of
2x measured saturation the server sheds (instead of queueing without
bound), accepted-question p99 stays within 3x of the at-saturation p99,
question conservation is exact, and the drain is clean.
"""

import pytest

from repro.corpus import CorpusConfig
from repro.serving import (
    LoadgenConfig,
    OverloadError,
    QAServer,
    ServerConfig,
    AdmissionConfig,
    format_serving,
    run_loadgen,
)

CORPUS = CorpusConfig(
    n_collections=3, docs_per_collection=20, vocab_size=500, seed=31
)


@pytest.fixture(scope="module")
def overload_summary():
    """One below/at/above-saturation sweep shared by the assertions."""
    return run_loadgen(
        LoadgenConfig(
            corpus=CORPUS,
            n_questions=80,
            n_unique=25,
            workers=2,
            load_factors=(0.5, 1.0, 2.0),
            calibration_questions=24,
            drain_timeout_s=30.0,
        )
    )


@pytest.mark.slow
class TestOverloadProtocol:
    def test_conservation_exact_in_every_run(self, overload_summary):
        for run in overload_summary["runs"]:
            led = run["ledger"]
            assert led["balanced"], run["label"]
            assert (
                led["answered"] + led["shed"] + led["drained"]
                == led["submitted"]
                == 80
            )

    def test_overload_sheds_instead_of_queueing(self, overload_summary):
        over = overload_summary["overload"]
        assert over["shed_nonzero_at_overload"], over
        # Shedding is the bounded-queue kind, not a drain artifact.
        run_2x = next(
            r for r in overload_summary["runs"] if r["load_factor"] == 2.0
        )
        assert run_2x["ledger"]["shed"] > 0
        assert set(run_2x["ledger"]["shed_by_reason"]) <= {
            "queue_full", "deadline",
        }

    def test_accepted_p99_stays_bounded_under_overload(self, overload_summary):
        over = overload_summary["overload"]
        assert over["p99_within_limit"], over
        assert over["p99_ratio"] <= over["ratio_limit"] == 3.0

    def test_drain_is_clean(self, overload_summary):
        assert overload_summary["overload"]["clean_drain"]
        for run in overload_summary["runs"]:
            assert run["ledger"]["drained"] == 0, run["label"]

    def test_overall_verdict_and_schema(self, overload_summary):
        assert overload_summary["ok"] is True
        assert overload_summary["schema"] == "bench_serving/v3"
        assert overload_summary["saturation_qps"] > 0

    def test_workers_attach_to_shared_artifact(self, overload_summary):
        """The tentpole's zero-rebuild claim: workers attach, not build."""
        for run in overload_summary["runs"]:
            w = run["workers"]
            assert w["n"] == 2
            # The parent warms the artifact before spawning, so every
            # worker should attach from cache.
            assert w["attached_from_cache"] == 2, w
            assert w["built"] == 0

    def test_attribution_covers_admission_wait(self, overload_summary):
        """Serving spans feed the existing attribution fold."""
        run_2x = next(
            r for r in overload_summary["runs"] if r["load_factor"] == 2.0
        )
        attribution = run_2x["attribution"]
        assert "queueing_mean_s" in attribution
        assert "compute_mean_s" in attribution
        assert attribution["compute_mean_s"] > 0

    def test_report_renders(self, overload_summary):
        text = format_serving(overload_summary)
        assert "Serving" in text and "conservation: balanced" in text


class TestServerSurface:
    """Cheap (inline-executor) behaviours of the QAServer itself."""

    def _server(self, **admission_kw):
        return QAServer(
            ServerConfig(
                corpus=CORPUS,
                admission=AdmissionConfig(**admission_kw),
                workers=0,
            )
        )

    def test_submit_before_start_raises(self):
        server = self._server()
        with pytest.raises(RuntimeError):
            server.submit("who?", qid=0)

    def test_raise_on_shed_raises_typed_overload(self):
        server = self._server(
            max_concurrent=1, max_queue_depth=0, est_service_s=10.0
        )
        with server:
            assert server.submit("q0", qid=0, arrival_s=0.0).accepted
            with pytest.raises(OverloadError) as exc:
                server.submit(
                    "q1", qid=1, arrival_s=0.0, raise_on_shed=True
                )
            assert exc.value.qid == 1
            # The shed question is still accounted for.
            assert server.ledger.shed == 1
        assert server.ledger.balanced

    def test_metrics_registry_sees_serving_names(self):
        from repro.observability.names import (
            SERVING_ANSWERED,
            SERVING_SHED,
            SERVING_SUBMITTED,
        )

        server = self._server(
            max_concurrent=1, max_queue_depth=0, est_service_s=10.0
        )
        with server:
            server.submit("q0", qid=0, arrival_s=0.0)
            server.submit("q1", qid=1, arrival_s=0.0)  # shed
            server.poll()
        snapshot = server.metrics.to_dict()
        assert snapshot[SERVING_SUBMITTED]["value"] == 2
        assert snapshot[SERVING_ANSWERED]["value"] == 1
        assert snapshot[SERVING_SHED]["value"] == 1

    def test_context_manager_drains_on_exit(self):
        server = self._server()
        with server:
            server.submit("anything", qid=0, arrival_s=0.0)
        assert server.ledger.balanced
        assert server.ledger.submitted == 1
