"""Property test: admission-queue question conservation.

Every question submitted to a :class:`QAServer` must finish in exactly
one of {answered, shed, drained} — under random burst patterns, worker
completion schedules, and admission configurations.  The executor here
is a scriptable stub so Hypothesis can explore completion orders
(including "never completes", which exercises the ``DRAINED`` path)
without paying for real pipelines.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import (
    AdmissionConfig,
    Outcome,
    QAServer,
    ServerConfig,
)
from repro.serving.workers import ExecutionResult


class ScriptedPool:
    """Executor stub completing a caller-controlled subset of submissions.

    ``complete_mask[i]`` decides whether the i-th *accepted* question
    ever completes; completions surface in FIFO order at the next
    ``poll``/``drain``.  Unfinished questions stay in flight forever, so
    the server must account them ``DRAINED`` at shutdown.
    """

    workers = 1

    def __init__(self, complete_mask):
        self.complete_mask = complete_mask
        self.accepted = 0
        self._ready = []
        self.attach_report = {}

    def start(self):
        pass

    def submit(self, seq, qid, text, submit_wall):
        i = self.accepted
        self.accepted += 1
        if i < len(self.complete_mask) and self.complete_mask[i]:
            self._ready.append(
                ExecutionResult(
                    seq=seq, qid=qid, answers=(("stub", 1.0),),
                    wait_s=0.0, service_s=0.001, worker_pid=1,
                )
            )

    def poll(self):
        out, self._ready = self._ready, []
        return out

    def drain(self, timeout_s):
        return self.poll()

    def stop(self):
        pass


@st.composite
def burst_plan(draw):
    """A random admission config plus a random burst schedule.

    The schedule is a list of (client, logical inter-arrival gap)
    pairs; zero gaps form bursts that overflow the bounded queue.
    """
    config = AdmissionConfig(
        max_concurrent=draw(st.integers(1, 4)),
        max_queue_depth=draw(st.integers(0, 5)),
        est_service_s=draw(st.floats(0.01, 0.5)),
        rate_limit_qps=draw(st.sampled_from([0.0, 2.0, 50.0])),
        rate_burst=draw(st.integers(1, 4)),
    )
    n = draw(st.integers(1, 40))
    gaps = draw(
        st.lists(st.floats(0.0, 1.0), min_size=n, max_size=n)
    )
    clients = draw(
        st.lists(st.sampled_from(["a", "b", "c"]), min_size=n, max_size=n)
    )
    mask = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    return config, gaps, clients, mask


@settings(max_examples=60, deadline=None)
@given(plan=burst_plan())
def test_every_question_has_exactly_one_outcome(plan):
    admission, gaps, clients, mask = plan
    pool = ScriptedPool(mask)
    server = QAServer(
        ServerConfig(
            admission=admission, workers=1,
            metrics_enabled=False, spans_enabled=False,
        ),
        pool=pool,
    )
    server.start()
    now = 0.0
    for i, (gap, client) in enumerate(zip(gaps, clients)):
        now += gap
        server.submit(f"question {i}", qid=i, client=client, arrival_s=now)
        if i % 3 == 2:  # interleave completions with submissions
            server.poll()
    server.poll()
    ledger = server.drain()
    server.stop()

    n = len(gaps)
    assert ledger.submitted == n
    assert ledger.balanced, ledger
    assert ledger.answered + ledger.shed + ledger.drained == n
    # The response log tells the same story, one terminal record each.
    assert len(server.responses) == n
    assert sorted(r.seq for r in server.responses) == list(range(n))
    by_outcome = {
        Outcome.ANSWERED: 0, Outcome.SHED: 0, Outcome.DRAINED: 0,
    }
    for r in server.responses:
        by_outcome[r.outcome] += 1
    assert by_outcome[Outcome.ANSWERED] == ledger.answered
    assert by_outcome[Outcome.SHED] == ledger.shed
    assert by_outcome[Outcome.DRAINED] == ledger.drained
    # Shed taxonomy adds up too.
    assert sum(ledger.shed_by_reason.values()) == ledger.shed


@settings(max_examples=20, deadline=None)
@given(plan=burst_plan())
def test_drain_is_idempotent_and_final(plan):
    admission, gaps, clients, mask = plan
    server = QAServer(
        ServerConfig(
            admission=admission, workers=1,
            metrics_enabled=False, spans_enabled=False,
        ),
        pool=ScriptedPool(mask),
    )
    server.start()
    now = 0.0
    for i, (gap, client) in enumerate(zip(gaps, clients)):
        now += gap
        server.submit(f"q{i}", qid=i, client=client, arrival_s=now)
    first = server.drain()
    again = server.drain()
    assert again is first and again.balanced
    # Post-drain submissions shed DRAINING and stay conserved.
    d = server.submit("too late", qid=999, arrival_s=now + 1.0)
    assert not d.accepted
    assert server.ledger.balanced
    server.stop()
