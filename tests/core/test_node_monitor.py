"""Tests for cluster nodes, admission control and load monitoring."""

import pytest

from repro.core import ClusterNode, MonitoringSystem, NodeConfig
from repro.simulation import Environment, Network


@pytest.fixture()
def env():
    return Environment()


class TestNode:
    def test_resources_created(self, env):
        node = ClusterNode(env, 0)
        assert node.cpu.capacity == 1.0
        assert node.disk.capacity == 25e6
        assert node.memory.allocated == node.config.baseline_memory_bytes

    def test_run_cost_serialises_disk_then_cpu(self, env):
        from repro.qa import ModuleCost

        node = ClusterNode(env, 0)
        done = []

        def p():
            yield from node.run_cost(ModuleCost(cpu_s=1.0, disk_bytes=25e6))
            done.append(env.now)

        env.process(p())
        env.run()
        assert done == [pytest.approx(2.0)]  # 1 s disk + 1 s cpu

    def test_memory_pressure_slows_cpu(self, env):
        node = ClusterNode(
            env, 0, NodeConfig(memory_bytes=200e6, baseline_memory_bytes=100e6,
                               thrash_factor=4.0)
        )
        node.memory.allocate(150e6)  # overcommit (250-200)/200 = 0.25
        assert node.cpu.capacity == pytest.approx(1.0 / (1 + 4.0 * 0.25))
        node.memory.release(150e6)
        assert node.cpu.capacity == pytest.approx(1.0)

    def test_admission_fifo_and_capacity(self, env):
        node = ClusterNode(env, 0, NodeConfig(max_concurrent_questions=2))
        order = []

        def question(i, duration):
            node.active_questions += 1
            yield node.admit_question()
            order.append(("start", i, env.now))
            yield from node.run_cpu(duration)
            node.active_questions -= 1
            node.release_question()
            order.append(("end", i, env.now))

        for i in range(3):
            env.process(question(i, 1.0))
        env.run()
        starts = [t for kind, i, t in order if kind == "start"]
        # Two admitted immediately, third only after a slot frees.
        assert starts[0] == starts[1] == 0.0
        assert starts[2] > 0.0

    def test_waiting_questions_counter(self, env):
        node = ClusterNode(env, 0, NodeConfig(max_concurrent_questions=1))
        node.admit_question()
        node.admit_question()
        assert node.waiting_questions == 1
        node.release_question()
        assert node.waiting_questions == 0

    def test_load_checkpoints_measure_activity(self, env):
        node = ClusterNode(env, 0)

        def p():
            cp = node.load_checkpoints()
            yield from node.run_cpu(2.0)
            yield env.timeout(2.0)
            cpu_load, disk_load = node.loads_since(cp)
            # CPU active half of the 4-second window.
            assert cpu_load == pytest.approx(0.5)
            assert disk_load == pytest.approx(0.0)

        env.run(until=env.process(p()))


class TestMonitoring:
    def _build(self, env, n=3, interval=1.0):
        net = Network(env, bandwidth_bps=100e6)
        nodes = [ClusterNode(env, i) for i in range(n)]
        mon = MonitoringSystem(env, net, nodes, interval_s=interval)
        return net, nodes, mon

    def test_tables_seeded_for_instant_dispatch(self, env):
        _, _, mon = self._build(env)
        view = mon.view(0)
        assert set(view) == {0, 1, 2}

    def test_broadcasts_update_peer_tables(self, env):
        _, nodes, mon = self._build(env)

        def burn():
            yield from nodes[1].run_cpu(5.0)

        env.process(burn())
        env.run(until=2.5)
        snap = mon.view(0)[1]
        assert snap.timestamp > 0
        assert snap.cpu_load > 0.5

    def test_observer_sees_itself_live(self, env):
        _, nodes, mon = self._build(env)
        nodes[0].active_questions = 7
        snap = mon.view(0)[0]
        assert snap.n_questions == 7  # not waiting for a broadcast

    def test_dead_node_leaves_membership(self, env):
        net, nodes, mon = self._build(env)
        env.run(until=1.5)  # everyone broadcast once
        nodes[2].up = False
        net.set_node_up(2, False)
        env.run(until=6.0)  # beyond the membership timeout
        assert 2 not in mon.view(0)
        assert 2 in mon.view(2)  # a node always sees itself

    def test_recovered_node_rejoins(self, env):
        net, nodes, mon = self._build(env)
        nodes[1].up = False
        net.set_node_up(1, False)
        env.run(until=6.0)
        assert 1 not in mon.view(0)
        nodes[1].up = True
        net.set_node_up(1, True)
        env.run(until=8.0)
        assert 1 in mon.view(0)

    def test_monitoring_consumes_network(self, env):
        net, _, mon = self._build(env)
        env.run(until=5.5)
        assert net.broadcasts_sent >= 3 * 5
        assert net.bytes_transferred > 0

    def test_live_snapshot_reflects_instant_state(self, env):
        _, nodes, mon = self._build(env)

        def p():
            nodes[0].cpu.use(100.0)
            yield env.timeout(0.1)
            snap = mon.live_snapshot(0)
            assert snap.cpu_load == pytest.approx(1.0)

        env.run(until=env.process(p()))
