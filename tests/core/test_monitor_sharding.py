"""Tests for sharded load monitoring (aggregator plane, ISSUE 9)."""

import pytest

from repro.core import ClusterNode, MonitoringSystem
from repro.core.monitor import auto_shard_count
from repro.observability.metrics import MetricsRegistry
from repro.observability.names import MONITOR_SHARD_PUBLISHES
from repro.simulation import Environment, Network


@pytest.fixture()
def env():
    return Environment()


def build(env, n=6, shards=2, interval=1.0, metrics=None):
    net = Network(env, bandwidth_bps=100e6)
    nodes = [ClusterNode(env, i) for i in range(n)]
    mon = MonitoringSystem(
        env, net, nodes, interval_s=interval, shards=shards, metrics=metrics
    )
    return net, nodes, mon


class TestShardLayout:
    def test_auto_shard_count_is_about_sqrt(self):
        assert auto_shard_count(1) == 1
        assert auto_shard_count(16) == 4
        assert auto_shard_count(1000) == 32

    def test_legacy_mode_by_default(self, env):
        net = Network(env, bandwidth_bps=100e6)
        nodes = [ClusterNode(env, i) for i in range(3)]
        mon = MonitoringSystem(env, net, nodes)
        assert mon.sharded is False
        assert mon.n_shards == 0

    def test_members_partition_the_cluster(self, env):
        _, _, mon = build(env, n=7, shards=3)
        all_members = [nid for members in mon._members for nid in members]
        assert sorted(all_members) == list(range(7))
        assert all(mon._shard_of[nid] == s
                   for s, members in enumerate(mon._members)
                   for nid in members)

    def test_shards_clamped_to_node_count(self, env):
        _, _, mon = build(env, n=3, shards=10)
        assert mon.n_shards == 3


class TestShardedView:
    def test_seeded_view_covers_all_nodes_before_first_publish(self, env):
        _, _, mon = build(env, n=6, shards=2)
        assert set(mon.view(0)) == set(range(6))

    def test_view_reflects_published_not_working_state(self, env):
        _, nodes, mon = build(env, n=4, shards=2)

        def burn():
            yield from nodes[1].run_cpu(5.0)

        env.process(burn())
        env.run(until=2.5)
        # By 2.5 s every shard has published at least once, carrying the
        # monitors' 1 s-interval measurements of the busy node.
        snap = mon.view(0)[1]
        assert snap.timestamp > 0
        assert snap.cpu_load > 0.4

    def test_observer_sees_itself_live(self, env):
        _, nodes, mon = build(env, n=4, shards=2)
        nodes[0].active_questions = 9
        assert mon.view(0)[0].n_questions == 9

    def test_local_snapshot_tracks_self_report(self, env):
        _, _, mon = build(env, n=4, shards=2)
        assert mon.local_snapshot(2).node_id == 2
        env.run(until=2.5)
        assert mon.local_snapshot(2).timestamp > 0

    def test_dead_node_leaves_view_after_timeout(self, env):
        _, nodes, mon = build(env, n=4, shards=2)
        env.run(until=2.5)
        nodes[3].up = False
        env.run(until=9.0)
        assert 3 not in mon.view(0)
        assert (9.0, 3, False) not in mon.membership_log  # logged earlier
        assert any(nid == 3 and not live
                   for _, nid, live in mon.membership_log)


class TestOptimisticBumps:
    def test_assignment_bump_visible_to_observer_only(self, env):
        _, _, mon = build(env, n=6, shards=2)
        env.run(until=2.5)
        before = mon.view(0)[3].n_questions
        mon.note_question_assignment(0, 3)
        after = mon.view(0)[3]
        assert after.n_questions == before + 1
        assert after.n_waiting >= 1
        # Another observer's view is untouched.
        assert mon.view(1)[3].n_questions == before

    def test_load_share_bump_accumulates(self, env):
        _, _, mon = build(env, n=6, shards=2)
        env.run(until=2.5)
        base = mon.view(0)[4]
        mon.note_load_share(0, 4, cpu=0.5, disk=0.25)
        mon.note_load_share(0, 4, cpu=0.5, disk=0.25)
        snap = mon.view(0)[4]
        assert snap.cpu_load == pytest.approx(base.cpu_load + 1.0)
        assert snap.disk_load == pytest.approx(base.disk_load + 0.5)

    def test_bump_expires_once_fresher_measurement_publishes(self, env):
        _, _, mon = build(env, n=6, shards=2)
        env.run(until=2.5)
        mon.note_question_assignment(0, 3)
        assert mon.view(0)[3].n_questions >= 1
        # Two more monitor rounds + publishes: the target's own report
        # (measured after the bump) supersedes the optimistic guess.
        env.run(until=6.0)
        assert mon.view(0)[3].n_questions == 0
        assert 3 not in mon._overlays[0]


class TestUploadPlane:
    def test_publishers_count_and_metric(self, env):
        reg = MetricsRegistry()
        _, _, mon = build(env, n=6, shards=2, metrics=reg)
        env.run(until=3.4)
        # Each of the 2 shards publishes once per second after its
        # phase-staggered start; by 3.4 s that is 3-4 publishes each.
        assert 6 <= reg.value(MONITOR_SHARD_PUBLISHES) <= 8

    def test_delta_uploads_shrink_when_nothing_changes(self, env):
        net, _, mon = build(env, n=4, shards=2)
        env.run(until=1.5)  # first round: full packets
        first = net.bytes_transferred
        env.run(until=2.5)  # idle cluster: "no change" deltas
        second = net.bytes_transferred - first
        assert second < first

    def test_publish_traffic_scales_with_members_not_cluster(self, env):
        _, _, mon = build(env, n=6, shards=3)
        # A shard broadcast carries members * packet_bytes — the explicit
        # per-shard N_k * S_load term of Eq 14.
        assert len(mon._members[0]) * mon.packet_bytes == 2 * 512.0


class TestLegacyUnchanged:
    def test_legacy_note_methods_mutate_observer_table(self, env):
        net = Network(env, bandwidth_bps=100e6)
        nodes = [ClusterNode(env, i) for i in range(3)]
        mon = MonitoringSystem(env, net, nodes)
        mon.note_question_assignment(0, 1)
        assert mon.tables[0][1].n_questions == 1
        assert mon.tables[1][1].n_questions == 0
        mon.note_load_share(0, 2, cpu=0.3, disk=0.1)
        assert mon.tables[0][2].cpu_load == pytest.approx(0.3)
