"""Retry/timeout/backoff policies in the failure-recovery paths.

Covers :class:`repro.core.RetryPolicy` itself, the bounded-retry +
backoff behaviour it induces in ``run_sender_controlled`` /
``run_receiver_controlled`` (including cascading multi-worker failures
and the late-failure re-pull round of Fig 6b), and the question
dispatcher's migration retry with exponential backoff.
"""

import pytest

from repro.core import (
    PartitionAbort,
    RetryPolicy,
    WorkerFailed,
    run_receiver_controlled,
    run_sender_controlled,
)
from repro.simulation import Environment


class TestRetryPolicyObject:
    def test_default_is_unbounded_no_backoff(self):
        policy = RetryPolicy()
        assert not policy.exhausted(10**6)
        assert policy.delay(0) == 0.0

    def test_exhausted_counts_recovery_rounds(self):
        policy = RetryPolicy(max_rounds=2)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)

    def test_zero_budget(self):
        assert RetryPolicy(max_rounds=0).exhausted(1)

    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            backoff_base_s=1.0, backoff_factor=2.0, backoff_max_s=5.0
        )
        assert [policy.delay(i) for i in range(4)] == [1.0, 2.0, 4.0, 5.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_rounds=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


class _FakeCluster:
    """Executor harness: per-node speeds and scripted failures."""

    def __init__(self, env, speeds, fail_at=None, fail_delay=None):
        self.env = env
        self.speeds = speeds
        #: node -> items it may process before dying.
        self.fail_at = fail_at or {}
        #: node -> extra simulated seconds spent before its failure fires.
        self.fail_delay = fail_delay or {}
        self.processed: dict[int, list] = {n: [] for n in speeds}

    def executor(self, nid, items):
        budget = self.fail_at.get(nid)
        for i, item in enumerate(items):
            if budget is not None and len(self.processed[nid]) >= budget:
                delay = self.fail_delay.get(nid, 0.0)
                if delay > 0:
                    yield self.env.timeout(delay)
                raise WorkerFailed(nid, items[i:])
            yield self.env.timeout(item / self.speeds[nid])
            self.processed[nid].append(item)


def _run(env, gen):
    return env.run(until=env.process(gen))


class TestSenderControlledRetry:
    def test_budget_exhaustion_aborts(self):
        env = Environment()
        # Worker 1 dies immediately; with a zero budget the first
        # recovery round is already over the line.
        cluster = _FakeCluster(env, {0: 1.0, 1: 1.0}, fail_at={1: 0})

        def main():
            yield from run_sender_controlled(
                env, [1.0] * 6, [(0, 0.5), (1, 0.5)], cluster.executor,
                interleaved=False, policy=RetryPolicy(max_rounds=0),
            )

        with pytest.raises(PartitionAbort, match="retry budget exhausted"):
            _run(env, main())

    def test_budget_allows_recovery(self):
        env = Environment()
        cluster = _FakeCluster(env, {0: 1.0, 1: 1.0}, fail_at={1: 2})

        def main():
            return (
                yield from run_sender_controlled(
                    env, [1.0] * 12, [(0, 0.5), (1, 0.5)], cluster.executor,
                    interleaved=False, policy=RetryPolicy(max_rounds=1),
                )
            )

        _run(env, main())
        assert len(cluster.processed[0]) + len(cluster.processed[1]) == 12

    def test_cascading_failures_within_budget(self):
        env = Environment()
        # Node 1 dies in the first round; node 2 survives it but dies
        # during the recovery round, forcing a second one.
        cluster = _FakeCluster(
            env, {0: 1.0, 1: 1.0, 2: 1.0}, fail_at={1: 1, 2: 6}
        )

        def main():
            yield from run_sender_controlled(
                env, [1.0] * 15, [(0, 1.0), (1, 1.0), (2, 1.0)],
                cluster.executor, interleaved=False,
                policy=RetryPolicy(max_rounds=4),
            )

        _run(env, main())
        total = sum(len(v) for v in cluster.processed.values())
        assert total == 15
        assert len(cluster.processed[1]) == 1
        assert len(cluster.processed[2]) == 6

    def test_cascading_failures_beyond_budget_abort(self):
        env = Environment()
        # Same cascade, but a one-round budget cannot absorb the second
        # failure.
        cluster = _FakeCluster(
            env, {0: 1.0, 1: 1.0, 2: 1.0}, fail_at={1: 1, 2: 6}
        )

        def main():
            yield from run_sender_controlled(
                env, [1.0] * 15, [(0, 1.0), (1, 1.0), (2, 1.0)],
                cluster.executor, interleaved=False,
                policy=RetryPolicy(max_rounds=1),
            )

        with pytest.raises(PartitionAbort, match="retry budget exhausted"):
            _run(env, main())

    def test_backoff_delays_recovery_round(self):
        def run_with(policy):
            env = Environment()
            cluster = _FakeCluster(env, {0: 1.0, 1: 1.0}, fail_at={1: 0})

            def main():
                yield from run_sender_controlled(
                    env, [1.0] * 4, [(0, 0.5), (1, 0.5)], cluster.executor,
                    interleaved=False, policy=policy,
                )

            _run(env, main())
            return env.now

        fast = run_with(RetryPolicy(max_rounds=3))
        slow = run_with(RetryPolicy(max_rounds=3, backoff_base_s=7.0))
        assert slow == pytest.approx(fast + 7.0)

    def test_interleaved_with_policy(self):
        env = Environment()
        cluster = _FakeCluster(env, {0: 1.0, 1: 1.0}, fail_at={1: 1})

        def main():
            yield from run_sender_controlled(
                env, [float(i) for i in range(8, 0, -1)],
                [(0, 0.5), (1, 0.5)], cluster.executor,
                interleaved=True, policy=RetryPolicy(max_rounds=2),
            )

        _run(env, main())
        total = sum(len(v) for v in cluster.processed.values())
        assert total == 8


class TestReceiverControlledRetry:
    def test_late_failure_triggers_repull_round(self):
        env = Environment()
        # Node 1 grabs a chunk, stalls 50 s, then dies — long after node 0
        # drained every other chunk and exited its puller.  The returned
        # chunk must be re-pulled in a fresh round by the survivor.
        cluster = _FakeCluster(
            env, {0: 1.0, 1: 1.0}, fail_at={1: 0}, fail_delay={1: 50.0}
        )

        def main():
            yield from run_receiver_controlled(
                env, [1.0] * 8, [0, 1], cluster.executor, chunk_size=2,
                policy=RetryPolicy(max_rounds=2),
            )

        _run(env, main())
        assert len(cluster.processed[0]) == 8
        assert cluster.processed[1] == []
        assert env.now >= 50.0  # the re-pull round ran after the failure

    def test_late_failure_beyond_budget_aborts(self):
        env = Environment()
        cluster = _FakeCluster(
            env, {0: 1.0, 1: 1.0}, fail_at={1: 0}, fail_delay={1: 50.0}
        )

        def main():
            yield from run_receiver_controlled(
                env, [1.0] * 8, [0, 1], cluster.executor, chunk_size=2,
                policy=RetryPolicy(max_rounds=0),
            )

        with pytest.raises(PartitionAbort, match="retry budget exhausted"):
            _run(env, main())

    def test_backoff_before_repull(self):
        def run_with(policy):
            env = Environment()
            cluster = _FakeCluster(
                env, {0: 1.0, 1: 1.0}, fail_at={1: 0}, fail_delay={1: 20.0}
            )

            def main():
                yield from run_receiver_controlled(
                    env, [1.0] * 6, [0, 1], cluster.executor, chunk_size=2,
                    policy=policy,
                )

            _run(env, main())
            return env.now

        fast = run_with(RetryPolicy(max_rounds=2))
        slow = run_with(RetryPolicy(max_rounds=2, backoff_base_s=5.0))
        assert slow == pytest.approx(fast + 5.0)

    def test_cascading_multi_worker_failures(self):
        env = Environment()
        # Nodes 1 and 2 both die late with chunks in hand; node 0 mops up
        # across two re-pull rounds.
        cluster = _FakeCluster(
            env,
            {0: 1.0, 1: 1.0, 2: 1.0},
            fail_at={1: 0, 2: 2},
            fail_delay={1: 30.0, 2: 60.0},
        )

        def main():
            yield from run_receiver_controlled(
                env, [1.0] * 12, [0, 1, 2], cluster.executor, chunk_size=2,
                policy=RetryPolicy(max_rounds=4),
            )

        _run(env, main())
        total = sum(len(v) for v in cluster.processed.values())
        assert total == 12
        assert cluster.processed[1] == []
        assert len(cluster.processed[2]) == 2

    def test_immediate_failures_do_not_consume_budget(self):
        env = Environment()
        # Node 1 fails instantly; node 0 drains everything in round one —
        # no re-pull round, so even a zero budget must succeed.
        cluster = _FakeCluster(env, {0: 1.0, 1: 1.0}, fail_at={1: 0})

        def main():
            yield from run_receiver_controlled(
                env, [1.0] * 8, [0, 1], cluster.executor, chunk_size=2,
                policy=RetryPolicy(max_rounds=0),
            )

        _run(env, main())
        assert len(cluster.processed[0]) == 8


class TestDispatcherRetry:
    def _system(self, **kwargs):
        from repro.core import DistributedQASystem, SystemConfig

        return DistributedQASystem(SystemConfig(**kwargs))

    def test_backoff_delay_grows_and_caps(self):
        system = self._system(n_nodes=2)
        d = system.question_dispatcher
        delays = [d.backoff_delay(i) for i in range(12)]
        assert delays == sorted(delays)
        assert delays[-1] == d.backoff_max_s

    def test_choose_excludes_dead_candidates(self):
        system = self._system(n_nodes=3)
        dispatcher = system.question_dispatcher
        # Make node 0 genuinely overloaded (view() reads the live node
        # state for the observer, not its table entry).
        system.monitoring.nodes[0].active_questions = 8
        best = dispatcher.choose(0)
        assert best in (1, 2)
        excluded = dispatcher.choose(0, exclude={best})
        assert excluded != best

    def test_exclude_all_peers_stays_home(self):
        system = self._system(n_nodes=3)
        dispatcher = system.question_dispatcher
        system.monitoring.nodes[0].active_questions = 8
        assert dispatcher.choose(0, exclude={1, 2}) == 0

    def test_migration_to_dead_target_retries_and_survives(self):
        from repro.workload import trec_mix_profiles

        system = self._system(n_nodes=3, monitor_interval_s=0.5)
        # Node 0 is genuinely overloaded so the dispatcher wants to
        # migrate away; every peer is already dead, which the (stale)
        # peer tables cannot know.
        system.monitoring.nodes[0].active_questions = 8
        system.failures.kill_now(1)
        system.failures.kill_now(2)
        profile = trec_mix_profiles(1, seed=4)[0]
        report = system.run_workload([profile])
        dispatcher = system.question_dispatcher
        assert dispatcher.migration_failures >= 1
        # The question survived by staying home on node 0.
        assert report.n_completed == 1
        assert report.accounted
