"""Tests for load functions and under-load conditions (Eq 1-3, 7-8)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AP_WEIGHTS,
    PR_WEIGHTS,
    QA_WEIGHTS,
    LoadSnapshot,
    ResourceWeights,
    is_underloaded,
    load_function,
    single_task_load,
)


def snap(cpu=0.0, disk=0.0, n_questions=0, n_waiting=0, node_id=0, ts=0.0):
    return LoadSnapshot(
        node_id=node_id,
        cpu_load=cpu,
        disk_load=disk,
        n_questions=n_questions,
        timestamp=ts,
        n_waiting=n_waiting,
    )


class TestWeights:
    def test_paper_values(self):
        assert (QA_WEIGHTS.cpu, QA_WEIGHTS.disk) == (0.79, 0.21)
        assert (PR_WEIGHTS.cpu, PR_WEIGHTS.disk) == (0.20, 0.80)
        assert (AP_WEIGHTS.cpu, AP_WEIGHTS.disk) == (1.00, 0.00)

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            ResourceWeights(0.5, 0.4)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            ResourceWeights(-0.1, 1.1)


class TestLoadFunction:
    def test_eq1_weighted_combination(self):
        s = snap(cpu=1.0, disk=0.5)
        assert load_function(QA_WEIGHTS, s) == pytest.approx(
            0.79 * 1.0 + 0.21 * 0.5
        )

    def test_ap_ignores_disk(self):
        assert load_function(AP_WEIGHTS, snap(cpu=0.3, disk=5.0)) == pytest.approx(0.3)

    def test_waiting_questions_add_average_load(self):
        idle = snap()
        queued = snap(n_waiting=2)
        delta = load_function(QA_WEIGHTS, queued) - load_function(QA_WEIGHTS, idle)
        assert delta == pytest.approx(2 * (0.79 * 0.79 + 0.21 * 0.21))

    @given(
        cpu=st.floats(min_value=0, max_value=10),
        disk=st.floats(min_value=0, max_value=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_both_resources(self, cpu, disk):
        base = load_function(PR_WEIGHTS, snap(cpu=cpu, disk=disk))
        more_cpu = load_function(PR_WEIGHTS, snap(cpu=cpu + 1, disk=disk))
        more_disk = load_function(PR_WEIGHTS, snap(cpu=cpu, disk=disk + 1))
        assert more_cpu >= base
        assert more_disk > base


class TestSingleTaskLoad:
    def test_closed_form(self):
        assert single_task_load(PR_WEIGHTS) == pytest.approx(0.2**2 + 0.8**2)
        assert single_task_load(AP_WEIGHTS) == pytest.approx(1.0)
        assert single_task_load(QA_WEIGHTS) == pytest.approx(0.6682)


class TestUnderload:
    def test_idle_node_underloaded_for_everything(self):
        s = snap()
        for w in (QA_WEIGHTS, PR_WEIGHTS, AP_WEIGHTS):
            assert is_underloaded(w, s)

    def test_busy_node_not_underloaded(self):
        s = snap(cpu=3.0, disk=2.0)
        for w in (QA_WEIGHTS, PR_WEIGHTS, AP_WEIGHTS):
            assert not is_underloaded(w, s)

    def test_cpu_busy_disk_idle_is_pr_underloaded(self):
        """The paper's key insight: a node saturated on CPU (running AP)
        still has its disk available for a PR sub-task."""
        s = snap(cpu=1.0, disk=0.0)
        assert is_underloaded(PR_WEIGHTS, s, margin=1.0)
        assert not is_underloaded(AP_WEIGHTS, s, margin=1.0)

    def test_disk_busy_cpu_idle_is_ap_underloaded(self):
        s = snap(cpu=0.0, disk=1.0)
        assert is_underloaded(AP_WEIGHTS, s, margin=1.0)
        assert not is_underloaded(PR_WEIGHTS, s, margin=1.0)

    def test_margin_scales_threshold(self):
        s = snap(cpu=0.9)
        assert not is_underloaded(AP_WEIGHTS, s, margin=0.5)
        assert is_underloaded(AP_WEIGHTS, s, margin=1.5)
