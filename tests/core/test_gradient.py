"""Tests for the gradient-model load balancer."""

import pytest

from repro.core import ClusterNode, DistributedQASystem, Strategy, SystemConfig
from repro.core.gradient import GradientBalancer, compute_gradients, ring_topology
from repro.core.node import NodeConfig
from repro.qa import SyntheticProfileGenerator
from repro.simulation import Environment
from repro.workload import high_load_count, staggered_arrivals, trec_mix_profiles


class TestRingTopology:
    def test_two_neighbors_each(self):
        topo = ring_topology(6)
        assert all(len(nbrs) == 2 for nbrs in topo.values())
        assert topo[0] == [1, 5]
        assert topo[5] == [0, 4]

    def test_two_nodes(self):
        topo = ring_topology(2)
        assert topo == {0: [1], 1: [0]}

    def test_single_node(self):
        assert ring_topology(1) == {0: []}

    def test_invalid(self):
        with pytest.raises(ValueError):
            ring_topology(0)


class TestComputeGradients:
    def test_underloaded_nodes_are_zero(self):
        topo = ring_topology(4)
        g = compute_gradients({0: True, 1: False, 2: False, 3: False}, topo)
        assert g[0] == 0
        assert g[1] == 1
        assert g[3] == 1
        assert g[2] == 2

    def test_no_underloaded_means_flat_infinity(self):
        topo = ring_topology(3)
        g = compute_gradients({0: False, 1: False, 2: False}, topo)
        assert len(set(g.values())) == 1
        assert g[0] > 100

    def test_multiple_sinks(self):
        topo = ring_topology(6)
        g = compute_gradients(
            {0: True, 3: True, 1: False, 2: False, 4: False, 5: False}, topo
        )
        assert g[1] == 1 and g[2] == 1
        assert g[4] == 1 and g[5] == 1

    def test_gradient_is_shortest_hop_distance(self):
        topo = ring_topology(8)
        g = compute_gradients({0: True, **{i: False for i in range(1, 8)}}, topo)
        for i in range(8):
            assert g[i] == min(i, 8 - i)


class TestBalancerTick:
    def _make(self, env, n=3, cap=1):
        nodes = {
            i: ClusterNode(env, i, NodeConfig(max_concurrent_questions=cap))
            for i in range(n)
        }
        balancer = GradientBalancer(env, nodes)
        return nodes, balancer

    def test_push_moves_waiter_toward_idle_node(self):
        env = Environment()
        nodes, balancer = self._make(env)
        # Node 0: one running + one queued; nodes 1-2 idle.
        nodes[0].admit_question()
        waiter = nodes[0].admit_question()
        pushed = balancer.tick()
        assert pushed == 1
        # Bounded run: the balancer's periodic process never terminates.
        env.run(until=1.0)
        assert waiter.processed and not waiter.ok  # claimed via Stolen

    def test_no_push_when_nobody_underloaded(self):
        env = Environment()
        nodes, balancer = self._make(env)
        for node in nodes.values():
            node.admit_question()  # all saturated (cap 1)
            node.admit_question()  # and all queued
        assert balancer.tick() == 0

    def test_no_push_when_no_queue(self):
        env = Environment()
        nodes, balancer = self._make(env)
        nodes[0].admit_question()
        assert balancer.tick() == 0

    def test_dead_neighbors_skipped(self):
        env = Environment()
        nodes, balancer = self._make(env, n=3)
        nodes[1].up = False
        nodes[2].up = False
        nodes[0].admit_question()
        nodes[0].admit_question()
        assert balancer.tick() == 0


class TestEndToEnd:
    def test_gradient_improves_on_plain_dns(self):
        import numpy as np

        n = 8
        n_q = high_load_count(n)

        def run(gradient):
            thr = []
            for seed in (11, 23):
                profiles = trec_mix_profiles(n_q, seed=seed)
                arrivals = staggered_arrivals(n_q, 2.0, seed=seed)
                system = DistributedQASystem(
                    SystemConfig(
                        n_nodes=n, strategy=Strategy.DNS,
                        gradient_balancing=gradient,
                    )
                )
                rep = system.run_workload(profiles, arrivals)
                assert all(not r.failed for r in rep.results)
                thr.append(rep.throughput_qpm)
            return float(np.mean(thr))

        assert run(True) > run(False)

    def test_pushes_counted(self):
        n = 4
        n_q = high_load_count(n)
        profiles = trec_mix_profiles(n_q, seed=11)
        arrivals = staggered_arrivals(n_q, 2.0, seed=11)
        system = DistributedQASystem(
            SystemConfig(n_nodes=n, strategy=Strategy.DNS, gradient_balancing=True)
        )
        system.run_workload(profiles, arrivals)
        assert system.gradient is not None
        assert system.gradient.pushes > 0
