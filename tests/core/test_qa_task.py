"""Focused tests for DistributedQATask internals: overhead accounting,
memory discipline, migration counting and policy flags."""

import pytest

from repro.core import (
    DistributedQASystem,
    PartitioningStrategy,
    Strategy,
    SystemConfig,
    TaskPolicy,
)
from repro.qa import CostModel, SyntheticProfileGenerator, SyntheticProfileParams


def profile(seed=3, complex_=True):
    params = SyntheticProfileParams.complex() if complex_ else None
    return SyntheticProfileGenerator(params, seed=seed).generate(0)


def run_one(n_nodes=4, policy=None, strategy=Strategy.DQA, prof=None, trace=False):
    system = DistributedQASystem(
        SystemConfig(
            n_nodes=n_nodes,
            strategy=strategy,
            policy=policy or TaskPolicy(),
            trace=trace,
        )
    )
    report = system.run_workload([prof or profile()])
    return system, report.results[0]


class TestOverheadAccounting:
    def test_overhead_categories_present(self):
        _, r = run_one()
        assert set(r.overhead) == {
            "keyword_send", "paragraph_recv", "paragraph_send",
            "answer_recv", "answer_sort",
        }

    def test_paragraph_transfer_dominates(self):
        """Like the paper's Table 9: paragraph movement is the biggest
        overhead component."""
        _, r = run_one(n_nodes=8)
        para = r.overhead["paragraph_recv"] + r.overhead["paragraph_send"]
        other = r.overhead["keyword_send"] + r.overhead["answer_recv"]
        assert para > other

    def test_single_node_has_no_transfer_overhead(self):
        _, r = run_one(n_nodes=1)
        assert r.overhead["keyword_send"] == 0.0
        assert r.overhead["paragraph_send"] == 0.0
        assert r.overhead["paragraph_recv"] == 0.0

    def test_response_time_exceeds_module_sum_by_overhead_scale(self):
        _, r = run_one(n_nodes=4)
        module_sum = sum(r.module_times.values())
        assert r.response_time >= module_sum * 0.9


class TestMemoryDiscipline:
    def test_all_memory_released_after_workload(self):
        system, _ = run_one(n_nodes=4)
        for node in system.nodes.values():
            assert node.memory.allocated == pytest.approx(
                node.config.baseline_memory_bytes
            )

    def test_memory_released_even_with_failures(self):
        from repro.simulation import FailureSchedule

        prof = profile()
        system = DistributedQASystem(
            SystemConfig(n_nodes=4, strategy=Strategy.DQA)
        )
        system.failures.apply(
            FailureSchedule().kill_at(20.0, 2).recover_at(100.0, 2)
        )
        system.run_workload([prof])
        for nid, node in system.nodes.items():
            assert node.memory.allocated == pytest.approx(
                node.config.baseline_memory_bytes
            ), f"node {nid} leaked memory"

    def test_question_slots_released(self):
        system, _ = run_one(n_nodes=4)
        for node in system.nodes.values():
            assert node.running_questions == 0
            assert node.active_questions == 0
            assert node.waiting_questions == 0


class TestPolicyFlags:
    def test_partitioning_disabled_keeps_width_one(self):
        policy = TaskPolicy(enable_partitioning=False)
        _, r = run_one(policy=policy)
        assert r.pr_partition_width == 1
        assert r.ap_partition_width == 1

    def test_pr_dispatch_disabled_runs_pr_on_host(self):
        policy = TaskPolicy(enable_pr_dispatch=False)
        _, r = run_one(policy=policy)
        assert not r.migrated_pr
        assert r.pr_partition_width == 1

    def test_ap_dispatch_disabled_runs_ap_on_host(self):
        policy = TaskPolicy(enable_ap_dispatch=False)
        _, r = run_one(policy=policy)
        assert not r.migrated_ap
        assert r.ap_partition_width == 1

    def test_widths_bounded_by_cluster(self):
        _, r = run_one(n_nodes=4)
        assert 1 <= r.pr_partition_width <= 4
        assert 1 <= r.ap_partition_width <= 4

    def test_pr_width_bounded_by_collections(self):
        prof = profile()
        _, r = run_one(n_nodes=12, prof=prof)
        assert r.pr_partition_width <= len(prof.collections)


class TestScaleInvariance:
    def test_times_scale_with_cpu_work(self):
        """Metamorphic: doubling every CPU demand roughly doubles the
        CPU-bound module times on an uncontended single node."""
        from dataclasses import replace

        prof = profile()
        doubled = replace(
            prof,
            qp_cpu_s=prof.qp_cpu_s * 2,
            po_cpu_s=prof.po_cpu_s * 2,
            paragraphs=[
                replace(p, ap_cpu_s=p.ap_cpu_s * 2) for p in prof.paragraphs
            ],
        )
        _, base = run_one(n_nodes=1, prof=prof)
        _, double = run_one(n_nodes=1, prof=doubled)
        assert double.module_times["AP"] == pytest.approx(
            2 * base.module_times["AP"], rel=0.02
        )
        assert double.module_times["QP"] == pytest.approx(
            2 * base.module_times["QP"], rel=0.02
        )
        # PR unchanged (disk-bound part untouched).
        assert double.module_times["PR"] == pytest.approx(
            base.module_times["PR"], rel=0.02
        )


class TestTraceConsistency:
    def test_trace_chunk_count_matches_partitioning(self):
        prof = profile()
        policy = TaskPolicy(
            ap_strategy=PartitioningStrategy.RECV, ap_chunk_paragraphs=40
        )
        system, r = run_one(n_nodes=4, policy=policy, prof=prof, trace=True)
        n_chunks = len(system.tracer.of_kind("ap-part"))
        expected = max(1, prof.n_accepted // 40)
        assert n_chunks == expected

    def test_pr_collections_all_traced(self):
        prof = profile()
        system, _ = run_one(n_nodes=4, prof=prof, trace=True)
        traced = system.tracer.of_kind("pr-collection")
        assert len(traced) == len(prof.collections)
