"""Tests for the question dispatcher."""

import pytest

from repro.core import ClusterNode, MonitoringSystem, QuestionDispatcher
from repro.simulation import Environment, Network


def build(env, n=3):
    net = Network(env)
    nodes = [ClusterNode(env, i) for i in range(n)]
    mon = MonitoringSystem(env, net, nodes)
    return nodes, mon, QuestionDispatcher(mon)


class TestChoose:
    def test_balanced_cluster_stays_home(self):
        env = Environment()
        nodes, mon, dispatcher = build(env)
        assert dispatcher.choose(0) == 0
        assert dispatcher.migrations == 0
        assert dispatcher.decisions == 1

    def test_overloaded_host_migrates_to_idle(self):
        env = Environment()
        nodes, mon, dispatcher = build(env)
        nodes[0].active_questions = 5
        target = dispatcher.choose(0)
        assert target != 0
        assert dispatcher.migrations == 1

    def test_one_question_difference_not_migrated(self):
        """The useless-migration rule: difference must exceed one average
        question's load."""
        env = Environment()
        nodes, mon, dispatcher = build(env)
        nodes[0].active_questions = 1
        assert dispatcher.choose(0) == 0

    def test_two_question_difference_migrates(self):
        env = Environment()
        nodes, mon, dispatcher = build(env)
        nodes[0].active_questions = 2
        assert dispatcher.choose(0) != 0

    def test_optimistic_bump_prevents_stampede(self):
        """Several dispatch decisions within one broadcast interval must
        spread across targets, not all pile on the same node."""
        env = Environment()
        nodes, mon, dispatcher = build(env, n=3)
        nodes[0].active_questions = 8
        first = dispatcher.choose(0)
        second = dispatcher.choose(0)
        assert first != second

    def test_custom_threshold(self):
        env = Environment()
        nodes, mon, dispatcher = build(env)
        dispatcher.migration_threshold = 10.0
        nodes[0].active_questions = 5
        assert dispatcher.choose(0) == 0  # huge threshold: never migrate

    def test_ties_break_deterministically(self):
        env = Environment()
        nodes, mon, dispatcher = build(env)
        nodes[2].active_questions = 4
        a = dispatcher.choose(2)
        env2 = Environment()
        nodes2, mon2, dispatcher2 = build(env2)
        nodes2[2].active_questions = 4
        b = dispatcher2.choose(2)
        assert a == b
