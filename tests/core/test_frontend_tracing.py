"""Tests for the DNS front-end and the Fig 7 tracer."""

import pytest

from repro.core import DNSFrontend, TraceEvent, Tracer, render_trace


class TestDNSFrontend:
    def test_perfect_round_robin(self):
        fe = DNSFrontend(3)
        assert [fe.assign() for _ in range(7)] == [0, 1, 2, 0, 1, 2, 0]

    def test_cache_skew_repeats_assignments(self):
        fe = DNSFrontend(4, cache_skew=0.9, seed=1)
        assignments = [fe.assign() for _ in range(200)]
        repeats = sum(1 for a, b in zip(assignments, assignments[1:]) if a == b)
        assert repeats > 100  # strongly sticky

    def test_zero_skew_never_repeats_with_multiple_nodes(self):
        fe = DNSFrontend(2, cache_skew=0.0)
        assignments = [fe.assign() for _ in range(10)]
        assert all(a != b for a, b in zip(assignments, assignments[1:]))

    def test_assignments_recorded(self):
        fe = DNSFrontend(2)
        fe.assign()
        fe.assign()
        assert fe.assignments == [0, 1]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DNSFrontend(0)
        with pytest.raises(ValueError):
            DNSFrontend(2, cache_skew=1.0)

    def test_seed_determinism(self):
        a = [DNSFrontend(4, cache_skew=0.5, seed=3).assign() for _ in range(1)]
        b = [DNSFrontend(4, cache_skew=0.5, seed=3).assign() for _ in range(1)]
        assert a == b


class TestTracer:
    def test_record_and_query(self):
        t = Tracer()
        t.record(1.0, 0, 5, "qp-start")
        t.record(2.0, 1, 5, "pr-collection", "c3")
        assert len(t) == 2
        assert t.count("qp-start") == 1
        assert [e.kind for e in t.of_kind("pr-collection")] == ["pr-collection"]

    def test_disabled_tracer_is_noop(self):
        t = Tracer(enabled=False)
        t.record(1.0, 0, 5, "qp-start")
        assert len(t) == 0

    def test_clear(self):
        t = Tracer()
        t.record(1.0, 0, 0, "x")
        t.clear()
        assert len(t) == 0

    def test_render_relative_times_and_ordering(self):
        events = [
            TraceEvent(12.0, 1, 7, "ap-part", "40p"),
            TraceEvent(10.0, 0, 7, "qp-start"),
        ]
        text = render_trace(events)
        lines = text.splitlines()
        assert "qp-start" in lines[0]
        assert "[   0.000s]" in lines[0]
        assert "[   2.000s]" in lines[1]
        assert "N1 q7 ap-part 40p" in lines[1]

    def test_render_empty(self):
        assert render_trace([]) == "(empty trace)"
