"""Tests for SEND / ISEND / RECV partitioning and distribution loops."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    WorkerFailed,
    make_chunks,
    partition_isend,
    partition_send,
    run_receiver_controlled,
    run_sender_controlled,
)
from repro.simulation import Environment


class TestPartitionSend:
    def test_contiguous_blocks(self):
        parts = partition_send(list(range(10)), [0.5, 0.5])
        assert parts == [[0, 1, 2, 3, 4], [5, 6, 7, 8, 9]]

    def test_weighted_sizes(self):
        parts = partition_send(list(range(10)), [0.8, 0.2])
        assert len(parts[0]) == 8
        assert len(parts[1]) == 2

    def test_all_items_exactly_once(self):
        items = list(range(17))
        parts = partition_send(items, [0.3, 0.3, 0.4])
        flat = [x for p in parts for x in p]
        assert flat == items

    def test_empty_items(self):
        assert partition_send([], [1.0, 1.0]) == [[], []]

    def test_bad_weights(self):
        with pytest.raises(ValueError):
            partition_send([1], [])
        with pytest.raises(ValueError):
            partition_send([1], [-1.0, 2.0])
        with pytest.raises(ValueError):
            partition_send([1], [0.0, 0.0])

    @given(
        n=st.integers(min_value=0, max_value=100),
        weights=st.lists(
            st.floats(min_value=0.01, max_value=10), min_size=1, max_size=8
        ),
    )
    @settings(max_examples=150, deadline=None)
    def test_apportionment_property(self, n, weights):
        items = list(range(n))
        parts = partition_send(items, weights)
        # Partition count matches weights; all items exactly once, order kept.
        assert len(parts) == len(weights)
        assert [x for p in parts for x in p] == items
        # Each size within 1 of the exact proportional share.
        total = sum(weights)
        for part, w in zip(parts, weights):
            assert abs(len(part) - n * w / total) < 1.0 + 1e-9


class TestPartitionIsend:
    def test_interleaves_rank_ordered_items(self):
        parts = partition_isend(list(range(8)), [0.5, 0.5])
        # Each partition receives alternating items, so both carry a mix
        # of early (expensive) and late (cheap) ranks.
        assert len(parts[0]) == len(parts[1]) == 4
        assert parts[0][0] == 0
        assert parts[1][0] == 1

    def test_cost_balance_on_decaying_costs(self):
        """On rank-decaying costs, ISEND's partitions are much better
        balanced than SEND's — the Section 4.1.3 observation."""
        costs = [1.0 / (1 + i) for i in range(100)]
        weights = [0.25] * 4

        def spread(parts):
            sums = [sum(p) for p in parts]
            return max(sums) - min(sums)

        send_spread = spread(partition_send(costs, weights))
        isend_spread = spread(partition_isend(costs, weights))
        assert isend_spread < send_spread / 3

    @given(
        n=st.integers(min_value=0, max_value=80),
        weights=st.lists(
            st.floats(min_value=0.05, max_value=5), min_size=1, max_size=6
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_partition_property(self, n, weights):
        items = list(range(n))
        parts = partition_isend(items, weights)
        flat = sorted(x for p in parts for x in p)
        assert flat == items
        for part in parts:
            assert part == sorted(part)  # order preserved within partition


class TestMakeChunks:
    def test_even_split(self):
        chunks = make_chunks(list(range(8)), 4)
        assert chunks == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_remainder_extends_last_chunk(self):
        chunks = make_chunks(list(range(10)), 4)
        assert [len(c) for c in chunks] == [4, 6]

    def test_chunk_larger_than_input(self):
        chunks = make_chunks([1, 2], 10)
        assert chunks == [[1, 2]]

    def test_empty(self):
        assert make_chunks([], 5) == []

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            make_chunks([1], 0)

    @given(
        n=st.integers(min_value=0, max_value=200),
        size=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=150, deadline=None)
    def test_chunks_partition_input(self, n, size):
        items = list(range(n))
        chunks = make_chunks(items, size)
        assert [x for c in chunks for x in c] == items
        if n >= size:
            assert all(len(c) >= size for c in chunks)
            assert len(chunks) == n // size


class _FakeCluster:
    """Executor harness: per-node speeds and scripted failures."""

    def __init__(self, env, speeds, fail_at=None):
        self.env = env
        self.speeds = speeds
        self.fail_at = fail_at or {}  # node -> items processed before dying
        self.processed: dict[int, list] = {n: [] for n in speeds}

    def executor(self, nid, items):
        budget = self.fail_at.get(nid)
        for i, item in enumerate(items):
            if budget is not None and len(self.processed[nid]) >= budget:
                raise WorkerFailed(nid, items[i:])
            yield self.env.timeout(item / self.speeds[nid])
            self.processed[nid].append(item)


class TestSenderControlledLoop:
    def test_all_items_processed(self):
        env = Environment()
        cluster = _FakeCluster(env, {0: 1.0, 1: 1.0})
        items = [1.0] * 10

        def main():
            yield from run_sender_controlled(
                env, items, [(0, 0.5), (1, 0.5)], cluster.executor,
                interleaved=False,
            )

        env.run(until=env.process(main()))
        assert len(cluster.processed[0]) + len(cluster.processed[1]) == 10

    def test_failure_recovery_reassigns_work(self):
        env = Environment()
        # Node 1 dies after 2 items; its remaining work must end up on 0.
        cluster = _FakeCluster(env, {0: 1.0, 1: 1.0}, fail_at={1: 2})
        items = [1.0] * 12

        def main():
            yield from run_sender_controlled(
                env, items, [(0, 0.5), (1, 0.5)], cluster.executor,
                interleaved=False,
            )

        env.run(until=env.process(main()))
        total = len(cluster.processed[0]) + len(cluster.processed[1])
        assert total == 12
        assert len(cluster.processed[1]) == 2

    def test_all_workers_dead_raises(self):
        env = Environment()
        cluster = _FakeCluster(env, {0: 1.0}, fail_at={0: 1})

        def main():
            yield from run_sender_controlled(
                env, [1.0, 1.0, 1.0], [(0, 1.0)], cluster.executor,
                interleaved=False,
            )

        with pytest.raises(RuntimeError, match="all workers failed"):
            env.run(until=env.process(main()))

    def test_interleaved_variant_runs(self):
        env = Environment()
        cluster = _FakeCluster(env, {0: 1.0, 1: 2.0})
        items = [float(i) for i in range(9, 0, -1)]

        def main():
            yield from run_sender_controlled(
                env, items, [(0, 0.4), (1, 0.6)], cluster.executor,
                interleaved=True,
            )

        env.run(until=env.process(main()))
        assert sorted(
            cluster.processed[0] + cluster.processed[1], reverse=True
        ) == items


class TestReceiverControlledLoop:
    def test_all_chunks_processed(self):
        env = Environment()
        cluster = _FakeCluster(env, {0: 1.0, 1: 1.0, 2: 1.0})
        items = [1.0] * 12

        def main():
            yield from run_receiver_controlled(
                env, items, [0, 1, 2], cluster.executor, chunk_size=2
            )

        env.run(until=env.process(main()))
        total = sum(len(v) for v in cluster.processed.values())
        assert total == 12

    def test_faster_node_pulls_more_chunks(self):
        env = Environment()
        cluster = _FakeCluster(env, {0: 1.0, 1: 4.0})
        items = [1.0] * 20

        def main():
            yield from run_receiver_controlled(
                env, items, [0, 1], cluster.executor, chunk_size=2
            )

        env.run(until=env.process(main()))
        assert len(cluster.processed[1]) > len(cluster.processed[0])

    def test_failed_node_chunk_returns_to_pool(self):
        env = Environment()
        cluster = _FakeCluster(env, {0: 1.0, 1: 1.0}, fail_at={1: 0})
        items = [1.0] * 8

        def main():
            yield from run_receiver_controlled(
                env, items, [0, 1], cluster.executor, chunk_size=2
            )

        env.run(until=env.process(main()))
        assert len(cluster.processed[0]) == 8
        assert cluster.processed[1] == []

    def test_all_nodes_fail_raises(self):
        env = Environment()
        cluster = _FakeCluster(env, {0: 1.0}, fail_at={0: 0})

        def main():
            yield from run_receiver_controlled(
                env, [1.0, 1.0], [0], cluster.executor, chunk_size=1
            )

        with pytest.raises(RuntimeError, match="all workers failed"):
            env.run(until=env.process(main()))

    def test_no_workers_rejected(self):
        env = Environment()

        def main():
            yield from run_receiver_controlled(
                env, [1.0], [], lambda n, i: iter(()), chunk_size=1
            )

        with pytest.raises(ValueError):
            env.run(until=env.process(main()))

    def test_empty_items_noop(self):
        env = Environment()
        cluster = _FakeCluster(env, {0: 1.0})

        def main():
            result = yield from run_receiver_controlled(
                env, [], [0], cluster.executor, chunk_size=5
            )
            return result

        assert env.run(until=env.process(main())) == []
