"""Property-based invariant tests for the pure partitioning functions.

Complements tests/core/test_partitioning.py: instead of hand-picked
examples, these drive ``partition_send`` / ``partition_isend`` /
``make_chunks`` / ``_apportion`` through hundreds of generated cases from
a seeded stdlib ``random.Random`` — item counts, weight vectors
(including zero weights) and chunk sizes — and assert the contracts the
distribution loops rely on:

* every item lands in exactly one partition (no loss, no duplication);
* partition sizes are within 1 of the exact proportional share;
* zero-weight processors receive nothing;
* the last chunk absorbs the remainder (no short tail chunk).
"""

import random

import pytest

from repro.core import make_chunks, partition_isend, partition_send
from repro.core.partitioning import _apportion

CASES_PER_SEED = 25


def _random_weights(rng, max_len=8, allow_zero=True):
    k = rng.randint(1, max_len)
    weights = [
        0.0 if (allow_zero and rng.random() < 0.25) else rng.uniform(0.01, 10.0)
        for _ in range(k)
    ]
    if sum(weights) <= 0:  # at least one processor must have capacity
        weights[rng.randrange(k)] = rng.uniform(0.1, 1.0)
    return weights


def _cases(seed):
    rng = random.Random(seed)
    for _ in range(CASES_PER_SEED):
        n = rng.randint(0, 200)
        yield list(range(n)), _random_weights(rng), rng


@pytest.mark.parametrize("seed", range(10))
class TestSendInvariants:
    def test_exactly_once_and_order(self, seed):
        for items, weights, _ in _cases(seed):
            parts = partition_send(items, weights)
            assert len(parts) == len(weights)
            assert [x for p in parts for x in p] == items

    def test_sizes_within_one_of_share(self, seed):
        for items, weights, _ in _cases(seed):
            parts = partition_send(items, weights)
            total = sum(weights)
            for part, w in zip(parts, weights):
                share = len(items) * w / total
                assert abs(len(part) - share) < 1.0 + 1e-9

    def test_zero_weight_gets_nothing(self, seed):
        for items, weights, _ in _cases(seed):
            parts = partition_send(items, weights)
            for part, w in zip(parts, weights):
                if w == 0.0:
                    assert part == []


@pytest.mark.parametrize("seed", range(10))
class TestIsendInvariants:
    def test_exactly_once_no_duplication(self, seed):
        for items, weights, _ in _cases(seed):
            parts = partition_isend(items, weights)
            assert len(parts) == len(weights)
            assert sorted(x for p in parts for x in p) == items

    def test_order_preserved_within_partition(self, seed):
        for items, weights, _ in _cases(seed):
            for part in partition_isend(items, weights):
                assert part == sorted(part)

    def test_sizes_match_send_apportionment(self, seed):
        # ISEND deals different items but must grant identical sizes.
        for items, weights, _ in _cases(seed):
            isend_sizes = [len(p) for p in partition_isend(items, weights)]
            send_sizes = [len(p) for p in partition_send(items, weights)]
            assert isend_sizes == send_sizes

    def test_interleaving_spreads_ranks(self, seed):
        # With equal positive weights and plenty of items, no partition
        # may hoard a contiguous prefix: ISEND's entire point is that
        # early (expensive) ranks are dealt round-robin.
        rng = random.Random(seed)
        for _ in range(CASES_PER_SEED):
            k = rng.randint(2, 6)
            n = k * rng.randint(3, 30)
            parts = partition_isend(list(range(n)), [1.0] * k)
            firsts = sorted(p[0] for p in parts)
            assert firsts == list(range(k))


@pytest.mark.parametrize("seed", range(10))
class TestChunkInvariants:
    def test_concatenation_is_input(self, seed):
        rng = random.Random(seed)
        for _ in range(CASES_PER_SEED):
            n, size = rng.randint(0, 300), rng.randint(1, 60)
            items = list(range(n))
            chunks = make_chunks(items, size)
            assert [x for c in chunks for x in c] == items

    def test_last_chunk_absorbs_remainder(self, seed):
        rng = random.Random(seed)
        for _ in range(CASES_PER_SEED):
            n, size = rng.randint(1, 300), rng.randint(1, 60)
            chunks = make_chunks(list(range(n)), size)
            if n < size:
                assert len(chunks) == 1 and len(chunks[0]) == n
                continue
            assert len(chunks) == n // size
            assert all(len(c) == size for c in chunks[:-1])
            assert len(chunks[-1]) == size + n % size

    def test_chunk_count_never_exceeds_items(self, seed):
        rng = random.Random(seed)
        for _ in range(CASES_PER_SEED):
            n, size = rng.randint(0, 300), rng.randint(1, 60)
            chunks = make_chunks(list(range(n)), size)
            assert len(chunks) <= max(n, 1)
            assert all(c for c in chunks) or n == 0


@pytest.mark.parametrize("seed", range(10))
class TestApportionInvariants:
    def test_sums_to_n_and_non_negative(self, seed):
        rng = random.Random(seed)
        for _ in range(CASES_PER_SEED):
            n = rng.randint(0, 500)
            weights = _random_weights(rng)
            sizes = _apportion(n, weights)
            assert sum(sizes) == n
            assert all(s >= 0 for s in sizes)

    def test_within_one_of_quota(self, seed):
        rng = random.Random(seed)
        for _ in range(CASES_PER_SEED):
            n = rng.randint(0, 500)
            weights = _random_weights(rng)
            sizes = _apportion(n, weights)
            total = sum(weights)
            for s, w in zip(sizes, weights):
                assert abs(s - n * w / total) < 1.0 + 1e-9

    def test_monotone_in_n(self, seed):
        # Adding one more item never shrinks anyone's partition by > 1;
        # total grows by exactly 1 (no item teleportation).
        rng = random.Random(seed)
        for _ in range(CASES_PER_SEED):
            n = rng.randint(0, 200)
            weights = _random_weights(rng)
            before = _apportion(n, weights)
            after = _apportion(n + 1, weights)
            assert sum(after) - sum(before) == 1
            assert all(b - a <= 1 for a, b in zip(after, before))
