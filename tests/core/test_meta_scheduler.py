"""Tests for the meta-scheduling algorithm (Figure 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AP_WEIGHTS, PR_WEIGHTS, meta_schedule, single_task_load
from repro.core.load import LoadSnapshot


def table(loads_cpu_disk):
    return {
        nid: LoadSnapshot(
            node_id=nid, cpu_load=cpu, disk_load=disk, n_questions=0,
            timestamp=0.0,
        )
        for nid, (cpu, disk) in loads_cpu_disk.items()
    }


class TestSelection:
    def test_all_idle_selected(self):
        a = meta_schedule(table({0: (0, 0), 1: (0, 0), 2: (0, 0)}), AP_WEIGHTS)
        assert sorted(a.node_ids) == [0, 1, 2]
        assert not a.forced_single
        assert a.partitioned

    def test_loaded_nodes_excluded(self):
        a = meta_schedule(
            table({0: (0, 0), 1: (5.0, 0), 2: (0, 0)}), AP_WEIGHTS
        )
        assert sorted(a.node_ids) == [0, 2]

    def test_step2_all_loaded_selects_least(self):
        a = meta_schedule(
            table({0: (3.0, 1.0), 1: (2.0, 1.0), 2: (4.0, 1.0)}), AP_WEIGHTS
        )
        assert a.node_ids == [1]
        assert a.forced_single
        assert not a.partitioned

    def test_resource_specialisation(self):
        """A CPU-saturated node is still PR-eligible (disk idle)."""
        t = table({0: (1.2, 0.0), 1: (1.2, 0.0), 2: (1.2, 1.2)})
        pr = meta_schedule(t, PR_WEIGHTS)
        assert 0 in pr.node_ids and 1 in pr.node_ids
        assert 2 not in pr.node_ids

    def test_max_parts_cap(self):
        t = table({i: (0, 0) for i in range(10)})
        a = meta_schedule(t, AP_WEIGHTS, max_parts=4)
        assert len(a.shares) == 4

    def test_include_forces_host_into_partition(self):
        t = table({0: (1.05, 0.0), 1: (0, 0), 2: (0, 0)})
        a = meta_schedule(t, AP_WEIGHTS, underload_margin=1.0, include=0)
        assert 0 in a.node_ids
        assert len(a.node_ids) == 3

    def test_include_survives_max_parts_trim(self):
        t = table({0: (1.05, 0.0), 1: (0, 0), 2: (0, 0), 3: (0, 0)})
        a = meta_schedule(t, AP_WEIGHTS, max_parts=2, include=0)
        assert 0 in a.node_ids

    def test_include_ignored_when_forced_single(self):
        t = table({0: (3.0, 0), 1: (2.0, 0)})
        a = meta_schedule(t, AP_WEIGHTS, include=0, stay_on=None)
        assert a.node_ids == [1]

    def test_stay_threshold_prevents_useless_migration(self):
        t = table({0: (2.0, 0), 1: (1.5, 0)})
        a = meta_schedule(
            t, AP_WEIGHTS, stay_on=0, stay_threshold=single_task_load(AP_WEIGHTS)
        )
        assert a.node_ids == [0]

    def test_stay_threshold_allows_worthwhile_migration(self):
        t = table({0: (4.0, 0), 1: (1.0, 0)})
        a = meta_schedule(
            t, AP_WEIGHTS, stay_on=0, stay_threshold=single_task_load(AP_WEIGHTS)
        )
        assert a.node_ids == [1]

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            meta_schedule({}, AP_WEIGHTS)


class TestWeights:
    def test_shares_sum_to_one(self):
        t = table({0: (0.2, 0), 1: (0.5, 0), 2: (0.0, 0)})
        a = meta_schedule(t, AP_WEIGHTS)
        assert sum(w for _, w in a.shares) == pytest.approx(1.0)

    def test_less_loaded_gets_more(self):
        t = table({0: (0.8, 0), 1: (0.1, 0)})
        a = meta_schedule(t, AP_WEIGHTS)
        shares = dict(a.shares)
        assert shares[1] > shares[0]

    def test_idle_nodes_get_equal_shares(self):
        t = table({i: (0, 0) for i in range(4)})
        a = meta_schedule(t, AP_WEIGHTS)
        values = [w for _, w in a.shares]
        assert max(values) - min(values) < 1e-9

    def test_near_idle_cluster_shares_nearly_equal(self):
        """Tiny residual loads must not starve any node (DESIGN.md §4)."""
        t = table({0: (0.08, 0), 1: (0.0, 0), 2: (0.02, 0), 3: (0.0, 0)})
        a = meta_schedule(t, AP_WEIGHTS)
        values = [w for _, w in a.shares]
        assert min(values) > 0.8 * max(values)

    def test_single_selection_weight_one(self):
        t = table({0: (9, 9), 1: (8, 8)})
        a = meta_schedule(t, AP_WEIGHTS)
        assert a.shares == ((1, 1.0),)

    @given(
        loads=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=5),
                st.floats(min_value=0, max_value=5),
            ),
            min_size=1,
            max_size=12,
        ),
        margin=st.floats(min_value=0.5, max_value=2.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_invariants(self, loads, margin):
        t = table(dict(enumerate(loads)))
        a = meta_schedule(t, PR_WEIGHTS, underload_margin=margin)
        # Shares sum to 1, all positive, node ids unique and valid.
        assert sum(w for _, w in a.shares) == pytest.approx(1.0)
        assert all(w > 0 for _, w in a.shares)
        ids = [nid for nid, _ in a.shares]
        assert len(ids) == len(set(ids))
        assert set(ids) <= set(t)
