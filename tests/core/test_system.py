"""Integration tests for the distributed Q/A system."""

import pytest

from repro.core import (
    DistributedQASystem,
    PartitioningStrategy,
    Strategy,
    SystemConfig,
    TaskPolicy,
)
from repro.qa import SyntheticProfileGenerator, SyntheticProfileParams
from repro.simulation import FailureSchedule
from repro.workload import staggered_arrivals


def profiles(n, seed=3, complex_=False):
    params = SyntheticProfileParams.complex() if complex_ else None
    return SyntheticProfileGenerator(params, seed=seed).generate_many(n)


class TestSingleQuestion:
    def test_single_node_runs_sequentially(self):
        from repro.qa import CostModel

        system = DistributedQASystem(SystemConfig(n_nodes=1, strategy=Strategy.DNS))
        prof = profiles(1)[0]
        report = system.run_workload([prof])
        r = report.results[0]
        expected = prof.sequential_seconds(CostModel.default())
        assert r.response_time == pytest.approx(expected, rel=0.05)
        assert not (r.migrated_qa or r.migrated_pr or r.migrated_ap)

    def test_partitioning_reduces_response_time(self):
        prof = profiles(1, complex_=True)[0]
        t1 = DistributedQASystem(
            SystemConfig(n_nodes=1, strategy=Strategy.DQA)
        ).run_workload([prof]).results[0].response_time
        t8 = DistributedQASystem(
            SystemConfig(n_nodes=8, strategy=Strategy.DQA)
        ).run_workload([prof]).results[0].response_time
        assert t8 < t1 / 2.5

    def test_module_times_recorded(self):
        prof = profiles(1, complex_=True)[0]
        system = DistributedQASystem(SystemConfig(n_nodes=4, strategy=Strategy.DQA))
        r = system.run_workload([prof]).results[0]
        assert all(r.module_times[k] > 0 for k in ("QP", "PR", "PS", "AP"))

    def test_overhead_small_fraction_of_response(self):
        """The paper: distribution overhead < 3 % of response time."""
        prof = profiles(1, complex_=True)[0]
        system = DistributedQASystem(SystemConfig(n_nodes=4, strategy=Strategy.DQA))
        r = system.run_workload([prof]).results[0]
        assert r.total_overhead < 0.05 * r.response_time

    def test_dns_never_migrates_or_partitions(self):
        system = DistributedQASystem(SystemConfig(n_nodes=4, strategy=Strategy.DNS))
        report = system.run_workload(profiles(4))
        assert report.migrations_qa == 0
        assert report.migrations_pr == 0
        assert report.migrations_ap == 0
        assert all(r.ap_partition_width == 1 for r in report.results)

    def test_inter_only_question_dispatch(self):
        system = DistributedQASystem(SystemConfig(n_nodes=4, strategy=Strategy.INTER))
        report = system.run_workload(profiles(8))
        assert report.migrations_pr == 0
        assert report.migrations_ap == 0

    def test_trace_events_collected_when_enabled(self):
        system = DistributedQASystem(
            SystemConfig(n_nodes=4, strategy=Strategy.DQA, trace=True)
        )
        system.run_workload(profiles(1, complex_=True))
        kinds = {e.kind for e in system.tracer.events}
        assert "pr-collection" in kinds
        assert "ap-part" in kinds
        assert "done" in kinds

    def test_trace_disabled_by_default(self):
        system = DistributedQASystem(SystemConfig(n_nodes=4, strategy=Strategy.DQA))
        system.run_workload(profiles(1))
        assert len(system.tracer) == 0


class TestWorkloads:
    def test_all_questions_complete(self):
        system = DistributedQASystem(SystemConfig(n_nodes=4, strategy=Strategy.DQA))
        profs = profiles(16)
        report = system.run_workload(profs, staggered_arrivals(16, 2.0))
        assert report.n_questions == 16
        assert sorted(r.qid for r in report.results) == list(range(16))

    def test_round_robin_entry_assignment(self):
        system = DistributedQASystem(SystemConfig(n_nodes=4, strategy=Strategy.DNS))
        report = system.run_workload(profiles(8))
        entries = [r.entry_node for r in report.results]
        assert entries == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_throughput_and_latency_positive(self):
        system = DistributedQASystem(SystemConfig(n_nodes=2, strategy=Strategy.DNS))
        report = system.run_workload(profiles(4))
        assert report.throughput_qpm > 0
        assert report.mean_response_s > 0
        assert report.mean_sojourn_s >= report.mean_response_s

    def test_empty_workload(self):
        system = DistributedQASystem(SystemConfig(n_nodes=2))
        report = system.run_workload([])
        assert report.n_questions == 0
        assert report.throughput_qpm == 0.0

    def test_arrival_length_mismatch_rejected(self):
        system = DistributedQASystem(SystemConfig(n_nodes=2))
        with pytest.raises(ValueError):
            system.run_workload(profiles(2), [0.0])

    def test_determinism_across_runs(self):
        def run():
            system = DistributedQASystem(
                SystemConfig(n_nodes=4, strategy=Strategy.DQA, seed=5)
            )
            profs = profiles(8, seed=5)
            rep = system.run_workload(profs, staggered_arrivals(8, 2.0, seed=5))
            return [round(r.response_time, 9) for r in rep.results]

        assert run() == run()


class TestFailureRecovery:
    def test_worker_failure_during_partitioned_ap(self):
        """Killing a worker mid-run must not lose the question."""
        prof = profiles(1, complex_=True)[0]
        system = DistributedQASystem(
            SystemConfig(
                n_nodes=4,
                strategy=Strategy.DQA,
                policy=TaskPolicy(ap_strategy=PartitioningStrategy.RECV),
            )
        )
        # Kill node 3 shortly after AP is likely to have started.
        system.failures.apply(FailureSchedule().kill_at(16.0, 3))
        report = system.run_workload([prof])
        assert report.n_questions == 1
        r = report.results[0]
        assert r.response_time > 0

    def test_send_strategy_failure_recovery(self):
        prof = profiles(1, complex_=True)[0]
        system = DistributedQASystem(
            SystemConfig(
                n_nodes=4,
                strategy=Strategy.DQA,
                policy=TaskPolicy(ap_strategy=PartitioningStrategy.SEND),
            )
        )
        system.failures.apply(FailureSchedule().kill_at(16.0, 2))
        report = system.run_workload([prof])
        assert report.n_questions == 1

    def test_host_failure_loses_only_hosted_tasks(self):
        """Host death marks its tasks failed; others complete normally."""
        system = DistributedQASystem(SystemConfig(n_nodes=4, strategy=Strategy.DQA))
        system.failures.apply(FailureSchedule().kill_at(30.0, 1).recover_at(500.0, 1))
        profs = profiles(6, complex_=True)
        done = [
            system.submit(prof, entry_node=i % 4)
            for i, prof in enumerate(profs)
        ]
        results = system.env.run(until=system.env.all_of(done))
        outcomes = list(results.values())
        assert len(outcomes) == 6
        succeeded = [r for r in outcomes if not r.failed]
        # At least the questions not hosted on node 1 must succeed.
        assert len(succeeded) >= 4
        assert all(r.response_time > 0 for r in succeeded)
