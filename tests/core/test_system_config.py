"""Tests for SystemConfig policy derivation and report aggregation."""

import pytest

from repro.core import (
    DistributedQASystem,
    Strategy,
    SystemConfig,
    TaskPolicy,
)
from repro.core.node import NodeConfig
from repro.qa import SyntheticProfileGenerator


def profiles(n, seed=3):
    return SyntheticProfileGenerator(seed=seed).generate_many(n)


class TestEffectivePolicy:
    def test_dns_disables_everything(self):
        policy = SystemConfig(strategy=Strategy.DNS).effective_policy()
        assert not policy.enable_question_dispatch
        assert not policy.enable_pr_dispatch
        assert not policy.enable_ap_dispatch
        assert not policy.enable_partitioning

    def test_inter_enables_only_question_dispatch(self):
        policy = SystemConfig(strategy=Strategy.INTER).effective_policy()
        assert policy.enable_question_dispatch
        assert not policy.enable_pr_dispatch
        assert not policy.enable_ap_dispatch

    def test_dqa_keeps_user_policy(self):
        custom = TaskPolicy(ap_chunk_paragraphs=17)
        policy = SystemConfig(
            strategy=Strategy.DQA, policy=custom
        ).effective_policy()
        assert policy.enable_pr_dispatch
        assert policy.ap_chunk_paragraphs == 17

    def test_strategy_override_preserves_other_knobs(self):
        custom = TaskPolicy(ap_chunk_paragraphs=23)
        policy = SystemConfig(
            strategy=Strategy.DNS, policy=custom
        ).effective_policy()
        assert not policy.enable_partitioning
        assert policy.ap_chunk_paragraphs == 23


class TestNodeOverrides:
    def test_disk_bandwidth_override_changes_pr_time(self):
        prof = profiles(1)[0]

        def response(disk_bw):
            system = DistributedQASystem(
                SystemConfig(
                    n_nodes=1,
                    strategy=Strategy.DNS,
                    node_overrides={0: NodeConfig(disk_bandwidth=disk_bw)},
                )
            )
            return system.run_workload([prof]).results[0].module_times["PR"]

        assert response(50e6) < response(12.5e6)


class TestSubmitAt:
    def test_tasks_start_at_requested_times(self):
        system = DistributedQASystem(SystemConfig(n_nodes=2, strategy=Strategy.DNS))
        profs = profiles(2)
        done = []

        def collect(proc):
            def body():
                result = yield proc
                done.append(result)

            return body()

        system.submit_at(profs[0], arrival_time=5.0)
        system.submit_at(profs[1], arrival_time=10.0)
        system.env.run(until=500.0)
        # Arrival times recorded on the results (via tracer-free check:
        # arrival == scheduled time).
        # The tasks were submitted; find their results through node state.
        # Simpler check: the environment processed past both arrivals.
        assert system.env.now == 500.0


class TestReportAggregation:
    def test_mean_module_times_and_overhead(self):
        system = DistributedQASystem(SystemConfig(n_nodes=2, strategy=Strategy.DQA))
        report = system.run_workload(profiles(4))
        means = report.mean_module_times()
        assert set(means) == {"QP", "PR", "PS", "PO", "AP"}
        assert all(v >= 0 for v in means.values())
        overhead = report.mean_overhead()
        assert "paragraph_send" in overhead

    def test_monitoring_traffic_accounted(self):
        system = DistributedQASystem(SystemConfig(n_nodes=4, strategy=Strategy.DNS))
        system.run_workload(profiles(4))
        # 4 monitors broadcasting for the workload's duration.
        assert system.network.broadcasts_sent > 4 * 30

    def test_seed_changes_frontend_only_with_skew(self):
        a = DistributedQASystem(SystemConfig(n_nodes=4, seed=1, dns_cache_skew=0.5))
        b = DistributedQASystem(SystemConfig(n_nodes=4, seed=2, dns_cache_skew=0.5))
        series_a = [a.frontend.assign() for _ in range(30)]
        series_b = [b.frontend.assign() for _ in range(30)]
        assert series_a != series_b
