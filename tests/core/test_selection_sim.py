"""Simulated-side collection selection (SystemConfig.collection_selection).

``"off"`` must be byte-identical to the legacy broadcast — profiles may
carry a routing decision, but the simulator ignores it and adds no
overhead key.  ``"sketch"`` partitions PR's SEND/ISEND/RECV fan-out over
the predicted collections only, which must shrink partition comms and
show up in the trace as a ``stage:PR-select`` span whose probe cost the
attribution pipeline books under dispatch.
"""

from __future__ import annotations

import pytest

from repro.core import DistributedQASystem, Strategy, SystemConfig
from repro.observability.attribution import attribute_workload
from repro.qa import SyntheticProfileGenerator, SyntheticProfileParams
from repro.workload import staggered_arrivals

N_QUESTIONS = 12
SEED = 5


def _profiles(selected_fraction=None):
    params = SyntheticProfileParams(selected_fraction=selected_fraction)
    return SyntheticProfileGenerator(params, seed=SEED).generate_many(
        N_QUESTIONS
    )


def _run(profiles, selection, n_nodes=16, trace=False):
    system = DistributedQASystem(
        SystemConfig(
            n_nodes=n_nodes,
            strategy=Strategy.DQA,
            seed=SEED,
            trace=trace,
            collection_selection=selection,
        )
    )
    report = system.run_workload(
        profiles, staggered_arrivals(len(profiles), 2.0, seed=SEED)
    )
    return system, report


def test_selected_fraction_does_not_perturb_profile_rng():
    """Routing metadata rides along; every other profile field is unchanged."""
    plain = _profiles(None)
    routed = _profiles(0.5)
    for a, b in zip(plain, routed):
        assert a.selected_collections is None
        assert b.selected_collections is not None
        assert 0 < len(b.selected_collections) <= len(b.collections)
        assert a.memory_bytes == b.memory_bytes
        assert [c.paragraph_bytes for c in a.collections] == [
            c.paragraph_bytes for c in b.collections
        ]


def test_off_mode_ignores_routing_metadata():
    """selection="off" is byte-identical whether or not profiles carry
    a routing decision — the legacy broadcast is untouched."""
    _, base = _run(_profiles(None), "off")
    _, routed = _run(_profiles(0.5), "off")
    assert base.makespan_s == routed.makespan_s
    assert base.mean_response_s == routed.mean_response_s
    for r in routed.results:
        assert "pr_select" not in r.overhead


def test_sketch_mode_shrinks_comms_and_books_overhead():
    profiles = _profiles(0.5)
    _, off = _run(profiles, "off")
    _, on = _run(profiles, "sketch")

    def comms(report):
        return sum(
            r.overhead["keyword_send"] + r.overhead["paragraph_recv"]
            for r in report.results
        )

    # Half the fan-out means fewer and smaller PR partition transfers.
    # (Makespan is deliberately not asserted here: at this scale the
    # scheduler's migration choices dominate it.)
    assert comms(on) < comms(off)
    for r in on.results:
        assert r.overhead["pr_select"] > 0.0


def test_sketch_mode_attribution_accounts_for_the_probe():
    profiles = _profiles(0.5)
    off_sys, off = _run(profiles, "off", trace=True)
    on_sys, on = _run(profiles, "sketch", trace=True)
    att_off = attribute_workload(
        off_sys.spans, off_sys.metrics, off, off_sys.config
    )
    att_on = attribute_workload(
        on_sys.spans, on_sys.metrics, on, on_sys.config
    )
    assert att_on.max_sum_error() < 1e-6
    assert att_off.max_sum_error() < 1e-6
    means_off = att_off.category_means()
    means_on = att_on.category_means()
    assert means_on["partition_comms"] < means_off["partition_comms"]
    assert means_on["dispatch"] > means_off["dispatch"]  # the probe cost
    # The routing stage is visible in the trace.
    assert any("PR-select" in name for name in _all_span_names(on_sys.spans))


def _all_span_names(stream):
    names = set()
    for qid in stream.question_ids():
        stack = list(stream.roots(qid))
        while stack:
            span = stack.pop()
            names.add(span.name)
            stack.extend(stream.children(span))
    return names


def test_unknown_selection_value_raises():
    with pytest.raises(ValueError, match="collection_selection"):
        _run(_profiles(0.5), "oracle")


def test_sketch_mode_never_empties_the_fanout():
    """A decision that would keep zero collections falls back to all."""
    profiles = _profiles(0.5)
    for p in profiles:
        p.selected_collections = ()
    _, on = _run(profiles, "sketch")
    _, off = _run(profiles, "off")
    assert len(on.results) == len(off.results)
    for r in on.results:
        assert not r.failed
        assert r.overhead["pr_select"] > 0.0  # probed, then kept everything
