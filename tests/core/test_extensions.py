"""Tests for the extension features: heterogeneous clusters, adaptive
chunks, node-death admission handling, and resubmission."""

import pytest

from repro.core import (
    DistributedQASystem,
    PartitioningStrategy,
    Strategy,
    SystemConfig,
    TaskPolicy,
)
from repro.core.node import NodeConfig, NodeDown
from repro.qa import SyntheticProfileGenerator, SyntheticProfileParams
from repro.simulation import Environment, FailureSchedule


def complex_profile(seed=3):
    gen = SyntheticProfileGenerator(SyntheticProfileParams.complex(), seed=seed)
    return gen.generate(0)


class TestHeterogeneousClusters:
    def test_node_overrides_applied(self):
        system = DistributedQASystem(
            SystemConfig(
                n_nodes=3,
                node_overrides={1: NodeConfig(cpu_speed=0.5)},
            )
        )
        assert system.nodes[0].cpu.capacity == 1.0
        assert system.nodes[1].cpu.capacity == 0.5
        assert system.nodes[2].cpu.capacity == 1.0

    def test_recv_tolerates_slow_nodes_better_than_isend(self):
        """Pull-based chunking adapts to capacity differences that the
        cost-balanced sender-controlled split cannot see."""
        prof = complex_profile()
        overrides = {1: NodeConfig(cpu_speed=0.4), 2: NodeConfig(cpu_speed=0.4)}

        def ap_time(strategy):
            system = DistributedQASystem(
                SystemConfig(
                    n_nodes=4,
                    strategy=Strategy.DQA,
                    policy=TaskPolicy(ap_strategy=strategy),
                    node_overrides=overrides,
                )
            )
            return system.run_workload([prof]).results[0].module_times["AP"]

        assert ap_time(PartitioningStrategy.RECV) < ap_time(
            PartitioningStrategy.ISEND
        )

    def test_slow_node_pulls_fewer_chunks(self):
        prof = complex_profile()
        system = DistributedQASystem(
            SystemConfig(
                n_nodes=4,
                strategy=Strategy.DQA,
                node_overrides={3: NodeConfig(cpu_speed=0.3)},
                trace=True,
            )
        )
        system.run_workload([prof])
        from collections import Counter

        counts = Counter(
            e.node_id for e in system.tracer.of_kind("ap-part")
        )
        assert counts[3] < max(counts.values())


class TestAdaptiveChunks:
    def test_adaptive_chunk_count_scales_with_width(self):
        prof = complex_profile()
        policy = TaskPolicy(ap_chunk_adaptive=True, ap_chunks_per_node=4)
        system = DistributedQASystem(
            SystemConfig(n_nodes=8, strategy=Strategy.DQA, policy=policy,
                         trace=True)
        )
        system.run_workload([prof])
        n_chunks = len(system.tracer.of_kind("ap-part"))
        # ~4 chunks per selected node.
        assert 8 * 3 <= n_chunks <= 8 * 5 + 1

    def test_adaptive_not_worse_than_fixed_at_scale(self):
        prof = complex_profile()

        def ap_time(policy):
            system = DistributedQASystem(
                SystemConfig(n_nodes=12, strategy=Strategy.DQA, policy=policy)
            )
            return system.run_workload([prof]).results[0].module_times["AP"]

        fixed = ap_time(TaskPolicy(ap_chunk_paragraphs=40))
        adaptive = ap_time(TaskPolicy(ap_chunk_adaptive=True))
        assert adaptive <= fixed * 1.10


class TestNodeDeathAdmission:
    def test_queued_waiters_failed_on_death(self):
        env = Environment()
        from repro.core import ClusterNode

        node = ClusterNode(env, 0, NodeConfig(max_concurrent_questions=1))
        first = node.admit_question()
        second = node.admit_question()
        assert first.triggered
        node.fail_admission_waiters()
        env.run()
        assert second.processed
        assert not second.ok
        assert isinstance(second._value, NodeDown)

    def test_queued_question_on_dying_node_marked_failed(self):
        gen = SyntheticProfileGenerator(seed=5)
        profiles = gen.generate_many(8)
        system = DistributedQASystem(
            SystemConfig(
                n_nodes=2,
                strategy=Strategy.DNS,
                node=NodeConfig(max_concurrent_questions=1),
            )
        )
        # Node 1 dies while its queue holds waiting questions.
        system.failures.apply(FailureSchedule().kill_at(10.0, 1))
        report = system.run_workload(profiles)
        assert report.n_questions == 8
        failed = [r for r in report.results if r.failed]
        assert failed  # the queued questions at node 1
        ok = [r for r in report.results if not r.failed]
        assert all(r.response_time > 0 for r in ok)


class TestResubmission:
    def test_resubmit_recovers_lost_questions(self):
        gen = SyntheticProfileGenerator(seed=5)
        profiles = gen.generate_many(8)

        def run(resubmit):
            system = DistributedQASystem(
                SystemConfig(
                    n_nodes=4,
                    strategy=Strategy.DNS,
                    node=NodeConfig(max_concurrent_questions=1),
                )
            )
            system.failures.apply(
                FailureSchedule().kill_at(10.0, 1).recover_at(400.0, 1)
            )
            report = system.run_workload(
                profiles, resubmit_failed=resubmit
            )
            return sum(1 for r in report.results if r.failed)

        assert run(0) > 0
        assert run(3) == 0
