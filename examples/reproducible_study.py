"""A reproducible-study workflow: pin the corpus and workload to disk.

Shows the persistence layer: generate a corpus, profile real questions,
save both artefacts, then reload them and run a simulation campaign that
is byte-for-byte reproducible on any machine — the workflow a downstream
study comparing scheduling policies would use.

    python examples/reproducible_study.py [workdir]
"""

from __future__ import annotations

import pathlib
import sys
import tempfile

from repro.core import DistributedQASystem, Strategy, SystemConfig
from repro.corpus import CorpusConfig, generate_corpus, generate_questions
from repro.corpus.io import load_corpus, save_corpus
from repro.nlp import EntityRecognizer
from repro.qa import CostModel, QAPipeline, profile_question
from repro.qa.profile_io import load_profiles, save_profiles
from repro.retrieval import IndexedCorpus


def build_and_save(workdir: pathlib.Path) -> None:
    print("1. Generating and pinning the study artefacts ...")
    corpus = generate_corpus(
        CorpusConfig(n_collections=4, docs_per_collection=20, seed=2026)
    )
    save_corpus(corpus, workdir / "corpus.json.gz")

    recognizer = EntityRecognizer(
        corpus.knowledge.gazetteer(),
        extra_nationalities=corpus.knowledge.nationalities,
    )
    pipeline = QAPipeline(IndexedCorpus(corpus), recognizer)
    model = CostModel.default()
    questions = generate_questions(corpus, max_questions=12, seed=1)
    profiles = [
        profile_question(pipeline, q.text, model, qid=q.qid) for q in questions
    ]
    save_profiles(profiles, workdir / "profiles.json.gz")
    print(f"   corpus : {(workdir / 'corpus.json.gz').stat().st_size / 1024:.0f} KiB")
    print(f"   profiles: {(workdir / 'profiles.json.gz').stat().st_size / 1024:.0f} KiB")


def reload_and_compare(workdir: pathlib.Path) -> None:
    print("\n2. Reloading and running the policy comparison ...")
    corpus = load_corpus(workdir / "corpus.json.gz")
    profiles = load_profiles(workdir / "profiles.json.gz")
    print(f"   {corpus.n_documents} documents, {len(profiles)} question profiles")

    for strategy in (Strategy.DNS, Strategy.DQA):
        system = DistributedQASystem(
            SystemConfig(n_nodes=4, strategy=strategy)
        )
        report = system.run_workload(profiles)
        print(
            f"   {strategy.value:4s}: throughput {report.throughput_qpm:5.2f} q/min, "
            f"mean response {report.mean_response_s:6.2f} s"
        )

    print(
        "\nBoth artefacts are plain (gzipped) JSON — commit them next to the"
        "\nstudy's results and any machine reproduces these numbers exactly."
    )


def main() -> None:
    if len(sys.argv) > 1:
        workdir = pathlib.Path(sys.argv[1])
        workdir.mkdir(parents=True, exist_ok=True)
        build_and_save(workdir)
        reload_and_compare(workdir)
    else:
        with tempfile.TemporaryDirectory() as tmp:
            workdir = pathlib.Path(tmp)
            build_and_save(workdir)
            reload_and_compare(workdir)


if __name__ == "__main__":
    main()
