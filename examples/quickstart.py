"""Quickstart: build a Q/A system over a synthetic corpus and ask it things.

Runs the full sequential Falcon-like pipeline end-to-end (the Table 1
analogue): generates a document collection with planted facts, indexes it,
then answers generated questions and reports accuracy and per-module
timing.

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.corpus import CorpusConfig, generate_corpus, generate_questions
from repro.nlp import EntityRecognizer
from repro.qa import QAPipeline
from repro.retrieval import IndexedCorpus


def main() -> None:
    print("Generating a synthetic TREC-like corpus ...")
    corpus = generate_corpus(CorpusConfig(seed=42))
    print(
        f"  {corpus.n_documents} documents in {len(corpus.collections)} "
        f"sub-collections, {corpus.size_bytes / 1e6:.1f} MB, "
        f"{len(corpus.knowledge.facts)} planted facts"
    )

    print("Indexing ...")
    indexed = IndexedCorpus(corpus)
    recognizer = EntityRecognizer(
        corpus.knowledge.gazetteer(),
        extra_nationalities=corpus.knowledge.nationalities,
    )
    pipeline = QAPipeline(indexed, recognizer)

    questions = generate_questions(corpus, max_questions=12, seed=7)
    print(f"\nAnswering {len(questions)} questions:\n")
    correct = 0
    for q in questions:
        result = pipeline.answer(q.text, qid=q.qid)
        best = result.best
        hit = any(
            q.expected_answer.lower() in a.text.lower()
            or a.text.lower() in q.expected_answer.lower()
            for a in result.answers
        )
        correct += hit
        mark = "OK " if hit else "MISS"
        answer_text = best.text if best else "(no answer)"
        print(f"[{mark}] {q.text}")
        print(f"       expected: {q.expected_answer}")
        print(f"       answered: {answer_text}")
        if best:
            print(f"       50-byte window: ...{best.short}...")
        print()

    print(f"Accuracy: {correct}/{len(questions)} in top-5")

    # Module timing breakdown of the last question (Table 2's shape).
    fractions = result.timings.fractions()
    print("\nReal-execution module fractions of the last question:")
    for module, frac in fractions.items():
        print(f"  {module}: {frac * 100:5.1f} %")


if __name__ == "__main__":
    main()
