"""Failure recovery in action: kill a worker mid-question and watch the
partitioning recovery loops reroute its chunks (Fig 5c / Fig 6b).

    python examples/failure_recovery.py
"""

from __future__ import annotations

from repro.core import (
    DistributedQASystem,
    Strategy,
    SystemConfig,
    render_trace,
)
from repro.qa import SyntheticProfileGenerator, SyntheticProfileParams
from repro.simulation import FailureSchedule
from repro.workload import staggered_arrivals, trec_mix_profiles


def single_question_demo() -> None:
    print("=" * 72)
    print("1. One complex question on 4 nodes; node N3 dies mid-answer-processing")
    print("=" * 72)
    profile = SyntheticProfileGenerator(
        SyntheticProfileParams.complex(), seed=7
    ).generate(0)

    healthy = DistributedQASystem(SystemConfig(n_nodes=4, strategy=Strategy.DQA))
    t_healthy = healthy.run_workload([profile]).results[0].response_time

    system = DistributedQASystem(
        SystemConfig(n_nodes=4, strategy=Strategy.DQA, trace=True)
    )
    system.failures.apply(FailureSchedule().kill_at(18.0, 3))
    result = system.run_workload([profile]).results[0]

    print(f"healthy response time : {t_healthy:.2f} s")
    print(f"with N3 dying at t=18 : {result.response_time:.2f} s "
          f"(failed={result.failed})")
    print("\ntrace around the failure:")
    events = [
        e for e in system.tracer.events
        if e.kind in ("ap-part", "worker-failed", "done") or 14 < e.time < 30
    ]
    print(render_trace(events))


def cluster_workload_demo() -> None:
    print()
    print("=" * 72)
    print("2. High-load workload with two nodes leaving and rejoining")
    print("=" * 72)
    n_nodes = 8
    n_q = 8 * n_nodes
    profiles = trec_mix_profiles(n_q, seed=11)
    arrivals = staggered_arrivals(n_q, 2.0, seed=11)
    system = DistributedQASystem(SystemConfig(n_nodes=n_nodes, strategy=Strategy.DQA))
    system.failures.apply(
        FailureSchedule()
        .kill_at(60.0, 6).recover_at(240.0, 6)
        .kill_at(120.0, 7).recover_at(300.0, 7)
    )
    report = system.run_workload(profiles, arrivals, resubmit_failed=3)
    failed = sum(1 for r in report.results if r.failed)
    print(f"questions completed : {n_q - failed}/{n_q} "
          f"(front-end resubmitted lost ones, <=3 attempts)")
    print(f"throughput          : {report.throughput_qpm:.2f} q/min")
    print(f"mean response       : {report.mean_response_s:.1f} s")


if __name__ == "__main__":
    single_question_demo()
    cluster_workload_demo()
