"""Compare the DNS / INTER / DQA load-balancing strategies at high load.

Reproduces the paper's Section 6.1 experiment interactively: brings an
8-node cluster to the overload state (64 questions, 0-2 s stagger) under
each strategy and prints throughput, latency and migration activity —
the Tables 5/6/7 story in one run.

    python examples/load_balancing_comparison.py [n_nodes]
"""

from __future__ import annotations

import sys

from repro.core import DistributedQASystem, Strategy, SystemConfig
from repro.workload import (
    high_load_count,
    staggered_arrivals,
    summarize_latencies,
    trec_mix_profiles,
)


def main(n_nodes: int = 8) -> None:
    n_questions = high_load_count(n_nodes)
    print(
        f"High-load experiment: {n_questions} mixed TREC-8/9 questions on "
        f"{n_nodes} nodes (twice the overload level)\n"
    )
    seeds = (11, 23, 37)
    baseline = None
    for strategy in (Strategy.DNS, Strategy.INTER, Strategy.DQA):
        throughputs = []
        last_report = None
        for seed in seeds:
            profiles = trec_mix_profiles(n_questions, seed=seed)
            arrivals = staggered_arrivals(n_questions, 2.0, seed=seed)
            system = DistributedQASystem(
                SystemConfig(n_nodes=n_nodes, strategy=strategy)
            )
            last_report = system.run_workload(profiles, arrivals)
            throughputs.append(last_report.throughput_qpm)
        throughput = sum(throughputs) / len(throughputs)
        if baseline is None:
            baseline = throughput
        gain = (throughput / baseline - 1.0) * 100
        assert last_report is not None
        summary = summarize_latencies(last_report)
        print(f"=== {strategy.value} ===")
        print(
            f"  throughput : {throughput:6.2f} questions/min "
            f"({gain:+.1f} % vs DNS, mean of {len(seeds)} workload seeds)"
        )
        print(f"  response   : {summary}  (last seed)")
        print(
            f"  migrations : QA {last_report.migrations_qa}, "
            f"PR {last_report.migrations_pr}, AP {last_report.migrations_ap}"
        )
        print()

    print(
        "Expected shape (paper Tables 5-6): DNS < INTER < DQA on throughput,"
        " the reverse on response times."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
