"""Capacity planning with the analytical model (Section 5 in practice).

A downstream deployment question the paper's model answers directly: given
the hardware you can buy (network + disk bandwidth) and a latency/
throughput goal, how many nodes are worth deploying, and what do you get?

    python examples/capacity_planning.py
"""

from __future__ import annotations

from repro.model import (
    ModelParameters,
    bandwidth_bps,
    practical_processor_limit,
    question_speedup,
    question_time,
    system_efficiency,
    system_speedup,
)


def plan(net: str, disk: str, latency_goal_s: float) -> None:
    p = ModelParameters().with_bandwidths(
        b_net=bandwidth_bps(net), b_disk=bandwidth_bps(disk)
    )
    n_max = practical_processor_limit(p)
    print(f"--- {net} network, {disk} disks ---")
    print(f"  sequential question time : {p.t_sequential:7.1f} s")
    print(f"  practical node limit     : {n_max} (Eq 34)")
    print(
        f"  latency at that limit    : {question_time(p, n_max):7.1f} s "
        f"(speedup {question_speedup(p, n_max):.1f}x)"
    )

    # Smallest cluster meeting the latency goal, if feasible.
    feasible = None
    for n in range(1, n_max + 1):
        if question_time(p, n) <= latency_goal_s:
            feasible = n
            break
    if feasible is None:
        print(
            f"  latency goal {latency_goal_s:.0f} s: NOT reachable by "
            "partitioning alone (sequential overhead floor too high)"
        )
    else:
        print(f"  latency goal {latency_goal_s:.0f} s: reachable with {feasible} nodes")

    # Throughput side: inter-question scaling at a few farm sizes.
    for n in (10, 100, 1000):
        s = system_speedup(p, n)
        e = system_efficiency(p, n)
        qpm = 60.0 * s / p.t_question
        print(
            f"  farm of {n:4d} nodes       : throughput {qpm:8.1f} q/min "
            f"(efficiency {e:.2f})"
        )
    print()


def main() -> None:
    print(
        "Capacity planning for an interactive Q/A service "
        "(goal: 20 s per question)\n"
    )
    for net, disk in (
        ("100 Mbps", "250 Mbps"),  # the paper's testbed class
        ("1 Gbps", "250 Mbps"),
        ("1 Gbps", "1 Gbps"),
    ):
        plan(net, disk, latency_goal_s=20.0)

    print(
        "Note the paper's twin conclusions: intra-question parallelism is\n"
        "worth it only up to ~11-93 nodes depending on bandwidths (Table 4),\n"
        "while inter-question parallelism keeps scaling to 1000 nodes at\n"
        "~0.9 efficiency on a fast network (Figure 8)."
    )


if __name__ == "__main__":
    main()
