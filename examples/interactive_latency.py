"""Intra-question parallelism: how fast can one question get?

Runs a single complex question on growing cluster sizes with the three
partitioning strategies (Tables 8/11 territory), prints the module-level
breakdown, and finally shows a Figure 7-style execution trace of the
partitioned run.

    python examples/interactive_latency.py
"""

from __future__ import annotations

from repro.core import (
    DistributedQASystem,
    PartitioningStrategy,
    Strategy,
    SystemConfig,
    TaskPolicy,
    render_trace,
)
from repro.qa import SyntheticProfileGenerator, SyntheticProfileParams


def main() -> None:
    gen = SyntheticProfileGenerator(SyntheticProfileParams.complex(), seed=7)
    profile = gen.generate(0)
    print(
        f"One complex question: {profile.n_accepted} accepted paragraphs, "
        f"{profile.ap_cpu_s:.0f} s of answer-processing CPU work\n"
    )

    print("Scaling the cluster (RECV partitioning, chunk = 40 paragraphs):")
    print("procs   QP     PR     PS     PO     AP    response  speedup")
    base = None
    for n in (1, 2, 4, 8, 12, 16):
        system = DistributedQASystem(SystemConfig(n_nodes=n, strategy=Strategy.DQA))
        r = system.run_workload([profile]).results[0]
        if base is None:
            base = r.response_time
        m = r.module_times
        print(
            f"{n:5d} {m['QP']:6.2f} {m['PR']:6.2f} {m['PS']:6.2f} "
            f"{m['PO']:6.2f} {m['AP']:6.2f} {r.response_time:9.2f} "
            f"{base / r.response_time:8.2f}x"
        )

    print("\nPartitioning strategies on 8 nodes (AP module time):")
    for strategy in PartitioningStrategy:
        policy = TaskPolicy(ap_strategy=strategy)
        system = DistributedQASystem(
            SystemConfig(n_nodes=8, strategy=Strategy.DQA, policy=policy)
        )
        r = system.run_workload([profile]).results[0]
        print(f"  {strategy.value:5s}: AP = {r.module_times['AP']:6.2f} s")

    print("\nExecution trace of a 4-node RECV run (Figure 7 style):")
    system = DistributedQASystem(
        SystemConfig(n_nodes=4, strategy=Strategy.DQA, trace=True)
    )
    system.run_workload([profile])
    interesting = system.tracer.of_kind(
        "qp-start", "pr-dispatch", "pr-collection", "po-done",
        "ap-dispatch", "ap-part", "done",
    )
    print(render_trace(interesting))


if __name__ == "__main__":
    main()
