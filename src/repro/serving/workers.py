"""Worker execution behind the admission queue.

Two interchangeable executors sit behind
:class:`~repro.serving.server.QAServer`:

* :class:`ProcessWorkerPool` — the production shape: N OS processes,
  each running :func:`_worker_main`, which **attaches** to the shared v2
  packed-index artifact (:mod:`repro.experiments.context`) instead of
  rebuilding tokenize + stem + intern per process.  The parent warms the
  on-disk artifact once before spawning, so worker start-up is one
  unpickle + id remap (~1/40th of a rebuild); each worker reports
  whether it attached (``"cache"``) or had to build (``"built"``).
* :class:`InlineExecutor` — single-process synchronous execution for
  tests and the ``workers=0`` debug mode; same result surface, no IPC.

Both speak :class:`ExecutionResult`, the minimal completion record the
server folds into ledger + metrics + spans.  Requests cross the process
boundary as plain tuples (seq, qid, text, submit_wall) — or, for the
micro-batcher (PR 7), as ``("batch", [tuples...])``, executed through
``QAPipeline.answer_batch`` so duplicate questions replay and posting
fetches are shared — and results come back as tagged tuples — tiny,
picklable, and version-free.  Batched execution is bit-identical in
answers; each question still gets its own completion record, carrying
the batch's sharing stats for the ``stage:PR-batch`` span.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import time
import typing as t
from dataclasses import dataclass

from ..corpus import CorpusConfig

if t.TYPE_CHECKING:  # pragma: no cover
    from ..qa import QAPipeline

__all__ = ["ExecutionResult", "InlineExecutor", "ProcessWorkerPool"]

#: Answers forwarded per question (keeps IPC payloads small).
_MAX_ANSWERS = 3


@dataclass(frozen=True, slots=True)
class ExecutionResult:
    """One completed question, as reported by an executor."""

    seq: int
    qid: int
    answers: tuple[tuple[str, float], ...]
    #: Seconds between submit and a worker picking the request up.
    wait_s: float
    #: Seconds of pipeline execution.
    service_s: float
    worker_pid: int
    error: str = ""
    #: Seconds of the PR phase inside ``service_s`` (0 when unknown).
    pr_s: float = 0.0
    #: When executed as part of a micro-batch: (batch_size, n_distinct,
    #: sharing_factor, amortized_postings_scanned); ``None`` otherwise.
    batch: tuple[int, int, float, float] | None = None


def _digest_answers(answers: t.Sequence[t.Any]) -> tuple[tuple[str, float], ...]:
    """Compress pipeline answers to (text, score) pairs for IPC."""
    return tuple((a.text, float(a.score)) for a in answers[:_MAX_ANSWERS])


def _worker_main(
    config: CorpusConfig,
    requests: "multiprocessing.queues.Queue[t.Any]",
    responses: "multiprocessing.queues.Queue[t.Any]",
) -> None:
    """Worker process body: attach, announce readiness, serve until sentinel."""
    from ..experiments.context import build_serving_context

    ctx = build_serving_context(config)
    responses.put(("ready", os.getpid(), ctx.index_source, ctx.index_seconds))
    while True:
        item = requests.get()
        if item is None:
            responses.put(("bye", os.getpid()))
            return
        if isinstance(item, tuple) and item[0] == "batch":
            entries: list[tuple[int, int, str, float]] = item[1]
            picked_wall = time.time()
            t0 = time.perf_counter()
            try:
                batch_results = ctx.pipeline.answer_batch(
                    [e[2] for e in entries], [e[1] for e in entries]
                )
                stats = ctx.pipeline.last_batch_stats
                binfo = (
                    len(entries),
                    stats.n_distinct,
                    stats.sharing_factor,
                    stats.amortized_postings_scanned,
                )
                for (seq, qid, _text, submit_wall), r in zip(
                    entries, batch_results
                ):
                    responses.put(
                        (
                            "done",
                            seq,
                            qid,
                            _digest_answers(r.answers),
                            max(0.0, picked_wall - submit_wall),
                            r.timings.total,
                            os.getpid(),
                            "",
                            r.timings.pr,
                            binfo,
                        )
                    )
            except Exception as exc:  # account every item of the batch
                error = f"{type(exc).__name__}: {exc}"
                service_s = time.perf_counter() - t0
                per_item = service_s / max(1, len(entries))
                for seq, qid, _text, submit_wall in entries:
                    responses.put(
                        (
                            "done",
                            seq,
                            qid,
                            (),
                            max(0.0, picked_wall - submit_wall),
                            per_item,
                            os.getpid(),
                            error,
                            0.0,
                            None,
                        )
                    )
            continue
        seq, qid, text, submit_wall = item
        picked_wall = time.time()
        t0 = time.perf_counter()
        try:
            result = ctx.pipeline.answer(text, qid=qid)
            answers = _digest_answers(result.answers)
            pr_s = result.timings.pr
            error = ""
        except Exception as exc:  # the question must still be accounted for
            answers = ()
            pr_s = 0.0
            error = f"{type(exc).__name__}: {exc}"
        service_s = time.perf_counter() - t0
        responses.put(
            (
                "done",
                seq,
                qid,
                answers,
                max(0.0, picked_wall - submit_wall),
                service_s,
                os.getpid(),
                error,
                pr_s,
                None,
            )
        )


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (cheap start, inherited env); else the default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context()


class ProcessWorkerPool:
    """N worker processes sharing one request queue (FIFO hand-off)."""

    def __init__(
        self,
        config: CorpusConfig,
        workers: int,
        start_timeout_s: float = 120.0,
    ) -> None:
        if workers < 1:
            raise ValueError("ProcessWorkerPool needs at least one worker")
        self.config = config
        self.workers = workers
        self.start_timeout_s = start_timeout_s
        ctx = _pool_context()
        self._requests: multiprocessing.queues.Queue[t.Any] = ctx.Queue()
        self._responses: multiprocessing.queues.Queue[t.Any] = ctx.Queue()
        self._procs: list[multiprocessing.process.BaseProcess] = []
        self._ctx = ctx
        #: Per-worker index provenance, filled by the ready handshake:
        #: {pid: ("cache"|"built", seconds)}.
        self.attach_report: dict[int, tuple[str, float]] = {}

    def start(self) -> None:
        """Warm the shared artifact, spawn workers, await readiness."""
        from ..experiments.context import (
            load_or_build_indexes,
            load_or_generate_corpus,
        )

        # One build in the parent populates the v2 disk artifact; every
        # worker then attaches instead of rebuilding.
        corpus = load_or_generate_corpus(self.config)
        load_or_build_indexes(corpus, self.config)
        for _ in range(self.workers):
            p = self._ctx.Process(
                target=_worker_main,
                args=(self.config, self._requests, self._responses),
                daemon=True,
            )
            p.start()
            self._procs.append(p)
        deadline = time.monotonic() + self.start_timeout_s
        while len(self.attach_report) < self.workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"only {len(self.attach_report)}/{self.workers} workers "
                    "became ready"
                )
            try:
                msg = self._responses.get(timeout=remaining)
            except queue_mod.Empty:
                continue
            if msg[0] == "ready":
                _, pid, source, seconds = msg
                self.attach_report[pid] = (source, seconds)

    def submit(self, seq: int, qid: int, text: str, submit_wall: float) -> None:
        self._requests.put((seq, qid, text, submit_wall))

    def submit_batch(
        self, items: t.Sequence[tuple[int, int, str, float]]
    ) -> None:
        """Hand a micro-batch to one worker as a single request."""
        self._requests.put(("batch", list(items)))

    def _to_result(self, msg: tuple[t.Any, ...]) -> ExecutionResult:
        _, seq, qid, answers, wait_s, service_s, pid, error, pr_s, batch = msg
        return ExecutionResult(
            seq=seq,
            qid=qid,
            answers=answers,
            wait_s=wait_s,
            service_s=service_s,
            worker_pid=pid,
            error=error,
            pr_s=pr_s,
            batch=batch,
        )

    def poll(self) -> list[ExecutionResult]:
        """Collect any completions without blocking."""
        out: list[ExecutionResult] = []
        while True:
            try:
                msg = self._responses.get_nowait()
            except queue_mod.Empty:
                return out
            if msg[0] == "done":
                out.append(self._to_result(msg))

    def drain(self, timeout_s: float) -> list[ExecutionResult]:
        """Send sentinels, then collect completions until every worker exits.

        Returns the completions received within ``timeout_s``; anything
        still in flight afterwards is the caller's ``DRAINED`` set.
        """
        for _ in self._procs:
            self._requests.put(None)
        out: list[ExecutionResult] = []
        byes = 0
        deadline = time.monotonic() + timeout_s
        while byes < len(self._procs):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                msg = self._responses.get(timeout=remaining)
            except queue_mod.Empty:
                break
            if msg[0] == "done":
                out.append(self._to_result(msg))
            elif msg[0] == "bye":
                byes += 1
        return out

    def stop(self) -> None:
        """Terminate any still-running workers and reap them."""
        for p in self._procs:
            if p.is_alive():
                p.terminate()
        for p in self._procs:
            p.join(timeout=5.0)
        self._procs.clear()


class InlineExecutor:
    """Synchronous in-process execution (``workers=0`` / unit tests)."""

    workers = 0

    def __init__(self, pipeline: "QAPipeline") -> None:
        self.pipeline = pipeline
        self._completed: list[ExecutionResult] = []
        self.attach_report: dict[int, tuple[str, float]] = {}

    def start(self) -> None:  # nothing to spawn
        pass

    def submit(self, seq: int, qid: int, text: str, submit_wall: float) -> None:
        t0 = time.perf_counter()
        try:
            result = self.pipeline.answer(text, qid=qid)
            answers = _digest_answers(result.answers)
            pr_s = result.timings.pr
            error = ""
        except Exception as exc:
            answers = ()
            pr_s = 0.0
            error = f"{type(exc).__name__}: {exc}"
        self._completed.append(
            ExecutionResult(
                seq=seq,
                qid=qid,
                answers=answers,
                wait_s=0.0,
                service_s=time.perf_counter() - t0,
                worker_pid=0,
                error=error,
                pr_s=pr_s,
            )
        )

    def submit_batch(
        self, items: t.Sequence[tuple[int, int, str, float]]
    ) -> None:
        """Execute a micro-batch inline through ``answer_batch``."""
        try:
            results = self.pipeline.answer_batch(
                [i[2] for i in items], [i[1] for i in items]
            )
            stats = self.pipeline.last_batch_stats
            binfo = (
                len(items),
                stats.n_distinct,
                stats.sharing_factor,
                stats.amortized_postings_scanned,
            )
            for (seq, qid, _text, _wall), r in zip(items, results):
                self._completed.append(
                    ExecutionResult(
                        seq=seq,
                        qid=qid,
                        answers=_digest_answers(r.answers),
                        wait_s=0.0,
                        service_s=r.timings.total,
                        worker_pid=0,
                        error="",
                        pr_s=r.timings.pr,
                        batch=binfo,
                    )
                )
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
            for seq, qid, _text, _wall in items:
                self._completed.append(
                    ExecutionResult(
                        seq=seq,
                        qid=qid,
                        answers=(),
                        wait_s=0.0,
                        service_s=0.0,
                        worker_pid=0,
                        error=error,
                    )
                )

    def poll(self) -> list[ExecutionResult]:
        out, self._completed = self._completed, []
        return out

    def drain(self, timeout_s: float) -> list[ExecutionResult]:
        return self.poll()

    def stop(self) -> None:
        pass
