"""Worker execution behind the admission queue.

Two interchangeable executors sit behind
:class:`~repro.serving.server.QAServer`:

* :class:`ProcessWorkerPool` — the production shape: N OS processes,
  each running :func:`_worker_main`, which **attaches** to the shared v2
  packed-index artifact (:mod:`repro.experiments.context`) instead of
  rebuilding tokenize + stem + intern per process.  The parent warms the
  on-disk artifact once before spawning, so worker start-up is one
  unpickle + id remap (~1/40th of a rebuild); each worker reports
  whether it attached (``"cache"``) or had to build (``"built"``).
* :class:`InlineExecutor` — single-process synchronous execution for
  tests and the ``workers=0`` debug mode; same result surface, no IPC.

Both speak :class:`ExecutionResult`, the minimal completion record the
server folds into ledger + metrics + spans.  Requests cross the process
boundary as plain tuples ``(seq, qid, text, submit_wall, trace)`` — or,
for the micro-batcher, as ``("batch", [tuples...])``, executed through
``QAPipeline.answer_batch`` so duplicate questions replay and posting
fetches are shared — and results come back as tagged tuples — tiny,
picklable, and version-free.  ``trace`` is the optional
:class:`~repro.observability.telemetry.TraceContext` wire pair: when
present, the worker returns a packed span subtree built from its
measured module timings with the reply, which the server grafts into
its own stream to form one stitched tree per question.

Each worker also runs its pipeline against a private
:class:`~repro.observability.metrics.MetricsRegistry` and piggybacks
periodic snapshots on the response queue (plus a final one at drain);
the pool keeps the latest snapshot per worker in
:attr:`ProcessWorkerPool.worker_snapshots` for the server's aggregated
registry — counters from all workers sum, gauges stay labeled per pid.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import time
import typing as t
from dataclasses import dataclass

from ..corpus import CorpusConfig
from ..observability.metrics import MetricsRegistry
from ..observability.telemetry import worker_span_records

if t.TYPE_CHECKING:  # pragma: no cover
    from ..qa import QAPipeline
    from ..observability.telemetry import PackedSpan

__all__ = ["ExecutionResult", "InlineExecutor", "ProcessWorkerPool"]

#: Answers forwarded per question (keeps IPC payloads small).
_MAX_ANSWERS = 3

#: Completions between piggybacked worker-metrics snapshots.
_SNAPSHOT_EVERY = 16


@dataclass(frozen=True, slots=True)
class ExecutionResult:
    """One completed question, as reported by an executor."""

    seq: int
    qid: int
    answers: tuple[tuple[str, float], ...]
    #: Seconds between submit and a worker picking the request up.
    wait_s: float
    #: Seconds of pipeline execution.
    service_s: float
    worker_pid: int
    error: str = ""
    #: Seconds of the PR phase inside ``service_s`` (0 when unknown).
    pr_s: float = 0.0
    #: When executed as part of a micro-batch: (batch_size, n_distinct,
    #: sharing_factor, amortized_postings_scanned); ``None`` otherwise.
    batch: tuple[int, int, float, float] | None = None
    #: Sampled-trace reply: (trace_id, parent_sid, packed span subtree);
    #: ``None`` when the request carried no trace context.
    spans: tuple[str, int, tuple["PackedSpan", ...]] | None = None


def _digest_answers(answers: t.Sequence[t.Any]) -> tuple[tuple[str, float], ...]:
    """Compress pipeline answers to (text, score) pairs for IPC."""
    return tuple((a.text, float(a.score)) for a in answers[:_MAX_ANSWERS])


def _request_fields(
    item: t.Sequence[t.Any],
) -> tuple[int, int, str, float, tuple[str, int] | None]:
    """Unpack a request tuple; the trace element is optional (wire compat)."""
    seq, qid, text, submit_wall = item[0], item[1], item[2], item[3]
    trace = item[4] if len(item) > 4 else None
    return seq, qid, text, submit_wall, trace


def _worker_main(
    config: CorpusConfig,
    requests: "multiprocessing.queues.Queue[t.Any]",
    responses: "multiprocessing.queues.Queue[t.Any]",
    snapshot_every: int = _SNAPSHOT_EVERY,
) -> None:
    """Worker process body: attach, announce readiness, serve until sentinel."""
    from ..experiments.context import build_serving_context

    metrics = MetricsRegistry()
    ctx = build_serving_context(config, metrics=metrics)
    pid = os.getpid()
    responses.put(("ready", pid, ctx.index_source, ctx.index_seconds))
    completed = 0
    last_snapshot_at = 0

    def maybe_snapshot(force: bool = False) -> None:
        nonlocal last_snapshot_at
        due = (
            snapshot_every > 0
            and completed - last_snapshot_at >= snapshot_every
        )
        if (due or force) and len(metrics):
            last_snapshot_at = completed
            responses.put(("metrics", pid, metrics.snapshot()))

    while True:
        item = requests.get()
        if item is None:
            maybe_snapshot(force=True)
            responses.put(("bye", pid))
            return
        if isinstance(item, tuple) and item[0] == "batch":
            entries: list[tuple[t.Any, ...]] = item[1]
            picked_wall = time.time()
            t0 = time.perf_counter()
            try:
                batch_results = ctx.pipeline.answer_batch(
                    [e[2] for e in entries], [e[1] for e in entries]
                )
                stats = ctx.pipeline.last_batch_stats
                binfo = (
                    len(entries),
                    stats.n_distinct,
                    stats.sharing_factor,
                    stats.amortized_postings_scanned,
                )
                for entry, r in zip(entries, batch_results):
                    seq, qid, _text, submit_wall, trace = _request_fields(entry)
                    spans_wire = None
                    if trace is not None:
                        spans_wire = (
                            trace[0],
                            trace[1],
                            worker_span_records(
                                r.timings, r.timings.total, batch=binfo
                            ),
                        )
                    responses.put(
                        (
                            "done",
                            seq,
                            qid,
                            _digest_answers(r.answers),
                            max(0.0, picked_wall - submit_wall),
                            r.timings.total,
                            pid,
                            "",
                            r.timings.pr,
                            binfo,
                            spans_wire,
                        )
                    )
            except Exception as exc:  # account every item of the batch
                error = f"{type(exc).__name__}: {exc}"
                service_s = time.perf_counter() - t0
                per_item = service_s / max(1, len(entries))
                for entry in entries:
                    seq, qid, _text, submit_wall, _trace = _request_fields(entry)
                    responses.put(
                        (
                            "done",
                            seq,
                            qid,
                            (),
                            max(0.0, picked_wall - submit_wall),
                            per_item,
                            pid,
                            error,
                            0.0,
                            None,
                            None,
                        )
                    )
            completed += len(entries)
            maybe_snapshot()
            continue
        seq, qid, text, submit_wall, trace = _request_fields(item)
        picked_wall = time.time()
        t0 = time.perf_counter()
        spans_wire = None
        try:
            result = ctx.pipeline.answer(text, qid=qid)
            answers = _digest_answers(result.answers)
            pr_s = result.timings.pr
            error = ""
        except Exception as exc:  # the question must still be accounted for
            result = None
            answers = ()
            pr_s = 0.0
            error = f"{type(exc).__name__}: {exc}"
        service_s = time.perf_counter() - t0
        if trace is not None and result is not None:
            spans_wire = (
                trace[0],
                trace[1],
                worker_span_records(result.timings, service_s),
            )
        responses.put(
            (
                "done",
                seq,
                qid,
                answers,
                max(0.0, picked_wall - submit_wall),
                service_s,
                pid,
                error,
                pr_s,
                None,
                spans_wire,
            )
        )
        completed += 1
        maybe_snapshot()


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (cheap start, inherited env); else the default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context()


class ProcessWorkerPool:
    """N worker processes sharing one request queue (FIFO hand-off)."""

    def __init__(
        self,
        config: CorpusConfig,
        workers: int,
        start_timeout_s: float = 120.0,
        snapshot_every: int = _SNAPSHOT_EVERY,
    ) -> None:
        if workers < 1:
            raise ValueError("ProcessWorkerPool needs at least one worker")
        self.config = config
        self.workers = workers
        self.start_timeout_s = start_timeout_s
        self.snapshot_every = snapshot_every
        ctx = _pool_context()
        self._requests: multiprocessing.queues.Queue[t.Any] = ctx.Queue()
        self._responses: multiprocessing.queues.Queue[t.Any] = ctx.Queue()
        self._procs: list[multiprocessing.process.BaseProcess] = []
        self._ctx = ctx
        #: Per-worker index provenance, filled by the ready handshake:
        #: {pid: ("cache"|"built", seconds)}.
        self.attach_report: dict[int, tuple[str, float]] = {}
        #: Latest piggybacked metrics snapshot per worker pid.  Snapshots
        #: are cumulative, so keeping only the newest is lossless.
        self.worker_snapshots: dict[int, dict[str, dict[str, t.Any]]] = {}

    def start(self) -> None:
        """Warm the shared artifact, spawn workers, await readiness."""
        from ..experiments.context import (
            load_or_build_indexes,
            load_or_generate_corpus,
        )

        # One build in the parent populates the v2 disk artifact; every
        # worker then attaches instead of rebuilding.
        corpus = load_or_generate_corpus(self.config)
        load_or_build_indexes(corpus, self.config)
        for _ in range(self.workers):
            p = self._ctx.Process(
                target=_worker_main,
                args=(
                    self.config,
                    self._requests,
                    self._responses,
                    self.snapshot_every,
                ),
                daemon=True,
            )
            p.start()
            self._procs.append(p)
        deadline = time.monotonic() + self.start_timeout_s
        while len(self.attach_report) < self.workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"only {len(self.attach_report)}/{self.workers} workers "
                    "became ready"
                )
            try:
                msg = self._responses.get(timeout=remaining)
            except queue_mod.Empty:
                continue
            if msg[0] == "ready":
                _, pid, source, seconds = msg
                self.attach_report[pid] = (source, seconds)
            elif msg[0] == "metrics":
                self.worker_snapshots[msg[1]] = msg[2]

    def submit(
        self,
        seq: int,
        qid: int,
        text: str,
        submit_wall: float,
        trace: tuple[str, int] | None = None,
    ) -> None:
        self._requests.put((seq, qid, text, submit_wall, trace))

    def submit_batch(self, items: t.Sequence[tuple[t.Any, ...]]) -> None:
        """Hand a micro-batch to one worker as a single request."""
        self._requests.put(("batch", list(items)))

    def _to_result(self, msg: tuple[t.Any, ...]) -> ExecutionResult:
        (
            _,
            seq,
            qid,
            answers,
            wait_s,
            service_s,
            pid,
            error,
            pr_s,
            batch,
            spans,
        ) = msg
        return ExecutionResult(
            seq=seq,
            qid=qid,
            answers=answers,
            wait_s=wait_s,
            service_s=service_s,
            worker_pid=pid,
            error=error,
            pr_s=pr_s,
            batch=batch,
            spans=spans,
        )

    def poll(self) -> list[ExecutionResult]:
        """Collect any completions without blocking."""
        out: list[ExecutionResult] = []
        while True:
            try:
                msg = self._responses.get_nowait()
            except queue_mod.Empty:
                return out
            if msg[0] == "done":
                out.append(self._to_result(msg))
            elif msg[0] == "metrics":
                self.worker_snapshots[msg[1]] = msg[2]

    def drain(self, timeout_s: float) -> list[ExecutionResult]:
        """Send sentinels, then collect completions until every worker exits.

        Returns the completions received within ``timeout_s``; anything
        still in flight afterwards is the caller's ``DRAINED`` set.
        """
        for _ in self._procs:
            self._requests.put(None)
        out: list[ExecutionResult] = []
        byes = 0
        deadline = time.monotonic() + timeout_s
        while byes < len(self._procs):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                msg = self._responses.get(timeout=remaining)
            except queue_mod.Empty:
                break
            if msg[0] == "done":
                out.append(self._to_result(msg))
            elif msg[0] == "metrics":
                self.worker_snapshots[msg[1]] = msg[2]
            elif msg[0] == "bye":
                byes += 1
        return out

    def stop(self) -> None:
        """Terminate any still-running workers and reap them."""
        for p in self._procs:
            if p.is_alive():
                p.terminate()
        for p in self._procs:
            p.join(timeout=5.0)
        self._procs.clear()


class InlineExecutor:
    """Synchronous in-process execution (``workers=0`` / unit tests)."""

    workers = 0

    def __init__(self, pipeline: "QAPipeline") -> None:
        self.pipeline = pipeline
        self._completed: list[ExecutionResult] = []
        self.attach_report: dict[int, tuple[str, float]] = {}
        self.worker_snapshots: dict[int, dict[str, dict[str, t.Any]]] = {}

    def start(self) -> None:  # nothing to spawn
        pass

    def submit(
        self,
        seq: int,
        qid: int,
        text: str,
        submit_wall: float,
        trace: tuple[str, int] | None = None,
    ) -> None:
        t0 = time.perf_counter()
        spans_wire = None
        try:
            result = self.pipeline.answer(text, qid=qid)
            answers = _digest_answers(result.answers)
            pr_s = result.timings.pr
            error = ""
        except Exception as exc:
            result = None
            answers = ()
            pr_s = 0.0
            error = f"{type(exc).__name__}: {exc}"
        service_s = time.perf_counter() - t0
        if trace is not None and result is not None:
            spans_wire = (
                trace[0],
                trace[1],
                worker_span_records(result.timings, service_s),
            )
        self._completed.append(
            ExecutionResult(
                seq=seq,
                qid=qid,
                answers=answers,
                wait_s=0.0,
                service_s=service_s,
                worker_pid=0,
                error=error,
                pr_s=pr_s,
                spans=spans_wire,
            )
        )

    def submit_batch(self, items: t.Sequence[tuple[t.Any, ...]]) -> None:
        """Execute a micro-batch inline through ``answer_batch``."""
        try:
            results = self.pipeline.answer_batch(
                [i[2] for i in items], [i[1] for i in items]
            )
            stats = self.pipeline.last_batch_stats
            binfo = (
                len(items),
                stats.n_distinct,
                stats.sharing_factor,
                stats.amortized_postings_scanned,
            )
            for item, r in zip(items, results):
                seq, qid, _text, _wall, trace = _request_fields(item)
                spans_wire = None
                if trace is not None:
                    spans_wire = (
                        trace[0],
                        trace[1],
                        worker_span_records(
                            r.timings, r.timings.total, batch=binfo
                        ),
                    )
                self._completed.append(
                    ExecutionResult(
                        seq=seq,
                        qid=qid,
                        answers=_digest_answers(r.answers),
                        wait_s=0.0,
                        service_s=r.timings.total,
                        worker_pid=0,
                        error="",
                        pr_s=r.timings.pr,
                        batch=binfo,
                        spans=spans_wire,
                    )
                )
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
            for item in items:
                seq, qid, _text, _wall, _trace = _request_fields(item)
                self._completed.append(
                    ExecutionResult(
                        seq=seq,
                        qid=qid,
                        answers=(),
                        wait_s=0.0,
                        service_s=0.0,
                        worker_pid=0,
                        error=error,
                    )
                )

    def poll(self) -> list[ExecutionResult]:
        out, self._completed = self._completed, []
        return out

    def drain(self, timeout_s: float) -> list[ExecutionResult]:
        """Inline drain; also publishes the pipeline's metrics snapshot."""
        pipeline_metrics = getattr(self.pipeline, "metrics", None)
        if pipeline_metrics is not None and len(pipeline_metrics):
            self.worker_snapshots[0] = pipeline_metrics.snapshot()
        return self.poll()

    def stop(self) -> None:
        pass
