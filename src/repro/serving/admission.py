"""Bounded admission control mirroring the simulator's node discipline.

The simulated cluster nodes execute at most three questions concurrently
and park the rest in a FIFO queue
(:class:`repro.core.node.NodeConfig.max_concurrent_questions`, Section
4.2's "best throughput at 2-3 simultaneous questions").  The serving
layer applies the *same* discipline at its front door, with one crucial
difference from the simulator: the queue is **bounded**, and a question
that cannot be queued (or that would miss its deadline even if queued)
is rejected immediately with a typed
:class:`~repro.serving.protocol.OverloadError` instead of waiting
without limit.

Determinism
-----------
The controller is a pure state machine over *logical* arrival
timestamps: a :math:`G/G/c` queue with ``max_concurrent`` modelled
service slots and a fixed per-question service-time estimate.  Given the
same arrival schedule and configuration, the accept/shed decision
sequence is **byte-identical** regardless of how many OS worker
processes execute the accepted questions or how fast the machine is —
the same invariant the parallel experiment engine keeps for ``--jobs``.
Worker count changes wall-clock throughput, never decisions, which is
what lets the loadgen compare real serving runs against the simulated
cluster under one overload protocol.

Rate limiting is per-client token buckets refilled on the same logical
clock, so it shares the determinism property.
"""

from __future__ import annotations

import heapq
import typing as t
from dataclasses import dataclass, field

from .protocol import ShedReason

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "TokenBucket",
]


@dataclass(frozen=True, slots=True)
class AdmissionConfig:
    """Knobs of the admission discipline."""

    #: Modelled concurrent service slots — the FIFO-of-3 node discipline.
    max_concurrent: int = 3
    #: Questions allowed to wait beyond the running set; arrivals past
    #: this bound are shed with ``QUEUE_FULL``.
    max_queue_depth: int = 4
    #: Modelled per-question service time (seconds); the loadgen
    #: calibrates this against the real pipeline before driving load.
    est_service_s: float = 0.05
    #: Default total sojourn budget (wait + service, seconds); arrivals
    #: whose predicted sojourn exceeds it are shed with ``DEADLINE``.
    #: ``None`` derives ``6 x est_service_s``.
    deadline_s: float | None = None
    #: Per-client token-bucket refill rate (questions/second); 0 disables
    #: rate limiting.
    rate_limit_qps: float = 0.0
    #: Token-bucket capacity (burst allowance).
    rate_burst: float = 4.0

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if self.max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        if self.est_service_s <= 0:
            raise ValueError("est_service_s must be positive")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")
        if self.rate_limit_qps < 0:
            raise ValueError("rate_limit_qps must be >= 0")
        if self.rate_limit_qps > 0 and self.rate_burst < 1:
            raise ValueError("rate_burst must be >= 1 when rate limiting")

    @property
    def effective_deadline_s(self) -> float:
        """The sojourn budget actually enforced."""
        if self.deadline_s is not None:
            return self.deadline_s
        return 6.0 * self.est_service_s


class TokenBucket:
    """Deterministic token bucket on an externally supplied clock.

    Refill happens lazily at :meth:`try_take` time from the elapsed
    logical seconds, so two runs presenting the same timestamps make the
    same grant/deny sequence — no hidden wall-clock reads.
    """

    __slots__ = ("rate_qps", "burst", "tokens", "last_s")

    def __init__(self, rate_qps: float, burst: float, start_s: float = 0.0) -> None:
        if rate_qps <= 0:
            raise ValueError("rate_qps must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate_qps = rate_qps
        self.burst = float(burst)
        self.tokens = float(burst)
        self.last_s = float(start_s)

    def try_take(self, now_s: float) -> bool:
        """Take one token at logical time ``now_s``; False when empty.

        ``now_s`` earlier than the last grant is clamped (no refund), so
        slightly out-of-order timestamps cannot mint tokens.
        """
        if now_s > self.last_s:
            self.tokens = min(
                self.burst, self.tokens + (now_s - self.last_s) * self.rate_qps
            )
            self.last_s = now_s
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass(frozen=True, slots=True)
class AdmissionDecision:
    """One accept/shed decision, in submission order.

    The tuple of these (see :meth:`AdmissionController.decision_key`) is
    the determinism-regression fingerprint: byte-identical across worker
    counts for a seeded workload.
    """

    seq: int
    qid: int
    arrival_s: float
    accepted: bool
    shed_reason: ShedReason | None
    #: Modelled wait before a service slot frees (0 when admitted idle).
    predicted_wait_s: float
    #: Modelled waiters ahead at arrival (after this decision, if accepted).
    queue_depth: int

    def key(self) -> tuple[t.Any, ...]:
        """Hashable, repr-stable identity used for determinism digests."""
        return (
            self.seq,
            self.qid,
            self.accepted,
            None if self.shed_reason is None else self.shed_reason.value,
            round(self.predicted_wait_s, 9),
            self.queue_depth,
        )


@dataclass(slots=True)
class AdmissionController:
    """The bounded-FIFO admission state machine.

    Arrivals must be presented in non-decreasing ``arrival_s`` order
    (the controller clamps small regressions rather than rejecting them,
    so a real clock with jitter still works).
    """

    config: AdmissionConfig = field(default_factory=AdmissionConfig)
    #: Modelled completion times of questions occupying service slots
    #: (min-heap, at most ``max_concurrent`` entries).
    _busy: list[float] = field(default_factory=list)
    #: Modelled start times of admitted questions that had to queue.
    _queued_starts: list[float] = field(default_factory=list)
    _clock_s: float = 0.0
    draining: bool = False
    decisions: list[AdmissionDecision] = field(default_factory=list)
    _buckets: dict[str, TokenBucket] = field(default_factory=dict)

    def _advance(self, now_s: float) -> float:
        """Move the logical clock forward, starting queued work."""
        now_s = max(now_s, self._clock_s)
        self._clock_s = now_s
        if self._queued_starts:
            self._queued_starts = [s for s in self._queued_starts if s > now_s]
        return now_s

    def queue_depth(self, now_s: float) -> int:
        """Modelled waiters (admitted but not yet started) at ``now_s``."""
        self._advance(now_s)
        return len(self._queued_starts)

    def predicted_wait_s(self, now_s: float) -> float:
        """Modelled wait a new arrival at ``now_s`` would experience.

        ``_busy`` is the slot-free heap of the :math:`G/G/c` model — its
        minimum is when the earliest of the ``max_concurrent`` service
        slots next frees, already accounting for queued admissions.
        """
        now_s = self._advance(now_s)
        if len(self._busy) < self.config.max_concurrent:
            return 0.0
        return max(0.0, self._busy[0] - now_s)

    def submit(
        self,
        seq: int,
        qid: int,
        arrival_s: float,
        client: str = "default",
        deadline_s: float | None = None,
    ) -> AdmissionDecision:
        """Decide accept/shed for one arrival; records and returns it."""
        now_s = self._advance(arrival_s)
        cfg = self.config

        def shed(reason: ShedReason, wait: float = 0.0) -> AdmissionDecision:
            d = AdmissionDecision(
                seq=seq,
                qid=qid,
                arrival_s=now_s,
                accepted=False,
                shed_reason=reason,
                predicted_wait_s=wait,
                queue_depth=len(self._queued_starts),
            )
            self.decisions.append(d)
            return d

        if self.draining:
            return shed(ShedReason.DRAINING)
        if cfg.rate_limit_qps > 0:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = self._buckets[client] = TokenBucket(
                    cfg.rate_limit_qps, cfg.rate_burst, start_s=now_s
                )
            if not bucket.try_take(now_s):
                return shed(ShedReason.RATE_LIMITED)
        wait = self.predicted_wait_s(now_s)
        if wait > 0 and len(self._queued_starts) >= cfg.max_queue_depth:
            return shed(ShedReason.QUEUE_FULL, wait)
        budget = deadline_s if deadline_s is not None else cfg.effective_deadline_s
        if wait + cfg.est_service_s > budget:
            return shed(ShedReason.DEADLINE, wait)

        start = now_s + wait
        end = start + cfg.est_service_s
        if len(self._busy) < cfg.max_concurrent:
            heapq.heappush(self._busy, end)
        else:
            heapq.heapreplace(self._busy, end)
        if wait > 0:
            self._queued_starts.append(start)
        d = AdmissionDecision(
            seq=seq,
            qid=qid,
            arrival_s=now_s,
            accepted=True,
            shed_reason=None,
            predicted_wait_s=wait,
            queue_depth=len(self._queued_starts),
        )
        self.decisions.append(d)
        return d

    def start_draining(self) -> None:
        """Stop accepting: every further submit sheds with ``DRAINING``."""
        self.draining = True

    def decision_key(self) -> tuple[tuple[t.Any, ...], ...]:
        """The full decision sequence as a stable, hashable fingerprint."""
        return tuple(d.key() for d in self.decisions)
