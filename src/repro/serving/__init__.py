"""Serving layer: the real Q/A pipeline behind bounded admission control.

The batch experiment drivers answer a fixed workload and exit; this
package wraps :class:`~repro.qa.pipeline.QAPipeline` in a **long-lived
multi-worker server** so the real pipeline can be subjected to the same
overload protocol as the simulated cluster:

* :mod:`repro.serving.admission` — deterministic bounded-FIFO admission
  (the simulator's FIFO-of-3 node discipline), per-client token-bucket
  rate limits, deadline-aware load shedding;
* :mod:`repro.serving.workers` — worker processes attaching to the
  shared v2 packed-index artifact (zero rebuild per process);
* :mod:`repro.serving.server` — the :class:`QAServer` lifecycle with
  conservation accounting, metrics, stitched cross-process span trees,
  and the telemetry plane (head sampling, ``telemetry.jsonl``);
* :mod:`repro.serving.slo` — the rolling-window SLO monitor
  (OK/WARN/BREACH) and the ``repro top`` text dashboard;
* :mod:`repro.serving.loadgen` — the Section 6.1-style seeded workload
  driver (``python -m repro loadgen``), emitting ``BENCH_serving.json``.

CLI: ``python -m repro serve`` (interactive stdin server),
``python -m repro loadgen`` (offered-load sweep), and
``python -m repro top`` (dashboard over a telemetry file).
"""

from .admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
    TokenBucket,
)
from .loadgen import (
    LoadgenConfig,
    format_serving,
    run_loadgen,
    validate_bench_serving,
    write_serving_json,
    zipf_workload,
)
from .protocol import (
    ConservationLedger,
    Outcome,
    OverloadError,
    ServeRequest,
    ServeResponse,
    ShedReason,
)
from .server import QAServer, ServerConfig
from .slo import SLOConfig, SLOMonitor, SLOReport, SLOState, format_top, run_top
from .workers import ExecutionResult, InlineExecutor, ProcessWorkerPool

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "ConservationLedger",
    "ExecutionResult",
    "InlineExecutor",
    "LoadgenConfig",
    "Outcome",
    "OverloadError",
    "ProcessWorkerPool",
    "QAServer",
    "SLOConfig",
    "SLOMonitor",
    "SLOReport",
    "SLOState",
    "ServeRequest",
    "ServeResponse",
    "ServerConfig",
    "ShedReason",
    "TokenBucket",
    "format_serving",
    "format_top",
    "run_loadgen",
    "run_top",
    "validate_bench_serving",
    "write_serving_json",
    "zipf_workload",
]
