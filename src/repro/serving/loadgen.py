"""Workload driver: drive the real server through the overload protocol.

The simulator's evaluation (Section 6.1) brings the cluster to a high
load state with a seeded question stream; the loadgen replays the *same
protocol* against the real serving layer — the identical Zipf-popular
question mix the throughput bench uses, Poisson arrivals at a controlled
offered rate, one seed end to end — so real and simulated behaviour
under overload can be compared number for number.

Protocol
--------
1. **Calibrate**: a closed-loop burst through the worker pool measures
   the real saturation throughput (q/s with every service slot busy) and
   the mean per-question service time; the admission model's
   ``est_service_s`` is set so modelled capacity equals measured
   capacity.
2. **Sweep**: for each offered-load factor (default below / at / above
   saturation), submit the seeded stream open-loop at
   ``factor x saturation`` q/s and let admission shed what cannot be
   served in time.
3. **Account**: every run must conserve questions exactly
   (``answered + shed + drained == submitted``), and the overload run
   must shed rather than queue — its accepted-question p99 stays within
   ``3x`` of the at-saturation p99.

``run_loadgen`` returns a JSON-ready summary (written to
``BENCH_serving.json``); the accept/shed **decision digest** in each run
is byte-identical across ``--workers`` counts for a fixed rate and
service estimate, which the determinism regression test pins.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import time
import typing as t
from dataclasses import asdict, dataclass, field

import numpy as np

from ..corpus import CorpusConfig, TrecQuestion
from ..workload.arrivals import poisson_arrivals
from ..workload.metrics import summarize_samples
from .admission import AdmissionConfig
from .server import QAServer, ServerConfig
from .slo import SLOConfig
from .workers import InlineExecutor, ProcessWorkerPool

__all__ = [
    "LoadgenConfig",
    "format_serving",
    "run_loadgen",
    "validate_bench_serving",
    "write_serving_json",
    "zipf_workload",
]


@dataclass(frozen=True, slots=True)
class LoadgenConfig:
    """Knobs of a serving load-generation sweep."""

    corpus: CorpusConfig = field(default_factory=CorpusConfig)
    #: Total questions per run (Zipf-repeated populars, like the bench).
    n_questions: int = 200
    #: Distinct questions the stream draws from.
    n_unique: int = 60
    #: Zipf popularity exponent of the question distribution.
    zipf_exponent: float = 1.1
    #: Seed of the question picks *and* the arrival schedule.
    workload_seed: int = 7
    #: Worker processes (0 = inline execution in this process).
    workers: int = 3
    #: Offered loads as multiples of measured saturation.
    load_factors: tuple[float, ...] = (0.5, 1.0, 2.0)
    #: Explicit offered rate (q/s); overrides ``load_factors`` with one
    #: run and skips saturation calibration.
    rate_qps: float | None = None
    #: Explicit admission service-time estimate; skips calibration.
    est_service_s: float | None = None
    #: Closed-loop questions used to measure saturation.
    calibration_questions: int = 32
    #: Admission discipline (est_service_s inside is overridden).
    max_concurrent: int = 3
    max_queue_depth: int = 4
    deadline_s: float | None = None
    rate_limit_qps: float = 0.0
    rate_burst: float = 4.0
    #: Sleep to the arrival schedule (False floods as fast as possible;
    #: decisions are unchanged because they use scheduled times).
    pace: bool = True
    drain_timeout_s: float = 60.0
    #: Keep the full per-question decision list in each run record.
    record_decisions: bool = False
    #: Serving-side micro-batch size (PR 7): accepted questions are
    #: grouped up to this many per ``answer_batch`` call.  ``1`` keeps
    #: the unbatched request-per-question path.  Admission decisions are
    #: made before batching, so the decision digest is unchanged.
    batch_max: int = 1
    #: Oldest-request age that forces a partial micro-batch flush.
    batch_wait_s: float = 0.005
    #: Head-sampling rate for stitched worker traces (PR 8).  Sampling
    #: is decided after admission from ``(trace_seed, seq)`` alone, so
    #: the decision digest is byte-identical at any rate.
    trace_sample_rate: float = 0.0
    trace_seed: int = 0
    #: When set, each run streams ``telemetry/v1`` records to
    #: ``<stem>-<label><suffix>`` next to this path.
    telemetry_out: str | None = None
    #: When set, the at-saturation run's stitched span stream is written
    #: here as a Chrome trace with stable per-process lanes.
    trace_out: str | None = None
    #: Re-run the at-saturation point with all observability disabled
    #: and report the throughput overhead (acceptance line: <= 5%).
    measure_overhead: bool = False

    def admission(self, est_service_s: float) -> AdmissionConfig:
        """The admission config this sweep drives, at a given estimate."""
        return AdmissionConfig(
            max_concurrent=self.max_concurrent,
            max_queue_depth=self.max_queue_depth,
            est_service_s=est_service_s,
            deadline_s=self.deadline_s,
            rate_limit_qps=self.rate_limit_qps,
            rate_burst=self.rate_burst,
        )


def zipf_workload(
    questions: t.Sequence[TrecQuestion],
    n_questions: int,
    n_unique: int,
    zipf_exponent: float,
    seed: int,
) -> list[tuple[int, str]]:
    """The bench/simulator question stream: Zipf-popular repeated picks.

    Identical construction to the throughput bench (rank ``r`` drawn
    with probability ∝ ``1/r^s``), so serving, bench, and simulator all
    answer the same stream for the same seed.
    """
    unique = list(questions[: max(1, min(n_unique, len(questions)))])
    rng = np.random.default_rng(seed)
    weights = 1.0 / np.arange(1, len(unique) + 1) ** zipf_exponent
    weights /= weights.sum()
    picks = rng.choice(len(unique), size=n_questions, p=weights)
    return [(unique[i].qid, unique[i].text) for i in picks]


def _settle(server: QAServer, timeout_s: float) -> None:
    """Poll until every accepted question completed (or timeout)."""
    deadline = time.monotonic() + timeout_s
    while server.in_flight > 0 and time.monotonic() < deadline:
        if server.poll() == 0:
            time.sleep(0.001)


def _calibrate(
    config: LoadgenConfig, workload: t.Sequence[tuple[int, str]]
) -> dict[str, t.Any]:
    """Closed-loop burst: measure real saturation q/s and mean service."""
    k = config.calibration_questions
    if config.batch_max > 1:
        # Enough batch requests to keep every worker busy several rounds,
        # else request quantization (ceil(k/B) requests over W workers)
        # dominates the measurement instead of the batched service rate.
        k = max(k, config.batch_max * max(1, config.workers) * 4)
    k = max(1, min(k, len(workload)))
    items = list(workload[:k])
    if config.workers >= 1:
        pool: t.Any = ProcessWorkerPool(config.corpus, config.workers)
    else:
        from ..experiments.context import build_serving_context

        pool = InlineExecutor(build_serving_context(config.corpus).pipeline)
    pool.start()
    try:
        t0 = time.time()
        if config.batch_max > 1 and hasattr(pool, "submit_batch"):
            # Mirror the server's micro-batcher: chunks of batch_max, so
            # calibration measures the *batched* saturation throughput.
            for i0 in range(0, k, config.batch_max):
                chunk = items[i0 : i0 + config.batch_max]
                now = time.time()
                pool.submit_batch(
                    [
                        (i0 + j, qid, text, now)
                        for j, (qid, text) in enumerate(chunk)
                    ]
                )
        else:
            for i, (qid, text) in enumerate(items):
                pool.submit(i, qid, text, time.time())
        results = list(pool.poll())
        deadline = time.monotonic() + 120.0
        while len(results) < k and time.monotonic() < deadline:
            got = pool.poll()
            if got:
                results.extend(got)
            else:
                time.sleep(0.001)
        wall_s = max(time.time() - t0, 1e-9)
    finally:
        pool.drain(10.0)
        pool.stop()
    if len(results) < k:
        raise RuntimeError(
            f"calibration incomplete: {len(results)}/{k} questions returned"
        )
    service_mean_s = sum(r.service_s for r in results) / k
    saturation_qps = k / wall_s
    return {
        "n_questions": k,
        "wall_s": wall_s,
        "saturation_qps": saturation_qps,
        "service_mean_s": service_mean_s,
        #: Modelled per-question service such that ``max_concurrent``
        #: slots reproduce the measured capacity.
        "est_service_s": config.max_concurrent / saturation_qps,
        "workers": getattr(pool, "workers", 0),
    }


def _telemetry_run_path(base: str, label: str) -> str:
    """Per-run telemetry file: ``<stem>-<label><suffix>`` next to base."""
    p = pathlib.Path(base)
    return str(p.with_name(f"{p.stem}-{label}{p.suffix or '.jsonl'}"))


def _run_once(
    config: LoadgenConfig,
    workload: t.Sequence[tuple[int, str]],
    rate_qps: float,
    est_service_s: float,
    label: str,
    load_factor: float | None,
    observability: bool = True,
    trace_path: str | None = None,
) -> dict[str, t.Any]:
    """One open-loop serving run at a fixed offered rate.

    ``observability=False`` turns metrics, spans, sampling, SLO and
    telemetry off in one switch — the overhead-measurement rerun.
    """
    schedule = poisson_arrivals(
        len(workload), rate_qps, seed=config.workload_seed
    )
    admission = config.admission(est_service_s)
    telemetry_path: str | None = None
    if observability and config.telemetry_out:
        telemetry_path = _telemetry_run_path(config.telemetry_out, label)
    server_config = ServerConfig(
        corpus=config.corpus,
        admission=admission,
        workers=config.workers,
        drain_timeout_s=config.drain_timeout_s,
        batch_max=config.batch_max,
        batch_wait_s=config.batch_wait_s,
        metrics_enabled=observability,
        spans_enabled=observability,
        trace_sample_rate=config.trace_sample_rate if observability else 0.0,
        trace_seed=config.trace_seed,
        # The SLO latency objective mirrors the admission deadline: the
        # server judges retrospectively what admission promised.
        slo=(
            SLOConfig(p99_target_s=admission.effective_deadline_s)
            if observability and (config.trace_sample_rate > 0 or telemetry_path)
            else None
        ),
        telemetry_path=telemetry_path,
    )
    server = QAServer(server_config)
    with server:
        wall0 = time.time()
        for (qid, text), arrival in zip(workload, schedule):
            if config.pace:
                lag = (wall0 + arrival) - time.time()
                if lag > 0:
                    time.sleep(lag)
            server.submit(text, qid=qid, arrival_s=arrival)
            server.poll()
        _settle(server, config.drain_timeout_s)
        ledger = server.drain()
        makespan_s = max(time.time() - wall0, 1e-9)

        answered = [r for r in server.responses if r.answered]
        latencies = [r.latency_s for r in answered]
        waits = [r.admission_wait_s for r in answered]
        services = [r.service_s for r in answered]
        decision_key = server.admission.decision_key()
        digest = hashlib.sha256(repr(decision_key).encode("utf-8")).hexdigest()
        attach = getattr(server.pool, "attach_report", {})
        sources = [src for src, _ in attach.values()]
        run: dict[str, t.Any] = {
            "label": label,
            "load_factor": load_factor,
            "offered_qps": rate_qps,
            "schedule_span_s": schedule[-1] if schedule else 0.0,
            "makespan_s": makespan_s,
            "throughput_qps": ledger.answered / makespan_s,
            "ledger": ledger.to_dict(),
            "latency_s": summarize_samples(latencies).to_dict(),
            "admission_wait_s": summarize_samples(waits).to_dict(),
            "service_s": summarize_samples(services).to_dict(),
            "attribution": server.attribution_summary(),
            "decision_digest": digest,
            "n_decisions": len(decision_key),
            "workers": {
                "n": config.workers,
                "attached_from_cache": sources.count("cache"),
                "built": sources.count("built"),
            },
            "conservation_ok": ledger.balanced,
        }
        # Micro-batch sharing, as recorded by the stage:PR-batch spans.
        batch_spans = [
            s
            for s in server.spans.spans
            if s.name == "stage:PR-batch" and "sharing_factor" in s.attrs
        ]
        run["batch"] = {
            "batch_max": config.batch_max,
            "n_batched_questions": len(batch_spans),
        }
        if batch_spans:
            run["batch"]["sharing_factor_mean"] = sum(
                s.attrs["sharing_factor"] for s in batch_spans
            ) / len(batch_spans)
            run["batch"]["amortized_postings_scanned_mean"] = sum(
                s.attrs["amortized_postings_scanned"] for s in batch_spans
            ) / len(batch_spans)
        # Stitched-trace sampling accounting (telemetry plane, PR 8).
        run["sampling"] = {
            "rate": config.trace_sample_rate if observability else 0.0,
            "sampled_answered": sum(1 for r in answered if r.sampled),
            "stitched_trees": sum(
                1 for s in server.spans.spans if s.name == "worker"
            ),
        }
        if server.slo is not None:
            run["slo"] = {
                "state": server.slo.state.value,
                "transitions": len(server.slo.transitions),
            }
        if server.telemetry is not None:
            run["telemetry"] = {
                "path": telemetry_path,
                "records": server.telemetry.records,
            }
        if observability and trace_path:
            server.export_trace(trace_path)
            run["trace_out"] = trace_path
        if config.record_decisions:
            run["decisions"] = [list(k) for k in decision_key]
        return run


def _overload_check(
    runs: t.Sequence[dict[str, t.Any]],
    service_floor_s: float,
    ratio_limit: float = 3.0,
) -> dict[str, t.Any]:
    """The acceptance criteria: shed under overload, bounded p99, conserve.

    The p99 ratio denominator is floored at one mean service time — an
    at-saturation p99 cannot meaningfully be smaller, and the floor keeps
    the ratio from exploding on timer noise when the pipeline is fast.
    """
    conservation_ok = all(r["conservation_ok"] for r in runs)
    factored = [r for r in runs if r["load_factor"] is not None]
    out: dict[str, t.Any] = {
        "conservation_ok": conservation_ok,
        "ratio_limit": ratio_limit,
    }
    if not factored:
        out["ok"] = conservation_ok
        return out
    at_sat = min(factored, key=lambda r: abs(r["load_factor"] - 1.0))
    over = max(factored, key=lambda r: r["load_factor"])
    out["at_saturation"] = at_sat["label"]
    out["overload"] = over["label"]
    if over["load_factor"] < 2.0 or over is at_sat:
        out["ok"] = conservation_ok
        return out
    p99_sat = max(at_sat["latency_s"]["p99_s"], service_floor_s)
    p99_over = over["latency_s"]["p99_s"]
    ratio = p99_over / p99_sat if p99_sat > 0 else float("inf")
    shed_nonzero = over["ledger"]["shed"] > 0
    drained_zero = all(r["ledger"]["drained"] == 0 for r in factored)
    out.update(
        {
            "p99_at_saturation_s": at_sat["latency_s"]["p99_s"],
            "p99_overload_s": p99_over,
            "p99_ratio": ratio,
            "p99_within_limit": ratio <= ratio_limit,
            "shed_nonzero_at_overload": shed_nonzero,
            "clean_drain": drained_zero,
            "ok": (
                conservation_ok
                and shed_nonzero
                and drained_zero
                and ratio <= ratio_limit
            ),
        }
    )
    return out


def run_loadgen(config: LoadgenConfig | None = None) -> dict[str, t.Any]:
    """Run the full overload protocol against the real serving layer."""
    config = config or LoadgenConfig()
    from ..experiments.context import build_context

    ctx = build_context(config.corpus)
    workload = zipf_workload(
        ctx.questions,
        config.n_questions,
        config.n_unique,
        config.zipf_exponent,
        config.workload_seed,
    )

    calibration: dict[str, t.Any]
    if config.rate_qps is not None and config.est_service_s is not None:
        calibration = {
            "skipped": True,
            "est_service_s": config.est_service_s,
            "service_mean_s": config.est_service_s,
        }
    else:
        calibration = _calibrate(config, workload)
    est_service_s = (
        config.est_service_s
        if config.est_service_s is not None
        else calibration["est_service_s"]
    )
    saturation_qps = calibration.get(
        "saturation_qps", config.max_concurrent / est_service_s
    )

    runs: list[dict[str, t.Any]] = []
    if config.rate_qps is not None:
        runs.append(
            _run_once(
                config,
                workload,
                config.rate_qps,
                est_service_s,
                label=f"{config.rate_qps:g}qps",
                load_factor=None,
                trace_path=config.trace_out,
            )
        )
    else:
        # The stitched Chrome trace is exported from the run closest to
        # saturation — the point the paper's timelines are drawn at.
        trace_factor = min(
            config.load_factors, key=lambda f: abs(f - 1.0), default=None
        )
        for factor in config.load_factors:
            runs.append(
                _run_once(
                    config,
                    workload,
                    factor * saturation_qps,
                    est_service_s,
                    label=f"{factor:g}x",
                    load_factor=factor,
                    trace_path=(
                        config.trace_out if factor == trace_factor else None
                    ),
                )
            )

    overload = _overload_check(
        runs, service_floor_s=calibration.get("service_mean_s", est_service_s)
    )

    # Observability overhead: re-run the at-saturation point with every
    # recorder off and compare sustained throughput.  The admission
    # digest must not move — sampling is decided after admission.
    overhead: dict[str, t.Any] = {"skipped": True}
    if config.measure_overhead and runs:
        factored = [r for r in runs if r["load_factor"] is not None]
        on = (
            min(factored, key=lambda r: abs(r["load_factor"] - 1.0))
            if factored
            else runs[0]
        )
        off = _run_once(
            config,
            workload,
            on["offered_qps"],
            est_service_s,
            label=f"{on['label']}-obs-off",
            load_factor=on["load_factor"],
            observability=False,
        )
        qps_on = on["throughput_qps"]
        qps_off = off["throughput_qps"]
        frac = (qps_off - qps_on) / qps_off if qps_off > 0 else 0.0
        overhead = {
            "skipped": False,
            "run": on["label"],
            "qps_on": qps_on,
            "qps_off": qps_off,
            "overhead_frac": frac,
            "digest_match": on["decision_digest"] == off["decision_digest"],
            "ok": frac <= 0.05
            and on["decision_digest"] == off["decision_digest"],
        }

    return {
        "schema": "bench_serving/v3",
        "config": asdict(config),
        "batch": {
            "batch_max": config.batch_max,
            "batch_wait_s": config.batch_wait_s,
        },
        "workload": {
            "n_questions": config.n_questions,
            "n_unique": config.n_unique,
            "zipf_exponent": config.zipf_exponent,
            "seed": config.workload_seed,
        },
        "telemetry": {
            "trace_sample_rate": config.trace_sample_rate,
            "trace_seed": config.trace_seed,
            "telemetry_out": config.telemetry_out,
            "trace_out": config.trace_out,
            "sampled_answered": sum(
                r["sampling"]["sampled_answered"] for r in runs
            ),
            "stitched_trees": sum(
                r["sampling"]["stitched_trees"] for r in runs
            ),
        },
        "calibration": calibration,
        "saturation_qps": saturation_qps,
        "runs": runs,
        "overload": overload,
        "observability_overhead": overhead,
        "ok": overload.get("ok", False) and all(
            r["conservation_ok"] for r in runs
        ),
    }


def format_serving(summary: dict[str, t.Any]) -> str:
    """Render the sweep as an ASCII report section."""
    lines: list[str] = []
    title = "Serving — admission-controlled real pipeline under offered load"
    lines.append(title)
    lines.append("=" * len(title))
    cal = summary["calibration"]
    if not cal.get("skipped"):
        lines.append(
            f"calibration: saturation {cal['saturation_qps']:.1f} q/s, "
            f"mean service {cal['service_mean_s'] * 1e3:.2f} ms "
            f"({cal['workers']} workers, closed loop over "
            f"{cal['n_questions']} questions)"
        )
    header = (
        f"{'run':<8} | {'offered':>8} | {'answered':>8} | {'shed':>6} | "
        f"{'drain':>5} | {'q/s':>7} | {'p50 ms':>8} | {'p99 ms':>8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for run in summary["runs"]:
        led = run["ledger"]
        lat = run["latency_s"]
        lines.append(
            f"{run['label']:<8} | {run['offered_qps']:>8.1f} | "
            f"{led['answered']:>8} | {led['shed']:>6} | "
            f"{led['drained']:>5} | {run['throughput_qps']:>7.1f} | "
            f"{lat['p50_s'] * 1e3:>8.2f} | {lat['p99_s'] * 1e3:>8.2f}"
        )
    bat = summary.get("batch") or {}
    if bat.get("batch_max", 1) > 1:
        sharings = [
            r["batch"]["sharing_factor_mean"]
            for r in summary["runs"]
            if r.get("batch", {}).get("sharing_factor_mean")
        ]
        mean_txt = (
            f", mean sharing {sum(sharings) / len(sharings):.2f}"
            if sharings
            else ""
        )
        lines.append(
            f"micro-batching: up to {bat['batch_max']} questions per worker "
            f"request (flush at {bat.get('batch_wait_s', 0.0) * 1e3:.1f} ms)"
            f"{mean_txt}"
        )
    tel = summary.get("telemetry") or {}
    if tel.get("trace_sample_rate"):
        lines.append(
            f"telemetry: head-sampling {tel['trace_sample_rate']:.0%} "
            f"(seed {tel.get('trace_seed', 0)}), "
            f"{tel.get('stitched_trees', 0)} stitched traces"
        )
    oh = summary.get("observability_overhead") or {}
    if oh and not oh.get("skipped"):
        lines.append(
            f"observability overhead at {oh['run']}: "
            f"{oh['overhead_frac']:+.1%} q/s "
            f"({'ok' if oh['ok'] else 'OVER BUDGET'}; digest "
            f"{'unchanged' if oh['digest_match'] else 'MOVED'})"
        )
    over = summary["overload"]
    if "p99_ratio" in over:
        lines.append(
            f"overload p99 ratio {over['p99_ratio']:.2f} "
            f"(limit {over['ratio_limit']:.1f}x of at-saturation), "
            f"shed at overload: "
            f"{'yes' if over['shed_nonzero_at_overload'] else 'NO'}"
        )
    lines.append(
        "conservation: "
        + (
            "balanced in all runs"
            if over["conservation_ok"]
            else "IMBALANCED — questions lost or double-counted"
        )
    )
    return "\n".join(lines)


def validate_bench_serving(summary: dict[str, t.Any]) -> None:
    """Schema check for ``BENCH_serving.json`` — raises on drift.

    v2 added the micro-batch block (top-level ``batch`` plus a per-run
    ``batch`` record carrying the sharing stats from the
    ``stage:PR-batch`` spans); v3 adds the telemetry plane: a top-level
    ``telemetry`` block, the ``observability_overhead`` measurement
    (or its explicit ``skipped`` marker), and per-run ``sampling``
    accounting.
    """
    if summary.get("schema") != "bench_serving/v3":
        raise ValueError(f"unexpected schema: {summary.get('schema')!r}")
    for key in (
        "config",
        "workload",
        "calibration",
        "runs",
        "overload",
        "observability_overhead",
        "ok",
    ):
        if key not in summary:
            raise ValueError(f"missing top-level key: {key}")
    batch = summary.get("batch")
    if not isinstance(batch, dict) or "batch_max" not in batch:
        raise ValueError("summary must carry a 'batch' block")
    telemetry = summary.get("telemetry")
    if not isinstance(telemetry, dict) or "trace_sample_rate" not in telemetry:
        raise ValueError("v3 summary must carry a 'telemetry' block")
    overhead = summary["observability_overhead"]
    if not isinstance(overhead, dict) or (
        not overhead.get("skipped") and "overhead_frac" not in overhead
    ):
        raise ValueError(
            "observability_overhead must be measured or marked skipped"
        )
    for i, run in enumerate(summary["runs"]):
        for key in (
            "label",
            "offered_qps",
            "ledger",
            "latency_s",
            "decision_digest",
            "conservation_ok",
            "batch",
            "sampling",
        ):
            if key not in run:
                raise ValueError(f"runs[{i}] missing {key}")
        led = run["ledger"]
        for key in ("submitted", "answered", "shed", "drained"):
            if key not in led:
                raise ValueError(f"runs[{i}].ledger missing {key}")


def write_serving_json(
    summary: dict[str, t.Any], path: str | pathlib.Path
) -> pathlib.Path:
    """Write ``summary`` to ``path`` as pretty-printed JSON."""
    out = pathlib.Path(path)
    out.write_text(json.dumps(summary, indent=2, sort_keys=False) + "\n")
    return out
