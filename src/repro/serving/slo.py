"""Rolling-window SLO monitor and the ``repro top`` dashboard.

The loadgen's acceptance criteria are judged once, after the run; a
long-lived server needs the same judgement *continuously*.
:class:`SLOMonitor` keeps a rolling window of question outcomes and
evaluates it into a typed state machine:

* ``OK`` — windowed p99 within target, shed rate below the warn line;
* ``WARN`` — p99 above target, shed rate above the warn line, or
  deadline violations in the window;
* ``BREACH`` — p99 above ``breach_factor``× target or shed rate above
  the breach line.

All evaluation is driven by *caller-supplied* logical time — the monitor
never reads the wall clock — so unit tests replay outcome sequences
deterministically, exactly like the admission controller.  State
transitions are recorded with their reasons; the server emits them as
``slo`` records into ``telemetry.jsonl``, which is what ``repro top``
renders (a periodic text dashboard over a live or finished file).
"""

from __future__ import annotations

import enum
import typing as t
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "SLOConfig",
    "SLOMonitor",
    "SLOReport",
    "SLOState",
    "format_top",
    "run_top",
]


class SLOState(enum.Enum):
    """Typed SLO condition, ordered by severity."""

    OK = "ok"
    WARN = "warn"
    BREACH = "breach"


@dataclass(frozen=True, slots=True)
class SLOConfig:
    """Targets the rolling window is judged against."""

    #: Rolling window length (logical seconds).
    window_s: float = 30.0
    #: Latency objective: windowed p99 above this is WARN, above
    #: ``breach_factor`` times this is BREACH.
    p99_target_s: float = 1.0
    breach_factor: float = 2.0
    #: Shed-rate lines (fraction of window submissions shed).
    shed_warn: float = 0.05
    shed_breach: float = 0.25
    #: Minimum windowed outcomes before latency/shed judgements engage
    #: (a single slow question at startup is not a breach).
    min_samples: int = 5

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.p99_target_s <= 0:
            raise ValueError("p99_target_s must be positive")
        if self.breach_factor < 1.0:
            raise ValueError("breach_factor must be >= 1")
        if not 0.0 <= self.shed_warn <= self.shed_breach <= 1.0:
            raise ValueError("need 0 <= shed_warn <= shed_breach <= 1")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")


@dataclass(frozen=True, slots=True)
class SLOReport:
    """One evaluation of the rolling window."""

    t: float
    state: SLOState
    reasons: tuple[str, ...]
    n_answered: int
    n_shed: int
    shed_rate: float
    p50_s: float
    p95_s: float
    p99_s: float
    deadline_violations: int
    #: Busy fraction per worker pid over the window.
    utilization: dict[int, float]
    #: True when this evaluation changed the state.
    transition: bool
    prev_state: SLOState

    def to_dict(self) -> dict[str, t.Any]:
        """JSON form — the telemetry.jsonl ``slo`` record body."""
        return {
            "t": self.t,
            "state": self.state.value,
            "prev_state": self.prev_state.value,
            "reasons": list(self.reasons),
            "n_answered": self.n_answered,
            "n_shed": self.n_shed,
            "shed_rate": self.shed_rate,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "deadline_violations": self.deadline_violations,
            "utilization": {
                str(pid): frac for pid, frac in sorted(self.utilization.items())
            },
            "transition": self.transition,
        }


def _pct(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile over pre-sorted samples (0 when empty)."""
    if not ordered:
        return 0.0
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


class SLOMonitor:
    """Deterministic rolling-window SLO state machine.

    Feed it outcomes with :meth:`record_answered` / :meth:`record_shed`
    (timestamps must be non-decreasing — a real clock qualifies, and so
    does a test script), then :meth:`evaluate` judges the window at a
    given instant.  Transitions accumulate in :attr:`transitions` as
    ``(t, old_state, new_state, reasons)``.
    """

    def __init__(self, config: SLOConfig | None = None) -> None:
        self.config = config or SLOConfig()
        self.state = SLOState.OK
        self.transitions: list[tuple[float, SLOState, SLOState, tuple[str, ...]]] = []
        #: (t, latency_s, service_s, worker_pid, deadline_violated)
        self._answered: deque[tuple[float, float, float, int, bool]] = deque()
        #: (t, reason)
        self._shed: deque[tuple[float, str]] = deque()
        self._t_first: float | None = None

    # -- feeding -----------------------------------------------------------------
    def record_answered(
        self,
        t_s: float,
        latency_s: float,
        service_s: float = 0.0,
        worker_pid: int = 0,
        deadline_violated: bool = False,
    ) -> None:
        """One answered question completing at logical time ``t_s``."""
        if self._t_first is None:
            self._t_first = t_s
        self._answered.append(
            (t_s, latency_s, service_s, worker_pid, deadline_violated)
        )

    def record_shed(self, t_s: float, reason: str = "") -> None:
        """One question shed at logical time ``t_s``."""
        if self._t_first is None:
            self._t_first = t_s
        self._shed.append((t_s, reason))

    def _trim(self, now_s: float) -> None:
        horizon = now_s - self.config.window_s
        while self._answered and self._answered[0][0] < horizon:
            self._answered.popleft()
        while self._shed and self._shed[0][0] < horizon:
            self._shed.popleft()

    # -- judging -----------------------------------------------------------------
    def evaluate(self, now_s: float) -> SLOReport:
        """Judge the window ending at ``now_s``; records any transition."""
        cfg = self.config
        self._trim(now_s)
        latencies = sorted(lat for _, lat, _, _, _ in self._answered)
        n_answered = len(latencies)
        n_shed = len(self._shed)
        n_total = n_answered + n_shed
        shed_rate = n_shed / n_total if n_total else 0.0
        p50 = _pct(latencies, 0.50)
        p95 = _pct(latencies, 0.95)
        p99 = _pct(latencies, 0.99)
        violations = sum(1 for *_, v in self._answered if v)

        # Busy fraction per worker: window service seconds / window span.
        span = cfg.window_s
        if self._t_first is not None:
            span = min(span, max(now_s - self._t_first, 1e-9))
        busy: dict[int, float] = {}
        for _, _, service_s, pid, _ in self._answered:
            busy[pid] = busy.get(pid, 0.0) + service_s
        utilization = {pid: min(1.0, s / span) for pid, s in busy.items()}

        warn: list[str] = []
        breach: list[str] = []
        if n_answered >= cfg.min_samples:
            if p99 > cfg.breach_factor * cfg.p99_target_s:
                breach.append(
                    f"p99 {p99:.3f}s > {cfg.breach_factor:g}x target "
                    f"{cfg.p99_target_s:.3f}s"
                )
            elif p99 > cfg.p99_target_s:
                warn.append(f"p99 {p99:.3f}s > target {cfg.p99_target_s:.3f}s")
        if n_total >= cfg.min_samples:
            if shed_rate >= cfg.shed_breach:
                breach.append(
                    f"shed rate {shed_rate:.1%} >= breach line "
                    f"{cfg.shed_breach:.1%}"
                )
            elif shed_rate >= cfg.shed_warn:
                warn.append(
                    f"shed rate {shed_rate:.1%} >= warn line {cfg.shed_warn:.1%}"
                )
        if violations:
            warn.append(f"{violations} deadline violation(s) in window")

        if breach:
            new_state, reasons = SLOState.BREACH, tuple(breach + warn)
        elif warn:
            new_state, reasons = SLOState.WARN, tuple(warn)
        else:
            new_state, reasons = SLOState.OK, ()
        prev = self.state
        transition = new_state is not prev
        if transition:
            self.transitions.append((now_s, prev, new_state, reasons))
            self.state = new_state
        return SLOReport(
            t=now_s,
            state=new_state,
            reasons=reasons,
            n_answered=n_answered,
            n_shed=n_shed,
            shed_rate=shed_rate,
            p50_s=p50,
            p95_s=p95,
            p99_s=p99,
            deadline_violations=violations,
            utilization=utilization,
            transition=transition,
            prev_state=prev,
        )


# -- the `repro top` dashboard -------------------------------------------------
def format_top(
    slo: dict[str, t.Any],
    samples: t.Sequence[dict[str, t.Any]] = (),
    totals: dict[str, int] | None = None,
    source: str = "",
) -> str:
    """Render one dashboard frame from telemetry records.

    ``slo`` is an ``slo`` record body (or ``SLOReport.to_dict()``),
    ``samples`` the most recent ``sample`` records, ``totals`` optional
    cumulative outcome counters.
    """
    state = str(slo.get("state", "ok")).upper()
    lines: list[str] = []
    title = f"repro top — SLO {state}"
    if source:
        title += f"  ({source})"
    lines.append(title)
    lines.append("=" * len(title))
    lines.append(
        f"window: {slo.get('n_answered', 0)} answered, "
        f"{slo.get('n_shed', 0)} shed "
        f"(shed rate {slo.get('shed_rate', 0.0):.1%}), "
        f"{slo.get('deadline_violations', 0)} deadline violation(s)"
    )
    lines.append(
        f"latency: p50 {slo.get('p50_s', 0.0) * 1e3:.1f} ms | "
        f"p95 {slo.get('p95_s', 0.0) * 1e3:.1f} ms | "
        f"p99 {slo.get('p99_s', 0.0) * 1e3:.1f} ms"
    )
    util = slo.get("utilization") or {}
    if util:
        cells = [
            f"w{pid}:{float(frac):>5.1%}" for pid, frac in sorted(util.items())
        ]
        lines.append("worker utilization: " + "  ".join(cells))
    for reason in slo.get("reasons") or []:
        lines.append(f"  ! {reason}")
    if totals:
        lines.append(
            "totals: "
            + " ".join(f"{k}={v}" for k, v in sorted(totals.items()))
        )
    if samples:
        lines.append(f"{'qid':>6} {'outcome':<9} {'latency':>9} {'worker':>7}")
        for s in samples:
            flag = "*" if s.get("forced") else " "
            lines.append(
                f"{s.get('qid', 0):>6} {s.get('outcome', '?'):<9} "
                f"{s.get('latency_s', 0.0) * 1e3:>7.1f}ms {s.get('worker', 0):>7}{flag}"
            )
    return "\n".join(lines)


def _frame_from_records(
    records: t.Sequence[dict[str, t.Any]], source: str, tail: int = 10
) -> str:
    """Build one dashboard frame from parsed telemetry records.

    Prefers the last emitted ``slo`` record; when the server never
    emitted one (no transitions before drain), the sample records are
    replayed through a fresh :class:`SLOMonitor` so the dashboard always
    has a judgement to show.
    """
    samples = [r for r in records if r.get("record") == "sample"]
    slo_recs = [r for r in records if r.get("record") == "slo"]
    totals: dict[str, int] = {}
    for s in samples:
        key = str(s.get("outcome", "?"))
        totals[key] = totals.get(key, 0) + 1
    if slo_recs:
        slo = slo_recs[-1]
    else:
        monitor = SLOMonitor()
        last_t = 0.0
        for s in samples:
            last_t = float(s.get("t", last_t))
            if s.get("outcome") == "answered":
                monitor.record_answered(
                    last_t,
                    float(s.get("latency_s", 0.0)),
                    service_s=float(s.get("service_s", 0.0)),
                    worker_pid=int(s.get("worker", 0)),
                )
            elif s.get("outcome") == "shed":
                monitor.record_shed(last_t, str(s.get("reason", "")))
        slo = monitor.evaluate(last_t).to_dict()
    return format_top(slo, samples[-tail:], totals=totals, source=source)


def run_top(
    path: str,
    follow: bool = False,
    interval_s: float = 2.0,
    max_frames: int | None = None,
    out: t.Callable[[str], None] = print,
) -> int:
    """Render the dashboard from a telemetry.jsonl file; returns frames shown.

    ``follow=False`` renders the current file contents once.  With
    ``follow=True`` the file is re-read every ``interval_s`` seconds
    until interrupted (or ``max_frames`` frames were shown) — the writer
    flushes per record, so this tails a live server.
    """
    import time as _time

    from ..observability.telemetry import read_telemetry

    frames = 0
    while True:
        try:
            records = read_telemetry(path)
        except FileNotFoundError:
            records = []
        if records:
            out(_frame_from_records(records, source=path))
        else:
            out(f"repro top — waiting for telemetry at {path}")
        frames += 1
        if not follow or (max_frames is not None and frames >= max_frames):
            return frames
        try:
            _time.sleep(interval_s)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return frames
