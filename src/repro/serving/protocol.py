"""Typed request/response surface of the serving layer.

The serving layer speaks a deliberately small vocabulary, mirroring the
accounting discipline the chaos campaign established for the simulator:
every question submitted to a :class:`~repro.serving.server.QAServer`
finishes in **exactly one** of three terminal outcomes —

* ``ANSWERED`` — accepted, executed by a worker, answer returned;
* ``SHED`` — rejected at admission with a typed :class:`OverloadError`
  (never silently queued without bound);
* ``DRAINED`` — accepted but still in flight when the server shut down
  (graceful drain timed out or was cut short).

:class:`ConservationLedger` is the running proof of that invariant:
``answered + shed + drained == submitted`` must hold exactly at drain
time, and the CI serve-smoke job fails the build if it ever does not.
"""

from __future__ import annotations

import enum
import typing as t
from dataclasses import dataclass, field

__all__ = [
    "ConservationLedger",
    "Outcome",
    "OverloadError",
    "ServeRequest",
    "ServeResponse",
    "ShedReason",
]


class Outcome(enum.Enum):
    """Terminal state of one submitted question."""

    ANSWERED = "answered"
    SHED = "shed"
    DRAINED = "drained"


class ShedReason(enum.Enum):
    """Why admission rejected a question (the typed overload taxonomy)."""

    #: The bounded FIFO admission queue was full (the paper's nodes admit
    #: 3 concurrent questions; waiters beyond the bound are rejected).
    QUEUE_FULL = "queue_full"
    #: Predicted wait + service would miss the question's deadline, so
    #: accepting it would only burn capacity on a doomed answer.
    DEADLINE = "deadline"
    #: The client exhausted its token bucket.
    RATE_LIMITED = "rate_limited"
    #: The server is draining and no longer accepts work.
    DRAINING = "draining"


class OverloadError(Exception):
    """Typed admission rejection: the load-shedding alternative to queueing.

    Carries the :class:`ShedReason` plus the queue state that justified
    the decision, so clients (and the loadgen report) can distinguish
    "slow down" (``RATE_LIMITED``) from "the service is saturated"
    (``QUEUE_FULL``/``DEADLINE``) from "the service is going away"
    (``DRAINING``).
    """

    def __init__(
        self,
        reason: ShedReason,
        qid: int,
        *,
        queue_depth: int = 0,
        predicted_wait_s: float = 0.0,
    ) -> None:
        super().__init__(
            f"question {qid} shed: {reason.value} "
            f"(queue depth {queue_depth}, "
            f"predicted wait {predicted_wait_s:.3f}s)"
        )
        self.reason = reason
        self.qid = qid
        self.queue_depth = queue_depth
        self.predicted_wait_s = predicted_wait_s


@dataclass(frozen=True, slots=True)
class ServeRequest:
    """One question submitted to the server.

    ``arrival_s`` is the *logical* arrival timestamp admission control
    decides against — the loadgen passes its scheduled arrival time so
    the accept/shed sequence is a pure function of the workload seed,
    while interactive callers pass the real clock.
    """

    seq: int  # submission order, unique per server lifetime
    qid: int
    text: str
    client: str = "default"
    arrival_s: float = 0.0
    #: Absolute deadline (same clock as ``arrival_s``); None = server default.
    deadline_s: float | None = None
    #: Wall-clock submit instant (for measured latency, not decisions).
    submit_wall: float = 0.0


@dataclass(frozen=True, slots=True)
class ServeResponse:
    """Terminal record for one submitted question."""

    seq: int
    qid: int
    outcome: Outcome
    shed_reason: ShedReason | None = None
    #: Top extracted answers as (text, score) pairs (empty unless ANSWERED).
    answers: tuple[tuple[str, float], ...] = ()
    #: Measured seconds from submit to completion (ANSWERED only).
    latency_s: float = 0.0
    #: Measured seconds the request waited before a worker picked it up.
    admission_wait_s: float = 0.0
    #: Measured seconds of pipeline execution.
    service_s: float = 0.0
    #: Pid of the worker that answered (0 for inline execution).
    worker_pid: int = 0
    #: True when this question's worker-side trace was head-sampled and
    #: its span subtree stitched into the server's stream.
    sampled: bool = False
    #: True when the measured latency exceeded the question's sojourn
    #: budget (the admission deadline, judged retrospectively).
    deadline_violated: bool = False

    @property
    def answered(self) -> bool:
        return self.outcome is Outcome.ANSWERED


@dataclass(slots=True)
class ConservationLedger:
    """Question-conservation accounting for one server lifetime.

    The serving counterpart of the chaos campaign's
    :class:`~repro.workload.metrics.FailureAccounting`: every submitted
    question must land in exactly one terminal bucket.
    """

    submitted: int = 0
    answered: int = 0
    shed: int = 0
    drained: int = 0
    shed_by_reason: dict[str, int] = field(default_factory=dict)

    def record(self, outcome: Outcome, reason: ShedReason | None = None) -> None:
        """Count one terminal outcome (``submitted`` is counted separately)."""
        if outcome is Outcome.ANSWERED:
            self.answered += 1
        elif outcome is Outcome.SHED:
            self.shed += 1
            key = reason.value if reason is not None else "unknown"
            self.shed_by_reason[key] = self.shed_by_reason.get(key, 0) + 1
        else:
            self.drained += 1

    @property
    def balanced(self) -> bool:
        """The conservation invariant: nothing lost, nothing double-counted."""
        return self.answered + self.shed + self.drained == self.submitted

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.submitted if self.submitted else 0.0

    def to_dict(self) -> dict[str, t.Any]:
        """JSON form used by the loadgen report and the CI smoke job."""
        return {
            "submitted": self.submitted,
            "answered": self.answered,
            "shed": self.shed,
            "drained": self.drained,
            "shed_fraction": self.shed_fraction,
            "shed_by_reason": dict(sorted(self.shed_by_reason.items())),
            "balanced": self.balanced,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"submitted={self.submitted} answered={self.answered} "
            f"shed={self.shed} drained={self.drained} "
            f"({'balanced' if self.balanced else 'IMBALANCED'})"
        )
