"""The long-lived Q/A server: admission control in front of real workers.

:class:`QAServer` is the serving counterpart of the simulated cluster's
front end: questions enter through a bounded FIFO admission queue (the
simulator's FIFO-of-3 node discipline, made load-shedding), accepted
questions are executed by worker processes attached to the shared
packed-index artifact, and everything that happens is recorded three
ways at once:

* a :class:`~repro.serving.protocol.ConservationLedger` proving
  ``answered + shed + drained == submitted`` exactly;
* the shared :class:`~repro.observability.metrics.MetricsRegistry`
  under the canonical ``serving.*`` names — plus, at drain, an
  **aggregated** registry merging each worker's piggybacked snapshot
  (counters sum across processes, gauges stay labeled per worker);
* a :class:`~repro.observability.spans.SpanStream` span tree per
  answered question (``serve`` root, ``admission`` queue child,
  ``service`` compute child) plus an instant event per shed, so the
  existing attribution pass can fold admission wait into its
  ``queueing`` bucket with no serving-specific code.

The telemetry plane (PR 8) extends the span story across the process
boundary: when a question is **head-sampled** (a deterministic function
of ``trace_seed`` and the submission sequence number, decided *after*
admission so the accept/shed digest is unchanged), the request carries
a trace context to the worker, the worker returns its measured
module-level span subtree with the reply, and the server grafts that
subtree under the question's ``service`` span — one stitched tree per
question, crossing server and worker, whose attribution fold still sums
exactly to the end-to-end wall latency.  A rolling-window
:class:`~repro.serving.slo.SLOMonitor` watches completions, and an
optional :class:`~repro.observability.telemetry.TelemetryWriter`
streams sampled/forced per-question records plus SLO transitions to a
``telemetry.jsonl`` file.

Lifecycle: ``start() -> submit()* / poll()* -> drain() -> stop()``.
``drain`` is graceful: admission flips to shedding ``DRAINING``,
in-flight questions get ``drain_timeout_s`` to finish, and whatever is
still unfinished is accounted ``DRAINED`` — never silently dropped.
"""

from __future__ import annotations

import time
import typing as t
from dataclasses import dataclass, field

from ..corpus import CorpusConfig
from ..observability.attribution import attribute_question
from ..observability.metrics import MetricsRegistry
from ..observability.names import (
    SERVING_ADMISSION_WAIT_S,
    SERVING_ANSWERED,
    SERVING_DEADLINE_VIOLATIONS,
    SERVING_DRAINED,
    SERVING_LATENCY_S,
    SERVING_QUEUE_DEPTH,
    SERVING_SERVICE_S,
    SERVING_SHED,
    SERVING_SHED_PREFIX,
    SERVING_SLO_STATE,
    SERVING_SLO_TRANSITIONS,
    SERVING_SUBMITTED,
    SERVING_TRACES_SAMPLED,
    SERVING_TRACE_SPANS,
)
from ..observability.spans import Span, SpanCategory, SpanStream
from ..observability.telemetry import HeadSampler, TelemetryWriter, graft_spans
from .admission import AdmissionConfig, AdmissionController, AdmissionDecision
from .protocol import (
    ConservationLedger,
    Outcome,
    OverloadError,
    ServeResponse,
    ShedReason,
)
from .slo import SLOConfig, SLOMonitor
from .workers import ExecutionResult, InlineExecutor, ProcessWorkerPool

__all__ = ["QAServer", "ServerConfig"]

#: SLO states as gauge values (see ``SERVING_SLO_STATE``).
_SLO_STATE_VALUE = {"ok": 0.0, "warn": 1.0, "breach": 2.0}


@dataclass(frozen=True, slots=True)
class ServerConfig:
    """Everything a serving run needs besides the workload itself."""

    corpus: CorpusConfig = field(default_factory=CorpusConfig)
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    #: Worker processes; 0 = inline synchronous execution (tests/debug).
    workers: int = 3
    #: Seconds in-flight questions get to finish at shutdown.
    drain_timeout_s: float = 60.0
    #: Admission-side micro-batcher (PR 7): accepted questions are held
    #: until ``batch_max`` accumulate or the oldest has waited
    #: ``batch_wait_s``, then handed to one worker as a single
    #: ``answer_batch`` request.  ``1`` disables batching.  Admission
    #: decisions are made *before* buffering, so the accept/shed decision
    #: sequence (and the loadgen's decision digest) is byte-identical to
    #: unbatched serving by construction.
    batch_max: int = 1
    batch_wait_s: float = 0.005
    #: Observability switches (spans cost memory on long runs).
    metrics_enabled: bool = True
    spans_enabled: bool = True
    #: Head-sampling rate for worker-side detail traces in [0, 1].
    #: Sampling is a pure function of ``(trace_seed, seq)`` evaluated
    #: *after* the admission decision, so enabling it cannot perturb
    #: the accept/shed sequence or its digest.  0 disables stitching.
    trace_sample_rate: float = 0.0
    trace_seed: int = 0
    #: Rolling-window SLO thresholds; ``None`` uses :class:`SLOConfig`
    #: defaults when a monitor is needed (telemetry enabled) and skips
    #: the monitor entirely otherwise.
    slo: SLOConfig | None = None
    #: When set, stream ``telemetry/v1`` JSONL records here.
    telemetry_path: str | None = None
    #: Completions between piggybacked worker metrics snapshots.
    metrics_snapshot_every: int = 16


@dataclass(slots=True)
class _Pending:
    """Book-keeping for an accepted, not-yet-completed question."""

    qid: int
    submit_wall: float
    #: Logical arrival timestamp (drives the SLO monitor's clock).
    arrival_s: float = 0.0
    #: Sojourn budget the admission deadline implies, judged
    #: retrospectively at completion.
    deadline_budget_s: float = 0.0
    #: Whether this question's worker-side trace was head-sampled.
    sampled: bool = False
    trace_id: str = ""
    #: Pre-opened spans, ended at completion (or at drain).
    root: Span | None = None
    admission_span: Span | None = None


class QAServer:
    """Admission-controlled multi-worker serving of the real pipeline."""

    def __init__(
        self,
        config: ServerConfig | None = None,
        pool: t.Any | None = None,
    ) -> None:
        self.config = config or ServerConfig()
        self.admission = AdmissionController(self.config.admission)
        self.ledger = ConservationLedger()
        self.metrics = MetricsRegistry(enabled=self.config.metrics_enabled)
        self.spans = SpanStream(enabled=self.config.spans_enabled)
        self.sampler = HeadSampler(
            self.config.trace_sample_rate, seed=self.config.trace_seed
        )
        #: Created when SLO thresholds or a telemetry sink are configured.
        self.slo: SLOMonitor | None = None
        if self.config.slo is not None or self.config.telemetry_path:
            self.slo = SLOMonitor(self.config.slo or SLOConfig())
        self.telemetry: TelemetryWriter | None = None
        if self.config.telemetry_path:
            self.telemetry = TelemetryWriter(
                self.config.telemetry_path,
                header={
                    "workers": self.config.workers,
                    "trace_sample_rate": self.config.trace_sample_rate,
                    "trace_seed": self.config.trace_seed,
                },
            )
        self.responses: list[ServeResponse] = []
        #: Latest logical timestamp fed to the SLO monitor (drain reuses it).
        self._slo_last_t = 0.0
        self._pending: dict[int, _Pending] = {}
        #: Accepted-but-unsent requests awaiting a micro-batch flush;
        #: entries are ``(seq, qid, text, submit_wall, trace-or-None)``.
        self._batch_buf: list[tuple[t.Any, ...]] = []
        self._next_seq = 0
        self._started = False
        self._drained = False
        if pool is not None:
            self.pool = pool
        elif self.config.workers >= 1:
            self.pool = ProcessWorkerPool(
                self.config.corpus,
                self.config.workers,
                snapshot_every=self.config.metrics_snapshot_every,
            )
        else:
            self.pool = None  # built lazily in start() (needs a pipeline)

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        """Spawn (or build) the execution backend."""
        if self._started:
            return
        if self.pool is None:
            from ..experiments.context import build_serving_context

            ctx = build_serving_context(self.config.corpus)
            self.pool = InlineExecutor(ctx.pipeline)
        self.pool.start()
        self._started = True

    def __enter__(self) -> "QAServer":
        self.start()
        return self

    def __exit__(self, *exc: t.Any) -> None:
        if not self._drained:
            self.drain()
        self.stop()

    # -- submission --------------------------------------------------------------
    def submit(
        self,
        text: str,
        qid: int = 0,
        client: str = "default",
        arrival_s: float | None = None,
        deadline_s: float | None = None,
        raise_on_shed: bool = False,
    ) -> AdmissionDecision:
        """Offer one question to admission control.

        ``arrival_s`` is the logical timestamp decisions are made
        against; ``None`` uses the real clock (interactive serving).
        The loadgen passes its *scheduled* arrival times, which is what
        makes the decision sequence deterministic across worker counts.
        """
        if not self._started:
            raise RuntimeError("QAServer.submit before start()")
        submit_wall = time.time()
        if arrival_s is None:
            arrival_s = submit_wall
        seq = self._next_seq
        self._next_seq += 1
        self.ledger.submitted += 1
        self.metrics.inc(SERVING_SUBMITTED)
        decision = self.admission.submit(
            seq, qid, arrival_s, client=client, deadline_s=deadline_s
        )
        if decision.accepted:
            # Head-sampling is decided only now, from (seed, seq) — the
            # admission decision above is already sealed, so the digest
            # is byte-identical with sampling on or off.
            sampled = self.sampler.sample(seq)
            budget = (
                deadline_s - arrival_s
                if deadline_s is not None
                else self.config.admission.effective_deadline_s
            )
            pending = _Pending(
                qid=qid,
                submit_wall=submit_wall,
                arrival_s=arrival_s,
                deadline_budget_s=max(0.0, budget),
                sampled=sampled,
            )
            trace: tuple[str, int] | None = None
            if self.spans.enabled:
                # Pre-open the stitched tree's server-side spans; the
                # completion (or drain) path ends them, so even drained
                # questions leave a root whose fold sums to their wall.
                pending.root = self.spans.begin(
                    "serve", SpanCategory.TASK, qid, node_id=-1, time=submit_wall
                )
                pending.admission_span = self.spans.begin(
                    "admission", SpanCategory.QUEUE, qid, node_id=-1,
                    time=submit_wall, parent=pending.root,
                )
                if sampled and pending.root is not None:
                    pending.trace_id = self.sampler.trace_id(seq)
                    trace = (pending.trace_id, pending.root.sid)
                    self.metrics.inc(SERVING_TRACES_SAMPLED)
            self._pending[seq] = pending
            if self.metrics.enabled:
                self.metrics.gauge(SERVING_QUEUE_DEPTH).set(
                    float(len(self._pending))
                )
            if self._batching:
                self._batch_buf.append((seq, qid, text, submit_wall, trace))
                if len(self._batch_buf) >= self.config.batch_max:
                    self._flush_batch()
            elif trace is not None:
                self.pool.submit(seq, qid, text, submit_wall, trace)
            else:
                self.pool.submit(seq, qid, text, submit_wall)
        else:
            reason = decision.shed_reason or ShedReason.QUEUE_FULL
            self.ledger.record(Outcome.SHED, reason)
            self.metrics.inc(SERVING_SHED)
            self.metrics.inc(SERVING_SHED_PREFIX + reason.value)
            self.spans.instant(
                f"shed:{reason.value}", qid, node_id=-1, time=submit_wall
            )
            self.responses.append(
                ServeResponse(
                    seq=seq,
                    qid=qid,
                    outcome=Outcome.SHED,
                    shed_reason=reason,
                )
            )
            if self.slo is not None:
                self.slo.record_shed(arrival_s, reason=reason.value)
                self._emit_slo(arrival_s)
            if self.telemetry is not None:
                # Sheds are always forced into the telemetry stream —
                # they are exactly the events an operator pages on.
                self.telemetry.write_sample(
                    t_s=arrival_s, seq=seq, qid=qid, outcome="shed",
                    worker=-1, forced=True, reason=f"shed:{reason.value}",
                )
            if raise_on_shed:
                raise OverloadError(
                    reason,
                    qid,
                    queue_depth=decision.queue_depth,
                    predicted_wait_s=decision.predicted_wait_s,
                )
        return decision

    # -- micro-batching ----------------------------------------------------------
    @property
    def _batching(self) -> bool:
        return self.config.batch_max > 1 and hasattr(self.pool, "submit_batch")

    def _flush_batch(self) -> None:
        """Hand the buffered accepted requests to one worker as a batch."""
        if not self._batch_buf:
            return
        buf, self._batch_buf = self._batch_buf, []
        self.pool.submit_batch(buf)

    def _maybe_flush_batch(self) -> None:
        """Flush on age: the oldest buffered request waited long enough."""
        if self._batch_buf and (
            time.time() - self._batch_buf[0][3] >= self.config.batch_wait_s
        ):
            self._flush_batch()

    # -- completion --------------------------------------------------------------
    def _complete(self, res: ExecutionResult) -> None:
        pending = self._pending.pop(res.seq, None)
        if pending is None:  # late duplicate; ignore rather than double-count
            return
        end_wall = time.time()
        latency = max(0.0, end_wall - pending.submit_wall)
        violated = (
            pending.deadline_budget_s > 0
            and latency > pending.deadline_budget_s
        )
        stitched = res.spans is not None and pending.sampled
        response = ServeResponse(
            seq=res.seq,
            qid=res.qid,
            outcome=Outcome.ANSWERED,
            answers=res.answers,
            latency_s=latency,
            admission_wait_s=res.wait_s,
            service_s=res.service_s,
            worker_pid=res.worker_pid,
            sampled=stitched,
            deadline_violated=violated,
        )
        self.responses.append(response)
        self.ledger.record(Outcome.ANSWERED)
        self.metrics.inc(SERVING_ANSWERED)
        self.metrics.observe(SERVING_LATENCY_S, latency)
        self.metrics.observe(SERVING_ADMISSION_WAIT_S, res.wait_s)
        self.metrics.observe(SERVING_SERVICE_S, res.service_s)
        if violated:
            self.metrics.inc(SERVING_DEADLINE_VIOLATIONS)
        if self.metrics.enabled:
            self.metrics.gauge(SERVING_QUEUE_DEPTH).set(
                float(len(self._pending))
            )
        if self.spans.enabled and pending.root is not None:
            root = pending.root
            root.node_id = res.worker_pid
            t0 = pending.submit_wall
            wait_end = t0 + res.wait_s
            if pending.admission_span is not None:
                self.spans.end(pending.admission_span, wait_end)
            service = self.spans.begin(
                "service", SpanCategory.COMPUTE, res.qid,
                node_id=res.worker_pid, time=wait_end, parent=root,
            )
            if stitched and service is not None:
                # Graft the worker's measured subtree under ``service``:
                # the stitched tree crosses the process boundary, and
                # because the worker root spans exactly ``service_s``
                # the attribution fold still sums to the question wall.
                _trace_id, _parent_sid, packed = res.spans
                grafted = graft_spans(
                    self.spans, packed, service,
                    qid=res.qid, node_id=res.worker_pid, t_offset=wait_end,
                )
                self.metrics.inc(SERVING_TRACE_SPANS, grafted)
            elif res.batch is not None:
                # Batched execution without a worker trace: synthesize
                # the amortized PR phase as a stage:PR-batch child so
                # the attribution fold sees the sharing (critical-path
                # compute == pr, so the categories still sum exactly).
                batch_size, n_distinct, sharing, amortized = res.batch
                pr_s = min(max(0.0, res.pr_s), res.service_s)
                stage = self.spans.begin(
                    "stage:PR-batch", SpanCategory.PARTITION, res.qid,
                    node_id=res.worker_pid, time=wait_end, parent=service,
                )
                pr_span = self.spans.begin(
                    "pr", SpanCategory.COMPUTE, res.qid,
                    node_id=res.worker_pid, time=wait_end, parent=stage,
                )
                self.spans.end(pr_span, wait_end + pr_s)
                self.spans.end(
                    stage,
                    wait_end + pr_s,
                    batch_size=batch_size,
                    n_distinct=n_distinct,
                    sharing_factor=sharing,
                    amortized_postings_scanned=amortized,
                )
            self.spans.end(service, wait_end + res.service_s)
            attrs: dict[str, t.Any] = {"outcome": "answered"}
            if pending.trace_id:
                attrs["trace_id"] = pending.trace_id
            self.spans.end(
                root, max(end_wall, wait_end + res.service_s), **attrs
            )
        t_logical = pending.arrival_s + latency
        if self.slo is not None:
            self.slo.record_answered(
                t_logical, latency, service_s=res.service_s,
                worker_pid=res.worker_pid, deadline_violated=violated,
            )
            self._emit_slo(t_logical)
        if self.telemetry is not None:
            slow = (
                self.slo is not None
                and latency > self.slo.config.p99_target_s
            )
            forced = violated or slow
            if stitched or pending.sampled or forced:
                reason = None
                if violated:
                    reason = "deadline_violated"
                elif slow:
                    reason = "slow_outlier"
                self.telemetry.write_sample(
                    t_s=t_logical, seq=res.seq, qid=res.qid,
                    outcome="answered", latency_s=latency,
                    wait_s=res.wait_s, service_s=res.service_s,
                    worker=res.worker_pid,
                    sampled=pending.sampled, forced=forced, reason=reason,
                )

    def _emit_slo(self, t_s: float) -> None:
        """Evaluate the SLO monitor and export any state transition."""
        if self.slo is None:
            return
        self._slo_last_t = max(self._slo_last_t, t_s)
        report = self.slo.evaluate(t_s)
        if self.metrics.enabled:
            self.metrics.gauge(SERVING_SLO_STATE).set(
                _SLO_STATE_VALUE[report.state.value]
            )
        if report.transition:
            self.metrics.inc(SERVING_SLO_TRANSITIONS)
            if self.telemetry is not None:
                self.telemetry.write_slo(report.to_dict())

    def poll(self) -> int:
        """Fold any finished questions into the ledger; returns the count."""
        self._maybe_flush_batch()
        results = self.pool.poll()
        for res in results:
            self._complete(res)
        return len(results)

    @property
    def in_flight(self) -> int:
        """Accepted questions not yet completed."""
        return len(self._pending)

    # -- shutdown ----------------------------------------------------------------
    def drain(self, timeout_s: float | None = None) -> ConservationLedger:
        """Graceful shutdown: stop admitting, finish in-flight, account rest."""
        if self._drained:
            return self.ledger
        self.admission.start_draining()
        self._flush_batch()  # nothing accepted may sit in the buffer
        timeout = self.config.drain_timeout_s if timeout_s is None else timeout_s
        if self._started:
            for res in self.pool.drain(timeout):
                self._complete(res)
        drain_wall = time.time()
        for seq in sorted(self._pending):
            pending = self._pending.pop(seq)
            self.ledger.record(Outcome.DRAINED)
            self.metrics.inc(SERVING_DRAINED)
            if pending.root is not None:
                # End the pre-opened tree at the drain instant: the
                # whole sojourn was queueing, and the fold still sums
                # exactly to the question's wall.
                if pending.admission_span is not None:
                    self.spans.end(pending.admission_span, drain_wall)
                self.spans.end(pending.root, drain_wall, outcome="drained")
            self.responses.append(
                ServeResponse(
                    seq=seq, qid=pending.qid, outcome=Outcome.DRAINED
                )
            )
            if self.telemetry is not None:
                self.telemetry.write_sample(
                    t_s=pending.arrival_s,
                    seq=seq,
                    qid=pending.qid,
                    outcome="drained",
                    latency_s=max(0.0, drain_wall - pending.submit_wall),
                    worker=-1,
                    sampled=pending.sampled,
                    forced=True,
                    reason="drained",
                )
        if self.metrics.enabled:
            self.metrics.gauge(SERVING_QUEUE_DEPTH).set(0.0)
        if self.telemetry is not None:
            if self.slo is not None:
                self.telemetry.write_slo(
                    self.slo.evaluate(self._slo_last_t).to_dict()
                )
            self.telemetry.write_metrics(self.aggregated_metrics())
            self.telemetry.close()
        self._drained = True
        return self.ledger

    def stop(self) -> None:
        """Tear the execution backend down (terminates stragglers)."""
        if self._started and self.pool is not None:
            self.pool.stop()
        self._started = False

    # -- reporting ---------------------------------------------------------------
    def aggregated_metrics(self) -> MetricsRegistry:
        """Server registry merged with every worker's latest snapshot.

        Counters sum across processes; gauges keep one labeled value
        per worker (``name{worker=<pid>}``); histograms merge with
        deterministic decimation.  Worker snapshots arrive piggybacked
        on the response queue, newest-wins per pid (they're cumulative).
        """
        agg = MetricsRegistry()
        if self.metrics.enabled and len(self.metrics):
            agg.merge_snapshot(self.metrics.snapshot())
        snaps = getattr(self.pool, "worker_snapshots", None) or {}
        for pid in sorted(snaps):
            agg.merge_snapshot(snaps[pid], label=f"worker={pid}")
        return agg

    def export_trace(self, path: str) -> None:
        """Write the stitched span stream as a Chrome ``trace_event`` file.

        Uses stable pid lanes: the server's ``node_id=-1`` becomes pid 0
        ("server") and each worker OS pid gets its own contiguous lane.
        """
        from ..observability.exporters import write_chrome_trace

        write_chrome_trace(
            self.spans, path, label="repro serve", stable_pids=True
        )

    def attribution_summary(self) -> dict[str, float]:
        """Mean per-question attribution over the answered span trees.

        Runs the existing observability fold
        (:func:`~repro.observability.attribution.attribute_question`)
        over every ``serve`` root: admission wait lands in the
        ``queueing`` bucket, worker execution in ``compute``, IPC and
        collection slack in ``other``.
        """
        totals: dict[str, float] = {}
        n = 0
        for qid in self.spans.question_ids():
            for root in self.spans.roots(qid):
                qa = attribute_question(self.spans, root)
                n += 1
                for cat, sec in qa.categories.items():
                    totals[cat] = totals.get(cat, 0.0) + sec
        if n == 0:
            return {}
        return {f"{cat}_mean_s": sec / n for cat, sec in sorted(totals.items())}
