"""The long-lived Q/A server: admission control in front of real workers.

:class:`QAServer` is the serving counterpart of the simulated cluster's
front end: questions enter through a bounded FIFO admission queue (the
simulator's FIFO-of-3 node discipline, made load-shedding), accepted
questions are executed by worker processes attached to the shared
packed-index artifact, and everything that happens is recorded three
ways at once:

* a :class:`~repro.serving.protocol.ConservationLedger` proving
  ``answered + shed + drained == submitted`` exactly;
* the shared :class:`~repro.observability.metrics.MetricsRegistry`
  under the canonical ``serving.*`` names;
* a :class:`~repro.observability.spans.SpanStream` span tree per
  answered question (``serve`` root, ``admission`` queue child,
  ``service`` compute child) plus an instant event per shed, so the
  existing attribution pass can fold admission wait into its
  ``queueing`` bucket with no serving-specific code.

Lifecycle: ``start() -> submit()* / poll()* -> drain() -> stop()``.
``drain`` is graceful: admission flips to shedding ``DRAINING``,
in-flight questions get ``drain_timeout_s`` to finish, and whatever is
still unfinished is accounted ``DRAINED`` — never silently dropped.
"""

from __future__ import annotations

import time
import typing as t
from dataclasses import dataclass, field

from ..corpus import CorpusConfig
from ..observability.attribution import attribute_question
from ..observability.metrics import MetricsRegistry
from ..observability.names import (
    SERVING_ADMISSION_WAIT_S,
    SERVING_ANSWERED,
    SERVING_DRAINED,
    SERVING_LATENCY_S,
    SERVING_QUEUE_DEPTH,
    SERVING_SERVICE_S,
    SERVING_SHED,
    SERVING_SHED_PREFIX,
    SERVING_SUBMITTED,
)
from ..observability.spans import SpanCategory, SpanStream
from .admission import AdmissionConfig, AdmissionController, AdmissionDecision
from .protocol import (
    ConservationLedger,
    Outcome,
    OverloadError,
    ServeResponse,
    ShedReason,
)
from .workers import ExecutionResult, InlineExecutor, ProcessWorkerPool

__all__ = ["QAServer", "ServerConfig"]


@dataclass(frozen=True, slots=True)
class ServerConfig:
    """Everything a serving run needs besides the workload itself."""

    corpus: CorpusConfig = field(default_factory=CorpusConfig)
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    #: Worker processes; 0 = inline synchronous execution (tests/debug).
    workers: int = 3
    #: Seconds in-flight questions get to finish at shutdown.
    drain_timeout_s: float = 60.0
    #: Admission-side micro-batcher (PR 7): accepted questions are held
    #: until ``batch_max`` accumulate or the oldest has waited
    #: ``batch_wait_s``, then handed to one worker as a single
    #: ``answer_batch`` request.  ``1`` disables batching.  Admission
    #: decisions are made *before* buffering, so the accept/shed decision
    #: sequence (and the loadgen's decision digest) is byte-identical to
    #: unbatched serving by construction.
    batch_max: int = 1
    batch_wait_s: float = 0.005
    #: Observability switches (spans cost memory on long runs).
    metrics_enabled: bool = True
    spans_enabled: bool = True


@dataclass(slots=True)
class _Pending:
    """Book-keeping for an accepted, not-yet-completed question."""

    qid: int
    submit_wall: float


class QAServer:
    """Admission-controlled multi-worker serving of the real pipeline."""

    def __init__(
        self,
        config: ServerConfig | None = None,
        pool: t.Any | None = None,
    ) -> None:
        self.config = config or ServerConfig()
        self.admission = AdmissionController(self.config.admission)
        self.ledger = ConservationLedger()
        self.metrics = MetricsRegistry(enabled=self.config.metrics_enabled)
        self.spans = SpanStream(enabled=self.config.spans_enabled)
        self.responses: list[ServeResponse] = []
        self._pending: dict[int, _Pending] = {}
        #: Accepted-but-unsent requests awaiting a micro-batch flush.
        self._batch_buf: list[tuple[int, int, str, float]] = []
        self._next_seq = 0
        self._started = False
        self._drained = False
        if pool is not None:
            self.pool = pool
        elif self.config.workers >= 1:
            self.pool = ProcessWorkerPool(self.config.corpus, self.config.workers)
        else:
            self.pool = None  # built lazily in start() (needs a pipeline)

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> None:
        """Spawn (or build) the execution backend."""
        if self._started:
            return
        if self.pool is None:
            from ..experiments.context import build_serving_context

            ctx = build_serving_context(self.config.corpus)
            self.pool = InlineExecutor(ctx.pipeline)
        self.pool.start()
        self._started = True

    def __enter__(self) -> "QAServer":
        self.start()
        return self

    def __exit__(self, *exc: t.Any) -> None:
        if not self._drained:
            self.drain()
        self.stop()

    # -- submission --------------------------------------------------------------
    def submit(
        self,
        text: str,
        qid: int = 0,
        client: str = "default",
        arrival_s: float | None = None,
        deadline_s: float | None = None,
        raise_on_shed: bool = False,
    ) -> AdmissionDecision:
        """Offer one question to admission control.

        ``arrival_s`` is the logical timestamp decisions are made
        against; ``None`` uses the real clock (interactive serving).
        The loadgen passes its *scheduled* arrival times, which is what
        makes the decision sequence deterministic across worker counts.
        """
        if not self._started:
            raise RuntimeError("QAServer.submit before start()")
        submit_wall = time.time()
        if arrival_s is None:
            arrival_s = submit_wall
        seq = self._next_seq
        self._next_seq += 1
        self.ledger.submitted += 1
        self.metrics.inc(SERVING_SUBMITTED)
        decision = self.admission.submit(
            seq, qid, arrival_s, client=client, deadline_s=deadline_s
        )
        if decision.accepted:
            self._pending[seq] = _Pending(qid=qid, submit_wall=submit_wall)
            if self.metrics.enabled:
                self.metrics.gauge(SERVING_QUEUE_DEPTH).set(
                    float(len(self._pending))
                )
            if self._batching:
                self._batch_buf.append((seq, qid, text, submit_wall))
                if len(self._batch_buf) >= self.config.batch_max:
                    self._flush_batch()
            else:
                self.pool.submit(seq, qid, text, submit_wall)
        else:
            reason = decision.shed_reason or ShedReason.QUEUE_FULL
            self.ledger.record(Outcome.SHED, reason)
            self.metrics.inc(SERVING_SHED)
            self.metrics.inc(SERVING_SHED_PREFIX + reason.value)
            self.spans.instant(
                f"shed:{reason.value}", qid, node_id=-1, time=submit_wall
            )
            self.responses.append(
                ServeResponse(
                    seq=seq,
                    qid=qid,
                    outcome=Outcome.SHED,
                    shed_reason=reason,
                )
            )
            if raise_on_shed:
                raise OverloadError(
                    reason,
                    qid,
                    queue_depth=decision.queue_depth,
                    predicted_wait_s=decision.predicted_wait_s,
                )
        return decision

    # -- micro-batching ----------------------------------------------------------
    @property
    def _batching(self) -> bool:
        return self.config.batch_max > 1 and hasattr(self.pool, "submit_batch")

    def _flush_batch(self) -> None:
        """Hand the buffered accepted requests to one worker as a batch."""
        if not self._batch_buf:
            return
        buf, self._batch_buf = self._batch_buf, []
        self.pool.submit_batch(buf)

    def _maybe_flush_batch(self) -> None:
        """Flush on age: the oldest buffered request waited long enough."""
        if self._batch_buf and (
            time.time() - self._batch_buf[0][3] >= self.config.batch_wait_s
        ):
            self._flush_batch()

    # -- completion --------------------------------------------------------------
    def _complete(self, res: ExecutionResult) -> None:
        pending = self._pending.pop(res.seq, None)
        if pending is None:  # late duplicate; ignore rather than double-count
            return
        end_wall = time.time()
        latency = max(0.0, end_wall - pending.submit_wall)
        response = ServeResponse(
            seq=res.seq,
            qid=res.qid,
            outcome=Outcome.ANSWERED,
            answers=res.answers,
            latency_s=latency,
            admission_wait_s=res.wait_s,
            service_s=res.service_s,
            worker_pid=res.worker_pid,
        )
        self.responses.append(response)
        self.ledger.record(Outcome.ANSWERED)
        self.metrics.inc(SERVING_ANSWERED)
        self.metrics.observe(SERVING_LATENCY_S, latency)
        self.metrics.observe(SERVING_ADMISSION_WAIT_S, res.wait_s)
        self.metrics.observe(SERVING_SERVICE_S, res.service_s)
        if self.metrics.enabled:
            self.metrics.gauge(SERVING_QUEUE_DEPTH).set(
                float(len(self._pending))
            )
        if self.spans.enabled:
            t0 = pending.submit_wall
            root = self.spans.begin(
                "serve", SpanCategory.TASK, res.qid, node_id=res.worker_pid, time=t0
            )
            wait_end = t0 + res.wait_s
            admission = self.spans.begin(
                "admission", SpanCategory.QUEUE, res.qid, node_id=-1, time=t0,
                parent=root,
            )
            self.spans.end(admission, wait_end)
            service = self.spans.begin(
                "service", SpanCategory.COMPUTE, res.qid,
                node_id=res.worker_pid, time=wait_end, parent=root,
            )
            if res.batch is not None:
                # Batched execution: surface the amortized PR phase as a
                # stage:PR-batch child so the attribution fold sees the
                # sharing (critical-path compute == pr, so the categories
                # still sum exactly to the question wall).
                batch_size, n_distinct, sharing, amortized = res.batch
                pr_s = min(max(0.0, res.pr_s), res.service_s)
                stage = self.spans.begin(
                    "stage:PR-batch", SpanCategory.PARTITION, res.qid,
                    node_id=res.worker_pid, time=wait_end, parent=service,
                )
                pr_span = self.spans.begin(
                    "pr", SpanCategory.COMPUTE, res.qid,
                    node_id=res.worker_pid, time=wait_end, parent=stage,
                )
                self.spans.end(pr_span, wait_end + pr_s)
                self.spans.end(
                    stage,
                    wait_end + pr_s,
                    batch_size=batch_size,
                    n_distinct=n_distinct,
                    sharing_factor=sharing,
                    amortized_postings_scanned=amortized,
                )
            self.spans.end(service, wait_end + res.service_s)
            self.spans.end(root, max(end_wall, wait_end + res.service_s))

    def poll(self) -> int:
        """Fold any finished questions into the ledger; returns the count."""
        self._maybe_flush_batch()
        results = self.pool.poll()
        for res in results:
            self._complete(res)
        return len(results)

    @property
    def in_flight(self) -> int:
        """Accepted questions not yet completed."""
        return len(self._pending)

    # -- shutdown ----------------------------------------------------------------
    def drain(self, timeout_s: float | None = None) -> ConservationLedger:
        """Graceful shutdown: stop admitting, finish in-flight, account rest."""
        if self._drained:
            return self.ledger
        self.admission.start_draining()
        self._flush_batch()  # nothing accepted may sit in the buffer
        timeout = self.config.drain_timeout_s if timeout_s is None else timeout_s
        if self._started:
            for res in self.pool.drain(timeout):
                self._complete(res)
        for seq in sorted(self._pending):
            pending = self._pending.pop(seq)
            self.ledger.record(Outcome.DRAINED)
            self.metrics.inc(SERVING_DRAINED)
            self.responses.append(
                ServeResponse(
                    seq=seq, qid=pending.qid, outcome=Outcome.DRAINED
                )
            )
        if self.metrics.enabled:
            self.metrics.gauge(SERVING_QUEUE_DEPTH).set(0.0)
        self._drained = True
        return self.ledger

    def stop(self) -> None:
        """Tear the execution backend down (terminates stragglers)."""
        if self._started and self.pool is not None:
            self.pool.stop()
        self._started = False

    # -- reporting ---------------------------------------------------------------
    def attribution_summary(self) -> dict[str, float]:
        """Mean per-question attribution over the answered span trees.

        Runs the existing observability fold
        (:func:`~repro.observability.attribution.attribute_question`)
        over every ``serve`` root: admission wait lands in the
        ``queueing`` bucket, worker execution in ``compute``, IPC and
        collection slack in ``other``.
        """
        totals: dict[str, float] = {}
        n = 0
        for qid in self.spans.question_ids():
            for root in self.spans.roots(qid):
                qa = attribute_question(self.spans, root)
                n += 1
                for cat, sec in qa.categories.items():
                    totals[cat] = totals.get(cat, 0.0) + sec
        if n == 0:
            return {}
        return {f"{cat}_mean_s": sec / n for cat, sec in sorted(totals.items())}
