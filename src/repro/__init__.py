"""repro — reproduction of "Performance Analysis of a Distributed
Question/Answering System" (Surdeanu, Moldovan, Harabagiu — IPPS 2001).

Public API overview
-------------------
* :mod:`repro.qa` — the sequential Falcon-like Q/A pipeline, its cost
  model and question profiles.
* :mod:`repro.core` — the paper's contribution: the distributed Q/A
  architecture (dispatchers, meta-scheduler, SEND/ISEND/RECV
  partitioning, load monitoring) on a simulated cluster.
* :mod:`repro.model` — the Section 5 analytical performance model.
* :mod:`repro.simulation` — the discrete-event simulation substrate.
* :mod:`repro.corpus`, :mod:`repro.retrieval`, :mod:`repro.nlp` — the
  corpus / Boolean IR / NLP substrates the pipeline runs on.
* :mod:`repro.experiments` — drivers regenerating every table and figure.

Quickstart
----------
>>> from repro.corpus import generate_corpus, generate_questions
>>> from repro.retrieval import IndexedCorpus
>>> from repro.nlp import EntityRecognizer
>>> from repro.qa import QAPipeline
>>> corpus = generate_corpus()
>>> pipeline = QAPipeline(
...     IndexedCorpus(corpus),
...     EntityRecognizer(corpus.knowledge.gazetteer(),
...                      extra_nationalities=corpus.knowledge.nationalities),
... )
>>> question = generate_questions(corpus)[0]
>>> result = pipeline.answer(question.text)
>>> # result.answers[0].text is the extracted answer
"""

from .core import (
    DistributedQASystem,
    PartitioningStrategy,
    Strategy,
    SystemConfig,
    TaskPolicy,
)
from .corpus import Corpus, CorpusConfig, generate_corpus, generate_questions
from .model import ModelParameters
from .nlp import EntityRecognizer
from .qa import (
    CostModel,
    QAPipeline,
    QuestionProfile,
    SyntheticProfileGenerator,
    SyntheticProfileParams,
    profile_question,
)
from .retrieval import IndexedCorpus

__version__ = "1.0.0"

__all__ = [
    "Corpus",
    "CorpusConfig",
    "CostModel",
    "DistributedQASystem",
    "EntityRecognizer",
    "IndexedCorpus",
    "ModelParameters",
    "PartitioningStrategy",
    "QAPipeline",
    "QuestionProfile",
    "Strategy",
    "SyntheticProfileGenerator",
    "SyntheticProfileParams",
    "SystemConfig",
    "TaskPolicy",
    "__version__",
    "generate_corpus",
    "generate_questions",
    "profile_question",
]
