"""Canonical metric names shared across the whole codebase.

Before this module, the same quantity went by different names in
different layers — :mod:`repro.retrieval.boolean` reported
``postings_scanned`` while the pipeline's work dict called it
``pr_postings`` and the cost model took a bare ``postings_scanned``
argument.  Every layer now imports its metric names from here, so the
registry, the JSON reports, and the cost model all speak one vocabulary.

Naming convention: ``<subsystem>.<noun>[.<qualifier>]``, dot-separated,
lower case.  Histograms carry a unit suffix (``_s`` seconds, ``_bytes``).
"""

from __future__ import annotations

__all__ = [
    "AP_PARAGRAPH_BYTES",
    "CONJUNCTION_CACHE_HITS",
    "CONJUNCTION_CACHE_MISSES",
    "DISPATCH_DECISIONS",
    "DISPATCH_FORCED_SINGLE",
    "DISPATCH_PARTITION_WIDTH",
    "DNS_ASSIGNMENTS",
    "DOC_BYTES_READ",
    "INDEX_ATTACH_S",
    "INDEX_BUILD_S",
    "INDEX_MEMORY_BYTES",
    "MONITOR_BROADCASTS",
    "MONITOR_BUSY_S",
    "MONITOR_SHARD_PUBLISHES",
    "N_KEYWORDS",
    "NODE_QUEUE_WAIT_S",
    "POSTINGS_SCANNED",
    "PARTITION_CHUNKS",
    "PARTITION_RETRY_ROUNDS",
    "QA_MIGRATIONS",
    "QA_MIGRATION_FAILURES",
    "RELAXATION_ROUNDS",
    "RETRIEVAL_BATCH_DISTINCT",
    "RETRIEVAL_BATCH_POSTINGS_FETCHES",
    "RETRIEVAL_BATCH_POSTINGS_SHARED",
    "RETRIEVAL_BATCH_QUESTIONS",
    "RETRIEVAL_BATCH_SHARING_FACTOR",
    "SELECTOR_DECISIONS",
    "SELECTOR_FALLBACKS",
    "SELECTOR_PRUNED",
    "SELECTOR_PRUNE_RATE",
    "SELECTOR_SELECTED",
    "SELECTOR_SKETCH_BYTES",
    "PS_PARAGRAPH_BYTES",
    "SERVING_ADMISSION_WAIT_S",
    "SERVING_ANSWERED",
    "SERVING_DEADLINE_VIOLATIONS",
    "SERVING_DRAINED",
    "SERVING_LATENCY_S",
    "SERVING_QUEUE_DEPTH",
    "SERVING_SERVICE_S",
    "SERVING_SHED",
    "SERVING_SHED_PREFIX",
    "SERVING_SLO_STATE",
    "SERVING_SLO_TRANSITIONS",
    "SERVING_SUBMITTED",
    "SERVING_TRACES_SAMPLED",
    "SERVING_TRACE_SPANS",
    "STEM_CACHE_HITS",
    "STEM_CACHE_MISSES",
    "TASK_RETRIES",
    "VOCABULARY_SIZE",
]

# -- retrieval / pipeline work counters (the PR-phase cost drivers) ----------
#: Posting-list entries scanned by Boolean conjunctions (was
#: ``postings_scanned`` in the retriever, ``pr_postings`` in the pipeline).
POSTINGS_SCANNED = "retrieval.postings_scanned"
#: Document bytes read for paragraph extraction (was ``doc_bytes_read`` /
#: ``pr_doc_bytes``).
DOC_BYTES_READ = "retrieval.doc_bytes_read"
#: Keyword-relaxation rounds of the Falcon retrieval loop.
RELAXATION_ROUNDS = "retrieval.relaxation_rounds"
#: Conjunction-cache (PR 2) hit/miss counters.
CONJUNCTION_CACHE_HITS = "retrieval.conjunction_cache.hits"
CONJUNCTION_CACHE_MISSES = "retrieval.conjunction_cache.misses"
#: Shared stem-cache (PR 2) hit/miss counters.
STEM_CACHE_HITS = "nlp.stem_cache.hits"
STEM_CACHE_MISSES = "nlp.stem_cache.misses"
#: Packed index data plane (PR 5): resident bytes of the array-backed
#: index structures, build-vs-attach seconds, and interned vocabulary size.
INDEX_MEMORY_BYTES = "retrieval.index.memory_bytes"
INDEX_BUILD_S = "retrieval.index.build_s"
INDEX_ATTACH_S = "retrieval.index.attach_s"
VOCABULARY_SIZE = "nlp.vocabulary.size"
#: Batched cross-question execution (PR 7): questions entering
#: ``QAPipeline.answer_batch``, distinct questions actually executed
#: (duplicates replay their first execution's cache touches), posting
#: lists resolved cold vs served from the batch-shared map, and the
#: per-batch ``questions / distinct`` sharing factor (histogram).
RETRIEVAL_BATCH_QUESTIONS = "retrieval.batch.questions"
RETRIEVAL_BATCH_DISTINCT = "retrieval.batch.distinct_questions"
RETRIEVAL_BATCH_POSTINGS_FETCHES = "retrieval.batch.postings_fetches"
RETRIEVAL_BATCH_POSTINGS_SHARED = "retrieval.batch.postings_shared"
RETRIEVAL_BATCH_SHARING_FACTOR = "retrieval.batch.sharing_factor"
#: Federated collection selection (PR 11): routing decisions taken by a
#: :class:`~repro.retrieval.selection.CollectionSelector`, collections
#: kept vs pruned by those decisions, predictive decisions that fell
#: back to exhaustive search, the per-decision prune-rate distribution
#: (histogram), and the resident bytes of the mediator's sketches (gauge).
SELECTOR_DECISIONS = "retrieval.selector.decisions"
SELECTOR_SELECTED = "retrieval.selector.selected_collections"
SELECTOR_PRUNED = "retrieval.selector.pruned_collections"
SELECTOR_FALLBACKS = "retrieval.selector.fallbacks"
SELECTOR_PRUNE_RATE = "retrieval.selector.prune_rate"
SELECTOR_SKETCH_BYTES = "retrieval.selector.sketch_bytes"
#: Paragraph bytes flowing through PS and AP (pipeline work counters).
PS_PARAGRAPH_BYTES = "qa.ps.paragraph_bytes"
AP_PARAGRAPH_BYTES = "qa.ap.paragraph_bytes"
#: Keywords selected by QP.
N_KEYWORDS = "qa.qp.n_keywords"

# -- distributed-system counters ---------------------------------------------
#: DNS front-end question assignments.
DNS_ASSIGNMENTS = "frontend.assignments"
#: Question-dispatcher decisions / migrations / failed hand-offs.
DISPATCH_DECISIONS = "dispatch.decisions"
QA_MIGRATIONS = "dispatch.qa_migrations"
QA_MIGRATION_FAILURES = "dispatch.qa_migration_failures"
#: Meta-scheduler outcomes (per decision).
DISPATCH_FORCED_SINGLE = "scheduler.forced_single"
DISPATCH_PARTITION_WIDTH = "scheduler.partition_width"
#: Partition distribution-loop activity (chunks executed, recovery rounds).
PARTITION_CHUNKS = "partition.chunks"
PARTITION_RETRY_ROUNDS = "partition.retry_rounds"
#: Front-end re-admissions of questions whose host died (PR 1 retry path).
TASK_RETRIES = "task.frontend_retries"
#: Load-monitor broadcasts and total monitoring busy time (CPU + network).
MONITOR_BROADCASTS = "monitor.broadcasts"
MONITOR_BUSY_S = "monitor.busy_s"
#: Sharded monitoring (PR 9): merged-table broadcasts by shard aggregators.
MONITOR_SHARD_PUBLISHES = "monitor.shard_publishes"
#: Admission-queue wait per question hop (histogram, seconds).
NODE_QUEUE_WAIT_S = "node.queue_wait_s"

# -- serving layer (the real-pipeline server, PR 7) ---------------------------
#: Terminal-outcome counters; conservation requires
#: ``answered + shed + drained == submitted`` exactly.
SERVING_SUBMITTED = "serving.submitted"
SERVING_ANSWERED = "serving.answered"
SERVING_SHED = "serving.shed"
SERVING_DRAINED = "serving.drained"
#: Per-reason shed counters: ``serving.shed.<reason>`` (queue_full,
#: deadline, rate_limited, draining — the ShedReason values).
SERVING_SHED_PREFIX = "serving.shed."
#: Accepted questions not yet completed (gauge).
SERVING_QUEUE_DEPTH = "serving.queue_depth"
#: Measured wait between submit and worker pickup (histogram, seconds)
#: — the serving counterpart of NODE_QUEUE_WAIT_S, and the quantity the
#: attribution pass buckets as ``queueing``.
SERVING_ADMISSION_WAIT_S = "serving.admission_wait_s"
#: End-to-end submit-to-answer latency of accepted questions (histogram).
SERVING_LATENCY_S = "serving.latency_s"
#: Pipeline execution time inside the worker (histogram, seconds).
SERVING_SERVICE_S = "serving.service_s"

# -- cross-process telemetry plane (PR 8) -------------------------------------
#: Questions whose worker-side detail trace was head-sampled.
SERVING_TRACES_SAMPLED = "serving.traces_sampled"
#: Worker-produced spans grafted into the server's stitched trees.
SERVING_TRACE_SPANS = "serving.trace_spans"
#: Answered questions whose measured latency exceeded their sojourn
#: budget (the admission deadline, enforced retrospectively).
SERVING_DEADLINE_VIOLATIONS = "serving.deadline_violations"
#: SLO monitor state transitions (counter) and current state (gauge:
#: 0 = ok, 1 = warn, 2 = breach).
SERVING_SLO_TRANSITIONS = "serving.slo.transitions"
SERVING_SLO_STATE = "serving.slo.state"
