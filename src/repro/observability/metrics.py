"""Metrics registry: counters, gauges, and percentile histograms.

Replaces the ad-hoc counters scattered across the codebase (dispatcher
``decisions``/``migrations`` attributes, retriever ``cache_stats`` dicts,
monitor ``broadcasts``) with one named registry per system, so reports and
exporters can enumerate everything that was measured without knowing which
object owns which attribute.

Design constraints:

* **deterministic** — histograms never sample randomly; when a histogram
  exceeds its bound it decimates (keeps every other sample), which is
  reproducible run-to-run;
* **cheap when absent** — instrumented code takes ``registry: MetricsRegistry
  | None`` and guards with ``if registry is not None``, so the uninstrumented
  hot path pays one attribute test;
* **JSON-friendly** — :meth:`MetricsRegistry.to_dict` renders every metric
  with its type, used verbatim by the JSONL exporter and the observe report;
* **mergeable** — every metric serializes its *full* state
  (:meth:`MetricsRegistry.snapshot`) and folds back into another registry
  (:meth:`MetricsRegistry.merge_snapshot`): counters sum, gauges keep
  labeled per-source values, and decimation histograms merge
  deterministically (the merged retained-sample set is a pure function of
  the two input states).  This is how serving workers ship their per-process
  registries to the server, which exposes one aggregated view.
"""

from __future__ import annotations

import typing as t

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "gauge_label",
    "merge_snapshots",
]


def gauge_label(name: str, label: str) -> str:
    """The registry key a labeled (per-source) gauge merges under."""
    return f"{name}{{{label}}}"


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount

    def to_dict(self) -> dict[str, t.Any]:
        """JSON form: ``{"type": "counter", "value": ...}``."""
        return {"type": "counter", "value": self.value}


class Gauge:
    """A named value that can move both ways (e.g. queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        self.value = float(value)

    def add(self, amount: float) -> None:
        """Shift the gauge by ``amount`` (either sign)."""
        self.value += amount

    def to_dict(self) -> dict[str, t.Any]:
        """JSON form: ``{"type": "gauge", "value": ...}``."""
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Sample distribution with deterministic bounded memory.

    Keeps raw samples up to ``max_samples``; past the bound it decimates
    (drops every other retained sample and doubles its keep-stride), so
    memory stays bounded while count/sum/min/max remain exact and the
    percentiles are computed over an evenly thinned subset — deterministic,
    unlike a random reservoir.
    """

    __slots__ = (
        "name",
        "max_samples",
        "count",
        "total",
        "min",
        "max",
        "_samples",
        "_stride",
        "_skip",
    )

    def __init__(self, name: str, max_samples: int = 65536) -> None:
        if max_samples < 2:
            raise ValueError("max_samples must be >= 2")
        self.name = name
        self.max_samples = max_samples
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: list[float] = []
        self._stride = 1
        self._skip = 0

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self._skip > 0:
            self._skip -= 1
            return
        self._skip = self._stride - 1
        self._samples.append(value)
        if len(self._samples) >= self.max_samples:
            self._samples = self._samples[::2]
            self._stride *= 2

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observed samples (exact)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (``q`` in [0, 1]) of the retained samples."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return ordered[idx]

    def to_dict(self) -> dict[str, t.Any]:
        """JSON form with count/sum/min/max/mean and p50/p95/p99."""
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    def state_dict(self) -> dict[str, t.Any]:
        """Full serializable state — enough to merge, unlike :meth:`to_dict`.

        ``min``/``max`` serialize as None when empty (``inf`` is not valid
        strict JSON).
        """
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "samples": list(self._samples),
            "stride": self._stride,
            "max_samples": self.max_samples,
        }

    def merge_state(self, state: dict[str, t.Any]) -> None:
        """Fold another histogram's :meth:`state_dict` into this one.

        Exact aggregates (count/sum/min/max) add exactly.  Retained samples
        merge at the coarser of the two strides: the finer-stride side is
        thinned by ``target_stride // stride`` (same rule decimation itself
        uses), then the lists concatenate — in (self, other) order — and
        decimate until under bound.  Deterministic: the merged sample set is
        a pure function of the two input states.
        """
        if state.get("type") != "histogram":
            raise ValueError(f"cannot merge {state.get('type')!r} into histogram")
        other_count = int(state["count"])
        self.count += other_count
        self.total += float(state["sum"])
        if other_count:
            if state["min"] is not None and state["min"] < self.min:
                self.min = float(state["min"])
            if state["max"] is not None and state["max"] > self.max:
                self.max = float(state["max"])
        other_samples = [float(v) for v in state["samples"]]
        other_stride = int(state.get("stride", 1))
        target = max(self._stride, other_stride)
        mine = self._samples[:: target // self._stride]
        theirs = other_samples[:: target // other_stride]
        merged = mine + theirs
        while len(merged) >= self.max_samples:
            merged = merged[::2]
            target *= 2
        self._samples = merged
        self._stride = target
        # Conservative: restart stride-skipping at the new stride so the
        # next observe() lands on a retained slot.
        self._skip = 0


_Metric = t.Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named metrics for one system (or one pipeline stack).

    ``counter``/``gauge``/``histogram`` get-or-create; requesting an
    existing name with a different type is an error — one name, one
    meaning.  Use the canonical names from
    :mod:`repro.observability.names`.

    When ``enabled`` is False the shorthand write paths (:meth:`inc`,
    :meth:`observe`) are single-branch no-ops — no registry lookup, no
    float conversion, no histogram bookkeeping — so uninstrumented
    simulation runs pay nothing for the metrics layer.  The read side
    and explicit ``counter()``/``gauge()`` handles keep working (they
    just see empty/zero metrics).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: dict[str, _Metric] = {}

    def _get(self, name: str, cls: type) -> t.Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, requested {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get(name, Gauge)

    def histogram(self, name: str, max_samples: int = 65536) -> Histogram:
        """Get or create the histogram ``name``."""
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, max_samples=max_samples)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, requested Histogram"
            )
        return metric

    # -- shorthand write paths -------------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount`` (no-op when disabled)."""
        if self.enabled:
            self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name`` (no-op when disabled)."""
        if self.enabled:
            self.histogram(name).observe(value)

    # -- read side --------------------------------------------------------------
    def get(self, name: str) -> _Metric | None:
        """The metric registered under ``name``, or None."""
        return self._metrics.get(name)

    def value(self, name: str, default: float = 0.0) -> float:
        """Scalar value of a counter/gauge (histograms: their sum)."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            return metric.total
        return metric.value

    def names(self) -> list[str]:
        """All registered metric names, sorted."""
        return sorted(self._metrics)

    def to_dict(self) -> dict[str, dict[str, t.Any]]:
        """All metrics rendered to JSON-friendly dicts, keyed by name."""
        return {name: self._metrics[name].to_dict() for name in self.names()}

    # -- snapshot / merge --------------------------------------------------------
    def snapshot(self) -> dict[str, dict[str, t.Any]]:
        """Full mergeable state of every metric, keyed by name.

        Counters/gauges serialize via :meth:`to_dict` (their value *is*
        their state); histograms via :meth:`Histogram.state_dict` so the
        retained-sample set travels too.  The result is picklable and
        strict-JSON-serializable — it is what workers ship to the server.
        """
        out: dict[str, dict[str, t.Any]] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = metric.state_dict()
            else:
                out[name] = metric.to_dict()
        return out

    def merge_snapshot(
        self,
        snap: dict[str, dict[str, t.Any]],
        label: str | None = None,
    ) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        Counters sum.  Histograms merge deterministically
        (:meth:`Histogram.merge_state`).  Gauges are point-in-time values
        that cannot meaningfully sum across sources, so with ``label`` set
        (e.g. ``"worker=3"``) each gauge lands under its labeled name via
        :func:`gauge_label`, keeping per-source values distinguishable;
        without a label a gauge overwrites (last write wins).
        """
        for name in sorted(snap):
            state = snap[name]
            kind = state.get("type")
            if kind == "counter":
                self.counter(name).inc(float(state["value"]))
            elif kind == "gauge":
                key = gauge_label(name, label) if label else name
                self.gauge(key).set(float(state["value"]))
            elif kind == "histogram":
                self.histogram(
                    name, max_samples=int(state.get("max_samples", 65536))
                ).merge_state(state)
            else:
                raise ValueError(f"metric {name!r}: unknown type {kind!r}")

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics


def merge_snapshots(
    snapshots: t.Mapping[str, dict[str, dict[str, t.Any]]],
    base: MetricsRegistry | None = None,
) -> MetricsRegistry:
    """Aggregate labeled snapshots into one registry.

    ``snapshots`` maps a source label (e.g. ``"worker=3"``) to that source's
    :meth:`MetricsRegistry.snapshot`.  Sources merge in sorted-label order so
    the aggregate is deterministic regardless of arrival order.
    """
    agg = base if base is not None else MetricsRegistry()
    for label in sorted(snapshots):
        agg.merge_snapshot(snapshots[label], label=label)
    return agg
