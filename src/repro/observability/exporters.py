"""Span/metric exporters: JSONL event log and Chrome ``trace_event``.

Two output formats, both consumed by the ``repro observe`` CLI and the CI
observe-smoke job:

* **JSONL** — one JSON object per line; span lines carry
  ``{"record": "span", ...}``, the final line carries the metrics registry
  (``{"record": "metrics", ...}``).  Greppable, diffable, streams.
* **Chrome trace_event** — the ``{"traceEvents": [...]}`` JSON the
  ``chrome://tracing`` / `Perfetto <https://ui.perfetto.dev>`_ viewers
  open directly.  Durational spans become complete (``"ph": "X"``) events,
  Fig 7 instants become instant (``"ph": "i"``) events; nodes map to
  ``pid`` rows and questions to ``tid`` tracks, so the viewer shows one
  swim-lane per node with its questions stacked — the paper's Fig 7 as an
  interactive timeline.

``validate_jsonl_line`` / ``validate_chrome_trace`` are the schema checks
the smoke job runs against the emitted files; they raise ``ValueError``
with a precise message on the first violation.
"""

from __future__ import annotations

import json
import math
import pathlib
import typing as t

from .metrics import MetricsRegistry
from .spans import Span, SpanStream

__all__ = [
    "span_to_json",
    "write_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "validate_jsonl_line",
    "validate_chrome_trace",
]

_MICRO = 1e6  # trace_event timestamps are microseconds


def span_to_json(span: Span) -> dict[str, t.Any]:
    """One span as a flat JSON-friendly dict (the JSONL span record)."""
    out: dict[str, t.Any] = {
        "record": "span",
        "sid": span.sid,
        "parent": span.parent_id,
        "name": span.name,
        "cat": span.cat,
        "qid": span.qid,
        "node": span.node_id,
        "t0": span.t0,
        "t1": span.t1,
    }
    if span.detail:
        out["detail"] = span.detail
    if span.attrs:
        out["attrs"] = span.attrs
    return out


def write_jsonl(
    stream: SpanStream,
    path: str | pathlib.Path,
    metrics: MetricsRegistry | None = None,
    header: dict[str, t.Any] | None = None,
) -> pathlib.Path:
    """Write the span stream (and optional metrics/header) as JSONL."""
    out = pathlib.Path(path)
    with out.open("w") as fh:
        if header is not None:
            fh.write(
                json.dumps({"record": "header", **header}, allow_nan=False)
                + "\n"
            )
        for span in stream.spans:
            fh.write(json.dumps(span_to_json(span), allow_nan=False) + "\n")
        if metrics is not None:
            fh.write(
                json.dumps(
                    {"record": "metrics", "metrics": metrics.to_dict()},
                    allow_nan=False,
                )
                + "\n"
            )
    return out


def chrome_trace(
    stream: SpanStream,
    label: str = "repro observe",
    stable_pids: bool = False,
    process_names: dict[int, str] | None = None,
) -> dict[str, t.Any]:
    """Render the span stream in Chrome ``trace_event`` JSON format.

    By default ``pid`` is the raw ``node_id`` (simulator traces, where
    node ids are small and dense).  With ``stable_pids=True`` node ids
    are remapped to contiguous pids in sorted order — for multi-process
    serving traces, where node ids are OS worker pids: the server's
    ``node_id=-1`` becomes pid 0 (lane "server") and each worker gets
    its own stable lane ("worker-<ospid>"), instead of every process
    interleaving on huge raw-pid rows.  ``process_names`` overrides the
    lane label per node id in either mode.
    """
    events: list[dict[str, t.Any]] = []
    node_ids = sorted({s.node_id for s in stream.spans})
    if stable_pids:
        pid_map = {nid: i for i, nid in enumerate(node_ids)}

        def default_name(nid: int) -> str:
            return "server" if nid < 0 else f"worker-{nid}"

    else:
        pid_map = {nid: nid for nid in node_ids}

        def default_name(nid: int) -> str:
            return f"N{nid}"

    for nid in node_ids:
        name = (process_names or {}).get(nid, default_name(nid))
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid_map[nid],
                "tid": 0,
                "args": {"name": name},
            }
        )
        if stable_pids:
            events.append(
                {
                    "ph": "M",
                    "name": "process_sort_index",
                    "pid": pid_map[nid],
                    "tid": 0,
                    "args": {"sort_index": pid_map[nid]},
                }
            )
    for span in stream.spans:
        args: dict[str, t.Any] = {"qid": span.qid, "sid": span.sid}
        if span.parent_id >= 0:
            args["parent"] = span.parent_id
        if span.detail:
            args["detail"] = span.detail
        args.update(span.attrs)
        common = {
            "name": span.name,
            "cat": span.cat,
            "pid": pid_map[span.node_id],
            "tid": span.qid,
            "ts": span.t0 * _MICRO,
            "args": args,
        }
        if span.is_instant:
            events.append({**common, "ph": "i", "s": "t"})
        else:
            events.append(
                {**common, "ph": "X", "dur": max(0.0, span.duration) * _MICRO}
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"tool": label, "dropped_spans": stream.dropped},
    }


def write_chrome_trace(
    stream: SpanStream,
    path: str | pathlib.Path,
    label: str = "repro observe",
    stable_pids: bool = False,
    process_names: dict[int, str] | None = None,
) -> pathlib.Path:
    """Write :func:`chrome_trace` output to ``path``."""
    out = pathlib.Path(path)
    trace = chrome_trace(
        stream, label=label, stable_pids=stable_pids, process_names=process_names
    )
    out.write_text(json.dumps(trace, allow_nan=False) + "\n")
    return out


# -- schema validation (used by tests and the CI observe-smoke job) -----------

_JSONL_RECORDS = {"header", "span", "metrics"}
_SPAN_REQUIRED = {
    "sid": int,
    "parent": int,
    "name": str,
    "cat": str,
    "qid": int,
    "node": int,
    "t0": (int, float),
    "t1": (int, float),
}


def validate_jsonl_line(obj: dict[str, t.Any]) -> None:
    """Validate one parsed JSONL record; raises ValueError on violation."""
    record = obj.get("record")
    if record not in _JSONL_RECORDS:
        raise ValueError(f"unknown record type {record!r}")
    if record == "span":
        for key, types in _SPAN_REQUIRED.items():
            if key not in obj:
                raise ValueError(f"span record missing {key!r}: {obj}")
            if not isinstance(obj[key], types):  # type: ignore[arg-type]
                raise ValueError(
                    f"span field {key!r} has wrong type: {obj[key]!r}"
                )
        if not (math.isfinite(obj["t0"]) and math.isfinite(obj["t1"])):
            raise ValueError(f"span has non-finite timestamps: {obj}")
        if obj["t1"] < obj["t0"]:
            raise ValueError(f"span ends before it starts: {obj}")
    elif record == "metrics":
        metrics = obj.get("metrics")
        if not isinstance(metrics, dict):
            raise ValueError("metrics record missing 'metrics' mapping")
        for name, body in metrics.items():
            if body.get("type") not in {"counter", "gauge", "histogram"}:
                raise ValueError(f"metric {name!r} has bad type: {body!r}")
            for key, value in body.items():
                if isinstance(value, float) and not math.isfinite(value):
                    raise ValueError(
                        f"metric {name!r} field {key!r} is non-finite "
                        f"(zero-sample histograms must serialize 0/None)"
                    )


_PHASES_WITH_DUR = {"X"}
_VALID_PHASES = {"X", "i", "M", "B", "E"}


def validate_chrome_trace(trace: dict[str, t.Any]) -> int:
    """Validate a ``trace_event`` document; returns the event count.

    Checks the invariants the viewers rely on: a ``traceEvents`` list,
    every event carrying ``ph``/``pid``/``tid``, ``ts`` on all non-metadata
    phases, and non-negative ``dur`` on complete events.
    """
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {i} is not an object")
        ph = event.get("ph")
        if ph not in _VALID_PHASES:
            raise ValueError(f"event {i} has unknown phase {ph!r}")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ValueError(f"event {i} missing integer {key!r}")
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or not math.isfinite(ts):
                raise ValueError(f"event {i} missing finite numeric ts")
            if not isinstance(event.get("name"), str) or not event["name"]:
                raise ValueError(f"event {i} missing name")
        if ph in _PHASES_WITH_DUR:
            dur = event.get("dur")
            if (
                not isinstance(dur, (int, float))
                or not math.isfinite(dur)
                or dur < 0
            ):
                raise ValueError(f"event {i} has invalid dur {dur!r}")
    return len(events)
