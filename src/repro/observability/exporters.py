"""Span/metric exporters: JSONL event log and Chrome ``trace_event``.

Two output formats, both consumed by the ``repro observe`` CLI and the CI
observe-smoke job:

* **JSONL** — one JSON object per line; span lines carry
  ``{"record": "span", ...}``, the final line carries the metrics registry
  (``{"record": "metrics", ...}``).  Greppable, diffable, streams.
* **Chrome trace_event** — the ``{"traceEvents": [...]}`` JSON the
  ``chrome://tracing`` / `Perfetto <https://ui.perfetto.dev>`_ viewers
  open directly.  Durational spans become complete (``"ph": "X"``) events,
  Fig 7 instants become instant (``"ph": "i"``) events; nodes map to
  ``pid`` rows and questions to ``tid`` tracks, so the viewer shows one
  swim-lane per node with its questions stacked — the paper's Fig 7 as an
  interactive timeline.

``validate_jsonl_line`` / ``validate_chrome_trace`` are the schema checks
the smoke job runs against the emitted files; they raise ``ValueError``
with a precise message on the first violation.
"""

from __future__ import annotations

import json
import pathlib
import typing as t

from .metrics import MetricsRegistry
from .spans import Span, SpanStream

__all__ = [
    "span_to_json",
    "write_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "validate_jsonl_line",
    "validate_chrome_trace",
]

_MICRO = 1e6  # trace_event timestamps are microseconds


def span_to_json(span: Span) -> dict[str, t.Any]:
    """One span as a flat JSON-friendly dict (the JSONL span record)."""
    out: dict[str, t.Any] = {
        "record": "span",
        "sid": span.sid,
        "parent": span.parent_id,
        "name": span.name,
        "cat": span.cat,
        "qid": span.qid,
        "node": span.node_id,
        "t0": span.t0,
        "t1": span.t1,
    }
    if span.detail:
        out["detail"] = span.detail
    if span.attrs:
        out["attrs"] = span.attrs
    return out


def write_jsonl(
    stream: SpanStream,
    path: str | pathlib.Path,
    metrics: MetricsRegistry | None = None,
    header: dict[str, t.Any] | None = None,
) -> pathlib.Path:
    """Write the span stream (and optional metrics/header) as JSONL."""
    out = pathlib.Path(path)
    with out.open("w") as fh:
        if header is not None:
            fh.write(json.dumps({"record": "header", **header}) + "\n")
        for span in stream.spans:
            fh.write(json.dumps(span_to_json(span)) + "\n")
        if metrics is not None:
            fh.write(
                json.dumps({"record": "metrics", "metrics": metrics.to_dict()})
                + "\n"
            )
    return out


def chrome_trace(
    stream: SpanStream, label: str = "repro observe"
) -> dict[str, t.Any]:
    """Render the span stream in Chrome ``trace_event`` JSON format."""
    events: list[dict[str, t.Any]] = []
    node_ids = sorted({s.node_id for s in stream.spans})
    for nid in node_ids:
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": nid,
                "tid": 0,
                "args": {"name": f"N{nid}"},
            }
        )
    for span in stream.spans:
        args: dict[str, t.Any] = {"qid": span.qid, "sid": span.sid}
        if span.parent_id >= 0:
            args["parent"] = span.parent_id
        if span.detail:
            args["detail"] = span.detail
        args.update(span.attrs)
        common = {
            "name": span.name,
            "cat": span.cat,
            "pid": span.node_id,
            "tid": span.qid,
            "ts": span.t0 * _MICRO,
            "args": args,
        }
        if span.is_instant:
            events.append({**common, "ph": "i", "s": "t"})
        else:
            events.append(
                {**common, "ph": "X", "dur": max(0.0, span.duration) * _MICRO}
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"tool": label, "dropped_spans": stream.dropped},
    }


def write_chrome_trace(
    stream: SpanStream,
    path: str | pathlib.Path,
    label: str = "repro observe",
) -> pathlib.Path:
    """Write :func:`chrome_trace` output to ``path``."""
    out = pathlib.Path(path)
    out.write_text(json.dumps(chrome_trace(stream, label=label)) + "\n")
    return out


# -- schema validation (used by tests and the CI observe-smoke job) -----------

_JSONL_RECORDS = {"header", "span", "metrics"}
_SPAN_REQUIRED = {
    "sid": int,
    "parent": int,
    "name": str,
    "cat": str,
    "qid": int,
    "node": int,
    "t0": (int, float),
    "t1": (int, float),
}


def validate_jsonl_line(obj: dict[str, t.Any]) -> None:
    """Validate one parsed JSONL record; raises ValueError on violation."""
    record = obj.get("record")
    if record not in _JSONL_RECORDS:
        raise ValueError(f"unknown record type {record!r}")
    if record == "span":
        for key, types in _SPAN_REQUIRED.items():
            if key not in obj:
                raise ValueError(f"span record missing {key!r}: {obj}")
            if not isinstance(obj[key], types):  # type: ignore[arg-type]
                raise ValueError(
                    f"span field {key!r} has wrong type: {obj[key]!r}"
                )
        if obj["t1"] < obj["t0"]:
            raise ValueError(f"span ends before it starts: {obj}")
    elif record == "metrics":
        metrics = obj.get("metrics")
        if not isinstance(metrics, dict):
            raise ValueError("metrics record missing 'metrics' mapping")
        for name, body in metrics.items():
            if body.get("type") not in {"counter", "gauge", "histogram"}:
                raise ValueError(f"metric {name!r} has bad type: {body!r}")


_PHASES_WITH_DUR = {"X"}
_VALID_PHASES = {"X", "i", "M", "B", "E"}


def validate_chrome_trace(trace: dict[str, t.Any]) -> int:
    """Validate a ``trace_event`` document; returns the event count.

    Checks the invariants the viewers rely on: a ``traceEvents`` list,
    every event carrying ``ph``/``pid``/``tid``, ``ts`` on all non-metadata
    phases, and non-negative ``dur`` on complete events.
    """
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {i} is not an object")
        ph = event.get("ph")
        if ph not in _VALID_PHASES:
            raise ValueError(f"event {i} has unknown phase {ph!r}")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ValueError(f"event {i} missing integer {key!r}")
        if ph != "M":
            if not isinstance(event.get("ts"), (int, float)):
                raise ValueError(f"event {i} missing numeric ts")
            if not isinstance(event.get("name"), str) or not event["name"]:
                raise ValueError(f"event {i} missing name")
        if ph in _PHASES_WITH_DUR:
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"event {i} has invalid dur {dur!r}")
    return len(events)
