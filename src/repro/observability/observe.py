"""The ``repro observe`` workload runner.

Runs a traced DQA workload on a simulated cluster once per AP
partitioning strategy (SEND / ISEND / RECV, with RECV for PR as the
paper prescribes), then for each run:

* exports the span stream as JSONL and Chrome ``trace_event`` JSON
  (open the latter in chrome://tracing or https://ui.perfetto.dev);
* validates both files against the exporter schemas;
* produces the overhead-attribution report and checks its sum
  invariant (categories total the traced wall time).

The dispatcher scan cost is modelled (``dispatch_scan_cpu_s``) so the
measured dispatch overhead is a real, non-zero quantity comparable with
Eq 15 — the paper-faithful simulation default keeps it at zero.

``run_observe`` returns a JSON-friendly summary (also written to
``attribution.json`` in the output directory) and never prints;
formatting lives in :func:`format_observe` for the CLI.
"""

from __future__ import annotations

import json
import pathlib
import typing as t
from dataclasses import dataclass

from .attribution import AttributionReport, attribute_workload, format_attribution
from .exporters import (
    validate_chrome_trace,
    validate_jsonl_line,
    write_chrome_trace,
    write_jsonl,
)

__all__ = ["ObserveConfig", "run_observe", "format_observe"]

#: Tolerance for the attribution sum invariant (seconds).
SUM_TOLERANCE_S = 1e-6


@dataclass(frozen=True, slots=True)
class ObserveConfig:
    """Knobs for one ``repro observe`` invocation."""

    n_nodes: int = 16
    #: Questions per node per strategy run (the paper's overload protocol
    #: uses 8; 2 keeps the smoke run quick while still queueing).
    questions_per_node: int = 2
    #: AP partitioning strategies to run (PR always uses RECV).
    strategies: tuple[str, ...] = ("SEND", "ISEND", "RECV")
    max_stagger_s: float = 2.0
    seed: int = 11
    #: Eq 15 scan cost per load-table entry; 0 restores the
    #: paper-faithful instantaneous dispatch.
    dispatch_scan_cpu_s: float = 1e-5
    output_dir: str = "observe_out"
    #: Span-store bound per run (None = unbounded).
    trace_max_events: int | None = 500_000


def _run_one(
    config: ObserveConfig, ap_strategy: str, out: pathlib.Path
) -> dict[str, t.Any]:
    """Run one traced workload; export, validate, attribute."""
    from ..core import (
        DistributedQASystem,
        PartitioningStrategy,
        Strategy,
        SystemConfig,
        TaskPolicy,
    )
    from ..workload import (
        staggered_arrivals,
        summarize_latencies,
        trec_mix_profiles,
    )

    n_questions = config.questions_per_node * config.n_nodes
    policy = TaskPolicy(
        pr_strategy=PartitioningStrategy.RECV,
        ap_strategy=PartitioningStrategy[ap_strategy],
        dispatch_scan_cpu_s=config.dispatch_scan_cpu_s,
    )
    sys_config = SystemConfig(
        n_nodes=config.n_nodes,
        strategy=Strategy.DQA,
        policy=policy,
        trace=True,
        trace_max_events=config.trace_max_events,
        seed=config.seed,
    )
    system = DistributedQASystem(sys_config)
    profiles = trec_mix_profiles(n_questions, seed=config.seed)
    arrivals = staggered_arrivals(
        n_questions, config.max_stagger_s, seed=config.seed
    )
    report = system.run_workload(profiles, arrivals)

    jsonl_path = write_jsonl(
        system.spans,
        out / f"spans_{ap_strategy}.jsonl",
        metrics=system.metrics,
        header={
            "n_nodes": config.n_nodes,
            "n_questions": n_questions,
            "ap_strategy": ap_strategy,
            "seed": config.seed,
        },
    )
    trace_path = write_chrome_trace(
        system.spans,
        out / f"trace_{ap_strategy}.json",
        label=f"repro observe ({ap_strategy})",
    )

    # Validate what was actually written, not the in-memory objects.
    n_jsonl = 0
    with jsonl_path.open() as fh:
        for line in fh:
            validate_jsonl_line(json.loads(line))
            n_jsonl += 1
    n_trace = validate_chrome_trace(json.loads(trace_path.read_text()))

    attribution = attribute_workload(
        system.spans, system.metrics, report, sys_config
    )
    sum_error = attribution.max_sum_error()
    return {
        "ap_strategy": ap_strategy,
        "n_questions": n_questions,
        "makespan_s": report.makespan_s,
        "throughput_qpm": report.throughput_qpm,
        "latency": summarize_latencies(report).to_dict(),
        "migrations": {
            "qa": report.migrations_qa,
            "pr": report.migrations_pr,
            "ap": report.migrations_ap,
        },
        "files": {
            "jsonl": str(jsonl_path),
            "chrome_trace": str(trace_path),
        },
        "checks": {
            "jsonl_records": n_jsonl,
            "trace_events": n_trace,
            "attribution_sum_error_s": sum_error,
            "ok": sum_error <= SUM_TOLERANCE_S,
        },
        "attribution": attribution.to_dict(),
        "_report": attribution,  # stripped before JSON
    }


def run_observe(config: ObserveConfig | None = None) -> dict[str, t.Any]:
    """Run the observe workload for every configured strategy.

    Writes per-strategy JSONL + Chrome-trace files plus a combined
    ``attribution.json`` into ``config.output_dir`` and returns the
    summary dict (strategy label -> per-run summary, plus ``ok``).
    """
    config = config or ObserveConfig()
    out = pathlib.Path(config.output_dir)
    out.mkdir(parents=True, exist_ok=True)
    runs = {
        strategy: _run_one(config, strategy, out)
        for strategy in config.strategies
    }
    summary: dict[str, t.Any] = {
        "schema": "observe/v1",
        "n_nodes": config.n_nodes,
        "seed": config.seed,
        "dispatch_scan_cpu_s": config.dispatch_scan_cpu_s,
        "runs": {
            label: {k: v for k, v in run.items() if not k.startswith("_")}
            for label, run in runs.items()
        },
        "ok": all(run["checks"]["ok"] for run in runs.values()),
    }
    (out / "attribution.json").write_text(
        json.dumps(summary, indent=2) + "\n"
    )
    # Re-attach the live reports for the formatter (not serialized).
    summary["_reports"] = {
        label: t.cast(AttributionReport, run["_report"])
        for label, run in runs.items()
    }
    return summary


def format_observe(summary: dict[str, t.Any]) -> str:
    """Human-readable rendering of a :func:`run_observe` summary."""
    lines = [
        f"repro observe: {summary['n_nodes']} nodes, seed {summary['seed']}"
        f" (RECV for PR; AP strategy varies)",
    ]
    reports: dict[str, AttributionReport] = summary.get("_reports", {})
    for label, run in summary["runs"].items():
        checks = run["checks"]
        lines.append("")
        lines.append(
            f"=== AP strategy {label}: {run['n_questions']} questions, "
            f"makespan {run['makespan_s']:.1f} s, "
            f"{run['throughput_qpm']:.2f} q/min ==="
        )
        report = reports.get(label)
        if report is not None:
            lines.append(format_attribution(report))
        lines.append(
            f"wrote {run['files']['chrome_trace']} "
            f"({checks['trace_events']} events) and "
            f"{run['files']['jsonl']} ({checks['jsonl_records']} records); "
            f"attribution sum error {checks['attribution_sum_error_s']:.2e} s"
            f" [{'ok' if checks['ok'] else 'FAILED'}]"
        )
    lines.append("")
    lines.append(
        "open the trace files in chrome://tracing or https://ui.perfetto.dev"
    )
    return "\n".join(lines)
