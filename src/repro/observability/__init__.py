"""Unified observability layer: spans, metrics, exporters, attribution.

Four pieces, deliberately free of runtime dependencies on the
simulation core (so ``repro.core`` modules can import this package
without cycles):

* :mod:`~repro.observability.spans` — hierarchical span streams.  Every
  question produces a span tree (QP/PR/PS/PO/AP stages, dispatcher
  decisions, migrations, partition chunks and transfers, retries) and
  zero-duration instants double as the legacy flat trace events.
* :mod:`~repro.observability.metrics` — counters, gauges and bounded
  histograms (p50/p95/p99) behind a :class:`MetricsRegistry`, with the
  canonical metric names in :mod:`~repro.observability.names`.
* :mod:`~repro.observability.exporters` — JSONL event logs and Chrome
  ``trace_event`` JSON (chrome://tracing / Perfetto), plus the schema
  validators the CI smoke job uses.
* :mod:`~repro.observability.attribution` — folds each span tree into
  the paper's analytical overhead categories (compute, queueing,
  dispatch, migration, partition comms, monitoring) and cross-checks
  the totals against the Section 5 model (Eq 14-20).

``python -m repro observe`` (see :mod:`~repro.observability.observe`)
ties it together on a 16-node SEND/ISEND/RECV workload.
"""

from .attribution import (
    ATTRIBUTION_CATEGORIES,
    AttributionReport,
    QuestionAttribution,
    attribute_question,
    attribute_workload,
    format_attribution,
)
from .exporters import (
    chrome_trace,
    span_to_json,
    validate_chrome_trace,
    validate_jsonl_line,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    gauge_label,
    merge_snapshots,
)
from .observe import ObserveConfig, format_observe, run_observe
from .spans import Span, SpanCategory, SpanStream
from .telemetry import (
    TELEMETRY_SCHEMA,
    HeadSampler,
    TelemetryWriter,
    TraceContext,
    graft_spans,
    pack_spans,
    read_telemetry,
    validate_telemetry_file,
    validate_telemetry_line,
    worker_span_records,
)

__all__ = [
    "ATTRIBUTION_CATEGORIES",
    "AttributionReport",
    "Counter",
    "Gauge",
    "HeadSampler",
    "Histogram",
    "MetricsRegistry",
    "ObserveConfig",
    "QuestionAttribution",
    "Span",
    "SpanCategory",
    "SpanStream",
    "TELEMETRY_SCHEMA",
    "TelemetryWriter",
    "TraceContext",
    "attribute_question",
    "attribute_workload",
    "chrome_trace",
    "format_attribution",
    "format_observe",
    "gauge_label",
    "graft_spans",
    "merge_snapshots",
    "pack_spans",
    "read_telemetry",
    "run_observe",
    "span_to_json",
    "validate_chrome_trace",
    "validate_jsonl_line",
    "validate_telemetry_file",
    "validate_telemetry_line",
    "worker_span_records",
    "write_chrome_trace",
    "write_jsonl",
]
