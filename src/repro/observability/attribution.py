"""Overhead attribution: roll span time up into the Eq 9-23 categories.

The analytical inter-question model (Section 5.1) decomposes a question's
distribution overhead into monitoring (Eq 14), dispatch (Eq 15) and
migration/data-movement (Eq 16-20) terms on top of the useful compute
time.  This module produces the *measured* counterpart from a
:class:`~repro.observability.spans.SpanStream`: each question's span tree
is folded into the categories

    compute, queueing, dispatch, migration, partition_comms,
    monitoring, other

such that the categories sum exactly to the question's wall time (the
root span's duration) — ``other`` is defined as the residual, so the sum
invariant holds by construction and the CI smoke job can assert it.

Within a question the fold walks the tree and buckets every span's *self
time* (duration minus direct durational children) by its category.
Parallel partition stages (span names ``stage:PR`` / ``stage:AP``) get
special treatment because their children overlap in time: compute is the
critical path (the per-node maximum of compute-span time, Table 8's
semantics), then dispatch/comms/retry descendants are clipped into the
remaining stage wall, and whatever is left is ``other`` (resource
queueing inside nodes).

Monitoring is not a per-question activity, so it is attributed at the
aggregate level: the monitors' total busy seconds amortized over
``n_nodes x makespan`` give a busy *fraction*, whose share of the total
question wall is carved out of ``other`` (monitoring overhead manifests
as slowdown of everything else).  The same report compares the measured
monitoring/dispatch/migration overheads side by side with the Eq 14/15/20
predictions, using the run's own measured migration probabilities.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field, replace

from ..model.inter_question import (
    dispatch_overhead,
    migration_overhead,
    monitoring_overhead,
)
from ..model.parameters import ModelParameters
from .metrics import MetricsRegistry
from .names import MONITOR_BUSY_S
from .spans import Span, SpanCategory, SpanStream

if t.TYPE_CHECKING:  # pragma: no cover
    from ..core.system import SystemConfig, WorkloadReport

__all__ = [
    "ATTRIBUTION_CATEGORIES",
    "QuestionAttribution",
    "AttributionReport",
    "attribute_question",
    "attribute_workload",
    "format_attribution",
]

#: The attribution vocabulary, in report order.
ATTRIBUTION_CATEGORIES = (
    "compute",
    "queueing",
    "dispatch",
    "migration",
    "partition_comms",
    "monitoring",
    "other",
)

#: Span category -> attribution bucket for sequential (non-stage) spans.
_BUCKET = {
    SpanCategory.QUEUE: "queueing",
    SpanCategory.DISPATCH: "dispatch",
    SpanCategory.MIGRATION: "migration",
    SpanCategory.COMPUTE: "compute",
    SpanCategory.COMMS: "partition_comms",
    SpanCategory.PARTITION: "partition_comms",
    SpanCategory.RETRY: "partition_comms",
    SpanCategory.MONITOR: "monitoring",
    SpanCategory.TASK: "other",
}


@dataclass(frozen=True, slots=True)
class QuestionAttribution:
    """One question's wall time split over the attribution categories."""

    qid: int
    wall_s: float
    categories: dict[str, float]

    @property
    def total_attributed_s(self) -> float:
        """Sum over categories; equals ``wall_s`` by construction."""
        return sum(self.categories.values())


def _is_stage(span: Span) -> bool:
    return span.name.startswith("stage:")


def _attribute_stage(
    stream: SpanStream, stage: Span, cats: dict[str, float]
) -> None:
    """Fold a parallel partition stage into the categories.

    Children of a stage overlap in time, so self-time bucketing would
    over-count.  Instead: compute = critical path (max per-node sum of
    compute spans), then dispatch, comms and retry descendants are
    clipped into the remaining stage wall in that order; the remainder is
    ``other``.  The clipping guarantees the stage contributes exactly its
    own duration.
    """
    wall = max(0.0, stage.duration)
    per_node: dict[int, float] = {}
    dispatch_t = comms_t = retry_t = 0.0
    for span in stream.subtree(stage):
        if span is stage or span.is_instant:
            continue
        dur = max(0.0, span.duration)
        if span.cat == SpanCategory.COMPUTE:
            per_node[span.node_id] = per_node.get(span.node_id, 0.0) + dur
        elif span.cat == SpanCategory.DISPATCH:
            dispatch_t += dur
        elif span.cat == SpanCategory.COMMS:
            comms_t += dur
        elif span.cat == SpanCategory.RETRY:
            retry_t += dur
    critical = min(wall, max(per_node.values(), default=0.0))
    remaining = wall - critical
    d = min(dispatch_t, remaining)
    remaining -= d
    c = min(comms_t + retry_t, remaining)
    remaining -= c
    cats["compute"] += critical
    cats["dispatch"] += d
    cats["partition_comms"] += c
    cats["other"] += remaining


def attribute_question(
    stream: SpanStream, root: Span
) -> QuestionAttribution:
    """Fold one question's span tree into the attribution categories.

    ``root`` must be a durational root span (``stream.roots(qid)``).  The
    returned categories sum to ``root.duration`` exactly: every span's
    self time is bucketed by its category, gaps between siblings fall to
    the parent's bucket (the root's gaps to ``other``), and parallel
    stages are folded by :func:`_attribute_stage`.
    """
    cats = {c: 0.0 for c in ATTRIBUTION_CATEGORIES}

    def visit(span: Span, bucket: str) -> None:
        if _is_stage(span):
            _attribute_stage(stream, span, cats)
            return
        kids = [k for k in stream.children(span) if not k.is_instant]
        child_time = sum(max(0.0, k.duration) for k in kids)
        cats[bucket] += max(0.0, span.duration - child_time)
        for kid in kids:
            visit(kid, _BUCKET.get(kid.cat, "other"))

    visit(root, "other")
    return QuestionAttribution(
        qid=root.qid, wall_s=max(0.0, root.duration), categories=cats
    )


@dataclass(slots=True)
class AttributionReport:
    """Aggregate attribution over a workload, plus the model comparison."""

    n_questions: int
    n_nodes: int
    makespan_s: float
    #: Sum of per-question wall (root-span) durations.
    total_wall_s: float
    #: Total seconds per category across all questions; sums (within
    #: float tolerance) to ``total_wall_s``.
    categories: dict[str, float]
    #: Per-question attributions, by qid.
    questions: list[QuestionAttribution] = field(default_factory=list)
    #: Overhead term -> {measured_s, predicted_s, rel_err} (per-question
    #: mean seconds; ``rel_err`` is None when the prediction is ~0).
    model_comparison: dict[str, dict[str, float | None]] = field(
        default_factory=dict
    )

    @property
    def mean_wall_s(self) -> float:
        """Mean per-question wall time."""
        return self.total_wall_s / self.n_questions if self.n_questions else 0.0

    def category_means(self) -> dict[str, float]:
        """Mean per-question seconds for each category."""
        n = max(1, self.n_questions)
        return {k: v / n for k, v in self.categories.items()}

    def max_sum_error(self) -> float:
        """Largest |categories sum - wall| over questions (plus aggregate)."""
        errs = [
            abs(q.total_attributed_s - q.wall_s) for q in self.questions
        ]
        errs.append(abs(sum(self.categories.values()) - self.total_wall_s))
        return max(errs) if errs else 0.0

    def to_dict(self) -> dict[str, t.Any]:
        """JSON-friendly rendering (used by ``repro observe``)."""
        return {
            "n_questions": self.n_questions,
            "n_nodes": self.n_nodes,
            "makespan_s": self.makespan_s,
            "total_wall_s": self.total_wall_s,
            "mean_wall_s": self.mean_wall_s,
            "categories_total_s": dict(self.categories),
            "categories_mean_s": self.category_means(),
            "model_comparison": self.model_comparison,
            "max_sum_error_s": self.max_sum_error(),
        }


def _rel_err(measured: float, predicted: float) -> float | None:
    if abs(predicted) < 1e-12:
        return None
    return (measured - predicted) / predicted


def attribute_workload(
    stream: SpanStream,
    metrics: MetricsRegistry,
    report: "WorkloadReport",
    config: "SystemConfig",
    params: ModelParameters | None = None,
) -> AttributionReport:
    """Attribute a traced workload and compare against Eq 14/15/20.

    The model parameters are re-grounded in the run itself: ``t_question``
    becomes the measured mean wall, ``s_load``/``b_net`` come from the
    system config, the migration probabilities from the run's observed
    migration counts, and the dispatcher scan cost from the policy (when
    the policy models it; otherwise the parameter-table default).  Sizes
    of migrated payloads (``s_question``, ``s_paragraph``, ...) stay at
    the parameter-table values.
    """
    base = params or ModelParameters()
    questions: list[QuestionAttribution] = []
    totals = {c: 0.0 for c in ATTRIBUTION_CATEGORIES}
    for qid in stream.question_ids():
        for root in stream.roots(qid):
            qa = attribute_question(stream, root)
            questions.append(qa)
            for cat, sec in qa.categories.items():
                totals[cat] += sec
    n_questions = len(questions)
    total_wall = sum(q.wall_s for q in questions)
    mean_wall = total_wall / n_questions if n_questions else 0.0

    # Monitoring: amortize the monitors' busy seconds over the cluster's
    # total node-time, then carve that share of the question wall out of
    # ``other`` (clipped so the sum invariant survives).
    makespan = max(report.makespan_s, 1e-12)
    busy_frac = metrics.value(MONITOR_BUSY_S) / (config.n_nodes * makespan)
    monitoring_total = min(busy_frac * total_wall, totals["other"])
    totals["monitoring"] += monitoring_total
    totals["other"] -= monitoring_total

    n = max(1, n_questions)
    measured_monitoring = busy_frac * mean_wall
    measured_dispatch = totals["dispatch"] / n
    measured_migration = (totals["migration"] + totals["partition_comms"]) / n

    denom = max(1, report.n_questions)
    scan_cost = getattr(config.policy, "dispatch_scan_cpu_s", 0.0)
    grounded = replace(
        base,
        t_question=mean_wall if mean_wall > 0 else base.t_question,
        s_load=config.monitor_packet_bytes,
        b_net=config.network_bandwidth_bps,
        p_qa=report.migrations_qa / denom,
        p_pr=report.migrations_pr / denom,
        p_ap=report.migrations_ap / denom,
        t_dispatch_per_node=(
            scan_cost if scan_cost > 0 else base.t_dispatch_per_node
        ),
        q_per_processor=max(1.0, report.n_admitted / config.n_nodes),
    )
    pred_monitoring = monitoring_overhead(grounded, config.n_nodes)
    pred_dispatch = dispatch_overhead(grounded, config.n_nodes)
    pred_migration = migration_overhead(grounded, config.n_nodes)
    comparison: dict[str, dict[str, float | None]] = {
        "monitoring": {
            "measured_s": measured_monitoring,
            "predicted_s": pred_monitoring,
            "rel_err": _rel_err(measured_monitoring, pred_monitoring),
        },
        "dispatch": {
            "measured_s": measured_dispatch,
            "predicted_s": pred_dispatch,
            "rel_err": _rel_err(measured_dispatch, pred_dispatch),
        },
        "migration+comms": {
            "measured_s": measured_migration,
            "predicted_s": pred_migration,
            "rel_err": _rel_err(measured_migration, pred_migration),
        },
        "t_dist_total": {
            "measured_s": (
                measured_monitoring + measured_dispatch + measured_migration
            ),
            "predicted_s": pred_monitoring + pred_dispatch + pred_migration,
            "rel_err": _rel_err(
                measured_monitoring + measured_dispatch + measured_migration,
                pred_monitoring + pred_dispatch + pred_migration,
            ),
        },
    }
    return AttributionReport(
        n_questions=n_questions,
        n_nodes=config.n_nodes,
        makespan_s=report.makespan_s,
        total_wall_s=total_wall,
        categories=totals,
        questions=questions,
        model_comparison=comparison,
    )


def format_attribution(report: AttributionReport) -> str:
    """Render the attribution table plus the Eq 14-21 comparison."""
    lines = [
        f"Overhead attribution over {report.n_questions} questions on "
        f"{report.n_nodes} nodes (makespan {report.makespan_s:.1f} s, "
        f"mean question wall {report.mean_wall_s:.2f} s)",
        f"{'category':<16} | {'mean s/question':>15} | {'share':>7}",
        "-" * 44,
    ]
    means = report.category_means()
    wall = max(report.mean_wall_s, 1e-12)
    for cat in ATTRIBUTION_CATEGORIES:
        lines.append(
            f"{cat:<16} | {means[cat]:>15.4f} | {means[cat] / wall:>6.1%}"
        )
    lines.append("-" * 44)
    lines.append(
        f"{'total':<16} | {sum(means.values()):>15.4f} | "
        f"{sum(means.values()) / wall:>6.1%}"
    )
    lines.append("")
    lines.append("Measured vs analytical model (Eq 14/15/20, per question):")
    lines.append(
        f"{'term':<16} | {'measured s':>11} | {'predicted s':>11} | "
        f"{'rel err':>8}"
    )
    lines.append("-" * 56)
    for term, row in report.model_comparison.items():
        err = row["rel_err"]
        err_txt = "n/a" if err is None else f"{err:+7.1%}"
        lines.append(
            f"{term:<16} | {row['measured_s']:>11.4f} | "
            f"{row['predicted_s']:>11.4f} | {err_txt:>8}"
        )
    return "\n".join(lines)
