"""Hierarchical span tracing for the simulated distributed system.

The Fig 7 tracer (:mod:`repro.core.tracing`) records a *flat* list of
timestamped events; it can show *that* N2 finished chunk 3 but not where a
question's wall-clock went.  A :class:`SpanStream` records *intervals* —
each with a parent — so every question becomes a tree:

    question q17
    ├── queue            (admission wait at N3)
    ├── dispatch:qa      (scheduling point 1)
    ├── QP               (compute, N3)
    ├── stage:PR
    │   ├── send:keywords     N3 -> N5    (comms)
    │   ├── chunk[0]          N5          (partition)
    │   └── recv:paragraphs   N5 -> N3    (comms)
    ├── PO               (compute)
    ├── stage:AP
    │   └── ...
    └── sort:answers

The stream stores flat :class:`Span` records (cheap, append-only) and
reconstructs trees on demand.  Zero-duration *instant* spans double as the
Fig 7 event stream, which is how the legacy ``Tracer`` stays a thin view
over this store.

When disabled, ``begin``/``end``/``instant`` return immediately without
allocating; ``max_spans`` bounds the store so unbounded chaos campaigns
cannot grow it without limit (overflow increments ``dropped``).
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field

__all__ = ["Span", "SpanStream", "SpanCategory"]


class SpanCategory:
    """Canonical span categories (the attribution vocabulary)."""

    TASK = "task"  # per-question root spans
    QUEUE = "queue"  # admission waits
    DISPATCH = "dispatch"  # scheduling-point decisions
    MIGRATION = "migration"  # question hand-offs between nodes
    COMPUTE = "compute"  # module CPU/disk work
    COMMS = "comms"  # partition data transfers
    PARTITION = "partition"  # SEND/ISEND/RECV chunk execution
    RETRY = "retry"  # backoff/recovery rounds
    MONITOR = "monitor"  # load-monitor broadcasts
    EVENT = "event"  # zero-duration Fig 7 instants


@dataclass(slots=True)
class Span:
    """One timed interval in a question's execution tree."""

    sid: int
    parent_id: int  # -1 for roots
    name: str
    cat: str
    qid: int
    node_id: int
    t0: float
    t1: float  # == t0 for instants; updated by SpanStream.end
    detail: str = ""
    attrs: dict[str, t.Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in simulated seconds (0 for instants)."""
        return self.t1 - self.t0

    @property
    def is_instant(self) -> bool:
        """True for zero-duration point events (the Fig 7 stream)."""
        return self.cat == SpanCategory.EVENT


class SpanStream:
    """Append-only store of spans with tree reconstruction helpers.

    Parameters
    ----------
    enabled:
        When False every mutator is an allocation-free no-op.
    max_spans:
        Hard bound on stored spans; further ``begin``/``instant`` calls
        are counted in :attr:`dropped` instead of stored (open spans can
        still be ``end``-ed).  ``None`` means unbounded.
    """

    def __init__(self, enabled: bool = True, max_spans: int | None = None) -> None:
        if max_spans is not None and max_spans < 1:
            raise ValueError("max_spans must be >= 1 (or None)")
        self.enabled = enabled
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.dropped = 0
        self._next_sid = 0

    # -- write side --------------------------------------------------------------
    def _full(self) -> bool:
        if self.max_spans is not None and len(self.spans) >= self.max_spans:
            self.dropped += 1
            return True
        return False

    def begin(
        self,
        name: str,
        cat: str,
        qid: int,
        node_id: int,
        time: float,
        parent: Span | None = None,
        detail: str = "",
    ) -> Span | None:
        """Open a span; returns None when disabled or at the bound."""
        if not self.enabled or self._full():
            return None
        span = Span(
            sid=self._next_sid,
            parent_id=parent.sid if parent is not None else -1,
            name=name,
            cat=cat,
            qid=qid,
            node_id=node_id,
            t0=time,
            t1=time,
        )
        if detail:
            span.detail = detail
        self._next_sid += 1
        self.spans.append(span)
        return span

    def end(
        self, span: Span | None, time: float, **attrs: t.Any
    ) -> None:
        """Close ``span`` at ``time`` (no-op on None from a disabled begin)."""
        if span is None:
            return
        span.t1 = time
        if attrs:
            span.attrs.update(attrs)

    def instant(
        self,
        name: str,
        qid: int,
        node_id: int,
        time: float,
        detail: str = "",
        parent: Span | None = None,
    ) -> None:
        """Record a zero-duration event (the Fig 7 record format)."""
        if not self.enabled or self._full():
            return
        span = Span(
            sid=self._next_sid,
            parent_id=parent.sid if parent is not None else -1,
            name=name,
            cat=SpanCategory.EVENT,
            qid=qid,
            node_id=node_id,
            t0=time,
            t1=time,
        )
        if detail:
            span.detail = detail
        self._next_sid += 1
        self.spans.append(span)

    def clear(self) -> None:
        """Drop all stored spans (the bound and enabled flag stay)."""
        self.spans.clear()
        self.dropped = 0

    # -- read side --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    def instants(self) -> list[Span]:
        """All zero-duration events, in record order."""
        return [s for s in self.spans if s.is_instant]

    def intervals(self) -> list[Span]:
        """All durational spans, in record order."""
        return [s for s in self.spans if not s.is_instant]

    def for_question(self, qid: int) -> list[Span]:
        """Every span (intervals and instants) belonging to ``qid``."""
        return [s for s in self.spans if s.qid == qid]

    def question_ids(self) -> list[int]:
        """Distinct qids with at least one span, sorted."""
        return sorted({s.qid for s in self.spans})

    def roots(self, qid: int | None = None) -> list[Span]:
        """Parentless durational spans (per ``qid`` when given)."""
        return [
            s
            for s in self.spans
            if s.parent_id < 0
            and not s.is_instant
            and (qid is None or s.qid == qid)
        ]

    def children(self, span: Span) -> list[Span]:
        """Direct children of ``span``, in record order."""
        return [s for s in self.spans if s.parent_id == span.sid]

    def subtree(self, span: Span) -> list[Span]:
        """``span`` plus all descendants (depth-first record order)."""
        by_parent: dict[int, list[Span]] = {}
        for s in self.spans:
            by_parent.setdefault(s.parent_id, []).append(s)
        out: list[Span] = []
        stack = [span]
        while stack:
            current = stack.pop()
            out.append(current)
            stack.extend(reversed(by_parent.get(current.sid, [])))
        return out
