"""Cross-process telemetry: trace propagation, span stitching, sampling.

The serving stack spans a front-end process plus N worker processes, so
a question's span tree is born split: admission wait and micro-batch
buffering happen in the server, QP/PR/PS/PO/AP happen in a worker whose
``SpanStream`` dies with the process.  This module is the glue that
makes one tree out of the pieces:

* :class:`TraceContext` — the (trace id, parent span id) pair the
  serving protocol carries on each request, as a tiny picklable tuple;
* :class:`HeadSampler` — deterministic seed-keyed head sampling, decided
  per submission *after* admission (a pure function of ``seed:seq``), so
  enabling tracing can never perturb the accept/shed decision digest;
* :func:`pack_spans` / :func:`graft_spans` — serialize a span subtree to
  compact tuples (times relative to the subtree root, qid/node dropped)
  and splice it back into another stream under a given parent, offset to
  the stitching point — the server grafts each worker's subtree under
  that question's ``service`` span, so the existing attribution fold
  sums to end-to-end wall latency with no serving-specific code;
* :func:`worker_span_records` — the worker-side subtree built from the
  pipeline's measured :class:`~repro.qa.question.ModuleTimings`
  (module spans clipped so they nest inside the measured service time,
  keeping the attribution sum invariant by construction);
* :class:`TelemetryWriter` / :func:`validate_telemetry_line` — the
  ``telemetry.jsonl`` exporter (sample / SLO / metrics records) and its
  schema validator, consumed by ``repro top`` and the CI smoke job.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import typing as t
from dataclasses import dataclass

from .spans import Span, SpanCategory, SpanStream

if t.TYPE_CHECKING:  # pragma: no cover
    from ..qa.question import ModuleTimings
    from .metrics import MetricsRegistry

__all__ = [
    "TELEMETRY_SCHEMA",
    "HeadSampler",
    "TraceContext",
    "TelemetryWriter",
    "graft_spans",
    "pack_spans",
    "read_telemetry",
    "validate_telemetry_file",
    "validate_telemetry_line",
    "worker_span_records",
]

TELEMETRY_SCHEMA = "telemetry/v1"

#: One packed span: (sid, parent_sid, name, cat, t0_rel, t1_rel, detail,
#: attrs-or-None).  Times are relative to the packed subtree's root t0;
#: qid and node_id are omitted — the grafting side supplies both.
PackedSpan = t.Tuple[
    int, int, str, str, float, float, str, t.Optional[t.Dict[str, t.Any]]
]


@dataclass(frozen=True, slots=True)
class TraceContext:
    """The trace identity one request carries across the process boundary."""

    trace_id: str
    #: sid of the span (in the *server's* stream) the worker subtree will
    #: be stitched under — echoed back with the reply for bookkeeping.
    parent_sid: int

    def to_wire(self) -> tuple[str, int]:
        return (self.trace_id, self.parent_sid)

    @classmethod
    def from_wire(cls, wire: tuple[str, int] | None) -> "TraceContext | None":
        if wire is None:
            return None
        return cls(trace_id=wire[0], parent_sid=int(wire[1]))


class HeadSampler:
    """Deterministic head sampling keyed on ``seed:seq``.

    The decision is a pure function of the sampler seed and the request's
    submission sequence number — no RNG state, no wall clock — so two
    runs of the same workload sample the same questions, and turning
    sampling on cannot change anything else about the run (the admission
    decision digest in particular).
    """

    __slots__ = ("rate", "seed")

    def __init__(self, rate: float, seed: int = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.seed = seed

    def _hash64(self, seq: int) -> int:
        digest = hashlib.sha256(f"{self.seed}:{seq}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def sample(self, seq: int) -> bool:
        """True when request ``seq`` is head-sampled."""
        if self.rate <= 0.0:
            return False
        if self.rate >= 1.0:
            return True
        return self._hash64(seq) / 2.0**64 < self.rate

    def trace_id(self, seq: int) -> str:
        """Stable, collision-resistant trace id for request ``seq``."""
        return f"{self._hash64(seq):016x}-{seq:x}"


# -- span subtree pack / graft -------------------------------------------------
def pack_spans(stream: SpanStream, root: Span) -> tuple[PackedSpan, ...]:
    """Serialize ``root``'s subtree into compact wire tuples.

    Parents precede children (depth-first subtree order), times are
    relative to ``root.t0``, and the root itself packs with parent -1.
    """
    t0 = root.t0
    out: list[PackedSpan] = []
    in_tree = {root.sid}
    for span in stream.subtree(root):
        parent = span.parent_id if span.parent_id in in_tree else -1
        in_tree.add(span.sid)
        out.append(
            (
                span.sid,
                parent if span is not root else -1,
                span.name,
                span.cat,
                span.t0 - t0,
                span.t1 - t0,
                span.detail,
                dict(span.attrs) if span.attrs else None,
            )
        )
    return tuple(out)


def graft_spans(
    stream: SpanStream,
    packed: t.Sequence[PackedSpan],
    parent: Span | None,
    qid: int,
    node_id: int,
    t_offset: float,
) -> int:
    """Splice packed spans into ``stream`` under ``parent``.

    Packed roots (parent -1) attach to ``parent``; every span lands at
    ``t_offset + its relative time`` with the given qid/node identity.
    Returns the number of spans actually recorded (0 when the stream is
    disabled or at its bound).
    """
    if not stream.enabled:
        return 0
    sid_map: dict[int, Span] = {}
    count = 0
    for sid, psid, name, cat, rel_t0, rel_t1, detail, attrs in packed:
        par = sid_map.get(psid, parent)
        span = stream.begin(
            name,
            cat,
            qid,
            node_id,
            t_offset + rel_t0,
            parent=par,
            detail=detail,
        )
        if span is None:
            continue
        span.t1 = t_offset + rel_t1
        if attrs:
            span.attrs.update(attrs)
        sid_map[sid] = span
        count += 1
    return count


def worker_span_records(
    timings: "ModuleTimings",
    service_s: float,
    qid: int = 0,
    node_id: int = 0,
    batch: tuple[int, int, float, float] | None = None,
) -> tuple[PackedSpan, ...]:
    """The worker-side span subtree for one executed question.

    A ``worker`` compute root spans the whole measured service time, with
    the pipeline modules as sequential children; in batched execution the
    PR phase is wrapped in a ``stage:PR-batch`` partition span carrying
    the batch's sharing stats (the same shape the server used to
    synthesize, now measured at the source).  Module durations are
    clipped so the children always nest inside the root — the attribution
    fold's sum-to-wall invariant holds for any timings.
    """
    service_s = max(0.0, service_s)
    stream = SpanStream()
    root = stream.begin(
        "worker", SpanCategory.COMPUTE, qid, node_id, 0.0
    )
    assert root is not None
    cursor = 0.0
    for name, dur in (
        ("qp", timings.qp),
        ("pr", timings.pr),
        ("ps", timings.ps),
        ("po", timings.po),
        ("ap", timings.ap),
    ):
        dur = min(max(0.0, dur), service_s - cursor)
        if name == "pr" and batch is not None:
            batch_size, n_distinct, sharing, amortized = batch
            stage = stream.begin(
                "stage:PR-batch",
                SpanCategory.PARTITION,
                qid,
                node_id,
                cursor,
                parent=root,
            )
            pr_span = stream.begin(
                "pr", SpanCategory.COMPUTE, qid, node_id, cursor, parent=stage
            )
            stream.end(pr_span, cursor + dur)
            stream.end(
                stage,
                cursor + dur,
                batch_size=batch_size,
                n_distinct=n_distinct,
                sharing_factor=sharing,
                amortized_postings_scanned=amortized,
            )
        else:
            span = stream.begin(
                name, SpanCategory.COMPUTE, qid, node_id, cursor, parent=root
            )
            stream.end(span, cursor + dur)
        cursor += dur
    stream.end(root, service_s)
    return pack_spans(stream, root)


# -- telemetry.jsonl exporter --------------------------------------------------
class TelemetryWriter:
    """Streaming ``telemetry.jsonl`` writer (one JSON object per line).

    Record types: ``header`` (schema + run metadata, always first),
    ``sample`` (one per sampled or forced question outcome), ``slo`` (SLO
    monitor state, emitted on transitions and at drain), ``metrics`` (the
    aggregated registry, emitted at drain).  Every write flushes so
    ``repro top --follow`` can tail the live file.
    """

    def __init__(
        self, path: str | pathlib.Path, header: dict[str, t.Any] | None = None
    ) -> None:
        self.path = pathlib.Path(path)
        self.records = 0
        self._fh: t.IO[str] | None = self.path.open("w")
        self._write({"record": "header", "schema": TELEMETRY_SCHEMA, **(header or {})})

    def _write(self, obj: dict[str, t.Any]) -> None:
        if self._fh is None:
            raise RuntimeError("TelemetryWriter is closed")
        self._fh.write(json.dumps(obj, allow_nan=False) + "\n")
        self._fh.flush()
        self.records += 1

    def write_sample(
        self,
        *,
        t_s: float,
        seq: int,
        qid: int,
        outcome: str,
        latency_s: float = 0.0,
        wait_s: float = 0.0,
        service_s: float = 0.0,
        worker: int = 0,
        sampled: bool = False,
        forced: bool = False,
        reason: str | None = None,
    ) -> None:
        """One question outcome (head-sampled, or force-sampled on
        shed/deadline-breach/slow-outlier)."""
        rec: dict[str, t.Any] = {
            "record": "sample",
            "t": t_s,
            "seq": seq,
            "qid": qid,
            "outcome": outcome,
            "latency_s": latency_s,
            "wait_s": wait_s,
            "service_s": service_s,
            "worker": worker,
            "sampled": sampled,
            "forced": forced,
        }
        if reason is not None:
            rec["reason"] = reason
        self._write(rec)

    def write_slo(self, report: dict[str, t.Any]) -> None:
        """One SLO monitor evaluation (``SLOReport.to_dict()``)."""
        self._write({"record": "slo", **report})

    def write_metrics(self, metrics: "MetricsRegistry") -> None:
        """The final aggregated metrics registry."""
        self._write({"record": "metrics", "metrics": metrics.to_dict()})

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TelemetryWriter":
        return self

    def __exit__(self, *exc: t.Any) -> None:
        self.close()


# -- schema validation ---------------------------------------------------------
_OUTCOMES = {"answered", "shed", "drained"}
_SLO_STATES = {"ok", "warn", "breach"}
_SAMPLE_REQUIRED: dict[str, type | tuple[type, ...]] = {
    "t": (int, float),
    "seq": int,
    "qid": int,
    "outcome": str,
    "latency_s": (int, float),
    "wait_s": (int, float),
    "service_s": (int, float),
    "worker": int,
    "sampled": bool,
    "forced": bool,
}
_SLO_REQUIRED: dict[str, type | tuple[type, ...]] = {
    "t": (int, float),
    "state": str,
    "n_answered": int,
    "n_shed": int,
    "shed_rate": (int, float),
    "p50_s": (int, float),
    "p95_s": (int, float),
    "p99_s": (int, float),
    "deadline_violations": int,
    "transition": bool,
}


def validate_telemetry_line(obj: dict[str, t.Any]) -> None:
    """Validate one parsed telemetry record; raises ValueError on violation."""
    record = obj.get("record")
    if record == "header":
        if obj.get("schema") != TELEMETRY_SCHEMA:
            raise ValueError(f"unknown telemetry schema {obj.get('schema')!r}")
        return
    if record == "sample":
        for key, types in _SAMPLE_REQUIRED.items():
            if key not in obj:
                raise ValueError(f"sample record missing {key!r}: {obj}")
            if not isinstance(obj[key], types):  # type: ignore[arg-type]
                raise ValueError(
                    f"sample field {key!r} has wrong type: {obj[key]!r}"
                )
        if obj["outcome"] not in _OUTCOMES:
            raise ValueError(f"unknown outcome {obj['outcome']!r}")
        for key in ("latency_s", "wait_s", "service_s"):
            if obj[key] < 0:
                raise ValueError(f"sample field {key!r} is negative: {obj}")
        if not (obj["sampled"] or obj["forced"]):
            raise ValueError(f"sample record neither sampled nor forced: {obj}")
        return
    if record == "slo":
        for key, types in _SLO_REQUIRED.items():
            if key not in obj:
                raise ValueError(f"slo record missing {key!r}: {obj}")
            if not isinstance(obj[key], types):  # type: ignore[arg-type]
                raise ValueError(
                    f"slo field {key!r} has wrong type: {obj[key]!r}"
                )
        if obj["state"] not in _SLO_STATES:
            raise ValueError(f"unknown SLO state {obj['state']!r}")
        if not 0.0 <= obj["shed_rate"] <= 1.0:
            raise ValueError(f"shed_rate out of [0, 1]: {obj['shed_rate']!r}")
        return
    if record == "metrics":
        metrics = obj.get("metrics")
        if not isinstance(metrics, dict):
            raise ValueError("metrics record missing 'metrics' mapping")
        for name, body in metrics.items():
            if body.get("type") not in {"counter", "gauge", "histogram"}:
                raise ValueError(f"metric {name!r} has bad type: {body!r}")
        return
    raise ValueError(f"unknown telemetry record type {record!r}")


def read_telemetry(path: str | pathlib.Path) -> list[dict[str, t.Any]]:
    """Parse a telemetry.jsonl file (no validation; see validate_*)."""
    out: list[dict[str, t.Any]] = []
    with pathlib.Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def validate_telemetry_file(path: str | pathlib.Path) -> int:
    """Validate every record in a telemetry.jsonl file; returns the count.

    The first line must be a valid header; an empty file is invalid (a
    writer that opened the file always wrote its header).
    """
    records = read_telemetry(path)
    if not records:
        raise ValueError(f"{path}: empty telemetry file (missing header)")
    if records[0].get("record") != "header":
        raise ValueError(f"{path}: first record is not a header")
    for i, obj in enumerate(records):
        try:
            validate_telemetry_line(obj)
        except ValueError as exc:
            raise ValueError(f"{path}:{i + 1}: {exc}") from exc
    return len(records)
