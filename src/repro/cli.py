"""Command-line interface: ``python -m repro <command>``.

Commands
--------
ask         answer a free-form question over the generated corpus
simulate    run a workload on the simulated distributed cluster
chaos       randomized fault-injection campaign (fault rates x strategies)
model       analytical capacity planning for given bandwidths
bench       end-to-end throughput benchmark (re-tokenize baseline vs
            optimized hot path vs payload-attached index, plus packed
            index memory/serialize/attach columns); writes
            BENCH_throughput.json and fails on any output-equivalence
            mismatch
experiments regenerate any of the paper's tables/figures (see
            ``python -m repro.experiments.runner``)
observe     traced SEND/ISEND/RECV workload with span export (Chrome
            trace + JSONL) and overhead attribution vs the Section 5
            model; fails if any export or the attribution sum invariant
            is invalid
simbench    simulation-core benchmark: events/sec microbench (baseline
            vs fast path, firing order asserted identical), serial vs
            parallel runner/chaos wall-clock, and the packed-index cache
            round trip (build/serialize/attach + memory footprint);
            writes BENCH_simperf.json and fails on any determinism or
            round-trip mismatch
scale       weak-scaling sweep to the paper's 1000-node extrapolation
            (calendar queue + sharded monitoring) with the Eq 23
            cross-check at every decade, the heap-vs-calendar
            firing-order gate, and the events/sec comparison against
            the pre-sharding baseline; writes BENCH_scale.json and
            fails if the backends' firing order ever diverges
select      federated collection selection: exhaustive vs exact vs
            predictive selector modes on the real pipeline (prune rate,
            postings-scanned reduction, selector precision/recall) plus
            the simulated 16->128 node sweep showing partition-comms
            shrinking; writes BENCH_selection.json and fails if exact
            mode ever diverges from exhaustive search
serve       long-lived admission-controlled server over the real
            pipeline: worker processes attach to the shared packed-index
            artifact, questions arrive on stdin, overload is shed with a
            typed error; prints the conservation ledger on drain
loadgen     drive the server through the Section 6.1 overload protocol
            (seeded Zipf stream at offered loads below/at/above measured
            saturation); writes BENCH_serving.json and, with
            ``--check-overload``, fails unless overload sheds load,
            accepted-p99 stays bounded, and question conservation holds

``chaos``, ``experiments`` (alias ``exp``), ``simbench``, ``scale`` and
``select`` accept ``--jobs N`` (or ``auto``) to run independent
experiment cells on a process pool; parallel output is byte-identical
to serial.
"""

from __future__ import annotations

import argparse
import sys
import typing as t

__all__ = ["main"]


def _cmd_ask(args: argparse.Namespace) -> None:
    from .experiments.context import default_context

    ctx = default_context()
    result = ctx.pipeline.answer(args.question)
    if not result.answers:
        print("No answer found.")
        return
    print(f"Answer type : {result.processed.answer_type.value}")
    print(
        "Keywords    : "
        + ", ".join(k.text for k in result.processed.keywords)
    )
    print(f"Paragraphs  : {result.n_retrieved} retrieved, {result.n_accepted} accepted")
    print("\nTop answers:")
    for i, answer in enumerate(result.answers, 1):
        print(f"  {i}. {answer.text}  (score {answer.score:.2f})")
        print(f"     ...{answer.short}...")


def _cmd_simulate(args: argparse.Namespace) -> None:
    from .core import DistributedQASystem, Strategy, SystemConfig
    from .workload import (
        high_load_count,
        staggered_arrivals,
        summarize_latencies,
        trec_mix_profiles,
    )

    n_questions = args.questions or high_load_count(args.nodes)
    profiles = trec_mix_profiles(n_questions, seed=args.seed)
    arrivals = staggered_arrivals(n_questions, args.stagger, seed=args.seed)
    system = DistributedQASystem(
        SystemConfig(
            n_nodes=args.nodes,
            strategy=Strategy[args.strategy],
            seed=args.seed,
        )
    )
    report = system.run_workload(profiles, arrivals)
    print(
        f"{args.strategy} on {args.nodes} nodes, {n_questions} questions "
        f"(seed {args.seed}):"
    )
    print(f"  throughput : {report.throughput_qpm:.2f} questions/min")
    print(f"  makespan   : {report.makespan_s:.1f} s")
    print(f"  response   : {summarize_latencies(report)}")
    print(
        f"  migrations : QA {report.migrations_qa}, PR {report.migrations_pr},"
        f" AP {report.migrations_ap}"
    )


def _cmd_chaos(args: argparse.Namespace) -> None:
    from .core import PartitioningStrategy
    from .experiments.chaos_campaign import format_campaign, run_campaign

    strategies = [PartitioningStrategy[s] for s in args.strategies]
    try:
        cells = run_campaign(
            n_nodes=args.nodes,
            n_questions=args.questions,
            strategies=strategies,
            fault_rates=args.fault_rates,
            seed=args.seed,
            jobs=args.jobs,
            retry_budget=args.retry_budget,
            mean_downtime_s=args.mean_downtime,
            min_live_nodes=args.min_live,
        )
    except ValueError as exc:  # bad knob combination: usage error
        raise SystemExit(f"chaos: invalid configuration: {exc}") from exc
    except RuntimeError as exc:  # unaccounted questions: hard failure
        raise SystemExit(f"chaos campaign FAILED: {exc}") from exc
    print(
        f"Chaos campaign on {args.nodes} nodes, {args.questions} questions"
        f"/cell, seed {args.seed} (reproduce any cell with the same seed):"
    )
    print(format_campaign(cells))
    lost = sum(c.accounting.lost for c in cells)
    retries = sum(c.accounting.retries for c in cells)
    print(
        f"accounting OK in all {len(cells)} cells "
        f"(total lost {lost}, total front-end retries {retries})"
    )


def _cmd_model(args: argparse.Namespace) -> None:
    from .model import (
        ModelParameters,
        bandwidth_bps,
        practical_processor_limit,
        question_speedup,
        question_time,
        system_efficiency,
    )

    p = ModelParameters().with_bandwidths(
        b_net=bandwidth_bps(args.net), b_disk=bandwidth_bps(args.disk)
    )
    n_max = practical_processor_limit(p)
    print(f"Analytical model @ net={args.net}, disk={args.disk}:")
    print(f"  sequential question time      : {p.t_sequential:.1f} s")
    print(f"  practical processor limit     : {n_max}")
    print(
        f"  question time / speedup there : {question_time(p, n_max):.1f} s /"
        f" {question_speedup(p, n_max):.1f}x"
    )
    for n in (10, 100, 1000):
        print(f"  system efficiency at {n:5d}    : {system_efficiency(p, n):.3f}")


def _cmd_bench(args: argparse.Namespace) -> None:
    from .experiments.throughput_bench import (
        BenchConfig,
        format_throughput,
        run_throughput_bench,
        write_bench_json,
    )

    try:
        batch_sizes = tuple(
            int(b) for b in str(args.batch_sizes).split(",") if b.strip()
        )
    except ValueError:
        raise SystemExit(
            f"--batch-sizes must be comma-separated ints, got {args.batch_sizes!r}"
        )
    config = BenchConfig(
        n_questions=args.questions,
        n_unique=args.unique,
        zipf_exponent=args.zipf,
        corpus_seed=args.corpus_seed,
        workload_seed=args.seed,
        conjunction_cache=args.cache,
        batch_sizes=batch_sizes,
    )
    summary = run_throughput_bench(config)
    print(format_throughput(summary))
    out = write_bench_json(summary, args.output)
    print(f"wrote {out}")
    if not summary["equivalence"]["equivalent"]:
        eq = summary["equivalence"]
        raise SystemExit(
            "bench FAILED: optimized pipeline diverged from the reference "
            f"path on questions {eq['mismatches']}"
            + (
                f"; batched mismatches {eq['batched_mismatches']}"
                if eq["batched_mismatches"]
                else ""
            )
        )


def _cmd_observe(args: argparse.Namespace) -> None:
    from .observability import ObserveConfig, format_observe, run_observe

    config = ObserveConfig(
        n_nodes=args.nodes,
        questions_per_node=args.questions_per_node,
        strategies=tuple(args.strategies),
        seed=args.seed,
        dispatch_scan_cpu_s=args.dispatch_cost,
        output_dir=args.output_dir,
    )
    summary = run_observe(config)
    print(format_observe(summary))
    if not summary["ok"]:
        raise SystemExit("observe FAILED: export or attribution check failed")


def _cmd_experiments(args: argparse.Namespace) -> None:
    from .experiments.runner import run_all

    run_all(args.names or None, jobs=args.jobs)


def _cmd_simbench(args: argparse.Namespace) -> None:
    from .experiments.simbench import (
        format_simperf,
        run_simbench,
        write_simperf_json,
    )

    try:
        summary = run_simbench(
            n_chains=args.chains,
            chain_len=args.chain_len,
            seed=args.seed,
            sections=args.sections,
            jobs=args.jobs,
        )
    except RuntimeError as exc:  # ordering divergence: hard failure
        raise SystemExit(f"simbench FAILED: {exc}") from exc
    print(format_simperf(summary))
    out = write_simperf_json(summary, args.output)
    print(f"wrote {out}")
    if not summary["ok"]:
        raise SystemExit(
            "simbench FAILED: parallel output diverged from serial, or the "
            "packed-index payload failed its round trip"
        )


def _cmd_scale(args: argparse.Namespace) -> None:
    from .experiments.scale import format_scale, run_scale, write_scale_json

    summary = run_scale(
        node_counts=tuple(args.nodes),
        strategies=tuple(args.strategies),
        questions_per_node=args.questions_per_node,
        seed=args.seed,
        baseline_at=tuple(args.baseline_at) if args.baseline_at else None,
        jobs=args.jobs,
    )
    print(format_scale(summary))
    out = write_scale_json(summary, args.output)
    print(f"wrote {out}")
    if not summary["ok"]:
        raise SystemExit(
            "scale FAILED: calendar and heap backends fired a seeded "
            "workload in different orders"
        )


def _cmd_select(args: argparse.Namespace) -> None:
    from .experiments.selection import (
        SelectionConfig,
        format_selection,
        run_selection,
        validate_bench_selection,
        write_selection_json,
    )

    config = SelectionConfig(
        n_questions=args.questions,
        n_unique=args.unique,
        predictive_top_k=args.top_k,
        node_counts=tuple(args.nodes),
        sim_questions_per_node=args.questions_per_node,
        sim_seed=args.seed,
        jobs=args.jobs,
    )
    summary = run_selection(config)
    print(format_selection(summary))
    out = write_selection_json(summary, args.output)
    print(f"wrote {out}")
    try:
        validate_bench_selection(summary)
    except ValueError as exc:
        raise SystemExit(f"select FAILED: {exc}") from exc


def _cmd_serve(args: argparse.Namespace) -> None:
    import sys as _sys
    import time as _time

    from .corpus import CorpusConfig
    from .serving import AdmissionConfig, QAServer, ServerConfig

    config = ServerConfig(
        corpus=CorpusConfig(seed=args.corpus_seed),
        admission=AdmissionConfig(
            max_concurrent=args.admit_concurrency,
            max_queue_depth=args.queue_depth,
            est_service_s=args.service_time,
            deadline_s=args.deadline,
            rate_limit_qps=args.rate_limit,
        ),
        workers=args.workers,
        drain_timeout_s=args.drain_timeout,
        trace_sample_rate=args.sample,
        trace_seed=args.trace_seed,
        telemetry_path=args.telemetry,
    )
    server = QAServer(config)
    print(
        f"starting {args.workers} worker(s) "
        f"(admission: {args.admit_concurrency} concurrent, "
        f"queue depth {args.queue_depth}) ...",
        file=_sys.stderr,
    )
    qid = 0
    with server:
        attach = server.pool.attach_report if server.pool is not None else {}
        sources = [src for src, _ in attach.values()]
        print(
            f"ready: {sources.count('cache')} worker(s) attached to the "
            f"packed-index artifact, {sources.count('built')} rebuilt; "
            "one question per line, EOF or Ctrl-C drains",
            file=_sys.stderr,
        )
        try:
            for line in _sys.stdin:
                text = line.strip()
                if not text:
                    continue
                decision = server.submit(text, qid=qid)
                if not decision.accepted:
                    reason = decision.shed_reason
                    print(
                        f"[{qid}] OVERLOAD({reason.value if reason else '?'}): "
                        f"queue depth {decision.queue_depth}, predicted wait "
                        f"{decision.predicted_wait_s * 1e3:.1f} ms"
                    )
                qid += 1
                # Surface any finished answers without blocking the REPL.
                server.poll()
                _print_new_answers(server)
        except KeyboardInterrupt:
            print("interrupt: draining ...", file=_sys.stderr)
        deadline = _time.monotonic() + args.drain_timeout
        while server.in_flight > 0 and _time.monotonic() < deadline:
            if server.poll() == 0:
                _time.sleep(0.005)
            _print_new_answers(server)
        ledger = server.drain()
        _print_new_answers(server)
    print(f"drained: {ledger}", file=_sys.stderr)
    if not ledger.balanced:
        raise SystemExit("serve FAILED: conservation ledger imbalanced")


_printed_responses = 0


def _print_new_answers(server: t.Any) -> bool:
    """Print answered responses not yet shown; True when any were printed."""
    global _printed_responses
    new = server.responses[_printed_responses:]
    if not new:
        return False
    for r in new:
        if r.answered:
            top = r.answers[0][0] if r.answers else "(no answer)"
            print(
                f"[{r.qid}] {top}  "
                f"(latency {r.latency_s * 1e3:.1f} ms, "
                f"wait {r.admission_wait_s * 1e3:.1f} ms, "
                f"worker {r.worker_pid})"
            )
    _printed_responses = len(server.responses)
    return True


def _cmd_loadgen(args: argparse.Namespace) -> None:
    import json

    from .corpus import CorpusConfig
    from .serving import (
        LoadgenConfig,
        format_serving,
        run_loadgen,
        write_serving_json,
    )

    config = LoadgenConfig(
        corpus=CorpusConfig(seed=args.corpus_seed),
        n_questions=args.questions,
        n_unique=args.unique,
        zipf_exponent=args.zipf,
        workload_seed=args.seed,
        workers=args.workers,
        load_factors=tuple(args.load_factors),
        rate_qps=args.rate,
        est_service_s=args.service_time,
        max_concurrent=args.admit_concurrency,
        max_queue_depth=args.queue_depth,
        deadline_s=args.deadline,
        rate_limit_qps=args.rate_limit,
        pace=not args.no_pace,
        drain_timeout_s=args.drain_timeout,
        record_decisions=args.decisions_out is not None,
        batch_max=args.batch,
        batch_wait_s=args.batch_wait,
        trace_sample_rate=args.sample,
        trace_seed=args.trace_seed,
        telemetry_out=args.telemetry,
        trace_out=args.trace_out,
        measure_overhead=args.measure_obs_overhead,
    )
    summary = run_loadgen(config)
    print(format_serving(summary))
    out = write_serving_json(summary, args.output)
    print(f"wrote {out}")
    if args.decisions_out:
        decisions = {
            run["label"]: run.get("decisions", []) for run in summary["runs"]
        }
        with open(args.decisions_out, "w") as fh:
            json.dump(decisions, fh, indent=1, sort_keys=True)
        print(f"wrote {args.decisions_out}")
    if not all(r["conservation_ok"] for r in summary["runs"]):
        raise SystemExit(
            "loadgen FAILED: question conservation violated "
            "(answered + shed + drained != submitted)"
        )
    if args.check_overload and not summary["overload"].get("ok", False):
        raise SystemExit(
            "loadgen FAILED: overload criteria not met "
            f"({json.dumps(summary['overload'], default=str)})"
        )


def _cmd_top(args: argparse.Namespace) -> None:
    from .serving import run_top

    try:
        run_top(args.telemetry, follow=args.follow, interval_s=args.interval)
    except BrokenPipeError:
        # `repro top | head` closing the pipe is a normal way to stop.
        import os
        import sys

        try:
            sys.stdout.close()
        except BrokenPipeError:
            os._exit(0)


def main(argv: t.Sequence[str] | None = None) -> None:
    """Parse arguments and dispatch to the chosen subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed Q/A system reproduction (IPPS 2001)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ask = sub.add_parser("ask", help="answer a question over the demo corpus")
    ask.add_argument("question", help="natural-language question text")
    ask.set_defaults(func=_cmd_ask)

    sim = sub.add_parser("simulate", help="run a simulated cluster workload")
    sim.add_argument("--nodes", type=int, default=8)
    sim.add_argument(
        "--strategy", choices=["DNS", "INTER", "DQA"], default="DQA"
    )
    sim.add_argument(
        "--questions", type=int, default=None,
        help="question count (default: the 8N high-load protocol)",
    )
    sim.add_argument("--stagger", type=float, default=2.0)
    sim.add_argument("--seed", type=int, default=11)
    sim.set_defaults(func=_cmd_simulate)

    chaos = sub.add_parser(
        "chaos", help="randomized fault-injection campaign"
    )
    chaos.add_argument("--nodes", type=int, default=6)
    chaos.add_argument("--questions", type=int, default=12)
    chaos.add_argument(
        "--strategies", nargs="*", choices=["SEND", "ISEND", "RECV"],
        default=["SEND", "ISEND", "RECV"],
    )
    chaos.add_argument(
        "--fault-rates", type=float, nargs="*",
        default=[0.0, 1.0 / 400.0, 1.0 / 150.0],
        help="expected crashes per node per second (sweep values)",
    )
    chaos.add_argument("--seed", type=int, default=11)
    chaos.add_argument(
        "--retry-budget", type=int, default=3,
        help="front-end re-admissions per lost-host question",
    )
    chaos.add_argument("--mean-downtime", type=float, default=30.0)
    chaos.add_argument(
        "--min-live", type=int, default=2,
        help="schedules never drop the live node count below this",
    )
    chaos.add_argument(
        "-j", "--jobs", default=None,
        help="parallel cell workers (integer or 'auto'; default serial); "
        "output is byte-identical to a serial run",
    )
    chaos.set_defaults(func=_cmd_chaos)

    model = sub.add_parser("model", help="analytical capacity planning")
    model.add_argument("--net", default="100 Mbps", help='e.g. "1 Gbps"')
    model.add_argument("--disk", default="250 Mbps", help='e.g. "250 Mbps"')
    model.set_defaults(func=_cmd_model)

    bench = sub.add_parser(
        "bench", help="end-to-end throughput benchmark (perf regression harness)"
    )
    bench.add_argument(
        "--questions", type=int, default=120,
        help="workload size (Zipf-repeated questions)",
    )
    bench.add_argument(
        "--unique", type=int, default=60,
        help="distinct questions the workload draws from",
    )
    bench.add_argument(
        "--zipf", type=float, default=1.1,
        help="Zipf popularity exponent of the question distribution",
    )
    bench.add_argument("--corpus-seed", type=int, default=42)
    bench.add_argument("--seed", type=int, default=7, help="workload seed")
    bench.add_argument(
        "--cache", type=int, default=256,
        help="conjunction-cache capacity of the optimized run",
    )
    bench.add_argument(
        "--batch-sizes", default="1,4,8,16,32",
        help="comma-separated answer_batch sizes for the batched columns "
        "(empty string skips batched runs)",
    )
    bench.add_argument(
        "--output", default="BENCH_throughput.json",
        help="where to write the JSON summary",
    )
    bench.set_defaults(func=_cmd_bench)

    observe = sub.add_parser(
        "observe",
        help="traced workload with span export and overhead attribution",
    )
    observe.add_argument("--nodes", type=int, default=16)
    observe.add_argument(
        "--questions-per-node", type=int, default=2,
        help="questions per node per strategy run",
    )
    observe.add_argument(
        "--strategies", nargs="*", choices=["SEND", "ISEND", "RECV"],
        default=["SEND", "ISEND", "RECV"],
        help="AP partitioning strategies to trace (PR always uses RECV)",
    )
    observe.add_argument("--seed", type=int, default=11)
    observe.add_argument(
        "--dispatch-cost", type=float, default=1e-5,
        help="Eq 15 per-node dispatch scan cost in CPU seconds "
        "(0 = the paper-faithful instantaneous dispatch)",
    )
    observe.add_argument(
        "--output-dir", default="observe_out",
        help="directory for trace_*.json, spans_*.jsonl, attribution.json",
    )
    observe.set_defaults(func=_cmd_observe)

    exp = sub.add_parser(
        "experiments",
        aliases=["exp"],
        help="regenerate the paper's tables and figures",
    )
    exp.add_argument("names", nargs="*", help="subset (default: all)")
    exp.add_argument(
        "-j", "--jobs", default=None,
        help="parallel section workers (integer or 'auto'; default serial)",
    )
    exp.set_defaults(func=_cmd_experiments)

    simbench = sub.add_parser(
        "simbench",
        help="simulation-core benchmark (event loop + parallel harness)",
    )
    simbench.add_argument(
        "--chains", type=int, default=400,
        help="microbench timeout-chain processes",
    )
    simbench.add_argument(
        "--chain-len", type=int, default=50,
        help="timeouts per chain",
    )
    simbench.add_argument("--seed", type=int, default=17)
    simbench.add_argument(
        "--sections", nargs="*",
        default=["table4", "fig8", "fig9", "ablation-concurrency"],
        help="runner sections for the wall-clock comparison",
    )
    simbench.add_argument(
        "-j", "--jobs", default="auto",
        help="parallel workers for the wall-clock runs (default: auto)",
    )
    simbench.add_argument(
        "--output", default="BENCH_simperf.json",
        help="where to write the JSON summary",
    )
    simbench.set_defaults(func=_cmd_simbench)

    scale = sub.add_parser(
        "scale",
        help="weak-scaling sweep to 1000 nodes with the Eq 23 cross-check",
    )
    scale.add_argument(
        "--nodes", nargs="*", type=int,
        default=[16, 32, 64, 128, 256, 512, 1000],
        help="cluster sizes to sweep (N=1 is always added as the "
        "speedup anchor)",
    )
    scale.add_argument(
        "--strategies", nargs="*", choices=["SEND", "ISEND", "RECV"],
        default=["SEND", "ISEND", "RECV"],
        help="AP partitioning strategies to sweep (PR always uses RECV)",
    )
    scale.add_argument(
        "--questions-per-node", type=int, default=4,
        help="weak-scaling offered load (Eq 23's q)",
    )
    scale.add_argument("--seed", type=int, default=11)
    scale.add_argument(
        "--baseline-at", nargs="*", type=int, default=None,
        help="node counts that also run the pre-sharding O(N^2) baseline "
        "(default: every swept N >= 256, else the largest N)",
    )
    scale.add_argument(
        "-j", "--jobs", default=None,
        help="parallel cell workers (integer or 'auto'; default serial)",
    )
    scale.add_argument(
        "--output", default="BENCH_scale.json",
        help="where to write the JSON summary",
    )
    scale.set_defaults(func=_cmd_scale)

    select = sub.add_parser(
        "select",
        help="federated collection selection: exact/predictive selector "
        "modes vs exhaustive broadcast",
    )
    select.add_argument(
        "--questions", type=int, default=120,
        help="Zipf workload length on the real pipeline",
    )
    select.add_argument(
        "--unique", type=int, default=60,
        help="distinct questions behind the Zipf draw",
    )
    select.add_argument(
        "--top-k", type=int, default=4,
        help="predictive mode keeps the k best-scoring collections",
    )
    select.add_argument(
        "--nodes", nargs="*", type=int, default=[16, 32, 64, 128],
        help="simulated cluster sizes for the off-vs-on comms sweep",
    )
    select.add_argument(
        "--questions-per-node", type=int, default=2,
        help="simulated weak-scaling offered load",
    )
    select.add_argument("--seed", type=int, default=11)
    select.add_argument(
        "-j", "--jobs", default=None,
        help="parallel cell workers (integer or 'auto'; default serial)",
    )
    select.add_argument(
        "--output", default="BENCH_selection.json",
        help="where to write the JSON summary",
    )
    select.set_defaults(func=_cmd_select)

    serve = sub.add_parser(
        "serve",
        help="long-lived admission-controlled server (questions on stdin)",
    )
    serve.add_argument(
        "--workers", type=int, default=3,
        help="worker processes (0 = inline execution)",
    )
    serve.add_argument("--corpus-seed", type=int, default=7)
    serve.add_argument(
        "--admit-concurrency", type=int, default=3,
        help="modeled in-service slots (the paper's FIFO-of-3)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=4,
        help="bounded admission queue length before QUEUE_FULL sheds",
    )
    serve.add_argument(
        "--service-time", type=float, default=0.05,
        help="estimated seconds per question for wait prediction",
    )
    serve.add_argument(
        "--deadline", type=float, default=None,
        help="per-question deadline seconds (default: 6x service time)",
    )
    serve.add_argument(
        "--rate-limit", type=float, default=0.0,
        help="per-client token-bucket q/s (0 = unlimited)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=60.0,
        help="seconds in-flight questions get to finish at shutdown",
    )
    serve.add_argument(
        "--sample", type=float, default=0.0,
        help="head-sampling rate for stitched worker traces in [0, 1] "
        "(deterministic per seed+seq; decided after admission)",
    )
    serve.add_argument(
        "--trace-seed", type=int, default=0, help="head-sampler seed",
    )
    serve.add_argument(
        "--telemetry", default=None,
        help="stream telemetry/v1 JSONL records to this path "
        "(tail it live with `repro top --follow`)",
    )
    serve.set_defaults(func=_cmd_serve)

    loadgen = sub.add_parser(
        "loadgen",
        help="overload protocol: Zipf stream at offered loads around saturation",
    )
    loadgen.add_argument(
        "--questions", type=int, default=200,
        help="questions per offered-load run",
    )
    loadgen.add_argument(
        "--unique", type=int, default=60,
        help="distinct questions in the Zipf pool",
    )
    loadgen.add_argument(
        "--zipf", type=float, default=1.1, help="Zipf exponent",
    )
    loadgen.add_argument(
        "--seed", type=int, default=7, help="workload + arrival seed",
    )
    loadgen.add_argument("--corpus-seed", type=int, default=7)
    loadgen.add_argument(
        "--workers", type=int, default=3,
        help="worker processes (0 = inline execution)",
    )
    loadgen.add_argument(
        "--load-factors", type=float, nargs="+", default=[0.5, 1.0, 2.0],
        help="offered load as multiples of measured saturation",
    )
    loadgen.add_argument(
        "--rate", type=float, default=None,
        help="explicit offered q/s (skips calibration; needs --service-time)",
    )
    loadgen.add_argument(
        "--service-time", type=float, default=None,
        help="explicit est service seconds (skips calibration with --rate)",
    )
    loadgen.add_argument(
        "--admit-concurrency", type=int, default=3,
        help="modeled in-service slots (the paper's FIFO-of-3)",
    )
    loadgen.add_argument(
        "--queue-depth", type=int, default=4,
        help="bounded admission queue length before QUEUE_FULL sheds",
    )
    loadgen.add_argument(
        "--deadline", type=float, default=None,
        help="per-question deadline seconds (default: 6x service time)",
    )
    loadgen.add_argument(
        "--rate-limit", type=float, default=0.0,
        help="per-client token-bucket q/s (0 = unlimited)",
    )
    loadgen.add_argument(
        "--no-pace", action="store_true",
        help="submit the whole schedule immediately (decisions unchanged)",
    )
    loadgen.add_argument("--drain-timeout", type=float, default=60.0)
    loadgen.add_argument(
        "--batch", type=int, default=1,
        help="serving micro-batch size: accepted questions are grouped up "
        "to B per answer_batch worker request (1 = unbatched; admission "
        "decisions and their digest are unchanged)",
    )
    loadgen.add_argument(
        "--batch-wait", type=float, default=0.005,
        help="seconds the oldest buffered request may wait before a "
        "partial micro-batch is flushed",
    )
    loadgen.add_argument(
        "--decisions-out", default=None,
        help="also dump the per-run admission decision sequences as JSON",
    )
    loadgen.add_argument(
        "--output", default="BENCH_serving.json",
        help="where to write the JSON summary",
    )
    loadgen.add_argument(
        "--check-overload", action="store_true",
        help="exit nonzero unless the overload criteria hold "
        "(nonzero shed, bounded accepted-p99, exact conservation)",
    )
    loadgen.add_argument(
        "--sample", type=float, default=0.0,
        help="head-sampling rate for stitched worker traces in [0, 1]",
    )
    loadgen.add_argument(
        "--trace-seed", type=int, default=0, help="head-sampler seed",
    )
    loadgen.add_argument(
        "--telemetry", default=None,
        help="base path for per-run telemetry/v1 JSONL files "
        "(<stem>-<label><suffix>)",
    )
    loadgen.add_argument(
        "--trace-out", default=None,
        help="write the at-saturation run's stitched spans as a Chrome "
        "trace with one lane per process",
    )
    loadgen.add_argument(
        "--measure-obs-overhead", action="store_true",
        help="re-run the at-saturation point with observability off and "
        "record the throughput overhead in the summary",
    )
    loadgen.set_defaults(func=_cmd_loadgen)

    top = sub.add_parser(
        "top",
        help="text dashboard over a telemetry.jsonl file (live or finished)",
    )
    top.add_argument(
        "--telemetry", default="telemetry.jsonl",
        help="telemetry/v1 JSONL file written by serve/loadgen",
    )
    top.add_argument(
        "--follow", action="store_true",
        help="keep re-reading the file every --interval seconds",
    )
    top.add_argument(
        "--interval", type=float, default=2.0,
        help="refresh period with --follow",
    )
    top.set_defaults(func=_cmd_top)

    args = parser.parse_args(argv)
    args.func(args)


if __name__ == "__main__":  # pragma: no cover
    main()
