"""Command-line interface: ``python -m repro <command>``.

Commands
--------
ask         answer a free-form question over the generated corpus
simulate    run a workload on the simulated distributed cluster
chaos       randomized fault-injection campaign (fault rates x strategies)
model       analytical capacity planning for given bandwidths
bench       end-to-end throughput benchmark (re-tokenize baseline vs
            optimized hot path vs payload-attached index, plus packed
            index memory/serialize/attach columns); writes
            BENCH_throughput.json and fails on any output-equivalence
            mismatch
experiments regenerate any of the paper's tables/figures (see
            ``python -m repro.experiments.runner``)
observe     traced SEND/ISEND/RECV workload with span export (Chrome
            trace + JSONL) and overhead attribution vs the Section 5
            model; fails if any export or the attribution sum invariant
            is invalid
simbench    simulation-core benchmark: events/sec microbench (baseline
            vs fast path, firing order asserted identical), serial vs
            parallel runner/chaos wall-clock, and the packed-index cache
            round trip (build/serialize/attach + memory footprint);
            writes BENCH_simperf.json and fails on any determinism or
            round-trip mismatch

``chaos``, ``experiments`` (alias ``exp``) and ``simbench`` accept
``--jobs N`` (or ``auto``) to run independent experiment cells on a
process pool; parallel output is byte-identical to serial.
"""

from __future__ import annotations

import argparse
import sys
import typing as t

__all__ = ["main"]


def _cmd_ask(args: argparse.Namespace) -> None:
    from .experiments.context import default_context

    ctx = default_context()
    result = ctx.pipeline.answer(args.question)
    if not result.answers:
        print("No answer found.")
        return
    print(f"Answer type : {result.processed.answer_type.value}")
    print(
        "Keywords    : "
        + ", ".join(k.text for k in result.processed.keywords)
    )
    print(f"Paragraphs  : {result.n_retrieved} retrieved, {result.n_accepted} accepted")
    print("\nTop answers:")
    for i, answer in enumerate(result.answers, 1):
        print(f"  {i}. {answer.text}  (score {answer.score:.2f})")
        print(f"     ...{answer.short}...")


def _cmd_simulate(args: argparse.Namespace) -> None:
    from .core import DistributedQASystem, Strategy, SystemConfig
    from .workload import (
        high_load_count,
        staggered_arrivals,
        summarize_latencies,
        trec_mix_profiles,
    )

    n_questions = args.questions or high_load_count(args.nodes)
    profiles = trec_mix_profiles(n_questions, seed=args.seed)
    arrivals = staggered_arrivals(n_questions, args.stagger, seed=args.seed)
    system = DistributedQASystem(
        SystemConfig(
            n_nodes=args.nodes,
            strategy=Strategy[args.strategy],
            seed=args.seed,
        )
    )
    report = system.run_workload(profiles, arrivals)
    print(
        f"{args.strategy} on {args.nodes} nodes, {n_questions} questions "
        f"(seed {args.seed}):"
    )
    print(f"  throughput : {report.throughput_qpm:.2f} questions/min")
    print(f"  makespan   : {report.makespan_s:.1f} s")
    print(f"  response   : {summarize_latencies(report)}")
    print(
        f"  migrations : QA {report.migrations_qa}, PR {report.migrations_pr},"
        f" AP {report.migrations_ap}"
    )


def _cmd_chaos(args: argparse.Namespace) -> None:
    from .core import PartitioningStrategy
    from .experiments.chaos_campaign import format_campaign, run_campaign

    strategies = [PartitioningStrategy[s] for s in args.strategies]
    try:
        cells = run_campaign(
            n_nodes=args.nodes,
            n_questions=args.questions,
            strategies=strategies,
            fault_rates=args.fault_rates,
            seed=args.seed,
            jobs=args.jobs,
            retry_budget=args.retry_budget,
            mean_downtime_s=args.mean_downtime,
            min_live_nodes=args.min_live,
        )
    except ValueError as exc:  # bad knob combination: usage error
        raise SystemExit(f"chaos: invalid configuration: {exc}") from exc
    except RuntimeError as exc:  # unaccounted questions: hard failure
        raise SystemExit(f"chaos campaign FAILED: {exc}") from exc
    print(
        f"Chaos campaign on {args.nodes} nodes, {args.questions} questions"
        f"/cell, seed {args.seed} (reproduce any cell with the same seed):"
    )
    print(format_campaign(cells))
    lost = sum(c.accounting.lost for c in cells)
    retries = sum(c.accounting.retries for c in cells)
    print(
        f"accounting OK in all {len(cells)} cells "
        f"(total lost {lost}, total front-end retries {retries})"
    )


def _cmd_model(args: argparse.Namespace) -> None:
    from .model import (
        ModelParameters,
        bandwidth_bps,
        practical_processor_limit,
        question_speedup,
        question_time,
        system_efficiency,
    )

    p = ModelParameters().with_bandwidths(
        b_net=bandwidth_bps(args.net), b_disk=bandwidth_bps(args.disk)
    )
    n_max = practical_processor_limit(p)
    print(f"Analytical model @ net={args.net}, disk={args.disk}:")
    print(f"  sequential question time      : {p.t_sequential:.1f} s")
    print(f"  practical processor limit     : {n_max}")
    print(
        f"  question time / speedup there : {question_time(p, n_max):.1f} s /"
        f" {question_speedup(p, n_max):.1f}x"
    )
    for n in (10, 100, 1000):
        print(f"  system efficiency at {n:5d}    : {system_efficiency(p, n):.3f}")


def _cmd_bench(args: argparse.Namespace) -> None:
    from .experiments.throughput_bench import (
        BenchConfig,
        format_throughput,
        run_throughput_bench,
        write_bench_json,
    )

    config = BenchConfig(
        n_questions=args.questions,
        n_unique=args.unique,
        zipf_exponent=args.zipf,
        corpus_seed=args.corpus_seed,
        workload_seed=args.seed,
        conjunction_cache=args.cache,
    )
    summary = run_throughput_bench(config)
    print(format_throughput(summary))
    out = write_bench_json(summary, args.output)
    print(f"wrote {out}")
    if not summary["equivalence"]["equivalent"]:
        raise SystemExit(
            "bench FAILED: optimized pipeline diverged from the reference "
            f"path on questions {summary['equivalence']['mismatches']}"
        )


def _cmd_observe(args: argparse.Namespace) -> None:
    from .observability import ObserveConfig, format_observe, run_observe

    config = ObserveConfig(
        n_nodes=args.nodes,
        questions_per_node=args.questions_per_node,
        strategies=tuple(args.strategies),
        seed=args.seed,
        dispatch_scan_cpu_s=args.dispatch_cost,
        output_dir=args.output_dir,
    )
    summary = run_observe(config)
    print(format_observe(summary))
    if not summary["ok"]:
        raise SystemExit("observe FAILED: export or attribution check failed")


def _cmd_experiments(args: argparse.Namespace) -> None:
    from .experiments.runner import run_all

    run_all(args.names or None, jobs=args.jobs)


def _cmd_simbench(args: argparse.Namespace) -> None:
    from .experiments.simbench import (
        format_simperf,
        run_simbench,
        write_simperf_json,
    )

    try:
        summary = run_simbench(
            n_chains=args.chains,
            chain_len=args.chain_len,
            seed=args.seed,
            sections=args.sections,
            jobs=args.jobs,
        )
    except RuntimeError as exc:  # ordering divergence: hard failure
        raise SystemExit(f"simbench FAILED: {exc}") from exc
    print(format_simperf(summary))
    out = write_simperf_json(summary, args.output)
    print(f"wrote {out}")
    if not summary["ok"]:
        raise SystemExit(
            "simbench FAILED: parallel output diverged from serial, or the "
            "packed-index payload failed its round trip"
        )


def main(argv: t.Sequence[str] | None = None) -> None:
    """Parse arguments and dispatch to the chosen subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed Q/A system reproduction (IPPS 2001)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ask = sub.add_parser("ask", help="answer a question over the demo corpus")
    ask.add_argument("question", help="natural-language question text")
    ask.set_defaults(func=_cmd_ask)

    sim = sub.add_parser("simulate", help="run a simulated cluster workload")
    sim.add_argument("--nodes", type=int, default=8)
    sim.add_argument(
        "--strategy", choices=["DNS", "INTER", "DQA"], default="DQA"
    )
    sim.add_argument(
        "--questions", type=int, default=None,
        help="question count (default: the 8N high-load protocol)",
    )
    sim.add_argument("--stagger", type=float, default=2.0)
    sim.add_argument("--seed", type=int, default=11)
    sim.set_defaults(func=_cmd_simulate)

    chaos = sub.add_parser(
        "chaos", help="randomized fault-injection campaign"
    )
    chaos.add_argument("--nodes", type=int, default=6)
    chaos.add_argument("--questions", type=int, default=12)
    chaos.add_argument(
        "--strategies", nargs="*", choices=["SEND", "ISEND", "RECV"],
        default=["SEND", "ISEND", "RECV"],
    )
    chaos.add_argument(
        "--fault-rates", type=float, nargs="*",
        default=[0.0, 1.0 / 400.0, 1.0 / 150.0],
        help="expected crashes per node per second (sweep values)",
    )
    chaos.add_argument("--seed", type=int, default=11)
    chaos.add_argument(
        "--retry-budget", type=int, default=3,
        help="front-end re-admissions per lost-host question",
    )
    chaos.add_argument("--mean-downtime", type=float, default=30.0)
    chaos.add_argument(
        "--min-live", type=int, default=2,
        help="schedules never drop the live node count below this",
    )
    chaos.add_argument(
        "-j", "--jobs", default=None,
        help="parallel cell workers (integer or 'auto'; default serial); "
        "output is byte-identical to a serial run",
    )
    chaos.set_defaults(func=_cmd_chaos)

    model = sub.add_parser("model", help="analytical capacity planning")
    model.add_argument("--net", default="100 Mbps", help='e.g. "1 Gbps"')
    model.add_argument("--disk", default="250 Mbps", help='e.g. "250 Mbps"')
    model.set_defaults(func=_cmd_model)

    bench = sub.add_parser(
        "bench", help="end-to-end throughput benchmark (perf regression harness)"
    )
    bench.add_argument(
        "--questions", type=int, default=120,
        help="workload size (Zipf-repeated questions)",
    )
    bench.add_argument(
        "--unique", type=int, default=60,
        help="distinct questions the workload draws from",
    )
    bench.add_argument(
        "--zipf", type=float, default=1.1,
        help="Zipf popularity exponent of the question distribution",
    )
    bench.add_argument("--corpus-seed", type=int, default=42)
    bench.add_argument("--seed", type=int, default=7, help="workload seed")
    bench.add_argument(
        "--cache", type=int, default=256,
        help="conjunction-cache capacity of the optimized run",
    )
    bench.add_argument(
        "--output", default="BENCH_throughput.json",
        help="where to write the JSON summary",
    )
    bench.set_defaults(func=_cmd_bench)

    observe = sub.add_parser(
        "observe",
        help="traced workload with span export and overhead attribution",
    )
    observe.add_argument("--nodes", type=int, default=16)
    observe.add_argument(
        "--questions-per-node", type=int, default=2,
        help="questions per node per strategy run",
    )
    observe.add_argument(
        "--strategies", nargs="*", choices=["SEND", "ISEND", "RECV"],
        default=["SEND", "ISEND", "RECV"],
        help="AP partitioning strategies to trace (PR always uses RECV)",
    )
    observe.add_argument("--seed", type=int, default=11)
    observe.add_argument(
        "--dispatch-cost", type=float, default=1e-5,
        help="Eq 15 per-node dispatch scan cost in CPU seconds "
        "(0 = the paper-faithful instantaneous dispatch)",
    )
    observe.add_argument(
        "--output-dir", default="observe_out",
        help="directory for trace_*.json, spans_*.jsonl, attribution.json",
    )
    observe.set_defaults(func=_cmd_observe)

    exp = sub.add_parser(
        "experiments",
        aliases=["exp"],
        help="regenerate the paper's tables and figures",
    )
    exp.add_argument("names", nargs="*", help="subset (default: all)")
    exp.add_argument(
        "-j", "--jobs", default=None,
        help="parallel section workers (integer or 'auto'; default serial)",
    )
    exp.set_defaults(func=_cmd_experiments)

    simbench = sub.add_parser(
        "simbench",
        help="simulation-core benchmark (event loop + parallel harness)",
    )
    simbench.add_argument(
        "--chains", type=int, default=400,
        help="microbench timeout-chain processes",
    )
    simbench.add_argument(
        "--chain-len", type=int, default=50,
        help="timeouts per chain",
    )
    simbench.add_argument("--seed", type=int, default=17)
    simbench.add_argument(
        "--sections", nargs="*",
        default=["table4", "fig8", "fig9", "ablation-concurrency"],
        help="runner sections for the wall-clock comparison",
    )
    simbench.add_argument(
        "-j", "--jobs", default="auto",
        help="parallel workers for the wall-clock runs (default: auto)",
    )
    simbench.add_argument(
        "--output", default="BENCH_simperf.json",
        help="where to write the JSON summary",
    )
    simbench.set_defaults(func=_cmd_simbench)

    args = parser.parse_args(argv)
    args.func(args)


if __name__ == "__main__":  # pragma: no cover
    main()
