"""The question dispatcher (Section 3.1).

Runs once per question, before the Q/A task starts, to correct the DNS
round-robin placement: "If the DNS-allocated node is over-loaded, the
dispatcher migrates the Q/A task to another node ...  The dispatcher's
strategy is to select the processor with the smallest average load for the
Q/A task.  To avoid useless migrations, a question is migrated only if the
difference between the load of the source node and the load of the
destination node is greater than the average workload of a single
question."

The dispatcher sees only its node's (stale) load table.  After deciding,
it optimistically bumps the local table entry for the chosen node so that
several questions dispatched from the same node within one broadcast
interval do not all stampede to the same target.
"""

from __future__ import annotations

import typing as t

from ..observability.metrics import MetricsRegistry
from ..observability.names import (
    DISPATCH_DECISIONS,
    QA_MIGRATION_FAILURES,
    QA_MIGRATIONS,
)
from .load import QA_WEIGHTS, LoadSnapshot, load_function, single_task_load
from .monitor import MonitoringSystem

__all__ = ["QuestionDispatcher"]


class QuestionDispatcher:
    """Pre-task migration decisions (the INTER scheduling point)."""

    def __init__(
        self,
        monitoring: MonitoringSystem,
        migration_threshold: float | None = None,
        max_attempts: int = 3,
        backoff_base_s: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_max_s: float = 5.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.monitoring = monitoring
        #: Optional registry mirroring the decision counters under the
        #: canonical ``dispatch.*`` metric names.
        self.metrics = metrics
        #: The "average workload of a single question" in load-function
        #: units; defaults to the load a lone average Q/A task produces.
        self.migration_threshold = (
            single_task_load(QA_WEIGHTS)
            if migration_threshold is None
            else migration_threshold
        )
        #: Migration dispatch attempts per question: a migration transfer
        #: that fails (target died between the load broadcast and the
        #: hand-off) is retried with exponential backoff against the next
        #: candidate, at most this many times, before staying home.
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_factor = backoff_factor
        self.backoff_max_s = backoff_max_s
        self.decisions = 0
        self.migrations = 0
        #: Migration transfers that failed mid-hand-off (chaos visibility).
        self.migration_failures = 0

    @staticmethod
    def qa_load(snap: LoadSnapshot) -> float:
        """The dispatcher's Eq-1 load for a node.

        Every *hosted* question (running or queued) contributes one
        average-question load — on the paper's system all of them are live
        processes that the Unix load averages count; under admission
        control the commitment must be reconstructed from the hosted
        count.  The instantaneous measured load only breaks ties, so that
        phase noise (a question momentarily in its disk phase) does not
        trigger migrations.
        """
        commitment = snap.n_questions * single_task_load(QA_WEIGHTS)
        measured = load_function(QA_WEIGHTS, snap)
        return commitment + 0.01 * measured

    def note_migration_failure(self) -> None:
        """Count one failed migration hand-off (target died mid-transfer)."""
        self.migration_failures += 1
        if self.metrics is not None:
            self.metrics.inc(QA_MIGRATION_FAILURES)

    def backoff_delay(self, attempt: int) -> float:
        """Backoff before retrying after a failed migration ``attempt``."""
        if self.backoff_base_s <= 0:
            return 0.0
        return min(
            self.backoff_base_s * self.backoff_factor**attempt,
            self.backoff_max_s,
        )

    def choose(
        self, host_id: int, exclude: t.AbstractSet[int] = frozenset()
    ) -> int:
        """Return the node that should run a question starting at ``host_id``.

        Returns ``host_id`` itself when no migration is warranted.
        ``exclude`` removes candidates a previous attempt already found
        dead (the retry loop's memory within one dispatch).
        """
        self.decisions += 1
        if self.metrics is not None:
            self.metrics.inc(DISPATCH_DECISIONS)
        table = self.monitoring.view(host_id)
        host_snap = table.get(host_id)
        if host_snap is None:  # pragma: no cover - host always sees itself
            return host_id
        loads = {
            nid: self.qa_load(snap)
            for nid, snap in table.items()
            if nid == host_id or nid not in exclude
        }
        best = min(loads, key=lambda nid: (loads[nid], nid))
        if best == host_id:
            return host_id
        if loads[host_id] - loads[best] <= self.migration_threshold:
            return host_id
        self.migrations += 1
        if self.metrics is not None:
            self.metrics.inc(QA_MIGRATIONS)
        self.monitoring.note_question_assignment(host_id, best)
        return best
