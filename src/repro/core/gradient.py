"""The gradient-model load balancer (Lin & Keller [23]; also [25, 28]).

The first alternative the paper's related work lists: each node carries a
*gradient* — its hop distance to the nearest under-loaded node over a
logical topology.  Over-loaded nodes push queued work one hop down the
gradient surface; work migrates hop by hop until it reaches an
under-loaded node.

We implement it over a configurable logical ring (the physical star
Ethernet has no topology, so a logical neighborhood is imposed, as
gradient implementations on bus networks did).  The balancer reuses the
admission-queue claim mechanism: a pushed question is failed out of its
queue with :class:`~repro.core.node.Stolen` and re-enqueues at the
neighbor, possibly being pushed again on the next tick.
"""

from __future__ import annotations

import typing as t

from ..simulation.engine import Environment
from ..simulation.events import Event
from .node import ClusterNode

__all__ = ["GradientBalancer", "ring_topology", "compute_gradients"]

#: Gradient value meaning "no under-loaded node reachable".
_INFINITY = 10**6


def ring_topology(n_nodes: int) -> dict[int, list[int]]:
    """A bidirectional logical ring (each node has two neighbors)."""
    if n_nodes < 1:
        raise ValueError("need at least one node")
    if n_nodes == 1:
        return {0: []}
    return {
        i: sorted({(i - 1) % n_nodes, (i + 1) % n_nodes} - {i})
        for i in range(n_nodes)
    }


def compute_gradients(
    underloaded: t.Mapping[int, bool],
    topology: t.Mapping[int, t.Sequence[int]],
) -> dict[int, int]:
    """The gradient surface: hop distance to the nearest under-loaded node.

    Bellman-Ford relaxation over the logical topology; nodes with no
    under-loaded node in their component get a large sentinel value.
    """
    gradient = {
        nid: 0 if underloaded.get(nid, False) else _INFINITY
        for nid in topology
    }
    for _ in range(max(1, len(topology) - 1)):
        changed = False
        for nid, neighbors in topology.items():
            if gradient[nid] == 0:
                continue
            best = min(
                (gradient[nbr] + 1 for nbr in neighbors), default=_INFINITY
            )
            if best < gradient[nid]:
                gradient[nid] = best
                changed = True
        if not changed:
            break
    return gradient


class GradientBalancer:
    """Periodic gradient-model balancing over a node set."""

    def __init__(
        self,
        env: Environment,
        nodes: t.Mapping[int, ClusterNode],
        topology: t.Mapping[int, t.Sequence[int]] | None = None,
        interval_s: float = 0.5,
    ) -> None:
        self.env = env
        self.nodes = dict(nodes)
        self.topology = dict(topology or ring_topology(len(nodes)))
        self.interval_s = interval_s
        self.pushes = 0
        self._proc = env.process(self._run(), name="gradient-balancer")

    # -- state classification -------------------------------------------------------
    def _is_underloaded(self, node: ClusterNode) -> bool:
        return (
            node.up
            and node.waiting_questions == 0
            and node.running_questions < node.config.max_concurrent_questions
        )

    def _is_overloaded(self, node: ClusterNode) -> bool:
        return node.up and node.waiting_questions > 0

    # -- the balancing tick --------------------------------------------------------
    def tick(self) -> int:
        """One balancing round; returns the number of questions pushed."""
        underloaded = {
            nid: self._is_underloaded(node) for nid, node in self.nodes.items()
        }
        gradient = compute_gradients(underloaded, self.topology)
        pushed = 0
        for nid, node in self.nodes.items():
            if not self._is_overloaded(node):
                continue
            live_neighbors = [
                nbr for nbr in self.topology.get(nid, ()) if self.nodes[nbr].up
            ]
            if not live_neighbors:
                continue
            target = min(live_neighbors, key=lambda nbr: (gradient[nbr], nbr))
            # Push only strictly downhill — the gradient model's stability
            # condition (otherwise work ping-pongs on flat surfaces).
            if gradient[target] + 1 > gradient[nid]:
                continue
            if node.steal_waiter(target):
                pushed += 1
        self.pushes += pushed
        return pushed

    def _run(self) -> t.Generator[Event, object, None]:
        while True:
            yield self.env.timeout(self.interval_s)
            self.tick()
