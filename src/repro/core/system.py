"""The distributed Q/A system (Figure 2) and its workload runner.

:class:`DistributedQASystem` wires together the simulated cluster (nodes,
network, load monitoring), the scheduling machinery (question dispatcher,
meta-scheduler, partitioners) and executes question workloads under one of
the paper's three strategies:

* **DNS** — round-robin only, no migration, no partitioning (Section 6.1's
  first baseline);
* **INTER** — DNS + the question dispatcher (the "only model currently
  implemented in distributed information retrieval systems");
* **DQA** — all three scheduling points plus intra-question partitioning
  (the paper's contribution).
"""

from __future__ import annotations

import enum
import typing as t
from dataclasses import dataclass, field, replace

import numpy as np

from ..observability.metrics import MetricsRegistry
from ..observability.names import TASK_RETRIES
from ..observability.spans import SpanStream
from ..qa.profiles import QuestionProfile
from ..simulation.engine import Environment, Process
from ..simulation.events import Event
from ..simulation.failures import FailureInjector
from ..simulation.network import Network
from .dispatcher import QuestionDispatcher
from .frontend import DNSFrontend
from .monitor import MonitoringSystem
from .node import ClusterNode, NodeConfig
from .qa_task import DistributedQATask, TaskPolicy, TaskResult
from .tracing import Tracer

__all__ = ["Strategy", "SystemConfig", "DistributedQASystem", "WorkloadReport"]


class Strategy(enum.Enum):
    """The three load-balancing models compared in Section 6.1."""

    DNS = "DNS"
    INTER = "INTER"
    DQA = "DQA"


@dataclass(frozen=True, slots=True)
class SystemConfig:
    """Cluster + scheduling configuration."""

    n_nodes: int = 4
    strategy: Strategy = Strategy.DQA
    node: NodeConfig = field(default_factory=NodeConfig)
    #: Per-node hardware overrides for heterogeneous clusters (extension:
    #: the paper's testbed is homogeneous, but its availability-weighted
    #: meta-scheduler was designed to cope with uneven capacity).
    node_overrides: t.Mapping[int, NodeConfig] | None = None
    network_bandwidth_bps: float = 100e6  # the testbed's 100 Mbps Ethernet
    network_latency_s: float = 0.2e-3
    connection_setup_s: float = 1.5e-3
    monitor_interval_s: float = 1.0
    monitor_packet_bytes: float = 512.0
    membership_timeout_s: float = 3.0
    #: Load-monitoring topology: 0 = every node broadcasts its full table
    #: (the paper's protocol, O(N^2) table writes per interval); k >= 1 =
    #: nodes upload deltas to k shard-local aggregators that publish
    #: merged tables (O(N) per interval; use ~sqrt(N) for large clusters).
    monitor_shards: int = 0
    #: Event-queue backend for the simulation clock: "heap" or "calendar"
    #: (identical firing order; the calendar queue is O(1) amortized and
    #: pays off on large-N runs).
    queue_impl: str = "heap"
    #: Federated collection selection: "off" = every question broadcasts
    #: PR to all sub-collections (the paper's protocol, bit-identical
    #: legacy); "sketch" = the mediator's routing decision (carried on
    #: each question profile as ``selected_collections``) caps the Table 2
    #: iterative granularity, so SEND/ISEND/RECV partition over the
    #: predicted collections only — shrinking Eq 14/15 partition-comms
    #: and migration payloads.
    collection_selection: str = "off"
    #: CPU seconds per sub-collection sketch probe when selection is on
    #: (the mediator's routing cost — charged before the PR fan-out).
    selection_probe_cpu_s: float = 2e-5
    dns_cache_skew: float = 0.0
    policy: TaskPolicy = field(default_factory=TaskPolicy)
    #: Extension: receiver-initiated diffusion — nodes with a free slot
    #: and an empty queue claim waiting questions from loaded peers.
    work_stealing: bool = False
    steal_interval_s: float = 0.5
    #: Extension: the gradient model [23] — overloaded nodes push queued
    #: questions hop-by-hop down the gradient surface of a logical ring.
    gradient_balancing: bool = False
    gradient_interval_s: float = 0.5
    trace: bool = False
    #: Collect counters/histograms in the system's metrics registry.
    #: Leave on for reports and the observe pipeline; sweeps that only
    #: read the WorkloadReport can turn it off for a free speedup.
    collect_metrics: bool = True
    #: Bound on stored spans/events (None = unbounded); long chaos
    #: campaigns set this so the trace store cannot grow without limit.
    trace_max_events: int | None = None
    seed: int = 0
    #: Graceful degradation: how many times a question whose hosting node
    #: died is re-admitted at the front-end before being reported lost.
    question_retry_budget: int = 0
    #: First front-end re-admission delay; doubles per attempt so a
    #: cluster-wide blackout does not burn the whole budget in an instant.
    question_retry_backoff_s: float = 1.0

    def effective_policy(self) -> TaskPolicy:
        """Derive the task policy from the strategy."""
        if self.strategy is Strategy.DNS:
            return replace(
                self.policy,
                enable_question_dispatch=False,
                enable_pr_dispatch=False,
                enable_ap_dispatch=False,
                enable_partitioning=False,
            )
        if self.strategy is Strategy.INTER:
            return replace(
                self.policy,
                enable_question_dispatch=True,
                enable_pr_dispatch=False,
                enable_ap_dispatch=False,
                enable_partitioning=False,
            )
        return self.policy


@dataclass(slots=True)
class WorkloadReport:
    """Aggregate results of one workload run."""

    results: list[TaskResult]
    makespan_s: float
    #: Migration counts at the three scheduling points (Table 7).
    migrations_qa: int
    migrations_pr: int
    migrations_ap: int
    #: Questions handed to the front-end (defaults to ``len(results)``).
    n_admitted: int = -1
    #: Front-end re-admissions of questions whose hosting node died.
    n_retries: int = 0
    #: Admitted questions unfinished when the run stopped (0 after a
    #: completed run — the accounting invariant's third term).
    n_in_flight: int = 0
    #: Per recovered question: first host death to final completion.
    recovery_latencies_s: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_admitted < 0:
            self.n_admitted = len(self.results)

    @property
    def n_questions(self) -> int:
        return len(self.results)

    @property
    def n_completed(self) -> int:
        """Questions that produced an answer."""
        return sum(1 for r in self.results if not r.failed)

    @property
    def n_lost(self) -> int:
        """Questions lost to host failures after exhausting retries."""
        return sum(1 for r in self.results if r.failed)

    @property
    def accounted(self) -> bool:
        """No question vanished: completed + lost + in-flight == admitted."""
        return (
            self.n_completed + self.n_lost + self.n_in_flight
            == self.n_admitted
        )

    @property
    def mean_recovery_latency_s(self) -> float:
        """Mean first-host-death-to-completion time of recovered questions."""
        if not self.recovery_latencies_s:
            return 0.0
        return float(np.mean(self.recovery_latencies_s))

    @property
    def throughput_qpm(self) -> float:
        """Questions per minute (Table 5's metric)."""
        if self.makespan_s <= 0:
            return 0.0
        return 60.0 * self.n_questions / self.makespan_s

    @property
    def mean_response_s(self) -> float:
        """Average question response time (Table 6's metric)."""
        if not self.results:
            return 0.0
        return float(np.mean([r.response_time for r in self.results]))

    @property
    def mean_sojourn_s(self) -> float:
        """Average arrival-to-completion time (queueing included)."""
        if not self.results:
            return 0.0
        return float(np.mean([r.sojourn_time for r in self.results]))

    def mean_module_times(self) -> dict[str, float]:
        """Average per-module critical-path times (Table 8)."""
        keys = ["QP", "PR", "PS", "PO", "AP"]
        return {
            k: float(np.mean([r.module_times[k] for r in self.results]))
            for k in keys
        }

    def mean_overhead(self) -> dict[str, float]:
        """Average distribution-overhead components (Table 9)."""
        keys = list(self.results[0].overhead) if self.results else []
        return {
            k: float(np.mean([r.overhead[k] for r in self.results]))
            for k in keys
        }


class DistributedQASystem:
    """A simulated cluster running the distributed Q/A service."""

    def __init__(self, config: SystemConfig | None = None) -> None:
        self.config = config or SystemConfig()
        self.env = Environment(queue=self.config.queue_impl)
        #: One metrics registry per system: every subsystem records its
        #: counters/histograms here under the canonical names of
        #: :mod:`repro.observability.names`.
        self.metrics = MetricsRegistry(enabled=self.config.collect_metrics)
        #: Hierarchical span store; ``config.trace`` is the single switch
        #: for both the span trees and the flat Fig 7 view.
        self.spans = SpanStream(
            enabled=self.config.trace,
            max_spans=self.config.trace_max_events,
        )
        self.network = Network(
            self.env,
            bandwidth_bps=self.config.network_bandwidth_bps,
            latency_s=self.config.network_latency_s,
            connection_setup_s=self.config.connection_setup_s,
        )
        overrides = self.config.node_overrides or {}
        self.nodes: dict[int, ClusterNode] = {
            i: ClusterNode(self.env, i, overrides.get(i, self.config.node))
            for i in range(self.config.n_nodes)
        }
        self.monitoring = MonitoringSystem(
            self.env,
            self.network,
            list(self.nodes.values()),
            interval_s=self.config.monitor_interval_s,
            packet_bytes=self.config.monitor_packet_bytes,
            membership_timeout_s=self.config.membership_timeout_s,
            metrics=self.metrics,
            shards=self.config.monitor_shards,
        )
        self.question_dispatcher = QuestionDispatcher(
            self.monitoring, metrics=self.metrics
        )
        self.frontend = DNSFrontend(
            self.config.n_nodes,
            cache_skew=self.config.dns_cache_skew,
            seed=self.config.seed,
            metrics=self.metrics,
        )
        self.tracer = Tracer(stream=self.spans)
        self.policy = self.config.effective_policy()
        self.failures = FailureInjector(
            self.env,
            set_node_up=self._set_node_up,
            on_transition=None,
        )
        self._task_procs: list[Process] = []
        #: The report from the most recent run_workload call.
        self.last_report: WorkloadReport | None = None
        self.steals_attempted = 0
        if self.config.work_stealing:
            self.env.process(self._stealer(), name="work-stealer")
        self.gradient: "GradientBalancer | None" = None
        if self.config.gradient_balancing:
            from .gradient import GradientBalancer

            self.gradient = GradientBalancer(
                self.env,
                self.nodes,
                interval_s=self.config.gradient_interval_s,
            )

    # -- receiver-initiated stealing (extension) -----------------------------------
    def _stealer(self) -> t.Generator[Event, object, None]:
        """Periodically let under-committed nodes claim queued questions."""
        interval = self.config.steal_interval_s
        while True:
            yield self.env.timeout(interval)
            for thief_id, thief in self.nodes.items():
                if not thief.up:
                    continue
                if thief.waiting_questions > 0:
                    continue
                if thief.running_questions >= thief.config.max_concurrent_questions:
                    continue
                # Pick the victim from the thief's (broadcast) view, like
                # any other scheduling decision in the system.
                view = self.monitoring.view(thief_id)
                victim_id = max(
                    (nid for nid in view if nid != thief_id),
                    key=lambda nid: view[nid].n_waiting,
                    default=None,
                )
                if victim_id is None or view[victim_id].n_waiting < 1:
                    continue
                victim = self.nodes[victim_id]
                if victim.steal_waiter(thief_id):
                    self.steals_attempted += 1

    # -- failure plumbing ---------------------------------------------------------
    def _set_node_up(self, node_id: object, up: bool) -> None:
        self.network.set_node_up(node_id, up)
        node = self.nodes[t.cast(int, node_id)]
        node.up = up
        if not up:
            node.fail_admission_waiters()

    # -- submission -----------------------------------------------------------------
    def submit(
        self,
        profile: QuestionProfile,
        entry_node: int | None = None,
    ) -> Process:
        """Start one Q/A task now; returns its process (value: TaskResult)."""
        nid = self.frontend.assign() if entry_node is None else entry_node
        task = DistributedQATask(self, profile, nid, self.policy)
        proc = self.env.process(task.run(), name=f"qa-task[{profile.qid}]")
        self._task_procs.append(proc)
        return proc

    def submit_at(
        self,
        profile: QuestionProfile,
        arrival_time: float,
        entry_node: int | None = None,
    ) -> None:
        """Schedule a task to arrive at an absolute simulation time."""

        def arrival() -> t.Generator[Event, object, None]:
            delay = arrival_time - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            yield self.submit(profile, entry_node=entry_node)

        self.env.process(arrival(), name=f"arrival[{profile.qid}]")

    # -- workload execution ------------------------------------------------------------
    def run_workload(
        self,
        profiles: t.Sequence[QuestionProfile],
        arrival_times: t.Sequence[float] | None = None,
        resubmit_failed: int | None = None,
    ) -> WorkloadReport:
        """Run a batch of questions to completion and report metrics.

        ``arrival_times`` defaults to all-at-zero.  The simulation runs
        until every submitted task finishes (load monitors keep running
        forever, so we run until the last task's completion event).

        ``resubmit_failed`` allows up to that many re-admissions per
        question whose hosting node died (the front-end retrying against
        another address, with exponential backoff); the final attempt's
        result is reported.  Defaults to the config's
        ``question_retry_budget``.  Every admitted question is accounted
        for: it ends up completed or lost, never silently dropped.
        """
        if arrival_times is None:
            arrival_times = [0.0] * len(profiles)
        if len(arrival_times) != len(profiles):
            raise ValueError("arrival_times length must match profiles")
        retry_budget = (
            self.config.question_retry_budget
            if resubmit_failed is None
            else resubmit_failed
        )

        done: list[TaskResult] = []
        retries = 0
        recovery_latencies: list[float] = []
        finished = self.env.event(name="workload-finished")
        remaining = len(profiles)
        if remaining == 0:
            self.last_report = WorkloadReport([], 0.0, 0, 0, 0)
            return self.last_report

        def tracked(profile: QuestionProfile, when: float):
            def body() -> t.Generator[Event, object, None]:
                nonlocal remaining, retries
                if when > self.env.now:
                    yield self.env.timeout(when - self.env.now)
                result = yield self.submit(profile)
                attempts = 0
                first_failure_at: float | None = None
                while (
                    t.cast(TaskResult, result).failed
                    and attempts < retry_budget
                ):
                    if first_failure_at is None:
                        first_failure_at = self.env.now
                    attempts += 1
                    retries += 1
                    self.metrics.inc(TASK_RETRIES)
                    backoff = self.config.question_retry_backoff_s * (
                        2.0 ** (attempts - 1)
                    )
                    if backoff > 0:
                        yield self.env.timeout(backoff)
                    # Retry against the next live node (skip dead ones).
                    entry = None
                    for _ in range(self.config.n_nodes):
                        candidate = self.frontend.assign()
                        if self.nodes[candidate].up:
                            entry = candidate
                            break
                    result = yield self.submit(profile, entry_node=entry)
                final = t.cast(TaskResult, result)
                if first_failure_at is not None and not final.failed:
                    recovery_latencies.append(self.env.now - first_failure_at)
                done.append(final)
                remaining -= 1
                if remaining == 0:
                    finished.succeed()

            return body()

        for profile, when in zip(profiles, arrival_times):
            self.env.process(tracked(profile, when), name=f"track[{profile.qid}]")
        self.env.run(until=finished)

        first_arrival = min(arrival_times)
        makespan = self.env.now - first_arrival
        self.last_report = WorkloadReport(
            results=sorted(done, key=lambda r: r.qid),
            makespan_s=makespan,
            migrations_qa=sum(1 for r in done if r.migrated_qa),
            migrations_pr=sum(1 for r in done if r.migrated_pr),
            migrations_ap=sum(1 for r in done if r.migrated_ap),
            n_admitted=len(profiles),
            n_retries=retries,
            n_in_flight=0,
            recovery_latencies_s=recovery_latencies,
        )
        return self.last_report
