"""The meta-scheduling algorithm (Figure 4).

    metaScheduler(task, loadFunction, underloadCondition)
      1. select all processors i with underloadCondition(load_i) == true
      2. if none selected: select the processor with smallest loadFunction
      3. assign each selected processor an unnormalized weight
         w'_i = maxLoad - load_i, where maxLoad is the largest load in the
         selected set
      4. normalize: w_i = w'_i / sum_j w'_j
      5. assign each selected processor a fraction w_i of the global task

The algorithm "attempts to divide a given task into smaller granularity
sub-tasks and distribute them on the processors best fit for the task" and
"automatically determine[s] the degree of intra-parallelism available in
the current system state" — no under-loaded processors means no forced
partitioning.

Reconstruction note (DESIGN.md §4): with the literal step-3 formula the
most-loaded selected processor always gets weight 0 and a single-processor
selection is degenerate; we add a small epsilon share so every *selected*
processor participates, and fall back to equal weights when all selected
loads are equal.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

from ..observability.metrics import MetricsRegistry
from ..observability.names import (
    DISPATCH_FORCED_SINGLE,
    DISPATCH_PARTITION_WIDTH,
)
from .load import LoadSnapshot, ResourceWeights, is_underloaded, load_function

__all__ = ["Assignment", "meta_schedule"]

#: Extra share keeping max-loaded selected processors in the partition.
_EPSILON = 0.05


@dataclass(frozen=True, slots=True)
class Assignment:
    """Outcome of one meta-scheduling decision."""

    #: (node_id, normalized weight) pairs, weights summing to 1.
    shares: tuple[tuple[int, float], ...]
    #: True when step 2 fired (no under-loaded processor existed).
    forced_single: bool

    @property
    def node_ids(self) -> list[int]:
        return [nid for nid, _ in self.shares]

    @property
    def partitioned(self) -> bool:
        return len(self.shares) > 1


def meta_schedule(
    table: t.Mapping[int, LoadSnapshot],
    weights: ResourceWeights,
    underload_margin: float = 1.0,
    max_parts: int | None = None,
    include: int | None = None,
    stay_on: int | None = None,
    stay_threshold: float = 0.0,
    registry: MetricsRegistry | None = None,
) -> Assignment:
    """Run the Figure 4 algorithm against a load table.

    Parameters
    ----------
    table:
        node_id -> load snapshot (one observer's current view).
    weights:
        The module's resource weights (selects the load function).
    underload_margin:
        Scales the Eq 7/8 under-load threshold (Section 4.2 trade-off).
    max_parts:
        Optional cap on partition width (e.g. PR cannot be split wider
        than the number of sub-collections).
    include:
        Node forced into any *partitioned* selection (the task's host
        already holds the module input, so excluding it would only add
        transfer cost; its availability-based weight stays small when it
        is loaded).  Ignored when step 2 selects a single processor.
    stay_on / stay_threshold:
        Useless-migration avoidance, extended from the question
        dispatcher's rule (Section 3.1) to the embedded dispatchers: when
        step 2 would move the module off ``stay_on`` but the load
        difference does not exceed ``stay_threshold``, stay put.
    registry:
        Optional metrics registry recording each decision's outcome
        (forced-single count, partition-width histogram) under the
        canonical ``scheduler.*`` names.
    """
    if not table:
        raise ValueError("empty load table: no live processors")

    def recorded(assignment: Assignment) -> Assignment:
        if registry is not None:
            if assignment.forced_single:
                registry.inc(DISPATCH_FORCED_SINGLE)
            registry.observe(
                DISPATCH_PARTITION_WIDTH, float(len(assignment.shares))
            )
        return assignment

    loads = {nid: load_function(weights, snap) for nid, snap in table.items()}

    # Step 1: all under-loaded processors.
    selected = [
        nid
        for nid, snap in table.items()
        if is_underloaded(weights, snap, margin=underload_margin)
    ]
    forced_single = False
    if not selected:
        # Step 2: the least-loaded processor alone — unless moving off the
        # current host is not worth a sub-task's own load.
        best = min(loads, key=lambda nid: (loads[nid], nid))
        if (
            stay_on is not None
            and stay_on in loads
            and best != stay_on
            and loads[stay_on] - loads[best] <= stay_threshold
        ):
            best = stay_on
        selected = [best]
        forced_single = True
    elif include is not None and include in table and include not in selected:
        selected.append(include)

    if max_parts is not None and len(selected) > max_parts:
        # Keep the least-loaded processors within the width cap (the
        # forced-in host, holding the data, is never trimmed).
        ordered = sorted(
            selected,
            key=lambda nid: (nid != include, loads[nid], nid),
        )
        selected = ordered[:max_parts]

    if len(selected) == 1:
        return recorded(
            Assignment(shares=((selected[0], 1.0),), forced_single=forced_single)
        )

    # Steps 3-4: availability-proportional weights.  Availability is
    # measured against the capacity one sub-task of this module would use
    # (margin * single-task load): a nearly idle cluster yields nearly
    # equal weights, while genuinely uneven loads yield proportionally
    # uneven shares.  (The literal `maxLoad - load_i` formula degenerates
    # when all loads are small-but-unequal — DESIGN.md §4.)
    capacity = underload_margin * (weights.cpu**2 + weights.disk**2)
    raw = {
        nid: max(_EPSILON * capacity, capacity - loads[nid]) for nid in selected
    }
    total = sum(raw.values())
    shares = tuple(
        (nid, raw[nid] / total) for nid in sorted(selected, key=lambda n: (loads[n], n))
    )
    return recorded(Assignment(shares=shares, forced_single=forced_single))
