"""Execution tracing (Figure 7).

The paper illustrates partitioning behaviour with timestamped system
traces ("N1 started paragraph retrieval...", "N2 finished chunk 3 in 0.19
sec").  :class:`Tracer` records structured events during simulation;
:func:`render_trace` prints them in the same one-line-per-event style,
which the Fig 7 benchmark regenerates.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field

__all__ = ["TraceEvent", "Tracer", "render_trace"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One timestamped trace record."""

    time: float
    node_id: int
    qid: int
    kind: str
    detail: str = ""


class Tracer:
    """Collects trace events (cheap no-op when disabled)."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: list[TraceEvent] = []

    def record(
        self, time: float, node_id: int, qid: int, kind: str, detail: str = ""
    ) -> None:
        if self.enabled:
            self.events.append(TraceEvent(time, node_id, qid, kind, detail))

    def of_kind(self, *kinds: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind in kinds]

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


def render_trace(
    events: t.Sequence[TraceEvent],
    t0: float | None = None,
) -> str:
    """Render events in the Fig 7 style.

    Times are shown relative to ``t0`` (default: first event).
    """
    if not events:
        return "(empty trace)"
    base = min(e.time for e in events) if t0 is None else t0
    lines = []
    for e in sorted(events, key=lambda e: (e.time, e.node_id)):
        rel = e.time - base
        detail = f" {e.detail}" if e.detail else ""
        lines.append(f"[{rel:8.3f}s] N{e.node_id} q{e.qid} {e.kind}{detail}")
    return "\n".join(lines)
