"""Execution tracing (Figure 7) — a compatibility view over span streams.

The paper illustrates partitioning behaviour with timestamped system
traces ("N1 started paragraph retrieval...", "N2 finished chunk 3 in 0.19
sec").  :class:`Tracer` preserves that flat-event API, but since the
observability layer landed it is a thin view over a
:class:`~repro.observability.spans.SpanStream`: ``record`` stores a
zero-duration *instant* span, and ``events`` reconstructs the legacy
:class:`TraceEvent` list from the stream's instants.  The hierarchical
span data lives in the same stream, so one switch
(``SystemConfig.trace``) turns on both views and the Fig 7 benchmark is
unchanged.

``record`` is allocation-free when tracing is disabled, and ``max_events``
bounds the backing store so long chaos campaigns cannot grow the event
list without limit (overflow is counted, not stored).
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

from ..observability.spans import SpanStream

__all__ = ["TraceEvent", "Tracer", "render_trace"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One timestamped trace record."""

    time: float
    node_id: int
    qid: int
    kind: str
    detail: str = ""


class Tracer:
    """Flat Fig 7 event recorder, backed by a hierarchical span stream.

    Parameters
    ----------
    enabled:
        Record events (ignored when ``stream`` is given — the stream's
        own flag governs).
    max_events:
        Bound on stored events; extra records are counted in the
        stream's ``dropped`` instead of stored.  ``None`` = unbounded.
    stream:
        An existing :class:`SpanStream` to view (the system passes its
        span stream here so instants and spans share one store).
    """

    def __init__(
        self,
        enabled: bool = True,
        max_events: int | None = None,
        stream: SpanStream | None = None,
    ) -> None:
        self.stream = (
            SpanStream(enabled=enabled, max_spans=max_events)
            if stream is None
            else stream
        )

    @property
    def enabled(self) -> bool:
        """Whether events are being recorded (the stream's flag)."""
        return self.stream.enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self.stream.enabled = value

    @property
    def dropped(self) -> int:
        """Events discarded after the ``max_events`` bound was hit."""
        return self.stream.dropped

    def record(
        self, time: float, node_id: int, qid: int, kind: str, detail: str = ""
    ) -> None:
        """Record one event; a free no-op while tracing is disabled."""
        if self.stream.enabled:
            self.stream.instant(kind, qid, node_id, time, detail)

    @property
    def events(self) -> list[TraceEvent]:
        """The flat event list, rebuilt from the stream's instant spans."""
        return [
            TraceEvent(s.t0, s.node_id, s.qid, s.name, s.detail)
            for s in self.stream.instants()
        ]

    def of_kind(self, *kinds: str) -> list[TraceEvent]:
        """Events whose kind is one of ``kinds``, in record order."""
        return [e for e in self.events if e.kind in kinds]

    def count(self, kind: str) -> int:
        """Number of recorded events of ``kind``."""
        return sum(1 for s in self.stream.instants() if s.name == kind)

    def clear(self) -> None:
        """Drop all stored events (and spans — one shared store)."""
        self.stream.clear()

    def __len__(self) -> int:
        return len(self.stream.instants())


def render_trace(
    events: t.Sequence[TraceEvent],
    t0: float | None = None,
) -> str:
    """Render events in the Fig 7 style.

    Times are shown relative to ``t0`` (default: first event).
    """
    if not events:
        return "(empty trace)"
    base = min(e.time for e in events) if t0 is None else t0
    lines = []
    for e in sorted(events, key=lambda e: (e.time, e.node_id)):
        rel = e.time - base
        detail = f" {e.detail}" if e.detail else ""
        lines.append(f"[{rel:8.3f}s] N{e.node_id} q{e.qid} {e.kind}{detail}")
    return "\n".join(lines)
