"""The DNS front-end (Section 3.1).

"We assume that an initial distribution of questions among processors is
already performed by the Domain Name Service ... requests are mapped to
system processors in a round-robin manner.  In practice, load balancing
using this strategy is far from perfect ... due to DNS address caching,
requests from the same net are directed to the same IP address for the
lifetime of the cache."

:class:`DNSFrontend` models both regimes: perfect round-robin (what the
paper's experiments assume for comparability) and cache-skewed assignment
for robustness studies.
"""

from __future__ import annotations

import numpy as np

from ..observability.metrics import MetricsRegistry
from ..observability.names import DNS_ASSIGNMENTS

__all__ = ["DNSFrontend"]


class DNSFrontend:
    """Round-robin question-to-node assignment, optionally cache-skewed.

    Parameters
    ----------
    n_nodes:
        Number of cluster nodes.
    cache_skew:
        Probability that a request repeats the previous assignment instead
        of advancing the round-robin pointer (models DNS caches pinning
        whole client networks to one address).  0 = the paper's "perfect
        round-robin initial question distribution".
    """

    def __init__(
        self,
        n_nodes: int,
        cache_skew: float = 0.0,
        seed: int = 0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("need at least one node")
        if not 0.0 <= cache_skew < 1.0:
            raise ValueError("cache_skew must be in [0, 1)")
        self.n_nodes = n_nodes
        self.cache_skew = cache_skew
        self.metrics = metrics
        self._rng = np.random.default_rng(seed)
        self._next = 0
        self._last = 0
        self.assignments: list[int] = []

    def assign(self) -> int:
        """Pick the entry node for the next question."""
        if self.cache_skew > 0.0 and self._rng.random() < self.cache_skew:
            node = self._last
        else:
            node = self._next
            self._next = (self._next + 1) % self.n_nodes
        self._last = node
        self.assignments.append(node)
        if self.metrics is not None:
            self.metrics.inc(DNS_ASSIGNMENTS)
        return node
