"""A simulated cluster node.

Models one of the paper's workstations: a CPU, a disk, and 256 MB of
memory (Section 6's testbed: 500 MHz Pentium III, 256 MB RAM, 50 GB disk).
CPU and disk are fair-share resources; memory overcommit translates into a
CPU slowdown, reproducing the paper's observation that more than four
simultaneous questions cause "excessive page swapping" and throughput
collapse (Section 4.2).
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

from ..qa.costs import ModuleCost, ReferenceHardware
from ..simulation.engine import Environment
from ..simulation.events import Event
from ..simulation.resources import FairShareResource, MemoryResource

__all__ = ["NodeConfig", "ClusterNode", "NodeDown"]


class NodeDown(Exception):
    """Raised into tasks waiting for admission on a node that died."""

    def __init__(self, node_id: int) -> None:
        super().__init__(f"node {node_id} went down")
        self.node_id = node_id


class Stolen(Exception):
    """Raised into a queued task claimed by an idle node (work stealing).

    Receiver-initiated diffusion (the paper's related work [31, 35]): an
    idle node pulls a waiting question from a loaded peer's queue.  The
    task catches this at its admission wait and re-enqueues at ``target``.
    """

    def __init__(self, target: int) -> None:
        super().__init__(f"stolen by node {target}")
        self.target = target


@dataclass(frozen=True, slots=True)
class NodeConfig:
    """Per-node hardware parameters."""

    cpu_speed: float = 1.0  # relative to the reference CPU
    disk_bandwidth: float = 25e6  # bytes/second
    memory_bytes: float = 256e6
    #: Memory statically used by the OS and resident services.
    baseline_memory_bytes: float = 100e6
    #: CPU slowdown per unit of memory overcommit (page-thrash model):
    #: effective_speed = cpu_speed / (1 + thrash_factor * overcommit).
    thrash_factor: float = 6.0
    #: Questions the node's Q/A service executes concurrently; further
    #: hosted questions wait in a FIFO queue.  The paper measured best
    #: throughput at 2-3 simultaneous questions, degradation past 4
    #: (Section 4.2), so the service admits 3.
    max_concurrent_questions: int = 3

    @classmethod
    def from_reference(cls, hw: ReferenceHardware, **kwargs: float) -> "NodeConfig":
        return cls(
            cpu_speed=hw.cpu_speed,
            disk_bandwidth=hw.disk_bandwidth,
            memory_bytes=hw.memory_bytes,
            **kwargs,  # type: ignore[arg-type]
        )


class ClusterNode:
    """One node of the distributed Q/A system."""

    def __init__(
        self,
        env: Environment,
        node_id: int,
        config: NodeConfig | None = None,
    ) -> None:
        self.env = env
        self.node_id = node_id
        self.config = config or NodeConfig()
        self.cpu = FairShareResource(
            env, capacity=self.config.cpu_speed, name=f"cpu[{node_id}]"
        )
        self.disk = FairShareResource(
            env, capacity=self.config.disk_bandwidth, name=f"disk[{node_id}]"
        )
        self.memory = MemoryResource(
            env,
            capacity_bytes=self.config.memory_bytes,
            name=f"mem[{node_id}]",
            on_pressure_change=self._on_memory_pressure,
        )
        self.memory.allocate(self.config.baseline_memory_bytes)
        #: Q/A tasks currently hosted here, running or queued (the
        #: dispatcher's n_questions signal).
        self.active_questions = 0
        #: Q/A tasks currently *executing* (admission-controlled).
        self.running_questions = 0
        self._admission_waiters: list[Event] = []
        self.up = True

    # -- question admission (FIFO, bounded concurrency) ---------------------------
    @property
    def waiting_questions(self) -> int:
        """Hosted questions not yet admitted to execution."""
        return len(self._admission_waiters)

    def admit_question(self) -> Event:
        """Event firing when the question may start executing.

        Fires immediately (still via the queue, keeping determinism) when
        a slot is free; otherwise the caller waits in FIFO order.
        """
        event = self.env.event(name=f"admit[{self.node_id}]")
        if self.running_questions < self.config.max_concurrent_questions:
            self.running_questions += 1
            event.succeed()
        else:
            self._admission_waiters.append(event)
        return event

    def release_question(self) -> None:
        """Free an execution slot, admitting the next waiter if any."""
        if self._admission_waiters:
            self._admission_waiters.pop(0).succeed()
        else:
            self.running_questions = max(0, self.running_questions - 1)

    def fail_admission_waiters(self) -> None:
        """Reject every queued question (the node just died)."""
        waiters, self._admission_waiters = self._admission_waiters, []
        for event in waiters:
            event.fail(NodeDown(self.node_id))

    def steal_waiter(self, thief: int) -> bool:
        """Hand the most recently queued question to node ``thief``.

        LIFO stealing: the youngest waiter has waited least, so moving it
        is fairest.  Returns False when the queue is empty.
        """
        if not self._admission_waiters:
            return False
        event = self._admission_waiters.pop()
        event.fail(Stolen(thief))
        return True

    # -- memory-pressure -> CPU thrash -------------------------------------------
    def _on_memory_pressure(self, overcommit: float) -> None:
        effective = self.config.cpu_speed / (
            1.0 + self.config.thrash_factor * overcommit
        )
        self.cpu.set_capacity(max(effective, 1e-6))

    # -- resource consumption (process bodies) ---------------------------------
    def run_cpu(self, cpu_s: float) -> t.Generator[Event, object, None]:
        """Consume ``cpu_s`` reference-CPU seconds on this node."""
        if cpu_s > 0:
            job = self.cpu.use(cpu_s)
            yield job.event

    def run_disk(self, nbytes: float) -> t.Generator[Event, object, None]:
        """Read ``nbytes`` from this node's disk."""
        if nbytes > 0:
            job = self.disk.use(nbytes)
            yield job.event

    def run_cost(self, cost: ModuleCost) -> t.Generator[Event, object, None]:
        """Consume a module cost: disk phase then CPU phase.

        Sequential disk->CPU matches the iterative read-then-process
        structure of the real modules and produces the utilisation splits
        of Table 3 (a PR sub-task keeps the disk busy ~80 % of its
        duration and the CPU ~20 %).
        """
        yield from self.run_disk(cost.disk_bytes)
        yield from self.run_cpu(cost.cpu_s)

    # -- load sampling ------------------------------------------------------------
    def load_checkpoints(self) -> tuple[tuple[float, float], tuple[float, float]]:
        """Snapshot (cpu, disk) activity integrals for windowed averages."""
        now = self.env.now
        return (
            self.cpu.active_jobs.checkpoint(now),
            self.disk.active_jobs.checkpoint(now),
        )

    def loads_since(
        self, checkpoints: tuple[tuple[float, float], tuple[float, float]]
    ) -> tuple[float, float]:
        """Average (cpu_load, disk_load) since ``checkpoints``."""
        cpu_cp, disk_cp = checkpoints
        now = self.env.now
        return (
            self.cpu.active_jobs.average(cpu_cp, now),
            self.disk.active_jobs.average(disk_cp, now),
        )
