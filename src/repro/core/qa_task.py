"""The distributed Q/A task (Figure 3).

Executes one :class:`~repro.qa.profiles.QuestionProfile` on the simulated
cluster, driving the full low-level architecture:

    QP -> [PR dispatcher] -> PR(1..k) -> PS(1..k) -> paragraph merging
       -> PO -> [AP dispatcher] -> AP(1..n) -> answer merging -> sorting

with three scheduling points (question dispatcher handled by the system
before the task starts; PR and AP dispatchers embedded here), the three
partitioning strategies, failure recovery, and full per-module /
per-overhead-component accounting (Tables 8 and 9).
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field

from ..observability.names import (
    NODE_QUEUE_WAIT_S,
    PARTITION_CHUNKS,
)
from ..observability.spans import Span, SpanCategory
from ..qa.profiles import CollectionProfile, ParagraphProfile, QuestionProfile
from ..simulation.events import Event
from ..simulation.network import TransferFailed
from .load import AP_WEIGHTS, PR_WEIGHTS, single_task_load
from .node import NodeDown, Stolen
from .meta_scheduler import Assignment, meta_schedule
from .partitioning import (
    PartitionAbort,
    PartitioningStrategy,
    RetryPolicy,
    WorkerFailed,
    run_receiver_controlled,
    run_sender_controlled,
)

if t.TYPE_CHECKING:  # pragma: no cover
    from .system import DistributedQASystem

__all__ = ["TaskPolicy", "TaskResult", "DistributedQATask"]


@dataclass(frozen=True, slots=True)
class TaskPolicy:
    """Scheduling policy knobs for one task (usually system-wide).

    ``enable_*`` flags decompose the DNS / INTER / DQA strategies and
    support the ablation experiments.
    """

    enable_question_dispatch: bool = True
    enable_pr_dispatch: bool = True
    enable_ap_dispatch: bool = True
    enable_partitioning: bool = True
    pr_strategy: PartitioningStrategy = PartitioningStrategy.RECV
    ap_strategy: PartitioningStrategy = PartitioningStrategy.RECV
    #: RECV chunk sizes: PR chunks are sub-collections; AP chunks are
    #: paragraphs (Fig 10's empirical optimum is ~40).
    pr_chunk_collections: int = 1
    ap_chunk_paragraphs: int = 40
    #: Extension: size AP chunks as n_accepted/(chunks_per_node * width)
    #: instead of a fixed count, so wide partitions keep enough chunks for
    #: the pull-based balancing to work (Fig 10's trade-off, automated).
    ap_chunk_adaptive: bool = False
    ap_chunks_per_node: int = 4
    #: Under-load margins slightly above 1.0 tolerate the measurement
    #: artifact where a node's last monitoring window catches the CPU tail
    #: of its previous sub-task (Section 4.2 calls these empirical).
    pr_underload_margin: float = 1.1
    ap_underload_margin: float = 1.1
    #: Fixed per-chunk/partition AP cost: each AP replica must extract and
    #: rank its local n_a answers ("a constant number of answers must be
    #: extracted from each chunk", Section 4.1.2).
    ap_per_partition_cpu_s: float = 0.18
    #: Memory a remote PR sub-task needs (index buffers).
    pr_subtask_memory_bytes: float = 8e6
    #: Fraction of a question's memory that is host-side state; the rest
    #: is the paragraph working set held by whichever node(s) execute AP.
    host_memory_fraction: float = 0.5
    #: Bounded-retry/backoff policy for the distribution loops' failure
    #: recovery.  The default (unbounded, no backoff) is the paper's
    #: behaviour; chaos campaigns bound it so flapping clusters converge.
    distribution_retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: CPU seconds a dispatcher spends per load-table entry it scans
    #: (Eq 15's ``t_dispatch``).  The paper-faithful default of 0 keeps
    #: dispatch decisions instantaneous; ``repro observe`` sets it to the
    #: model's ~1e-5 s so measured dispatch cost is comparable to Eq 15.
    dispatch_scan_cpu_s: float = 0.0


@dataclass(slots=True)
class TaskResult:
    """Everything measured about one executed question."""

    qid: int
    arrival_time: float
    start_time: float = 0.0
    end_time: float = 0.0
    entry_node: int = -1
    host_node: int = -1
    #: Critical-path compute seconds per module (Table 8 semantics).
    module_times: dict[str, float] = field(
        default_factory=lambda: {"QP": 0.0, "PR": 0.0, "PS": 0.0, "PO": 0.0, "AP": 0.0}
    )
    #: Distribution overhead per component (Table 9 semantics).
    overhead: dict[str, float] = field(
        default_factory=lambda: {
            "keyword_send": 0.0,
            "paragraph_recv": 0.0,
            "paragraph_send": 0.0,
            "answer_recv": 0.0,
            "answer_sort": 0.0,
        }
    )
    migrated_qa: bool = False
    migrated_pr: bool = False
    migrated_ap: bool = False
    #: Times this question was claimed from a queue by an idle node
    #: (receiver-initiated work stealing, extension).
    stolen: int = 0
    pr_partition_width: int = 1
    ap_partition_width: int = 1
    #: True when the hosting node died mid-task (the task state is lost;
    #: the paper's recovery covers worker failures, not host failures).
    failed: bool = False

    @property
    def response_time(self) -> float:
        """Execution latency: admission to completion (Table 6's metric).

        The paper's response times (111-144 s under a load of 8
        questions/node) can only be execution latencies — queueing delay
        is reported through throughput/makespan instead.
        """
        return self.end_time - self.start_time

    @property
    def sojourn_time(self) -> float:
        """Arrival (DNS assignment) to completion, including queueing."""
        return self.end_time - self.arrival_time

    @property
    def queue_wait(self) -> float:
        return self.start_time - self.arrival_time

    @property
    def total_overhead(self) -> float:
        return sum(self.overhead.values())


class DistributedQATask:
    """One question's journey through the distributed system."""

    def __init__(
        self,
        system: "DistributedQASystem",
        profile: QuestionProfile,
        entry_node: int,
        policy: TaskPolicy,
    ) -> None:
        self.system = system
        self.profile = profile
        self.policy = policy
        self.result = TaskResult(
            qid=profile.qid,
            arrival_time=system.env.now,
            entry_node=entry_node,
        )
        self.host = entry_node
        #: Paragraph bytes produced per PR worker (drives host-side merging).
        self._pr_remote_bytes: dict[int, float] = {}
        #: Hierarchical span tracing (shares the system's store with the
        #: flat Fig 7 tracer).  ``_root`` is the per-question root span,
        #: ``_stage`` the currently open partition-stage span that chunk
        #: executors and transfers attach to.
        self._spans = system.spans
        self._root: Span | None = None
        self._stage: Span | None = None

    # -- helpers ----------------------------------------------------------------
    def _node(self, nid: int):
        return self.system.nodes[nid]

    def _enqueue(self, nid: int) -> t.Generator[Event, object, None]:
        """Queue at ``nid`` until admitted, following work-steal claims.

        On admission, ``self.host`` is the node that admitted the task
        (possibly a thief).  Raises :class:`NodeDown` if every node the
        task lands on dies while it waits.
        """
        env = self.system.env
        t_enter = env.now
        span = self._spans.begin(
            "queue",
            SpanCategory.QUEUE,
            self.profile.qid,
            nid,
            t_enter,
            parent=self._root,
        )
        try:
            while True:
                node = self._node(nid)
                node.active_questions += 1
                try:
                    yield node.admit_question()
                except NodeDown:
                    node.active_questions -= 1
                    raise
                except Stolen as claim:
                    node.active_questions -= 1
                    self._trace(nid, "stolen", "-> N%d", claim.target)
                    try:
                        yield from self.system.network.transfer(
                            nid, claim.target, self.profile.question_bytes
                        )
                    except TransferFailed:
                        continue  # thief died mid-claim: re-queue at home
                    self.result.stolen += 1
                    nid = claim.target
                    continue
                self.host = nid
                self.system.metrics.observe(
                    NODE_QUEUE_WAIT_S, env.now - t_enter
                )
                return
        finally:
            self._spans.end(span, env.now, node=nid)

    def _abandon(self, reason: str) -> TaskResult:
        """Mark the task lost before it ever started executing."""
        now = self.system.env.now
        self.result.failed = True
        self.result.start_time = now
        self.result.end_time = now
        self._trace(self.host, "task-lost", reason)
        return self.result

    def _trace(self, nid: int, kind: str, fmt: str = "", *args: object) -> None:
        """Fig 7 instant with %-style lazy detail formatting.

        The detail string is only built when tracing is enabled, so the
        disabled hot path allocates nothing (the satellite requirement on
        ``Tracer.record``).
        """
        tracer = self.system.tracer
        if tracer.enabled:
            tracer.record(
                self.system.env.now,
                nid,
                self.profile.qid,
                kind,
                fmt % args if args else fmt,
            )

    def _transfer(
        self, src: int, dst: int, nbytes: float, category: str,
        new_connection: bool = False,
        parent: Span | None = None,
    ) -> t.Generator[Event, object, None]:
        """Network transfer with overhead accounting (skipped when local)."""
        if src == dst or nbytes <= 0:
            return
        # Guard before building the f-string label/detail: transfers are a
        # hot path and the disabled trace must not allocate.
        spans = self._spans
        span = spans.begin(
            f"xfer:{category}",
            SpanCategory.COMMS,
            self.profile.qid,
            src,
            self.system.env.now,
            parent=parent if parent is not None else self._root,
            detail=f"N{src} -> N{dst}",
        ) if spans.enabled else None
        elapsed = yield from self.system.network.transfer(
            src, dst, nbytes, new_connection=new_connection
        )
        self._spans.end(span, self.system.env.now, bytes=nbytes)
        self.result.overhead[category] += t.cast(float, elapsed)

    # -- main task body -------------------------------------------------------------
    def run(self) -> t.Generator[Event, object, TaskResult]:
        env = self.system.env
        profile = self.profile
        result = self.result
        self._root = self._spans.begin(
            "question", SpanCategory.TASK, profile.qid, self.host, env.now
        )
        try:
            result = yield from self._run_traced()
        finally:
            self._spans.end(
                self._root,
                env.now,
                host=self.host,
                failed=self.result.failed,
                stolen=self.result.stolen,
            )
        return result

    def _run_traced(self) -> t.Generator[Event, object, TaskResult]:
        """The task body proper (wrapped by ``run``'s root span)."""
        env = self.system.env
        profile = self.profile
        result = self.result

        # ---- queue at the DNS-assigned node: the node's Q/A service runs
        # a bounded number of questions concurrently; the rest wait
        # (Section 6.1's full-load notion: 4 simultaneous questions).  A
        # queued question may be claimed by an idle peer (work stealing).
        try:
            yield from self._enqueue(self.host)
        except NodeDown:
            return self._abandon("entry node died while queued")

        # ---- question dispatcher (scheduling point 1): runs "before the
        # Q/A task is started" — i.e. when the question leaves the queue.
        # If the DNS-allocated node is over-loaded relative to a peer, the
        # task migrates (and queues there if needed).
        if self.policy.enable_question_dispatch:
            try:
                yield from self._dispatch_question()
            except NodeDown:
                return self._abandon("migration target died while queued")
        result.host_node = self.host
        host_node = self._node(self.host)
        result.start_time = env.now

        # ---- host-side task state lives here for the task's duration; the
        # paragraph working set is charged to whoever executes AP.
        host_mem = profile.memory_bytes * self.policy.host_memory_fraction
        host_node.memory.allocate(host_mem)
        try:
            yield from self._run_stages()
        except (WorkerFailed, PartitionAbort):
            # The host itself died: task state is lost.  The front-end
            # would surface an error to the user; the workload records it
            # as a failed question.
            result.failed = True
            self._trace(self.host, "task-lost", "host failed")
        finally:
            host_node.active_questions -= 1
            host_node.release_question()
            host_node.memory.release(host_mem)
        result.end_time = env.now
        if not result.failed:
            self._trace(self.host, "done", "%.2fs", result.response_time)
        return result

    def _dispatch_question(self) -> t.Generator[Event, object, None]:
        """Scheduling point 1 with bounded retry + exponential backoff.

        The migration hand-off can fail mid-transfer when the chosen
        target died after the last load broadcast.  Rather than losing
        the question, the dispatcher backs off and retries against the
        next-best candidate, up to its attempt budget; once the budget is
        exhausted the question stays home.
        """
        env = self.system.env
        qid = self.profile.qid
        dispatcher = self.system.question_dispatcher
        span = self._spans.begin(
            "dispatch:qa",
            SpanCategory.DISPATCH,
            qid,
            self.host,
            env.now,
            parent=self._root,
        )
        yield from self._dispatch_scan_cost()
        dead: set[int] = set()
        for attempt in range(dispatcher.max_attempts):
            target = dispatcher.choose(self.host, exclude=dead)
            if target == self.host:
                self._spans.end(span, env.now)
                return
            mspan = self._spans.begin(
                "migrate:qa",
                SpanCategory.MIGRATION,
                qid,
                self.host,
                env.now,
                parent=span,
                detail=f"-> N{target}",
            ) if self._spans.enabled else None
            try:
                yield from self.system.network.transfer(
                    self.host, target, self.profile.question_bytes
                )
            except TransferFailed:
                dispatcher.note_migration_failure()
                dead.add(target)
                self._trace(self.host, "qa-migrate-failed", "-> N%d", target)
                delay = dispatcher.backoff_delay(attempt)
                if delay > 0:
                    yield env.timeout(delay)
                # The migration span covers the failed hand-off plus its
                # backoff — the measurable cost of the retry.
                self._spans.end(mspan, env.now, failed=True)
                continue
            self._spans.end(mspan, env.now)
            self._trace(self.host, "qa-migrate", "-> N%d", target)
            self.result.migrated_qa = True
            source = self._node(self.host)
            source.active_questions -= 1
            source.release_question()
            # End the dispatch span before queueing at the target: the
            # wait there is queueing, not dispatch (the queue span is a
            # sibling under the question root).
            self._spans.end(span, env.now, migrated=True)
            yield from self._enqueue(target)
            return
        self._spans.end(span, env.now, exhausted=True)

    def _dispatch_scan_cost(self) -> t.Generator[Event, object, None]:
        """Charge the host the Eq 15 load-table scan cost (if modelled)."""
        cost = self.policy.dispatch_scan_cpu_s
        if cost > 0:
            yield from self._node(self.host).run_cpu(
                cost * self.system.config.n_nodes
            )

    def _module_span(self, name: str) -> Span | None:
        """Open a host-side compute span under the question root."""
        return self._spans.begin(
            name,
            SpanCategory.COMPUTE,
            self.profile.qid,
            self.host,
            self.system.env.now,
            parent=self._root,
        )

    def _run_stages(self) -> t.Generator[Event, object, None]:
        profile = self.profile
        result = self.result
        host_node = self._node(self.host)

        # ---- QP -------------------------------------------------------------------
        t0 = self.system.env.now
        self._trace(self.host, "qp-start")
        span = self._module_span("QP")
        yield from host_node.run_cpu(profile.qp_cpu_s)
        self._spans.end(span, self.system.env.now)
        result.module_times["QP"] = self.system.env.now - t0

        # ---- PR + PS (scheduling point 2) ----------------------------------------
        yield from self._run_pr_stage()

        # ---- PO --------------------------------------------------------------------
        t0 = self.system.env.now
        span = self._module_span("PO")
        yield from host_node.run_cpu(profile.po_cpu_s)
        self._spans.end(span, self.system.env.now)
        result.module_times["PO"] = self.system.env.now - t0
        self._trace(self.host, "po-done", "%d accepted", profile.n_accepted)

        # ---- AP (scheduling point 3) ------------------------------------------------
        yield from self._run_ap_stage()

        # ---- answer sorting ---------------------------------------------------------
        t0 = self.system.env.now
        span = self._module_span("sort:answers")
        sort_cpu = 2e-4 * profile.n_answers * max(1, result.ap_partition_width)
        yield from host_node.run_cpu(sort_cpu)
        self._spans.end(span, self.system.env.now)
        result.overhead["answer_sort"] += self.system.env.now - t0

    # -- PR stage -----------------------------------------------------------------------
    def _select_collections(
        self,
    ) -> t.Generator[Event, object, list[CollectionProfile]]:
        """Mediator routing before the PR fan-out (collection selection).

        ``collection_selection="off"`` touches nothing — the legacy
        broadcast, byte-identical to pre-selection builds.  When on, the
        host charges one sketch probe per sub-collection, then the stage
        iterates the profile's predicted collections only: the selected
        count caps the Table 2 iterative granularity, so SEND/ISEND/RECV
        partition over fewer sub-tasks and the Eq 14/15 partition-comms
        and migration payloads shrink with it.  A profile predicting
        nothing falls back to the full fan-out — selection may cost
        recall, never the question.
        """
        profile = self.profile
        collections = profile.collections
        config = self.system.config
        if config.collection_selection == "off":
            return collections
        if config.collection_selection != "sketch":
            raise ValueError(
                "unknown collection_selection "
                f"{config.collection_selection!r}, want 'off' or 'sketch'"
            )
        env = self.system.env
        t0 = env.now
        stage = self._spans.begin(
            "stage:PR-select",
            SpanCategory.PARTITION,
            profile.qid,
            self.host,
            env.now,
            parent=self._root,
        )
        probe = self._spans.begin(
            "select:sketch-probe",
            SpanCategory.DISPATCH,
            profile.qid,
            self.host,
            env.now,
            parent=stage,
        )
        yield from self._node(self.host).run_cpu(
            config.selection_probe_cpu_s * len(collections)
        )
        self._spans.end(probe, env.now, probed=len(collections))
        keep = profile.selected_collections
        selected = collections
        if keep is not None:
            keep_set = set(keep)
            selected = [
                c for c in collections if c.collection_id in keep_set
            ] or collections
        self.result.overhead["pr_select"] = (
            self.result.overhead.get("pr_select", 0.0) + (env.now - t0)
        )
        self._spans.end(
            stage,
            env.now,
            kept=len(selected),
            pruned=len(collections) - len(selected),
        )
        return selected

    def _run_pr_stage(self) -> t.Generator[Event, object, None]:
        env = self.system.env
        profile = self.profile
        result = self.result
        policy = self.policy
        collections = yield from self._select_collections()
        pr_compute: dict[int, float] = {}
        ps_compute: dict[int, float] = {}

        stage = self._spans.begin(
            "stage:PR",
            SpanCategory.PARTITION,
            profile.qid,
            self.host,
            env.now,
            parent=self._root,
        )
        dspan = self._spans.begin(
            "dispatch:pr",
            SpanCategory.DISPATCH,
            profile.qid,
            self.host,
            env.now,
            parent=stage,
        )
        if policy.enable_pr_dispatch:
            yield from self._dispatch_scan_cost()
        assignment = self._dispatch(
            enabled=policy.enable_pr_dispatch,
            weights=PR_WEIGHTS,
            margin=policy.pr_underload_margin,
            max_parts=len(collections),
        )
        self._spans.end(dspan, env.now, width=len(assignment.shares))
        result.pr_partition_width = len(assignment.shares)
        if assignment.node_ids != [self.host]:
            result.migrated_pr = True
            self._trace(
                self.host, "pr-dispatch",
                "-> %s", ",".join(f"N{n}" for n in assignment.node_ids),
            )

        def executor(
            nid: int, items: list[CollectionProfile]
        ) -> t.Generator[Event, object, None]:
            yield from self._pr_executor(nid, items, pr_compute, ps_compute)

        self._stage = stage
        try:
            yield from self._distribute(
                items=collections,
                assignment=assignment,
                executor=executor,
                strategy=policy.pr_strategy,
                chunk_size=policy.pr_chunk_collections,
            )

            # Paragraph merging: the host reads remotely produced paragraphs
            # back from disk before ordering (Section 3.2).
            remote_bytes = sum(
                b
                for nid, b in self._pr_remote_bytes.items()
                if nid != self.host
            )
            if remote_bytes > 0:
                mspan = self._spans.begin(
                    "merge:paragraphs",
                    SpanCategory.COMPUTE,
                    profile.qid,
                    self.host,
                    env.now,
                    parent=stage,
                )
                yield from self._node(self.host).run_disk(remote_bytes)
                self._spans.end(mspan, env.now, bytes=remote_bytes)
        finally:
            self._stage = None
            self._spans.end(
                stage, env.now, width=len(assignment.shares)
            )

        result.module_times["PR"] = max(pr_compute.values(), default=0.0)
        result.module_times["PS"] = max(ps_compute.values(), default=0.0)

    def _pr_executor(
        self,
        nid: int,
        items: list[CollectionProfile],
        pr_compute: dict[int, float],
        ps_compute: dict[int, float],
    ) -> t.Generator[Event, object, None]:
        """Run PR+PS for a set of collections on node ``nid``."""
        env = self.system.env
        node = self._node(nid)
        remote = nid != self.host
        allocated = False
        chunk = self._spans.begin(
            "pr-chunk",
            SpanCategory.PARTITION,
            self.profile.qid,
            nid,
            env.now,
            parent=self._stage,
            detail=f"{len(items)}c",
        ) if self._spans.enabled else None
        self.system.metrics.inc(PARTITION_CHUNKS)
        try:
            if remote:
                yield from self._transfer(
                    self.host, nid, self.profile.keyword_bytes, "keyword_send",
                    new_connection=True, parent=chunk,
                )
                node.memory.allocate(self.policy.pr_subtask_memory_bytes)
                allocated = True
            for coll in items:
                if not node.up:
                    raise WorkerFailed(nid, items[items.index(coll):])
                cspan = self._spans.begin(
                    "pr+ps",
                    SpanCategory.COMPUTE,
                    self.profile.qid,
                    nid,
                    env.now,
                    parent=chunk,
                    detail=f"c{coll.collection_id}",
                ) if self._spans.enabled else None
                t0 = env.now
                yield from node.run_cost(coll.cost)
                pr_compute[nid] = pr_compute.get(nid, 0.0) + (env.now - t0)
                t0 = env.now
                yield from node.run_cpu(coll.ps_cpu_s)
                ps_compute[nid] = ps_compute.get(nid, 0.0) + (env.now - t0)
                self._spans.end(cspan, env.now)
                self._trace(
                    nid, "pr-collection",
                    "c%d %dp", coll.collection_id, coll.n_paragraphs,
                )
                if remote:
                    yield from self._transfer(
                        nid, self.host, coll.paragraph_bytes, "paragraph_recv",
                        parent=chunk,
                    )
                self._pr_remote_bytes[nid] = self._pr_remote_bytes.get(
                    nid, 0.0
                ) + coll.paragraph_bytes
        except TransferFailed as exc:
            raise WorkerFailed(nid, items) from exc
        finally:
            if allocated:
                node.memory.release(self.policy.pr_subtask_memory_bytes)
            self._spans.end(chunk, env.now)

    # -- AP stage -----------------------------------------------------------------------
    def _run_ap_stage(self) -> t.Generator[Event, object, None]:
        env = self.system.env
        profile = self.profile
        result = self.result
        policy = self.policy
        paragraphs = profile.paragraphs
        ap_compute: dict[int, float] = {}

        stage = self._spans.begin(
            "stage:AP",
            SpanCategory.PARTITION,
            profile.qid,
            self.host,
            env.now,
            parent=self._root,
        )
        dspan = self._spans.begin(
            "dispatch:ap",
            SpanCategory.DISPATCH,
            profile.qid,
            self.host,
            env.now,
            parent=stage,
        )
        if policy.enable_ap_dispatch:
            yield from self._dispatch_scan_cost()
        assignment = self._dispatch(
            enabled=policy.enable_ap_dispatch,
            weights=AP_WEIGHTS,
            margin=policy.ap_underload_margin,
            max_parts=None,
        )
        self._spans.end(dspan, env.now, width=len(assignment.shares))
        result.ap_partition_width = len(assignment.shares)
        if assignment.node_ids != [self.host]:
            result.migrated_ap = True
            self._trace(
                self.host, "ap-dispatch",
                "-> %s", ",".join(f"N{n}" for n in assignment.node_ids),
            )

        def executor(
            nid: int, items: list[ParagraphProfile]
        ) -> t.Generator[Event, object, None]:
            yield from self._ap_executor(nid, items, ap_compute)

        chunk = policy.ap_chunk_paragraphs
        if policy.ap_chunk_adaptive:
            width = max(1, len(assignment.shares))
            chunk = max(
                5, len(paragraphs) // (policy.ap_chunks_per_node * width)
            )
        self._stage = stage
        try:
            yield from self._distribute(
                items=paragraphs,
                assignment=assignment,
                executor=executor,
                strategy=policy.ap_strategy,
                chunk_size=chunk,
            )
        finally:
            self._stage = None
            self._spans.end(stage, env.now, width=len(assignment.shares))
        result.module_times["AP"] = max(ap_compute.values(), default=0.0)

    def _ap_executor(
        self,
        nid: int,
        items: list[ParagraphProfile],
        ap_compute: dict[int, float],
    ) -> t.Generator[Event, object, None]:
        env = self.system.env
        node = self._node(nid)
        remote = nid != self.host
        nbytes = sum(p.size_bytes for p in items)
        ap_mem_total = self.profile.memory_bytes * (
            1.0 - self.policy.host_memory_fraction
        )
        mem_share = ap_mem_total * len(items) / max(1, self.profile.n_accepted)
        allocated = False
        chunk = self._spans.begin(
            "ap-chunk",
            SpanCategory.PARTITION,
            self.profile.qid,
            nid,
            env.now,
            parent=self._stage,
            detail=f"{len(items)}p",
        ) if self._spans.enabled else None
        self.system.metrics.inc(PARTITION_CHUNKS)
        try:
            if remote:
                yield from self._transfer(
                    self.host, nid, nbytes, "paragraph_send",
                    new_connection=True, parent=chunk,
                )
            node.memory.allocate(mem_share)
            allocated = True
            if not node.up:
                raise WorkerFailed(nid, items)
            cspan = self._spans.begin(
                "ap",
                SpanCategory.COMPUTE,
                self.profile.qid,
                nid,
                env.now,
                parent=chunk,
            )
            t0 = env.now
            cpu = sum(p.ap_cpu_s for p in items) + self.policy.ap_per_partition_cpu_s
            yield from node.run_cpu(cpu)
            ap_compute[nid] = ap_compute.get(nid, 0.0) + (env.now - t0)
            self._spans.end(cspan, env.now)
            self._trace(nid, "ap-part", "%dp in %.2fs", len(items), env.now - t0)
            if not node.up:
                raise WorkerFailed(nid, items)
            if remote:
                answer_bytes = self.profile.n_answers * self.profile.answer_bytes
                yield from self._transfer(
                    nid, self.host, answer_bytes, "answer_recv", parent=chunk
                )
                # The host reads received answers from disk before merging.
                yield from self._node(self.host).run_disk(answer_bytes)
        except TransferFailed as exc:
            raise WorkerFailed(nid, items) from exc
        finally:
            if allocated:
                node.memory.release(mem_share)
            self._spans.end(chunk, env.now)

    # -- shared dispatch/distribution machinery ----------------------------------------
    def _dispatch(
        self,
        enabled: bool,
        weights,
        margin: float,
        max_parts: int | None,
    ) -> Assignment:
        """Run a module dispatcher, or stay on the host when disabled."""
        if not enabled:
            return Assignment(shares=((self.host, 1.0),), forced_single=True)
        table = self.system.monitoring.view(self.host)
        if not self.policy.enable_partitioning:
            max_parts = 1
        assignment = meta_schedule(
            table,
            weights,
            underload_margin=margin,
            max_parts=max_parts,
            include=self.host,
            stay_on=self.host,
            stay_threshold=single_task_load(weights),
            registry=self.system.metrics,
        )
        # Optimistically account the dispatched work on the chosen nodes in
        # this host's view, damping same-interval herding.
        monitoring = self.system.monitoring
        for nid, share in assignment.shares:
            monitoring.note_load_share(
                self.host, nid, weights.cpu * share, weights.disk * share
            )
        return assignment

    def _distribute(
        self,
        items: t.Sequence,
        assignment: Assignment,
        executor,
        strategy: PartitioningStrategy,
        chunk_size: int,
    ) -> t.Generator[Event, object, None]:
        if not items:
            return
        env = self.system.env
        if len(assignment.shares) == 1:
            nid = assignment.shares[0][0]
            yield from self._single_node_with_recovery(nid, list(items), executor)
            return
        if strategy is PartitioningStrategy.RECV:
            yield from run_receiver_controlled(
                env, items, assignment.node_ids, executor, chunk_size,
                policy=self.policy.distribution_retry,
                spans=self._spans,
                span_parent=self._stage,
                qid=self.profile.qid,
                metrics=self.system.metrics,
            )
        else:
            yield from run_sender_controlled(
                env,
                items,
                assignment.shares,
                executor,
                interleaved=strategy is PartitioningStrategy.ISEND,
                policy=self.policy.distribution_retry,
                spans=self._spans,
                span_parent=self._stage,
                qid=self.profile.qid,
                metrics=self.system.metrics,
            )

    def _single_node_with_recovery(
        self, nid: int, items: list, executor
    ) -> t.Generator[Event, object, None]:
        """Unpartitioned execution; on worker failure, fall back to host."""
        try:
            yield from executor(nid, items)
        except WorkerFailed as failure:
            if nid == self.host:
                raise  # the host itself died; the task is lost
            self._trace(nid, "worker-failed", "%d items", len(failure.unprocessed))
            yield from executor(self.host, list(failure.unprocessed))
