"""Partitioning strategies: SEND, ISEND, RECV (Section 4.1).

These implement Step 5 of the meta-scheduling algorithm — splitting an
iterative module's input items over the selected processors — plus the
failure-recovery distribution loops of Fig 5(c) and Fig 6(b).

* **SEND** (sender-controlled, direct): contiguous partitions sized by the
  processor weights.  Assumes sub-task granularity varies little.
* **ISEND** (sender-controlled, interleaved): round-robin interleaving of
  rank-ordered items, so each partition receives a similar mix of
  expensive and cheap items.  Valid when the input is sorted by
  granularity — true for AP (the PO rank order correlates with cost),
  not for PR.
* **RECV** (receiver-controlled): equal-size chunks pulled one at a time
  by the selected processors according to their actual availability.
  The only practical strategy for PR (Section 6.3), and the best for AP
  at the empirically optimal chunk size (~40 paragraphs, Fig 10).

The distribution loops are written against an abstract ``executor``
callback so the same code drives PR partitions (collections) and AP
partitions (paragraphs) in the simulated cluster — and plain lists in unit
tests.
"""

from __future__ import annotations

import enum
import typing as t
from dataclasses import dataclass

from ..observability.metrics import MetricsRegistry
from ..observability.names import PARTITION_RETRY_ROUNDS
from ..observability.spans import Span, SpanCategory, SpanStream
from ..simulation.engine import Environment, Process
from ..simulation.events import Event

__all__ = [
    "PartitionAbort",
    "PartitioningStrategy",
    "RetryPolicy",
    "WorkerFailed",
    "partition_send",
    "partition_isend",
    "make_chunks",
    "run_sender_controlled",
    "run_receiver_controlled",
]

T = t.TypeVar("T")


class PartitioningStrategy(enum.Enum):
    """The three Section 4.1 strategies."""

    SEND = "SEND"
    ISEND = "ISEND"
    RECV = "RECV"


class PartitionAbort(RuntimeError):
    """Every worker of a partitioned module failed.

    Since the task's host always participates in its own partitions, this
    only happens when the host itself is down — the task is lost.
    """


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded-retry + exponential-backoff policy for recovery loops.

    One *recovery round* is one pass of a distribution loop that had to
    reschedule work after worker failures.  The default policy
    (``max_rounds=None``, no backoff) reproduces the paper's behaviour:
    retry until the worker pool is exhausted, immediately.  Chaos
    campaigns run with a bounded budget and backoff so that a flapping
    cluster converges (or fails fast) instead of thrashing.
    """

    #: Recovery rounds allowed before the loop gives up with
    #: :class:`PartitionAbort`; ``None`` retries while workers remain.
    max_rounds: int | None = None
    #: First backoff delay; 0 disables backoff entirely.
    backoff_base_s: float = 0.0
    backoff_factor: float = 2.0
    backoff_max_s: float = 30.0

    def __post_init__(self) -> None:
        if self.max_rounds is not None and self.max_rounds < 0:
            raise ValueError("max_rounds must be >= 0 (or None)")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def exhausted(self, rounds: int) -> bool:
        """True once ``rounds`` recovery rounds exceed the budget."""
        return self.max_rounds is not None and rounds > self.max_rounds

    def delay(self, round_index: int) -> float:
        """Backoff before retry round ``round_index`` (0-based)."""
        if self.backoff_base_s <= 0:
            return 0.0
        return min(
            self.backoff_base_s * self.backoff_factor**round_index,
            self.backoff_max_s,
        )


class WorkerFailed(Exception):
    """Raised by an executor when its worker node dies mid-sub-task.

    Carries the unprocessed items so the recovery loop can reschedule
    them ("the distribution algorithm builds a new task input by
    concatenating all unprocessed partitions", Fig 5c).
    """

    def __init__(self, node_id: int, unprocessed: t.Sequence[object]) -> None:
        super().__init__(f"worker {node_id} failed with {len(unprocessed)} items")
        self.node_id = node_id
        self.unprocessed = list(unprocessed)


# -- pure partitioning functions ------------------------------------------------


def partition_send(
    items: t.Sequence[T], weights: t.Sequence[float]
) -> list[list[T]]:
    """Fig 5(a): contiguous partitions proportional to ``weights``.

    Partition sizes are the largest-remainder apportionment of
    ``len(items)`` over the weights, so every item lands in exactly one
    partition and sizes differ from the exact proportional share by < 1.
    """
    _check_weights(weights)
    n = len(items)
    sizes = _apportion(n, weights)
    out: list[list[T]] = []
    start = 0
    for size in sizes:
        out.append(list(items[start : start + size]))
        start += size
    return out


def partition_isend(
    items: t.Sequence[T], weights: t.Sequence[float]
) -> list[list[T]]:
    """Fig 5(b): interleaved partitions proportional to ``weights``.

    Items are dealt round-robin (weighted: each processor's deal
    frequency matches its weight) so that, when items are sorted by
    cost, every partition receives a similar cost mix.
    """
    _check_weights(weights)
    sizes = _apportion(len(items), weights)
    out: list[list[T]] = [[] for _ in weights]
    # Weighted round-robin deal: repeatedly give the next item to the
    # processor whose filled fraction is lowest.
    remaining = list(sizes)
    for item in items:
        candidates = [k for k in range(len(weights)) if remaining[k] > 0]
        k = min(
            candidates,
            key=lambda j: (len(out[j]) / sizes[j] if sizes[j] else 1.0, j),
        )
        out[k].append(item)
        remaining[k] -= 1
    return out


def make_chunks(items: t.Sequence[T], chunk_size: int) -> list[list[T]]:
    """Fig 6(a): equal-size chunks (last chunk extended with the rest).

    The paper extends the final chunk to absorb the remainder rather than
    emitting a short chunk.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    n = len(items)
    if n == 0:
        return []
    n_chunks = max(1, n // chunk_size)
    chunks = [
        list(items[i * chunk_size : (i + 1) * chunk_size])
        for i in range(n_chunks)
    ]
    leftover = list(items[n_chunks * chunk_size :])
    chunks[-1].extend(leftover)
    return chunks


def _check_weights(weights: t.Sequence[float]) -> None:
    if not weights:
        raise ValueError("need at least one weight")
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    if sum(weights) <= 0:
        raise ValueError("weights must not all be zero")


def _apportion(n: int, weights: t.Sequence[float]) -> list[int]:
    """Largest-remainder apportionment of ``n`` items over ``weights``."""
    total = sum(weights)
    quotas = [n * w / total for w in weights]
    sizes = [int(q) for q in quotas]
    shortfall = n - sum(sizes)
    remainders = sorted(
        range(len(weights)), key=lambda k: (-(quotas[k] - sizes[k]), k)
    )
    for k in remainders[:shortfall]:
        sizes[k] += 1
    return sizes


# -- distribution loops with failure recovery -------------------------------------

#: An executor runs ``items`` on ``node_id`` inside the simulation and
#: returns a per-partition result; it raises :class:`WorkerFailed` when the
#: node dies.  Signature: executor(node_id, items) -> generator.
Executor = t.Callable[[int, list[T]], t.Generator[Event, object, object]]


def run_sender_controlled(
    env: Environment,
    items: t.Sequence[T],
    shares: t.Sequence[tuple[int, float]],
    executor: Executor,
    interleaved: bool,
    policy: RetryPolicy | None = None,
    spans: SpanStream | None = None,
    span_parent: Span | None = None,
    qid: int = -1,
    metrics: MetricsRegistry | None = None,
) -> t.Generator[Event, object, list[object]]:
    """Fig 5(c): the sender-controlled distribution loop (SEND/ISEND).

    Partitions ``items`` by the assignment ``shares``, runs all partitions
    in parallel (one monitor per worker, as the paper uses one thread per
    processor), collects failures, rebuilds a task from unprocessed
    partitions and repeats until everything is processed.  ``policy``
    bounds the recovery rounds and inserts backoff between them.

    ``spans``/``span_parent``/``qid`` attach a retry span (covering each
    recovery round's backoff) to the caller's span tree; ``metrics``
    counts rounds under the canonical ``partition.retry_rounds`` name.

    Returns the list of per-partition results in completion order.
    """
    policy = policy or RetryPolicy()
    results: list[object] = []
    pending = list(items)
    live_shares = list(shares)
    rounds = 0
    while pending:
        if not live_shares:
            raise PartitionAbort("all workers failed; cannot finish partitioned task")
        node_ids = [nid for nid, _ in live_shares]
        weights = [w for _, w in live_shares]
        partition = partition_isend if interleaved else partition_send
        parts = partition(pending, weights)

        procs: list[Process] = []
        for nid, part in zip(node_ids, parts):
            if part:
                procs.append(
                    env.process(
                        _guarded(executor, nid, part),
                        name=f"partition-worker[{nid}]",
                    )
                )
        if not procs:
            break
        done = yield env.all_of(procs)
        pending = []
        failed_nodes: set[int] = set()
        for proc in procs:
            outcome = done[proc]
            if isinstance(outcome, WorkerFailed):
                pending.extend(t.cast(list[T], outcome.unprocessed))
                failed_nodes.add(outcome.node_id)
            else:
                results.append(outcome)
        live_shares = [
            (nid, w) for nid, w in live_shares if nid not in failed_nodes
        ]
        if failed_nodes and live_shares:
            # Renormalize surviving weights.
            total = sum(w for _, w in live_shares)
            live_shares = [(nid, w / total) for nid, w in live_shares]
        if failed_nodes and pending:
            rounds += 1
            if metrics is not None:
                metrics.inc(PARTITION_RETRY_ROUNDS)
            if policy.exhausted(rounds):
                raise PartitionAbort(
                    f"retry budget exhausted after {rounds - 1} recovery "
                    f"rounds; {len(pending)} items unprocessed"
                )
            rspan = None
            if spans is not None and spans.enabled:
                rspan = spans.begin(
                    "retry:round",
                    SpanCategory.RETRY,
                    qid,
                    span_parent.node_id if span_parent is not None else -1,
                    env.now,
                    parent=span_parent,
                    detail=f"round {rounds}, {len(pending)} items",
                )
            delay = policy.delay(rounds - 1)
            if delay > 0:
                yield env.timeout(delay)
            if spans is not None:
                spans.end(rspan, env.now, round=rounds, items=len(pending))
    return results


def run_receiver_controlled(
    env: Environment,
    items: t.Sequence[T],
    node_ids: t.Sequence[int],
    executor: Executor,
    chunk_size: int,
    policy: RetryPolicy | None = None,
    spans: SpanStream | None = None,
    span_parent: Span | None = None,
    qid: int = -1,
    metrics: MetricsRegistry | None = None,
) -> t.Generator[Event, object, list[object]]:
    """Fig 6(b): the receiver-controlled distribution loop (RECV).

    Chunks ``items``; each selected node runs a *puller* that repeatedly
    takes the next available chunk and processes it, until the chunk set
    is empty.  A failed chunk goes back to the set and its node leaves
    the worker pool.  ``policy`` bounds the re-pull rounds (spawned when
    a worker fails after its peers already drained the visible chunk set)
    and inserts backoff before each one.

    ``spans``/``span_parent``/``qid`` attach re-pull retry spans to the
    caller's span tree; ``metrics`` counts the rounds under the
    canonical ``partition.retry_rounds`` name.

    Returns per-chunk results in completion order.
    """
    if not node_ids:
        raise ValueError("need at least one worker")
    policy = policy or RetryPolicy()
    chunks = make_chunks(items, chunk_size)
    available: list[list[T]] = list(reversed(chunks))  # pop() from the front
    results: list[object] = []
    pool = list(node_ids)
    rounds = 0

    def puller(nid: int) -> t.Generator[Event, object, int | None]:
        while available:
            chunk = available.pop()
            try:
                outcome = yield env.process(_plain(executor, nid, chunk))
            except WorkerFailed as failure:
                available.append(t.cast(list[T], failure.unprocessed))
                return nid  # node leaves the worker pool
            results.append(outcome)
        return None

    # A worker may fail *after* its peers drained the visible chunk set and
    # exited; its returned chunk then needs a fresh round of pullers from
    # the surviving pool.
    while available:
        if not pool:
            raise PartitionAbort("all workers failed; unprocessed chunks remain")
        if rounds > 0:
            if metrics is not None:
                metrics.inc(PARTITION_RETRY_ROUNDS)
            if policy.exhausted(rounds):
                raise PartitionAbort(
                    f"retry budget exhausted after {rounds - 1} re-pull "
                    f"rounds; {len(available)} chunks unprocessed"
                )
            rspan = None
            if spans is not None and spans.enabled:
                rspan = spans.begin(
                    "retry:round",
                    SpanCategory.RETRY,
                    qid,
                    span_parent.node_id if span_parent is not None else -1,
                    env.now,
                    parent=span_parent,
                    detail=f"re-pull {rounds}, {len(available)} chunks",
                )
            delay = policy.delay(rounds - 1)
            if delay > 0:
                yield env.timeout(delay)
            if spans is not None:
                spans.end(rspan, env.now, round=rounds, chunks=len(available))
        procs = [
            env.process(puller(nid), name=f"chunk-puller[{nid}]")
            for nid in pool
        ]
        done = yield env.all_of(procs)
        failed = {done[p] for p in procs if done[p] is not None}
        pool = [nid for nid in pool if nid not in failed]
        rounds += 1
    return results


def _guarded(
    executor: Executor, nid: int, part: list[T]
) -> t.Generator[Event, object, object]:
    """Convert WorkerFailed into a *value* so all_of doesn't abort."""
    try:
        result = yield from executor(nid, part)
    except WorkerFailed as failure:
        return failure
    return result


def _plain(
    executor: Executor, nid: int, part: list[T]
) -> t.Generator[Event, object, object]:
    result = yield from executor(nid, part)
    return result
