"""Distributed load monitoring (Section 3.1).

"Periodically each load monitor updates its local CPU and disk load and
broadcasts the information on the local interconnection network.  Thus
every processor is aware not only of its own load but of the load of every
other active processor ...  if load information is not received from a
processor in a predefined time, that processor is removed from the system
pool.  A processor automatically joins the pool when it starts
broadcasting load information."

Each node runs a :class:`LoadMonitor` process; broadcasts consume real
(simulated) network bandwidth, so monitoring overhead scales with node
count exactly as the analytical model's ``S_load * N / B_net`` term says.
Peer tables are per-node and only as fresh as the last received broadcast
— scheduling decisions operate on stale data, as in reality.

Sharded mode (``shards >= 1``) replaces the all-to-all broadcast with a
two-level plane for large clusters: each node uploads a *delta* to its
shard-local aggregator (a small packet when little changed, the full
``S_load`` otherwise), and each aggregator periodically broadcasts its
merged member table — the model's ``t_load + N_k * S_load / B_net`` cost
appears as an explicit per-shard term, summing to the same ``N * S_load``
wire total, while per-interval table maintenance drops from O(N^2) writes
to O(N).  Schedulers then read O(shards) published tables instead of N
full ones; optimistic same-interval bumps live in per-observer overlays
that expire as fresher publishes arrive.
"""

from __future__ import annotations

import math
import typing as t
from dataclasses import dataclass, replace

from ..observability.metrics import MetricsRegistry
from ..observability.names import (
    MONITOR_BROADCASTS,
    MONITOR_BUSY_S,
    MONITOR_SHARD_PUBLISHES,
)
from ..simulation.engine import Environment
from ..simulation.events import Event
from ..simulation.network import Network, TransferFailed
from .load import LoadSnapshot
from .node import ClusterNode

__all__ = ["LoadMonitor", "MonitoringSystem", "auto_shard_count"]


def auto_shard_count(n_nodes: int) -> int:
    """A good default aggregator count: ~sqrt(N) balances the per-shard
    publish cost ``N_k * S_load / B_net`` against the number of publishes."""
    return max(1, round(math.sqrt(max(1, n_nodes))))


@dataclass(slots=True)
class _Bump:
    """Optimistic per-observer adjustment awaiting the next publish."""

    as_of: float
    n_questions: int = 0
    n_waiting: int = 0
    cpu_load: float = 0.0
    disk_load: float = 0.0


class LoadMonitor:
    """The per-node load monitoring process."""

    def __init__(
        self,
        system: "MonitoringSystem",
        node: ClusterNode,
        interval_s: float = 1.0,
        packet_bytes: float = 512.0,
        measure_cpu_s: float = 0.001,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.system = system
        self.node = node
        self.interval_s = interval_s
        self.packet_bytes = packet_bytes
        self.measure_cpu_s = measure_cpu_s
        self.metrics = metrics
        self.broadcasts = 0
        self._proc = node.env.process(
            self._run(), name=f"load-monitor[{node.node_id}]"
        )

    def _run(self) -> t.Generator[Event, object, None]:
        env = self.node.env
        checkpoints = self.node.load_checkpoints()
        while True:
            yield env.timeout(self.interval_s)
            if not self.node.up:
                continue
            round_start = env.now
            # (i) inspect the kernel for the local load.  The report
            # blends the window average with the instantaneous state so
            # that a node that just went idle (or just got busy) is not
            # misjudged for a whole broadcast interval.
            yield from self.node.run_cpu(self.measure_cpu_s)
            cpu_win, disk_win = self.node.loads_since(checkpoints)
            checkpoints = self.node.load_checkpoints()
            cpu_load = 0.5 * cpu_win + 0.5 * self.node.cpu.active_jobs.value
            disk_load = 0.5 * disk_win + 0.5 * self.node.disk.active_jobs.value
            snapshot = LoadSnapshot(
                node_id=self.node.node_id,
                cpu_load=cpu_load,
                disk_load=disk_load,
                n_questions=self.node.active_questions,
                timestamp=env.now,
                n_waiting=self.node.waiting_questions,
            )
            if self.system.sharded:
                # (ii') upload the delta to the shard aggregator; the
                # aggregator's periodic publish carries it to the pool.
                try:
                    yield from self.system.upload(snapshot)
                except TransferFailed:
                    continue
            else:
                # (ii) broadcast on the interconnection network
                yield from self.system.network.broadcast(
                    self.node.node_id, self.packet_bytes
                )
                # (iii) peers store the received load information
                self.system.deliver(snapshot)
            self.broadcasts += 1
            if self.metrics is not None:
                # Busy time = measurement CPU + broadcast elapsed; this
                # is the measured counterpart of Eq 14's per-interval
                # ``t_load + N·S_load/B_net`` monitoring cost.
                self.metrics.inc(MONITOR_BROADCASTS)
                self.metrics.inc(MONITOR_BUSY_S, env.now - round_start)


class MonitoringSystem:
    """All nodes' load tables plus the membership protocol."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        nodes: t.Sequence[ClusterNode],
        interval_s: float = 1.0,
        packet_bytes: float = 512.0,
        membership_timeout_s: float = 3.0,
        metrics: MetricsRegistry | None = None,
        shards: int = 0,
    ) -> None:
        self.env = env
        self.network = network
        self.nodes = {n.node_id: n for n in nodes}
        self.membership_timeout_s = membership_timeout_s
        self.interval_s = interval_s
        self.packet_bytes = packet_bytes
        self.metrics = metrics
        #: ``shards >= 1`` switches from the paper's all-to-all broadcast
        #: to shard-local aggregators (clamped: no point in more shards
        #: than nodes).
        self.n_shards = min(shards, len(nodes)) if shards > 0 else 0
        self.sharded = self.n_shards > 0
        #: observer_node_id -> {observed_node_id: snapshot}
        self.tables: dict[int, dict[int, LoadSnapshot]] = {
            n.node_id: {} for n in nodes
        }
        idle = {
            n.node_id: LoadSnapshot(
                node_id=n.node_id,
                cpu_load=0.0,
                disk_load=0.0,
                n_questions=0,
                timestamp=0.0,
            )
            for n in nodes
        }
        if self.sharded:
            node_ids = [n.node_id for n in nodes]
            #: node_id -> shard index (contiguous slices keep shards even).
            self._shard_of = {
                nid: i * self.n_shards // len(node_ids)
                for i, nid in enumerate(node_ids)
            }
            self._members: list[list[int]] = [
                [] for _ in range(self.n_shards)
            ]
            for nid, shard in self._shard_of.items():
                self._members[shard].append(nid)
            #: Aggregator-side tables: uploads land in ``working``; each
            #: publish copies working -> published, which is what
            #: observers actually read (publish delay is the sharded
            #: plane's extra staleness, visible to schedulers as in
            #: reality).  Seeded idle so dispatch works before round one.
            self._working: list[dict[int, LoadSnapshot]] = [
                {nid: idle[nid] for nid in members}
                for members in self._members
            ]
            self._published: list[dict[int, LoadSnapshot]] = [
                dict(table) for table in self._working
            ]
            self._pub_gen = 0
            self._merged_cache: tuple[int, dict[int, LoadSnapshot]] = (
                -1,
                {},
            )
            #: observer -> {target: optimistic bump} (see note_* methods).
            self._overlays: dict[int, dict[int, _Bump]] = {
                nid: {} for nid in node_ids
            }
            #: Each node's own latest measurement (``local_snapshot``).
            self._self_reports: dict[int, LoadSnapshot] = dict(idle)
            #: Last snapshot actually shipped, for delta significance.
            self._last_sent: dict[int, LoadSnapshot] = {}
            for shard in range(self.n_shards):
                env.process(
                    self._shard_publisher(shard),
                    name=f"monitor-shard[{shard}]",
                )
        self.monitors = [
            LoadMonitor(
                self,
                n,
                interval_s=interval_s,
                packet_bytes=packet_bytes,
                metrics=metrics,
            )
            for n in nodes
        ]
        #: Last heartbeat seen from each node (any observer).
        self.last_broadcast: dict[int, float] = {n.node_id: 0.0 for n in nodes}
        #: Membership transitions as the protocol itself would observe
        #: them: (time, node_id, live).  A node "leaves" when its
        #: heartbeat goes stale past the membership timeout and "joins"
        #: when it broadcasts again — so the gap between an injected kill
        #: and the logged leave is the protocol's detection latency.
        self.membership_log: list[tuple[float, int, bool]] = []
        self._live: dict[int, bool] = {n.node_id: True for n in nodes}
        env.process(
            self._membership_sentinel(interval_s), name="membership-sentinel"
        )
        if not self.sharded:
            # Seed per-observer tables with idle snapshots so dispatch
            # works before the first broadcast round.  (Sharded mode seeds
            # the per-shard tables instead — O(N), not O(N^2).)
            for nid in self.tables:
                self.tables[nid].update(idle)

    def deliver(self, snapshot: LoadSnapshot) -> None:
        """A broadcast arrived: every up node (and the sender) records it.

        In sharded mode the snapshot lands in the sender's shard working
        table instead (one write, published to observers on the shard's
        next publish tick).
        """
        self.last_broadcast[snapshot.node_id] = snapshot.timestamp
        if self.sharded:
            self._working[self._shard_of[snapshot.node_id]][
                snapshot.node_id
            ] = snapshot
            self._self_reports[snapshot.node_id] = snapshot
            return
        for nid, node in self.nodes.items():
            if node.up or nid == snapshot.node_id:
                self.tables[nid][snapshot.node_id] = snapshot

    # -- sharded plane -------------------------------------------------------
    def upload(self, snapshot: LoadSnapshot) -> t.Generator[Event, object, None]:
        """Ship a node's snapshot to its shard aggregator (delta transfer).

        A full ``S_load`` packet goes out when the report changed
        significantly since the last upload; otherwise a small "still the
        same" delta (1/8 packet) refreshes the heartbeat.  Raises
        :class:`TransferFailed` if the sender dies mid-transfer — the
        caller just skips this round, exactly like a lost broadcast.
        """
        nid = snapshot.node_id
        shard = self._shard_of[nid]
        prev = self._last_sent.get(nid)
        significant = (
            prev is None
            or snapshot.n_questions != prev.n_questions
            or snapshot.n_waiting != prev.n_waiting
            or abs(snapshot.cpu_load - prev.cpu_load) >= 0.5
            or abs(snapshot.disk_load - prev.disk_load) >= 0.5
        )
        nbytes = self.packet_bytes if significant else self.packet_bytes / 8
        yield from self.network.transfer(nid, ("monitor-shard", shard), nbytes)
        self._last_sent[nid] = snapshot
        self._working[shard][nid] = snapshot
        self._self_reports[nid] = snapshot
        self.last_broadcast[nid] = snapshot.timestamp

    def _shard_publisher(
        self, shard: int
    ) -> t.Generator[Event, object, None]:
        """Aggregator process: broadcast the shard's merged table each interval.

        The broadcast costs ``N_k * S_load`` bytes on the shared medium —
        the model's per-shard ``t_load + N_k * S_load / B_net`` term made
        explicit; summed over shards the wire total matches the paper's
        ``N * S_load``.  Publishers are phase-staggered so the k broadcasts
        don't collide on the same instant.
        """
        members = self._members[shard]
        yield self.env.timeout(
            self.interval_s * (shard + 1) / (self.n_shards + 1)
        )
        while True:
            yield from self.network.broadcast(
                ("monitor-shard", shard), self.packet_bytes * len(members)
            )
            self._published[shard] = dict(self._working[shard])
            self._pub_gen += 1
            if self.metrics is not None:
                self.metrics.inc(MONITOR_SHARD_PUBLISHES)
            yield self.env.timeout(self.interval_s)

    def _merged(self) -> dict[int, LoadSnapshot]:
        """Union of the published shard tables (cached per publish gen)."""
        gen, merged = self._merged_cache
        if gen != self._pub_gen:
            merged = {}
            for table in self._published:
                merged.update(table)
            self._merged_cache = (self._pub_gen, merged)
        return merged

    def note_question_assignment(self, observer: int, target: int) -> None:
        """Optimistically bump ``target``'s question counters as seen by
        ``observer`` so same-interval dispatches don't dog-pile one node.
        """
        if self.sharded:
            self._bump(observer, target, n_questions=1, n_waiting=1)
            return
        snap = self.tables[observer].get(target)
        if snap is not None:
            self.tables[observer][target] = replace(
                snap,
                n_questions=snap.n_questions + 1,
                n_waiting=snap.n_waiting + 1,
            )

    def note_load_share(
        self, observer: int, target: int, cpu: float, disk: float
    ) -> None:
        """Optimistically add expected cpu/disk load to ``observer``'s view
        of ``target`` (used when work is fanned out to peers)."""
        if self.sharded:
            self._bump(observer, target, cpu_load=cpu, disk_load=disk)
            return
        tbl = self.tables[observer]
        snap = tbl.get(target)
        if snap is not None:
            tbl[target] = replace(
                snap,
                cpu_load=snap.cpu_load + cpu,
                disk_load=snap.disk_load + disk,
            )

    def _bump(
        self,
        observer: int,
        target: int,
        n_questions: int = 0,
        n_waiting: int = 0,
        cpu_load: float = 0.0,
        disk_load: float = 0.0,
    ) -> None:
        """Accumulate an overlay bump; it expires once a publish carries a
        snapshot measured after the bump was recorded (the real load then
        already includes the dispatched work)."""
        overlay = self._overlays[observer]
        bump = overlay.get(target)
        if bump is None:
            bump = overlay[target] = _Bump(as_of=self.env.now)
        else:
            bump.as_of = self.env.now
        bump.n_questions += n_questions
        bump.n_waiting += n_waiting
        bump.cpu_load += cpu_load
        bump.disk_load += disk_load

    def _membership_sentinel(
        self, interval_s: float
    ) -> t.Generator[Event, object, None]:
        """Log pool joins/leaves from heartbeat staleness (runs forever)."""
        while True:
            yield self.env.timeout(interval_s)
            now = self.env.now
            for nid, last in self.last_broadcast.items():
                live = now - last <= self.membership_timeout_s
                if live != self._live[nid]:
                    self._live[nid] = live
                    self.membership_log.append((now, nid, live))

    def view(self, observer: int) -> dict[int, LoadSnapshot]:
        """The live-membership load table as seen by ``observer``.

        Entries older than the membership timeout are dropped — that node
        has left the pool as far as ``observer`` is concerned.  The
        observer sees *itself* live (local kernel state costs nothing),
        peers through their last broadcast.

        Sharded mode reads the O(shards) published tables (merged once per
        publish generation, then cached) instead of a per-observer O(N)
        table, and applies the observer's optimistic bumps on top.
        """
        now = self.env.now
        fresh: dict[int, LoadSnapshot] = {}
        if self.sharded:
            timeout = self.membership_timeout_s
            overlay = self._overlays[observer]
            for nid, snap in self._merged().items():
                if nid == observer:
                    continue
                if now - snap.timestamp > timeout:
                    continue
                bump = overlay.get(nid)
                if bump is not None:
                    if snap.timestamp > bump.as_of:
                        # A measurement taken after the bump already
                        # reflects the dispatched work — retire the bump.
                        del overlay[nid]
                    else:
                        snap = replace(
                            snap,
                            cpu_load=snap.cpu_load + bump.cpu_load,
                            disk_load=snap.disk_load + bump.disk_load,
                            n_questions=snap.n_questions + bump.n_questions,
                            n_waiting=snap.n_waiting + bump.n_waiting,
                        )
                fresh[nid] = snap
            fresh[observer] = self.live_snapshot(observer)
            return fresh
        for nid, snap in self.tables[observer].items():
            if nid == observer:
                fresh[nid] = self.live_snapshot(observer)
            elif now - snap.timestamp <= self.membership_timeout_s:
                fresh[nid] = snap
        return fresh

    def live_snapshot(self, node_id: int) -> LoadSnapshot:
        """A snapshot of a node's *current* state (not broadcast-delayed).

        Instantaneous resource loads are the current active-job counts;
        question counters are exact.
        """
        node = self.nodes[node_id]
        return LoadSnapshot(
            node_id=node_id,
            cpu_load=node.cpu.active_jobs.value,
            disk_load=node.disk.active_jobs.value,
            n_questions=node.active_questions,
            timestamp=self.env.now,
            n_waiting=node.waiting_questions,
        )

    def local_snapshot(self, node_id: int) -> LoadSnapshot:
        """The node's latest view of itself."""
        if self.sharded:
            return self._self_reports[node_id]
        return self.tables[node_id][node_id]
