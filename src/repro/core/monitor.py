"""Distributed load monitoring (Section 3.1).

"Periodically each load monitor updates its local CPU and disk load and
broadcasts the information on the local interconnection network.  Thus
every processor is aware not only of its own load but of the load of every
other active processor ...  if load information is not received from a
processor in a predefined time, that processor is removed from the system
pool.  A processor automatically joins the pool when it starts
broadcasting load information."

Each node runs a :class:`LoadMonitor` process; broadcasts consume real
(simulated) network bandwidth, so monitoring overhead scales with node
count exactly as the analytical model's ``S_load * N / B_net`` term says.
Peer tables are per-node and only as fresh as the last received broadcast
— scheduling decisions operate on stale data, as in reality.
"""

from __future__ import annotations

import typing as t

from ..observability.metrics import MetricsRegistry
from ..observability.names import MONITOR_BROADCASTS, MONITOR_BUSY_S
from ..simulation.engine import Environment
from ..simulation.events import Event
from ..simulation.network import Network
from .load import LoadSnapshot
from .node import ClusterNode

__all__ = ["LoadMonitor", "MonitoringSystem"]


class LoadMonitor:
    """The per-node load monitoring process."""

    def __init__(
        self,
        system: "MonitoringSystem",
        node: ClusterNode,
        interval_s: float = 1.0,
        packet_bytes: float = 512.0,
        measure_cpu_s: float = 0.001,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.system = system
        self.node = node
        self.interval_s = interval_s
        self.packet_bytes = packet_bytes
        self.measure_cpu_s = measure_cpu_s
        self.metrics = metrics
        self.broadcasts = 0
        self._proc = node.env.process(
            self._run(), name=f"load-monitor[{node.node_id}]"
        )

    def _run(self) -> t.Generator[Event, object, None]:
        env = self.node.env
        checkpoints = self.node.load_checkpoints()
        while True:
            yield env.timeout(self.interval_s)
            if not self.node.up:
                continue
            round_start = env.now
            # (i) inspect the kernel for the local load.  The report
            # blends the window average with the instantaneous state so
            # that a node that just went idle (or just got busy) is not
            # misjudged for a whole broadcast interval.
            yield from self.node.run_cpu(self.measure_cpu_s)
            cpu_win, disk_win = self.node.loads_since(checkpoints)
            checkpoints = self.node.load_checkpoints()
            cpu_load = 0.5 * cpu_win + 0.5 * self.node.cpu.active_jobs.value
            disk_load = 0.5 * disk_win + 0.5 * self.node.disk.active_jobs.value
            snapshot = LoadSnapshot(
                node_id=self.node.node_id,
                cpu_load=cpu_load,
                disk_load=disk_load,
                n_questions=self.node.active_questions,
                timestamp=env.now,
                n_waiting=self.node.waiting_questions,
            )
            # (ii) broadcast on the interconnection network
            yield from self.system.network.broadcast(
                self.node.node_id, self.packet_bytes
            )
            # (iii) peers store the received load information
            self.system.deliver(snapshot)
            self.broadcasts += 1
            if self.metrics is not None:
                # Busy time = measurement CPU + broadcast elapsed; this
                # is the measured counterpart of Eq 14's per-interval
                # ``t_load + N·S_load/B_net`` monitoring cost.
                self.metrics.inc(MONITOR_BROADCASTS)
                self.metrics.inc(MONITOR_BUSY_S, env.now - round_start)


class MonitoringSystem:
    """All nodes' load tables plus the membership protocol."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        nodes: t.Sequence[ClusterNode],
        interval_s: float = 1.0,
        packet_bytes: float = 512.0,
        membership_timeout_s: float = 3.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.env = env
        self.network = network
        self.nodes = {n.node_id: n for n in nodes}
        self.membership_timeout_s = membership_timeout_s
        #: observer_node_id -> {observed_node_id: snapshot}
        self.tables: dict[int, dict[int, LoadSnapshot]] = {
            n.node_id: {} for n in nodes
        }
        self.monitors = [
            LoadMonitor(
                self,
                n,
                interval_s=interval_s,
                packet_bytes=packet_bytes,
                metrics=metrics,
            )
            for n in nodes
        ]
        #: Last heartbeat seen from each node (any observer).
        self.last_broadcast: dict[int, float] = {n.node_id: 0.0 for n in nodes}
        #: Membership transitions as the protocol itself would observe
        #: them: (time, node_id, live).  A node "leaves" when its
        #: heartbeat goes stale past the membership timeout and "joins"
        #: when it broadcasts again — so the gap between an injected kill
        #: and the logged leave is the protocol's detection latency.
        self.membership_log: list[tuple[float, int, bool]] = []
        self._live: dict[int, bool] = {n.node_id: True for n in nodes}
        env.process(
            self._membership_sentinel(interval_s), name="membership-sentinel"
        )
        # Seed tables with idle snapshots so dispatch works before the
        # first broadcast round.
        for nid in self.tables:
            for other in self.tables:
                self.tables[nid][other] = LoadSnapshot(
                    node_id=other,
                    cpu_load=0.0,
                    disk_load=0.0,
                    n_questions=0,
                    timestamp=0.0,
                )

    def deliver(self, snapshot: LoadSnapshot) -> None:
        """A broadcast arrived: every up node (and the sender) records it."""
        self.last_broadcast[snapshot.node_id] = snapshot.timestamp
        for nid, node in self.nodes.items():
            if node.up or nid == snapshot.node_id:
                self.tables[nid][snapshot.node_id] = snapshot

    def _membership_sentinel(
        self, interval_s: float
    ) -> t.Generator[Event, object, None]:
        """Log pool joins/leaves from heartbeat staleness (runs forever)."""
        while True:
            yield self.env.timeout(interval_s)
            now = self.env.now
            for nid, last in self.last_broadcast.items():
                live = now - last <= self.membership_timeout_s
                if live != self._live[nid]:
                    self._live[nid] = live
                    self.membership_log.append((now, nid, live))

    def view(self, observer: int) -> dict[int, LoadSnapshot]:
        """The live-membership load table as seen by ``observer``.

        Entries older than the membership timeout are dropped — that node
        has left the pool as far as ``observer`` is concerned.  The
        observer sees *itself* live (local kernel state costs nothing),
        peers through their last broadcast.
        """
        now = self.env.now
        fresh: dict[int, LoadSnapshot] = {}
        for nid, snap in self.tables[observer].items():
            if nid == observer:
                fresh[nid] = self.live_snapshot(observer)
            elif now - snap.timestamp <= self.membership_timeout_s:
                fresh[nid] = snap
        return fresh

    def live_snapshot(self, node_id: int) -> LoadSnapshot:
        """A snapshot of a node's *current* state (not broadcast-delayed).

        Instantaneous resource loads are the current active-job counts;
        question counters are exact.
        """
        node = self.nodes[node_id]
        return LoadSnapshot(
            node_id=node_id,
            cpu_load=node.cpu.active_jobs.value,
            disk_load=node.disk.active_jobs.value,
            n_questions=node.active_questions,
            timestamp=self.env.now,
            n_waiting=node.waiting_questions,
        )

    def local_snapshot(self, node_id: int) -> LoadSnapshot:
        """The node's latest view of itself."""
        return self.tables[node_id][node_id]
