"""The paper's contribution: the distributed Q/A architecture.

Implements Sections 3 and 4 — inter-question parallelism (DNS front-end,
question dispatcher, load monitoring/membership) and intra-question
parallelism (meta-scheduler, PR/AP dispatchers, SEND/ISEND/RECV
partitioning with failure recovery) — on the simulated cluster substrate.
"""

from .dispatcher import QuestionDispatcher
from .frontend import DNSFrontend
from .gradient import GradientBalancer, compute_gradients, ring_topology
from .load import (
    AP_WEIGHTS,
    PR_WEIGHTS,
    QA_WEIGHTS,
    LoadSnapshot,
    ResourceWeights,
    is_underloaded,
    load_function,
    single_task_load,
)
from .meta_scheduler import Assignment, meta_schedule
from .monitor import LoadMonitor, MonitoringSystem
from .node import ClusterNode, NodeConfig
from .partitioning import (
    PartitionAbort,
    PartitioningStrategy,
    RetryPolicy,
    WorkerFailed,
    make_chunks,
    partition_isend,
    partition_send,
    run_receiver_controlled,
    run_sender_controlled,
)
from .qa_task import DistributedQATask, TaskPolicy, TaskResult
from .system import DistributedQASystem, Strategy, SystemConfig, WorkloadReport
from .tracing import TraceEvent, Tracer, render_trace

__all__ = [
    "AP_WEIGHTS",
    "Assignment",
    "ClusterNode",
    "DNSFrontend",
    "DistributedQASystem",
    "DistributedQATask",
    "GradientBalancer",
    "LoadMonitor",
    "LoadSnapshot",
    "MonitoringSystem",
    "NodeConfig",
    "PR_WEIGHTS",
    "PartitionAbort",
    "PartitioningStrategy",
    "QA_WEIGHTS",
    "QuestionDispatcher",
    "RetryPolicy",
    "ResourceWeights",
    "Strategy",
    "SystemConfig",
    "TaskPolicy",
    "TaskResult",
    "TraceEvent",
    "Tracer",
    "WorkerFailed",
    "WorkloadReport",
    "is_underloaded",
    "load_function",
    "make_chunks",
    "meta_schedule",
    "partition_isend",
    "partition_send",
    "compute_gradients",
    "render_trace",
    "ring_topology",
    "run_receiver_controlled",
    "run_sender_controlled",
    "single_task_load",
]
