"""Load functions and under-load conditions (Eq 1-3, 7-8; Table 3).

Every scheduling decision in the paper reduces to comparing *load
function* values:

    load_m(i) = w_cpu(m) * cpuLoad(i) + w_disk(m) * diskLoad(i)      (Eq 1-3)

where the weights are the fraction of module ``m``'s execution time spent
on each resource (Table 3: QA 0.79/0.21, PR 0.20/0.80, AP 1.00/0.00), and
``cpuLoad``/``diskLoad`` are the time-averaged numbers of active jobs on
the node's CPU and disk (Unix load-average style, so values exceed 1 under
queueing).

The under-load condition (Eq 7-8) declares node ``i`` under-loaded for
module ``m`` when ``load_m(i)`` is below the load that a *single* m
sub-task running alone would produce.  A lone sub-task of module ``m``
keeps the CPU busy a fraction ``w_cpu(m)`` of the time and the disk
``w_disk(m)``, so that threshold has the closed form
``w_cpu^2 + w_disk^2`` — e.g. 0.2^2 + 0.8^2 = 0.68 for PR.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass

__all__ = [
    "ResourceWeights",
    "QA_WEIGHTS",
    "PR_WEIGHTS",
    "AP_WEIGHTS",
    "LoadSnapshot",
    "load_function",
    "single_task_load",
]


@dataclass(frozen=True, slots=True)
class ResourceWeights:
    """CPU/disk significance weights for one module (one Table 3 row)."""

    cpu: float
    disk: float

    def __post_init__(self) -> None:
        if self.cpu < 0 or self.disk < 0:
            raise ValueError("weights must be non-negative")
        total = self.cpu + self.disk
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"weights must sum to 1, got {total}")


#: Table 3, measured for the TREC-9 question set.
QA_WEIGHTS = ResourceWeights(cpu=0.79, disk=0.21)
PR_WEIGHTS = ResourceWeights(cpu=0.20, disk=0.80)
AP_WEIGHTS = ResourceWeights(cpu=1.00, disk=0.00)


@dataclass(frozen=True, slots=True)
class LoadSnapshot:
    """One node's load report, as carried by the monitoring broadcast."""

    node_id: int
    cpu_load: float
    disk_load: float
    #: Number of Q/A tasks currently hosted (running + queued).
    n_questions: int
    timestamp: float
    #: Hosted questions waiting for an execution slot.  On the real system
    #: these would be runnable processes counted by the Unix load average;
    #: under admission control they must be reported explicitly.
    n_waiting: int = 0


def load_function(weights: ResourceWeights, snapshot: LoadSnapshot) -> float:
    """Eq 1/2/3: the weighted resource load of a node for a module.

    Queued (admitted-but-waiting) questions contribute one average-question
    load each — they are work the node has committed to, exactly as
    runnable processes inflate a Unix load average.
    """
    measured = weights.cpu * snapshot.cpu_load + weights.disk * snapshot.disk_load
    # An average question spends 79 % of its time on CPU and 21 % on disk
    # (Table 3's QA row), so each waiting question will add that much to
    # the node's resource occupancy once admitted.
    queued = snapshot.n_waiting * (weights.cpu * 0.79 + weights.disk * 0.21)
    return measured + queued


def single_task_load(weights: ResourceWeights) -> float:
    """The load one lone sub-task of this module produces (Eq 7/8 threshold).

    Running alone, the sub-task occupies the CPU a fraction ``w_cpu`` of
    the time (contributing ``w_cpu`` to the average cpu job count) and the
    disk ``w_disk`` — the load function of that state is
    ``w_cpu^2 + w_disk^2``.
    """
    return weights.cpu**2 + weights.disk**2


def is_underloaded(
    weights: ResourceWeights,
    snapshot: LoadSnapshot,
    margin: float = 1.0,
) -> bool:
    """Eq 7/8: under-load test with an optional tuning ``margin``.

    ``margin`` scales the single-task threshold; the paper notes the
    conditions "can be set either to minimize the question response time
    [larger margin: partition more eagerly], or to maximize the throughput
    [smaller margin]" (Section 4.2).
    """
    return load_function(weights, snapshot) < margin * single_task_load(weights)
