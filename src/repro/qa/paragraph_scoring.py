"""PS — paragraph scoring module.

Assigns each retrieved paragraph a rank "using three surface-text
heuristics [that] estimate the relevance of each paragraph based on the
number of keywords present in the paragraph and the inter-keyword
distance" (Section 2.1, citing the LASSO heuristics [27]):

1. **same-word-sequence score** — how many adjacent keyword pairs of the
   question appear in the same order, adjacent, in the paragraph;
2. **distance score** — how tightly the matched keywords cluster (the span
   of the densest window covering them);
3. **missing-keyword score** — how many query keywords the paragraph
   contains at all.

PS is iterative at paragraph granularity (Table 2) and cheap (~2 % of task
time), but it is partitioned together with PR in the distributed design
(Fig 3 places PS replicas behind each PR replica).

When constructed with a ``term_lookup`` (the indexed corpus'
:meth:`~repro.retrieval.collection.IndexedCorpus.term_lookup`), keyword
positions come from the index's packed
:class:`~repro.retrieval.inverted_index.ParagraphTerms` — a vocabulary-id
binary search per keyword — instead of re-tokenizing and re-stemming the
paragraph text for every question.  Both paths produce byte-identical
scores (enforced by tests/qa/test_scoring_equivalence.py).
"""

from __future__ import annotations

import typing as t
from array import array

from ..nlp.stemming import cached_stem as stem
from ..nlp.stopwords import is_stopword
from ..nlp.tokenizer import tokenize
from ..retrieval.inverted_index import ParagraphTerms
from ..retrieval.paragraphs import Paragraph
from .question import ProcessedQuestion, ScoredParagraph

__all__ = [
    "KeywordIdResolver",
    "ParagraphScorer",
    "TermLookup",
    "keyword_positions",
    "keyword_positions_from_ids",
    "keyword_positions_from_terms",
]

#: Resolver from a paragraph to its precomputed term view (None = absent).
TermLookup = t.Callable[[Paragraph], t.Optional[ParagraphTerms]]

# Heuristic combination weights (same spirit as LASSO's empirical weights).
_W_SEQUENCE = 20.0
_W_DISTANCE = 10.0
_W_PRESENT = 50.0


def keyword_positions(
    text: str, keyword_stems: t.Sequence[tuple[str, ...]]
) -> tuple[list[list[int]], list[str]]:
    """Token positions of each keyword in ``text`` (reference path).

    Returns ``(positions, stems_at)`` where ``positions[k]`` lists token
    indices where keyword ``k`` (matched by its first stem — phrase
    keywords match on their head word with the rest verified in-order) and
    ``stems_at`` is the stemmed token sequence.
    """
    tokens = tokenize(text)
    stems_at = [
        stem(tok.text) if tok.is_word else tok.text for tok in tokens
    ]
    positions: list[list[int]] = [[] for _ in keyword_stems]
    for k, kstems in enumerate(keyword_stems):
        head = kstems[0]
        for i, s in enumerate(stems_at):
            if s != head:
                continue
            if len(kstems) > 1:
                # Verify the remaining stems follow in order.
                if i + len(kstems) > len(stems_at):
                    continue
                if tuple(stems_at[i : i + len(kstems)]) != tuple(kstems):
                    continue
            positions[k].append(i)
    return positions, stems_at


def keyword_positions_from_terms(
    terms: ParagraphTerms, keyword_stems: t.Sequence[tuple[str, ...]]
) -> list[list[int]]:
    """Token positions of each keyword via the packed term layer.

    Head-stem occurrences are a binary search over the paragraph's
    id-sorted position run; phrase keywords verify their remaining stem
    ids in order at each candidate position (an ``array`` slice compare,
    no string materialization).  Produces exactly the positions
    :func:`keyword_positions` derives from raw text: a stem the
    vocabulary has never interned cannot occur in any paragraph, so it
    matches nowhere on either path.
    """
    lookup = terms.vocab.lookup
    n = terms.n_tokens
    positions: list[list[int]] = []
    for kstems in keyword_stems:
        head = lookup(kstems[0])
        if head < 0:
            positions.append([])
            continue
        candidates = terms.positions_of_id(head)
        if len(kstems) == 1:
            positions.append(list(candidates))
            continue
        kids = array("i", (lookup(s) for s in kstems))
        if min(kids) < 0:
            positions.append([])
            continue
        klen = len(kids)
        positions.append(
            [
                i
                for i in candidates
                if i + klen <= n and terms.ids_at(i, klen) == kids
            ]
        )
    return positions


class KeywordIdResolver:
    """Per-question memo of keyword-stem → vocabulary-id resolution.

    :func:`keyword_positions_from_terms` resolves every keyword stem
    against the vocabulary again for **every paragraph**; one question
    scores hundreds of paragraphs against the same handful of keywords.
    The resolver performs the lookups once per (vocabulary, question)
    pair — one entry in practice, since all collections share the interned
    vocabulary — and every paragraph after that runs only the packed-array
    binary searches.  Shared by PS and AP within a question, it removes
    the per-paragraph dict walks from both hot loops with bit-identical
    positions (same lookups, hoisted).
    """

    __slots__ = ("kstems", "_by_vocab")

    def __init__(self, kstems: t.Sequence[tuple[str, ...]]) -> None:
        self.kstems = [tuple(ks) for ks in kstems]
        # id(vocab) -> (vocab, precomputed); the vocab reference keeps the
        # id stable for the resolver's lifetime.
        self._by_vocab: dict[int, tuple[t.Any, list[tuple[int, t.Any, bool]]]] = {}

    def resolve(self, vocab: t.Any) -> list[tuple[int, t.Any, bool]]:
        """``(head_id, phrase_ids, resolvable)`` per keyword for ``vocab``."""
        entry = self._by_vocab.get(id(vocab))
        if entry is not None:
            return entry[1]
        lookup = vocab.lookup
        pre: list[tuple[int, t.Any, bool]] = []
        for ks in self.kstems:
            head = lookup(ks[0])
            if head < 0:
                pre.append((head, None, False))
            elif len(ks) == 1:
                pre.append((head, None, True))
            else:
                kids = array("i", (lookup(s) for s in ks))
                pre.append((head, kids, min(kids) >= 0))
        self._by_vocab[id(vocab)] = (vocab, pre)
        return pre


def keyword_positions_from_ids(
    terms: ParagraphTerms, resolved: t.Sequence[tuple[int, t.Any, bool]]
) -> list[list[int]]:
    """:func:`keyword_positions_from_terms` with the id lookups hoisted.

    ``resolved`` comes from :meth:`KeywordIdResolver.resolve` on the
    paragraph's vocabulary; only the per-paragraph binary searches remain,
    so the output is exactly what :func:`keyword_positions_from_terms`
    produces for the same keywords.
    """
    n = terms.n_tokens
    positions: list[list[int]] = []
    for head, kids, ok in resolved:
        if not ok:
            positions.append([])
            continue
        candidates = terms.positions_of_id(head)
        if kids is None:
            positions.append(list(candidates))
            continue
        klen = len(kids)
        positions.append(
            [
                i
                for i in candidates
                if i + klen <= n and terms.ids_at(i, klen) == kids
            ]
        )
    return positions


class ParagraphScorer:
    """The PS module.

    Parameters
    ----------
    term_lookup:
        Optional resolver returning the precomputed term view of a
        paragraph.  Paragraphs it cannot resolve (``None``) fall back to
        the re-tokenize reference path, so scorers work on paragraphs
        from outside the indexed corpus too.
    """

    def __init__(self, term_lookup: TermLookup | None = None) -> None:
        self.term_lookup = term_lookup

    def score(
        self,
        processed: ProcessedQuestion,
        paragraphs: t.Sequence[Paragraph],
        resolver: KeywordIdResolver | None = None,
    ) -> list[ScoredParagraph]:
        """Score every paragraph independently (embarrassingly parallel).

        ``resolver`` (the batch path) hoists the per-paragraph keyword-id
        lookups; scores are bit-identical with or without it.
        """
        kstems = [kw.stems for kw in processed.keywords]
        if resolver is None:
            return [self.score_one(p, kstems) for p in paragraphs]
        out: list[ScoredParagraph] = []
        lookup = self.term_lookup
        for p in paragraphs:
            terms = lookup(p) if lookup else None
            if terms is not None:
                positions = keyword_positions_from_ids(
                    terms, resolver.resolve(terms.vocab)
                )
            else:
                positions, _ = keyword_positions(p.text, kstems)
            out.append(self._score_positions(p, kstems, positions))
        return out

    def score_one(
        self, paragraph: Paragraph, kstems: t.Sequence[tuple[str, ...]]
    ) -> ScoredParagraph:
        terms = self.term_lookup(paragraph) if self.term_lookup else None
        if terms is not None:
            positions = keyword_positions_from_terms(terms, kstems)
        else:
            positions, _ = keyword_positions(paragraph.text, kstems)
        return self._score_positions(paragraph, kstems, positions)

    @staticmethod
    def _score_positions(
        paragraph: Paragraph,
        kstems: t.Sequence[tuple[str, ...]],
        positions: list[list[int]],
    ) -> ScoredParagraph:
        """The three LASSO heuristics over already-matched positions."""
        present = [k for k, pos in enumerate(positions) if pos]
        n_present = len(present)
        if n_present == 0:
            return ScoredParagraph(paragraph, 0.0, 0)

        # Heuristic 1: same-word-sequence — adjacent keyword pairs of the
        # question appearing adjacently (within one token) in the paragraph.
        seq = 0
        for k in range(len(kstems) - 1):
            if not positions[k] or not positions[k + 1]:
                continue
            firsts = set(positions[k])
            if any(p - len(kstems[k]) in firsts or p - 1 in firsts
                   for p in positions[k + 1]):
                seq += 1

        # Heuristic 2: distance — span of the tightest window containing
        # one occurrence of each present keyword (greedy approximation:
        # anchor at each occurrence of the rarest keyword).
        rarest = min(present, key=lambda k: len(positions[k]))
        best_span = None
        for anchor in positions[rarest]:
            lo = hi = anchor
            ok = True
            for k in present:
                if k == rarest:
                    continue
                nearest = min(positions[k], key=lambda p: abs(p - anchor))
                lo = min(lo, nearest)
                hi = max(hi, nearest)
            if ok:
                span = hi - lo + 1
                if best_span is None or span < best_span:
                    best_span = span
        distance_score = 1.0 / (1.0 + (best_span or 1) / max(1, n_present))

        score = (
            _W_PRESENT * n_present
            + _W_SEQUENCE * seq
            + _W_DISTANCE * distance_score
        )
        return ScoredParagraph(paragraph, score, n_present)
