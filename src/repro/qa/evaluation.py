"""Answer-quality evaluation: the TREC-style scoring of the Q/A pipeline.

The paper evaluates *performance*; its quality claims lean on Falcon's
TREC results (66.4 % short / 86.1 % long answers correct).  This module
provides the matching quality metrics for the reproduction's pipeline —
mean reciprocal rank and precision@k over a generated question set with
ground truth — so accuracy regressions are caught by tests rather than
anecdotes.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field

from ..corpus.questions import TrecQuestion
from .pipeline import QAPipeline
from .question import QAResult

__all__ = ["QuestionOutcome", "EvaluationReport", "evaluate"]


@dataclass(frozen=True, slots=True)
class QuestionOutcome:
    """One question's scoring."""

    qid: int
    question: str
    expected: str
    #: 1-based rank of the first correct answer; None when absent.
    rank: int | None
    top_answer: str

    @property
    def reciprocal_rank(self) -> float:
        return 1.0 / self.rank if self.rank else 0.0


@dataclass(slots=True)
class EvaluationReport:
    """Aggregate quality metrics over a question set."""

    outcomes: list[QuestionOutcome] = field(default_factory=list)

    @property
    def n(self) -> int:
        return len(self.outcomes)

    @property
    def mrr(self) -> float:
        """Mean reciprocal rank (the TREC-8/9 Q/A metric)."""
        if not self.outcomes:
            return 0.0
        return sum(o.reciprocal_rank for o in self.outcomes) / self.n

    def precision_at(self, k: int) -> float:
        """Fraction of questions answered within the top ``k``."""
        if not self.outcomes:
            return 0.0
        hits = sum(1 for o in self.outcomes if o.rank is not None and o.rank <= k)
        return hits / self.n

    def misses(self) -> list[QuestionOutcome]:
        """Questions with no correct answer returned (error analysis)."""
        return [o for o in self.outcomes if o.rank is None]

    def summary(self) -> str:
        return (
            f"n={self.n} MRR={self.mrr:.3f} "
            f"P@1={self.precision_at(1):.2f} P@5={self.precision_at(5):.2f}"
        )


def _answer_matches(answer_text: str, expected: str) -> bool:
    """Lenient TREC-style match: either string contains the other."""
    a = answer_text.lower().strip()
    e = expected.lower().strip()
    return bool(a) and (e in a or a in e)


def score_result(question: TrecQuestion, result: QAResult) -> QuestionOutcome:
    """Score one pipeline result against its ground truth."""
    rank: int | None = None
    for i, answer in enumerate(result.answers, start=1):
        if _answer_matches(answer.text, question.expected_answer):
            rank = i
            break
    return QuestionOutcome(
        qid=question.qid,
        question=question.text,
        expected=question.expected_answer,
        rank=rank,
        top_answer=result.answers[0].text if result.answers else "",
    )


def evaluate(
    pipeline: QAPipeline,
    questions: t.Sequence[TrecQuestion],
) -> EvaluationReport:
    """Run the pipeline over ``questions`` and score every answer."""
    report = EvaluationReport()
    for q in questions:
        result = pipeline.answer(q.text, qid=q.qid)
        report.outcomes.append(score_result(q, result))
    return report
