"""The sequential Q/A pipeline (Figure 1), fully assembled.

``QAPipeline.answer`` runs QP -> PR -> PS -> PO -> AP on one question and
returns answers together with per-module wall-clock timings and work
counters.  The timings feed Table 2-style module analysis; the work
counters feed :mod:`repro.qa.profiles`, which converts real executed work
into simulated durations on the modelled 2001-era hardware.
"""

from __future__ import annotations

import time
import typing as t

from ..nlp.entities import EntityRecognizer
from ..retrieval.collection import IndexedCorpus
from .answer_processing import AnswerProcessor
from .paragraph_ordering import ParagraphOrderer
from .paragraph_retrieval import ParagraphRetriever
from .paragraph_scoring import ParagraphScorer
from .question import ModuleTimings, ProcessedQuestion, QAResult, Question
from .question_processing import QuestionProcessor

__all__ = ["QAPipeline"]


class QAPipeline:
    """End-to-end sequential question answering.

    Parameters
    ----------
    indexed:
        The indexed corpus to search.
    recognizer:
        Entity recognizer shared by QP (keywords) and AP (candidates).
    n_answers:
        Answers returned per question (the paper's ``n_a``).
    threshold_fraction / max_accepted:
        PO acceptance policy.
    use_term_index:
        Route PS and AP through the index's precomputed paragraph term
        layer (the fast path).  ``False`` forces the re-tokenize reference
        path — used by the perf-regression harness as its baseline.
    """

    def __init__(
        self,
        indexed: IndexedCorpus,
        recognizer: EntityRecognizer,
        n_answers: int = 5,
        threshold_fraction: float = 0.25,
        max_accepted: int = 600,
        use_term_index: bool = True,
    ) -> None:
        self.indexed = indexed
        self.recognizer = recognizer
        self.use_term_index = use_term_index
        term_lookup = indexed.term_lookup if use_term_index else None
        self.qp = QuestionProcessor(recognizer)
        self.pr = ParagraphRetriever(indexed)
        self.ps = ParagraphScorer(term_lookup=term_lookup)
        self.po = ParagraphOrderer(threshold_fraction, max_accepted)
        self.ap = AnswerProcessor(
            recognizer, n_answers=n_answers, term_lookup=term_lookup
        )

    def answer(self, question: Question | str, qid: int = 0) -> QAResult:
        """Answer one question, timing each module."""
        if isinstance(question, str):
            question = Question(qid=qid, text=question)
        timings = ModuleTimings()
        work: dict[str, float] = {}

        t0 = time.perf_counter()
        processed = self.qp.process(question)
        timings.qp = time.perf_counter() - t0

        t0 = time.perf_counter()
        pr_result = self.pr.retrieve(processed)
        timings.pr = time.perf_counter() - t0
        work["pr_postings"] = float(pr_result.postings_scanned)
        work["pr_doc_bytes"] = float(pr_result.doc_bytes_read)

        t0 = time.perf_counter()
        scored = self.ps.score(processed, pr_result.paragraphs)
        timings.ps = time.perf_counter() - t0
        work["ps_paragraph_bytes"] = float(
            sum(p.size_bytes for p in pr_result.paragraphs)
        )

        t0 = time.perf_counter()
        accepted = self.po.order(scored)
        timings.po = time.perf_counter() - t0

        t0 = time.perf_counter()
        answers = self.ap.extract(processed, accepted)
        timings.ap = time.perf_counter() - t0
        work["ap_paragraph_bytes"] = float(
            sum(sp.paragraph.size_bytes for sp in accepted)
        )
        work["n_keywords"] = float(len(processed.keywords))

        return QAResult(
            processed=processed,
            answers=answers,
            n_retrieved=len(pr_result.paragraphs),
            n_accepted=len(accepted),
            timings=timings,
            work=work,
            paragraph_ranks=tuple(sp.paragraph.key for sp in accepted),
        )

    # Expose module objects for partitioned (distributed) execution.
    def process_question(self, question: Question) -> ProcessedQuestion:
        return self.qp.process(question)
