"""The sequential Q/A pipeline (Figure 1), fully assembled.

``QAPipeline.answer`` runs QP -> PR -> PS -> PO -> AP on one question and
returns answers together with per-module wall-clock timings and work
counters.  The timings feed Table 2-style module analysis; the work
counters feed :mod:`repro.qa.profiles`, which converts real executed work
into simulated durations on the modelled 2001-era hardware.
"""

from __future__ import annotations

import time
import typing as t

from ..nlp.entities import EntityRecognizer
from ..nlp.stemming import SHARED_STEM_CACHE
from ..observability.metrics import MetricsRegistry
from ..observability.names import (
    AP_PARAGRAPH_BYTES,
    CONJUNCTION_CACHE_HITS,
    CONJUNCTION_CACHE_MISSES,
    DOC_BYTES_READ,
    INDEX_MEMORY_BYTES,
    N_KEYWORDS,
    POSTINGS_SCANNED,
    PS_PARAGRAPH_BYTES,
    RELAXATION_ROUNDS,
    RETRIEVAL_BATCH_DISTINCT,
    RETRIEVAL_BATCH_POSTINGS_FETCHES,
    RETRIEVAL_BATCH_POSTINGS_SHARED,
    RETRIEVAL_BATCH_QUESTIONS,
    RETRIEVAL_BATCH_SHARING_FACTOR,
    SELECTOR_DECISIONS,
    SELECTOR_FALLBACKS,
    SELECTOR_PRUNE_RATE,
    SELECTOR_PRUNED,
    SELECTOR_SELECTED,
    SELECTOR_SKETCH_BYTES,
    STEM_CACHE_HITS,
    STEM_CACHE_MISSES,
    VOCABULARY_SIZE,
)
from ..retrieval.collection import IndexedCorpus
from ..retrieval.selection import CollectionSelector, SelectionDecision
from .answer_processing import AnswerProcessor
from .batch import BatchStats, execute_batch
from .paragraph_ordering import ParagraphOrderer
from .paragraph_retrieval import ParagraphRetriever
from .paragraph_scoring import ParagraphScorer
from .question import ModuleTimings, ProcessedQuestion, QAResult, Question
from .question_processing import QuestionProcessor

__all__ = ["QAPipeline"]


class QAPipeline:
    """End-to-end sequential question answering.

    Parameters
    ----------
    indexed:
        The indexed corpus to search.
    recognizer:
        Entity recognizer shared by QP (keywords) and AP (candidates).
    n_answers:
        Answers returned per question (the paper's ``n_a``).
    threshold_fraction / max_accepted:
        PO acceptance policy.
    use_term_index:
        Route PS and AP through the index's precomputed paragraph term
        layer (the fast path).  ``False`` forces the re-tokenize reference
        path — used by the perf-regression harness as its baseline.
    metrics:
        Optional registry receiving the work counters under their
        canonical :mod:`repro.observability.names` — one vocabulary for
        the retriever, the work dict, and the JSON reports.
    selector:
        Optional :class:`~repro.retrieval.selection.CollectionSelector`
        routing the PR fan-out through per-collection term sketches
        instead of broadcasting (exact mode keeps results bit-identical;
        predictive mode trades recall for pruned fan-out).  Decisions are
        recorded under the ``retrieval.selector.*`` metric names.
    """

    def __init__(
        self,
        indexed: IndexedCorpus,
        recognizer: EntityRecognizer,
        n_answers: int = 5,
        threshold_fraction: float = 0.25,
        max_accepted: int = 600,
        use_term_index: bool = True,
        metrics: MetricsRegistry | None = None,
        selector: CollectionSelector | None = None,
    ) -> None:
        self.indexed = indexed
        self.recognizer = recognizer
        self.use_term_index = use_term_index
        self.metrics = metrics
        term_lookup = indexed.term_lookup if use_term_index else None
        self.qp = QuestionProcessor(recognizer)
        self.pr = ParagraphRetriever(indexed, selector=selector)
        self.ps = ParagraphScorer(term_lookup=term_lookup)
        self.po = ParagraphOrderer(threshold_fraction, max_accepted)
        self.ap = AnswerProcessor(
            recognizer, n_answers=n_answers, term_lookup=term_lookup
        )
        #: Sharing/amortization stats of the most recent ``answer_batch``.
        self.last_batch_stats: BatchStats | None = None

    def answer(self, question: Question | str, qid: int = 0) -> QAResult:
        """Answer one question, timing each module."""
        if isinstance(question, str):
            question = Question(qid=qid, text=question)
        timings = ModuleTimings()
        work: dict[str, float] = {}

        t0 = time.perf_counter()
        processed = self.qp.process(question)
        timings.qp = time.perf_counter() - t0

        t0 = time.perf_counter()
        pr_result = self.pr.retrieve(processed)
        timings.pr = time.perf_counter() - t0
        work[POSTINGS_SCANNED] = float(pr_result.postings_scanned)
        work[DOC_BYTES_READ] = float(pr_result.doc_bytes_read)
        work[RELAXATION_ROUNDS] = float(
            sum(w.relaxation_rounds for w in pr_result.per_collection)
        )

        t0 = time.perf_counter()
        scored = self.ps.score(processed, pr_result.paragraphs)
        timings.ps = time.perf_counter() - t0
        work[PS_PARAGRAPH_BYTES] = float(
            sum(p.size_bytes for p in pr_result.paragraphs)
        )

        t0 = time.perf_counter()
        accepted = self.po.order(scored)
        timings.po = time.perf_counter() - t0

        t0 = time.perf_counter()
        answers = self.ap.extract(processed, accepted)
        timings.ap = time.perf_counter() - t0
        work[AP_PARAGRAPH_BYTES] = float(
            sum(sp.paragraph.size_bytes for sp in accepted)
        )
        work[N_KEYWORDS] = float(len(processed.keywords))
        if self.metrics is not None:
            self._record(work)
            self._record_selection(self.pr.last_decision)

        return QAResult(
            processed=processed,
            answers=answers,
            n_retrieved=len(pr_result.paragraphs),
            n_accepted=len(accepted),
            timings=timings,
            work=work,
            paragraph_ranks=tuple(sp.paragraph.key for sp in accepted),
        )

    def answer_batch(
        self,
        questions: t.Sequence[Question | str],
        qids: t.Sequence[int] | None = None,
    ) -> list[QAResult]:
        """Answer a batch of questions with cross-question amortization.

        Bit-identical to ``[self.answer(q) for q in questions]`` — same
        answers, paragraph ranks, work counters and cache statistics —
        but duplicates replay their first execution instead of re-running
        the pipeline, posting lists are fetched once per distinct stem
        per collection, and PS/AP keyword-id resolution is hoisted out of
        the per-paragraph loops (see :mod:`repro.qa.batch`).  Sharing
        accounting lands in :attr:`last_batch_stats` and, when a metrics
        registry is attached, under the ``retrieval.batch.*`` names.
        """
        items: list[Question] = []
        for i, q in enumerate(questions):
            if isinstance(q, str):
                q = Question(qid=qids[i] if qids is not None else 0, text=q)
            items.append(q)
        results, stats = execute_batch(self, items)
        self.last_batch_stats = stats
        if self.metrics is not None and items:
            self.metrics.inc(RETRIEVAL_BATCH_QUESTIONS, float(stats.n_questions))
            self.metrics.inc(RETRIEVAL_BATCH_DISTINCT, float(stats.n_distinct))
            self.metrics.inc(
                RETRIEVAL_BATCH_POSTINGS_FETCHES, float(stats.postings_fetches)
            )
            self.metrics.inc(
                RETRIEVAL_BATCH_POSTINGS_SHARED, float(stats.postings_shared)
            )
            self.metrics.observe(
                RETRIEVAL_BATCH_SHARING_FACTOR, stats.sharing_factor
            )
        return results

    def _record(self, work: dict[str, float]) -> None:
        """Mirror the work counters into the registry (canonical names)."""
        assert self.metrics is not None
        for name in (
            POSTINGS_SCANNED,
            DOC_BYTES_READ,
            RELAXATION_ROUNDS,
            PS_PARAGRAPH_BYTES,
            AP_PARAGRAPH_BYTES,
        ):
            self.metrics.inc(name, work[name])
        self.metrics.observe(N_KEYWORDS, work[N_KEYWORDS])
        # Cache totals are cumulative on the cache objects -> gauges.
        hits = misses = 0
        for r in self.indexed.retrievers:
            stats = r.cache_stats
            hits += stats["hits"]
            misses += stats["misses"]
        self.metrics.gauge(CONJUNCTION_CACHE_HITS).set(float(hits))
        self.metrics.gauge(CONJUNCTION_CACHE_MISSES).set(float(misses))
        self.metrics.gauge(STEM_CACHE_HITS).set(float(SHARED_STEM_CACHE.hits))
        self.metrics.gauge(STEM_CACHE_MISSES).set(
            float(SHARED_STEM_CACHE.misses)
        )
        # Packed-index residency: structural bytes of the array-backed
        # layers plus the size of the vocabulary coding their ids.
        self.metrics.gauge(INDEX_MEMORY_BYTES).set(
            float(sum(ix.stats.memory_bytes for ix in self.indexed.indexes))
        )
        if self.indexed.indexes:
            self.metrics.gauge(VOCABULARY_SIZE).set(
                float(len(self.indexed.indexes[0].vocab))
            )

    def _record_selection(self, decision: SelectionDecision | None) -> None:
        """Mirror one routing decision into the registry (no-op without
        a selector — broadcast fan-outs record nothing)."""
        assert self.metrics is not None
        if decision is None:
            return
        self.metrics.inc(SELECTOR_DECISIONS)
        self.metrics.inc(SELECTOR_SELECTED, float(len(decision.selected)))
        self.metrics.inc(SELECTOR_PRUNED, float(len(decision.pruned)))
        if decision.fallback:
            self.metrics.inc(SELECTOR_FALLBACKS)
        self.metrics.observe(SELECTOR_PRUNE_RATE, decision.prune_rate)
        if self.pr.selector is not None:
            self.metrics.gauge(SELECTOR_SKETCH_BYTES).set(
                float(self.pr.selector.sketch_bytes())
            )

    # Expose module objects for partitioned (distributed) execution.
    def process_question(self, question: Question) -> ProcessedQuestion:
        return self.qp.process(question)
