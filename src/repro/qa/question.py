"""Data model shared by the Q/A pipeline modules.

Mirrors the inter-module interfaces of Figure 1: QP produces a processed
question (answer type + keywords); PR produces paragraphs; PS scores them;
PO orders and filters them; AP produces ranked answers.  The paper stresses
that "the inter-module communication is minimal" (Section 2.2) — these
small dataclasses are exactly that minimal surface, which is why the
distributed system can cheaply migrate work at the module boundaries.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field

from ..nlp.entities import EntityType
from ..nlp.keywords import Keyword
from ..retrieval.paragraphs import Paragraph

__all__ = [
    "Question",
    "ProcessedQuestion",
    "ScoredParagraph",
    "Answer",
    "QAResult",
    "ModuleTimings",
]


@dataclass(frozen=True, slots=True)
class Question:
    """A user question entering the system."""

    qid: int
    text: str

    @property
    def size_bytes(self) -> int:
        return len(self.text.encode("utf-8"))


@dataclass(frozen=True, slots=True)
class ProcessedQuestion:
    """QP output: semantic info + retrieval keywords (Section 2.1)."""

    question: Question
    answer_type: EntityType
    keywords: tuple[Keyword, ...]


@dataclass(frozen=True, slots=True)
class ScoredParagraph:
    """PS output: a paragraph with its relevance score."""

    paragraph: Paragraph
    score: float
    #: Number of query keywords present (used by AP heuristics).
    keywords_present: int


@dataclass(frozen=True, slots=True)
class Answer:
    """AP output: one extracted answer.

    ``short`` is the 50-byte TREC-style answer string, ``long`` the
    250-byte context (Table 1's two output formats).
    """

    text: str
    short: str
    long: str
    score: float
    paragraph_key: tuple[int, int]
    entity_type: EntityType

    @property
    def size_bytes(self) -> int:
        return len(self.long.encode("utf-8"))


@dataclass(slots=True)
class ModuleTimings:
    """Wall-clock seconds spent in each module (real execution)."""

    qp: float = 0.0
    pr: float = 0.0
    ps: float = 0.0
    po: float = 0.0
    ap: float = 0.0

    @property
    def total(self) -> float:
        return self.qp + self.pr + self.ps + self.po + self.ap

    def fractions(self) -> dict[str, float]:
        tot = self.total or 1.0
        return {
            "QP": self.qp / tot,
            "PR": self.pr / tot,
            "PS": self.ps / tot,
            "PO": self.po / tot,
            "AP": self.ap / tot,
        }


@dataclass(slots=True)
class QAResult:
    """Full pipeline output for one question."""

    processed: ProcessedQuestion
    answers: list[Answer]
    #: All retrieved paragraphs (PR output size, the paper's n_p).
    n_retrieved: int
    #: Paragraphs accepted by PO (the paper's n_pa).
    n_accepted: int
    timings: ModuleTimings = field(default_factory=ModuleTimings)
    #: Work counters for the simulation cost model.
    work: dict[str, float] = field(default_factory=dict)
    #: Accepted paragraph keys in PO rank order (equivalence fingerprint
    #: for the perf-regression harness).
    paragraph_ranks: tuple[tuple[int, int], ...] = ()

    @property
    def best(self) -> Answer | None:
        return self.answers[0] if self.answers else None
