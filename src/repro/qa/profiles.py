"""Question profiles: the workload unit the simulated cluster executes.

A :class:`QuestionProfile` captures everything the distributed simulation
needs to execute one Q/A task: per-module simulated resource demands, the
iterative structure (per-collection PR sub-tasks, per-paragraph AP
sub-tasks), message sizes, and memory footprint.

Two construction paths:

* :func:`profile_question` — run the *real* pipeline modules on the
  synthetic corpus and convert the measured work through the
  :class:`~repro.qa.costs.CostModel`.  Honest data flow; used for
  correctness-sensitive experiments and examples.
* :class:`SyntheticProfileGenerator` — sample profiles directly from
  distributions calibrated to the paper's Table 8 statistics (n_pa ≈ 440
  accepted paragraphs for complex questions, PR collection-time skew with
  max/mean ≈ 1.5, rank-correlated AP costs).  Used for the large
  parameter sweeps (hundreds of questions × a dozen strategies) where
  running the real pipeline for every configuration would only add noise,
  and for experiments needing paragraph counts beyond what the laptop
  corpus yields (e.g. Fig 10's 100-paragraph chunks).
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field

import numpy as np

from ..nlp.entities import EntityRecognizer
from .answer_processing import AnswerProcessor
from .costs import CostModel, ModuleCost
from .paragraph_ordering import ParagraphOrderer
from .paragraph_retrieval import ParagraphRetriever
from .paragraph_scoring import ParagraphScorer
from .question import Question
from .question_processing import QuestionProcessor

if t.TYPE_CHECKING:  # pragma: no cover
    from ..retrieval.selection import CollectionSelector
    from .pipeline import QAPipeline

__all__ = [
    "CollectionProfile",
    "ParagraphProfile",
    "QuestionProfile",
    "profile_question",
    "SyntheticProfileGenerator",
    "SyntheticProfileParams",
]


@dataclass(frozen=True, slots=True)
class CollectionProfile:
    """One PR sub-task: retrieval against one sub-collection."""

    collection_id: int
    cost: ModuleCost
    n_paragraphs: int
    paragraph_bytes: float
    #: PS work for the paragraphs this collection yields (PS replicas run
    #: behind each PR replica, Fig 3).
    ps_cpu_s: float


@dataclass(frozen=True, slots=True)
class ParagraphProfile:
    """One AP sub-task unit: one accepted paragraph, in PO rank order."""

    size_bytes: float
    ap_cpu_s: float


@dataclass(slots=True)
class QuestionProfile:
    """Complete simulated workload of one Q/A task."""

    qid: int
    question_bytes: float
    keyword_bytes: float
    n_keywords: int
    qp_cpu_s: float
    collections: list[CollectionProfile]
    po_cpu_s: float
    #: Accepted paragraphs in PO rank order (the paper's n_pa items).
    paragraphs: list[ParagraphProfile]
    n_answers: int
    answer_bytes: float
    memory_bytes: float
    #: Mediator routing decision (collection ids the selector kept);
    #: ``None`` = no selection ran — the PR fan-out broadcasts.  Only
    #: honoured when ``SystemConfig.collection_selection`` is on.
    selected_collections: tuple[int, ...] | None = None

    # -- aggregates used all over the experiments -------------------------------
    @property
    def n_accepted(self) -> int:
        return len(self.paragraphs)

    @property
    def n_retrieved(self) -> int:
        return sum(c.n_paragraphs for c in self.collections)

    @property
    def pr_cost(self) -> ModuleCost:
        total = ModuleCost(0.0, 0.0)
        for c in self.collections:
            total = total + c.cost
        return total

    @property
    def ps_cpu_s(self) -> float:
        return sum(c.ps_cpu_s for c in self.collections)

    @property
    def ap_cpu_s(self) -> float:
        return sum(p.ap_cpu_s for p in self.paragraphs)

    @property
    def retrieved_paragraph_bytes(self) -> float:
        return sum(c.paragraph_bytes for c in self.collections)

    @property
    def accepted_paragraph_bytes(self) -> float:
        return sum(p.size_bytes for p in self.paragraphs)

    def sequential_module_seconds(self, model: CostModel) -> dict[str, float]:
        """Uncontended per-module durations on the reference node."""
        hw = model.hardware
        pr = self.pr_cost
        return {
            "QP": self.qp_cpu_s / hw.cpu_speed,
            "PR": pr.seconds_on(hw),
            "PS": self.ps_cpu_s / hw.cpu_speed,
            "PO": self.po_cpu_s / hw.cpu_speed,
            "AP": self.ap_cpu_s / hw.cpu_speed,
        }

    def sequential_seconds(self, model: CostModel) -> float:
        return sum(self.sequential_module_seconds(model).values())


def profile_question(
    pipeline: "QAPipeline",
    question: Question | str,
    model: CostModel,
    qid: int = 0,
    selector: "CollectionSelector | None" = None,
) -> QuestionProfile:
    """Execute the real pipeline and convert its work into a profile.

    Runs the modules individually (rather than ``pipeline.answer``) to
    capture per-collection and per-paragraph work detail.  When a
    ``selector`` is given, its routing decision for the question's
    keywords is carried on the profile as ``selected_collections`` (the
    per-collection work detail stays exhaustive, so the same profile can
    simulate selection on and off).
    """
    if isinstance(question, str):
        question = Question(qid=qid, text=question)

    processed = pipeline.qp.process(question)
    qp_cost = model.qp_cost(len(processed.keywords))
    selected: tuple[int, ...] | None = None
    if selector is not None:
        selected = selector.select(list(processed.keywords)).selected

    collections: list[CollectionProfile] = []
    all_scored = []
    for cid in range(pipeline.pr.n_collections):
        pr_result = pipeline.pr.retrieve(processed, collection_ids=[cid])
        work = pr_result.per_collection[0]
        para_bytes = float(sum(p.size_bytes for p in pr_result.paragraphs))
        scored = pipeline.ps.score(processed, pr_result.paragraphs)
        all_scored.extend(scored)
        collections.append(
            CollectionProfile(
                collection_id=cid,
                cost=model.pr_collection_cost(
                    work.postings_scanned, work.doc_bytes_read
                ),
                n_paragraphs=len(pr_result.paragraphs),
                paragraph_bytes=para_bytes,
                ps_cpu_s=model.ps_cost(para_bytes).cpu_s,
            )
        )

    accepted = pipeline.po.order(all_scored)
    po_cost = model.po_cost(len(all_scored))

    paragraphs: list[ParagraphProfile] = []
    for sp in accepted:
        n_cands = len(
            pipeline.ap._candidates(  # noqa: SLF001 - deliberate reuse
                processed, sp.paragraph.text, None
            )
        )
        cost = model.ap_paragraph_cost(sp.paragraph.size_bytes, n_cands)
        paragraphs.append(
            ParagraphProfile(
                size_bytes=float(sp.paragraph.size_bytes),
                ap_cpu_s=cost.cpu_s,
            )
        )

    rng = np.random.default_rng(qid + 12345)
    mem_lo, mem_hi = model.memory_per_question
    keyword_bytes = float(
        sum(len(kw.text.encode()) + 8 for kw in processed.keywords)
    )
    return QuestionProfile(
        qid=question.qid,
        question_bytes=float(question.size_bytes),
        keyword_bytes=keyword_bytes,
        n_keywords=len(processed.keywords),
        qp_cpu_s=qp_cost.cpu_s,
        collections=collections,
        po_cpu_s=po_cost.cpu_s,
        paragraphs=paragraphs,
        n_answers=pipeline.ap.n_answers,
        answer_bytes=model.answer_bytes,
        memory_bytes=float(rng.uniform(mem_lo, mem_hi)),
        selected_collections=selected,
    )


@dataclass(frozen=True, slots=True)
class SyntheticProfileParams:
    """Distribution parameters for synthetic profiles.

    Defaults target the paper's *average* TREC-9 question (Table 2:
    ~94 s total, 69.7 % AP / 26.5 % PR).  ``complex()`` targets Table 8's
    complex-question population (~158 s total, n_pa ≈ 440).
    """

    n_collections: int = 8
    #: Mean/sigma of the lognormal total PR disk time (reference node).
    pr_disk_seconds_mean: float = 19.9  # 24.9 s PR * 80 % disk
    pr_disk_seconds_sigma: float = 0.35
    #: Skew of per-collection shares (Dirichlet alpha; lower = more skew).
    pr_collection_alpha: float = 4.0
    pr_cpu_per_disk_s: float = 0.25
    #: Accepted paragraph count (lognormal, clipped).
    n_accepted_mean: float = 250.0
    n_accepted_sigma: float = 0.45
    n_accepted_range: tuple[int, int] = (20, 900)
    #: Retrieved:accepted ratio (the PO threshold discards the rest).
    retrieved_per_accepted: float = 3.0
    #: Total AP CPU time (lognormal), split over paragraphs rank-decayed.
    ap_seconds_mean: float = 65.5
    ap_seconds_sigma: float = 0.40
    #: First-rank paragraphs cost this many times the last-rank ones.
    ap_rank_decay: float = 3.0
    #: Per-paragraph multiplicative noise sigma.
    ap_noise_sigma: float = 0.30
    paragraph_bytes_range: tuple[float, float] = (800.0, 4000.0)
    n_keywords_range: tuple[int, int] = (4, 9)
    ps_fraction_of_ap: float = 0.032  # PS ~2.1 s vs AP 65.5 s (Table 2)
    qp_cpu_range: tuple[float, float] = (0.7, 1.3)
    po_cpu_s: float = 0.06
    n_answers: int = 5
    #: Simulated mediator decision: keep the top ``round(fraction * n)``
    #: collections by PR share (the heaviest collections are the ones a
    #: df-weighted selector keeps).  ``None`` = profiles carry no
    #: selection — the fan-out broadcasts.  Derived from the existing
    #: Dirichlet draw, so the RNG sequence (and every other field) is
    #: unchanged by turning this on.
    selected_fraction: float | None = None

    def scaled(self, factor: float) -> "SyntheticProfileParams":
        """Scale the work-size parameters by ``factor`` (keeps shapes)."""
        from dataclasses import replace

        lo, hi = self.n_accepted_range
        return replace(
            self,
            pr_disk_seconds_mean=self.pr_disk_seconds_mean * factor,
            ap_seconds_mean=self.ap_seconds_mean * factor,
            n_accepted_mean=self.n_accepted_mean * factor,
            n_accepted_range=(max(5, int(lo * factor)), max(10, int(hi * factor))),
        )

    @classmethod
    def trec8(cls) -> "SyntheticProfileParams":
        """The TREC-8 era question population (~48 s average, Table 2)."""
        return cls().scaled(48.0 / 94.0)

    @classmethod
    def complex(cls) -> "SyntheticProfileParams":
        """Parameters matching Table 8's complex-question population."""
        return cls(
            pr_disk_seconds_mean=30.4,  # 38.01 s * 80 %
            # The paper's Fig 7 example question carries 883 accepted
            # paragraphs; the complex population centres there.
            n_accepted_mean=880.0,
            n_accepted_sigma=0.25,
            n_accepted_range=(240, 1600),
            ap_seconds_mean=117.55,
            ap_seconds_sigma=0.25,
            ap_rank_decay=2.2,
            ps_fraction_of_ap=0.0175,  # PS 2.06 s vs AP 117.55 s (Table 8)
        )


class SyntheticProfileGenerator:
    """Samples :class:`QuestionProfile` objects from calibrated laws."""

    def __init__(
        self,
        params: SyntheticProfileParams | None = None,
        model: CostModel | None = None,
        seed: int = 0,
    ) -> None:
        self.params = params or SyntheticProfileParams()
        self.model = model or CostModel.default()
        self.rng = np.random.default_rng(seed)

    def generate(self, qid: int) -> QuestionProfile:
        p = self.params
        rng = self.rng
        hw = self.model.hardware

        n_keywords = int(rng.integers(*p.n_keywords_range))
        qp_cpu = float(rng.uniform(*p.qp_cpu_range))

        # --- PR: total disk seconds split over collections with skew ------
        pr_disk_total = float(
            rng.lognormal(
                np.log(p.pr_disk_seconds_mean) - p.pr_disk_seconds_sigma**2 / 2,
                p.pr_disk_seconds_sigma,
            )
        )
        shares = rng.dirichlet([p.pr_collection_alpha] * p.n_collections)

        # --- acceptance counts --------------------------------------------------
        n_accepted = int(
            np.clip(
                rng.lognormal(
                    np.log(p.n_accepted_mean) - p.n_accepted_sigma**2 / 2,
                    p.n_accepted_sigma,
                ),
                *p.n_accepted_range,
            )
        )
        n_retrieved = int(n_accepted * p.retrieved_per_accepted)

        # --- AP: rank-decayed per-paragraph costs ---------------------------------
        ap_total = float(
            rng.lognormal(
                np.log(p.ap_seconds_mean) - p.ap_seconds_sigma**2 / 2,
                p.ap_seconds_sigma,
            )
        )
        ranks = np.arange(n_accepted)
        decay = 1.0 + (p.ap_rank_decay - 1.0) * np.exp(
            -3.0 * ranks / max(1, n_accepted)
        )
        noise = rng.lognormal(0.0, p.ap_noise_sigma, size=n_accepted)
        weights = decay * noise
        ap_each = ap_total * weights / weights.sum()
        sizes = rng.uniform(*p.paragraph_bytes_range, size=n_accepted)

        paragraphs = [
            ParagraphProfile(size_bytes=float(s), ap_cpu_s=float(c))
            for s, c in zip(sizes, ap_each)
        ]

        # --- collections carry PR cost + their slice of PS work -------------------
        ps_total = ap_total * p.ps_fraction_of_ap
        retrieved_bytes_total = float(np.mean(sizes)) * n_retrieved
        collections = []
        para_per_coll = np.floor(shares * n_retrieved).astype(int)
        for cid in range(p.n_collections):
            disk_s = pr_disk_total * float(shares[cid])
            collections.append(
                CollectionProfile(
                    collection_id=cid,
                    cost=ModuleCost(
                        cpu_s=p.pr_cpu_per_disk_s * disk_s,
                        disk_bytes=disk_s * hw.disk_bandwidth,
                    ),
                    n_paragraphs=int(para_per_coll[cid]),
                    paragraph_bytes=retrieved_bytes_total * float(shares[cid]),
                    ps_cpu_s=ps_total * float(shares[cid]),
                )
            )

        selected: tuple[int, ...] | None = None
        if p.selected_fraction is not None:
            k = max(1, round(p.selected_fraction * p.n_collections))
            if k < p.n_collections:
                ranked = sorted(
                    range(p.n_collections),
                    key=lambda cid: (-shares[cid], cid),
                )
                selected = tuple(sorted(ranked[:k]))
            else:
                selected = tuple(range(p.n_collections))

        mem_lo, mem_hi = self.model.memory_per_question
        return QuestionProfile(
            qid=qid,
            question_bytes=float(rng.integers(40, 120)),
            keyword_bytes=float(n_keywords * 12),
            n_keywords=n_keywords,
            qp_cpu_s=qp_cpu,
            collections=collections,
            po_cpu_s=p.po_cpu_s,
            paragraphs=paragraphs,
            n_answers=p.n_answers,
            answer_bytes=self.model.answer_bytes,
            memory_bytes=float(rng.uniform(mem_lo, mem_hi)),
            selected_collections=selected,
        )

    def generate_many(self, n: int, start_qid: int = 0) -> list[QuestionProfile]:
        return [self.generate(start_qid + i) for i in range(n)]
