"""Question-profile persistence.

Profiling the real pipeline over hundreds of questions is the slow step of
the end-to-end experiments; saving profiles lets a simulation campaign be
re-run (or shared) without touching the corpus at all.
"""

from __future__ import annotations

import gzip
import json
import pathlib
import typing as t

from .costs import ModuleCost
from .profiles import CollectionProfile, ParagraphProfile, QuestionProfile

__all__ = ["save_profiles", "load_profiles"]

_FORMAT_VERSION = 1


def _open(path: pathlib.Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def _profile_to_dict(p: QuestionProfile) -> dict:
    return {
        "qid": p.qid,
        "question_bytes": p.question_bytes,
        "keyword_bytes": p.keyword_bytes,
        "n_keywords": p.n_keywords,
        "qp_cpu_s": p.qp_cpu_s,
        "po_cpu_s": p.po_cpu_s,
        "n_answers": p.n_answers,
        "answer_bytes": p.answer_bytes,
        "memory_bytes": p.memory_bytes,
        "collections": [
            {
                "collection_id": c.collection_id,
                "cpu_s": c.cost.cpu_s,
                "disk_bytes": c.cost.disk_bytes,
                "n_paragraphs": c.n_paragraphs,
                "paragraph_bytes": c.paragraph_bytes,
                "ps_cpu_s": c.ps_cpu_s,
            }
            for c in p.collections
        ],
        # Stored as flat parallel arrays: paragraphs dominate the payload.
        "paragraph_sizes": [pp.size_bytes for pp in p.paragraphs],
        "paragraph_ap_cpu": [pp.ap_cpu_s for pp in p.paragraphs],
    }


def _profile_from_dict(d: dict) -> QuestionProfile:
    return QuestionProfile(
        qid=d["qid"],
        question_bytes=d["question_bytes"],
        keyword_bytes=d["keyword_bytes"],
        n_keywords=d["n_keywords"],
        qp_cpu_s=d["qp_cpu_s"],
        collections=[
            CollectionProfile(
                collection_id=c["collection_id"],
                cost=ModuleCost(cpu_s=c["cpu_s"], disk_bytes=c["disk_bytes"]),
                n_paragraphs=c["n_paragraphs"],
                paragraph_bytes=c["paragraph_bytes"],
                ps_cpu_s=c["ps_cpu_s"],
            )
            for c in d["collections"]
        ],
        po_cpu_s=d["po_cpu_s"],
        paragraphs=[
            ParagraphProfile(size_bytes=s, ap_cpu_s=c)
            for s, c in zip(d["paragraph_sizes"], d["paragraph_ap_cpu"])
        ],
        n_answers=d["n_answers"],
        answer_bytes=d["answer_bytes"],
        memory_bytes=d["memory_bytes"],
    )


def save_profiles(
    profiles: t.Sequence[QuestionProfile], path: str | pathlib.Path
) -> None:
    """Write profiles to JSON (gzip if the name ends in .gz)."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "profiles": [_profile_to_dict(p) for p in profiles],
    }
    with _open(pathlib.Path(path), "w") as fh:
        json.dump(payload, fh)


def load_profiles(path: str | pathlib.Path) -> list[QuestionProfile]:
    """Load profiles written by :func:`save_profiles`."""
    with _open(pathlib.Path(path), "r") as fh:
        payload = json.load(fh)
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported profile format version: {version!r}")
    return [_profile_from_dict(d) for d in payload["profiles"]]
