"""QP — question processing module.

Identifies the expected answer type and selects retrieval keywords
(Section 2.1).  Non-iterative and cheap (1.1–1.2 % of task time, Table 2),
so the distributed design never partitions it.
"""

from __future__ import annotations

from ..nlp.answer_types import classify_question
from ..nlp.entities import EntityRecognizer
from ..nlp.keywords import select_keywords
from .question import ProcessedQuestion, Question

__all__ = ["QuestionProcessor"]


class QuestionProcessor:
    """The QP module."""

    def __init__(self, recognizer: EntityRecognizer, max_keywords: int = 8) -> None:
        self.recognizer = recognizer
        self.max_keywords = max_keywords

    def process(self, question: Question) -> ProcessedQuestion:
        """Classify the question and extract ranked keywords."""
        classification = classify_question(question.text)
        keywords = select_keywords(
            question.text, self.recognizer, max_keywords=self.max_keywords
        )
        return ProcessedQuestion(
            question=question,
            answer_type=classification.answer_type,
            keywords=tuple(keywords),
        )
