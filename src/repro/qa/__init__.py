"""The sequential Falcon-like Q/A system (Figure 1) and its cost model."""

from .answer_processing import AnswerProcessor, merge_answers
from .batch import BatchStats, execute_batch
from .costs import CostModel, ModuleCost, ReferenceHardware
from .evaluation import EvaluationReport, QuestionOutcome, evaluate, score_result
from .paragraph_ordering import ParagraphOrderer
from .paragraph_retrieval import CollectionWork, ParagraphRetriever, PRResult
from .paragraph_scoring import ParagraphScorer
from .pipeline import QAPipeline
from .profile_io import load_profiles, save_profiles
from .profiles import (
    CollectionProfile,
    ParagraphProfile,
    QuestionProfile,
    SyntheticProfileGenerator,
    SyntheticProfileParams,
    profile_question,
)
from .question import (
    Answer,
    ModuleTimings,
    ProcessedQuestion,
    QAResult,
    Question,
    ScoredParagraph,
)
from .question_processing import QuestionProcessor

__all__ = [
    "Answer",
    "AnswerProcessor",
    "BatchStats",
    "CollectionProfile",
    "CollectionWork",
    "CostModel",
    "EvaluationReport",
    "ModuleCost",
    "ModuleTimings",
    "PRResult",
    "ParagraphOrderer",
    "ParagraphProfile",
    "ParagraphRetriever",
    "ParagraphScorer",
    "ProcessedQuestion",
    "QAPipeline",
    "QAResult",
    "Question",
    "QuestionProcessor",
    "QuestionOutcome",
    "QuestionProfile",
    "ReferenceHardware",
    "ScoredParagraph",
    "SyntheticProfileGenerator",
    "SyntheticProfileParams",
    "execute_batch",
    "load_profiles",
    "merge_answers",
    "profile_question",
    "save_profiles",
    "score_result",
    "evaluate",
]
