"""Batched cross-question execution — the PR 7 batch planner/executor.

A Zipf-popular question stream re-selects the same keywords, re-fetches
the same posting lists and re-scores the same paragraphs question after
question.  :func:`execute_batch` runs a batch of concurrent questions
through the real pipeline with three amortizations, all of them
**bit-identical** to serial execution (``[pipeline.answer(q) for q in
batch]``), which the throughput bench's equivalence gate and the
Hypothesis property tests enforce:

1. **One keyword-selection pass per distinct question.**  Duplicate
   questions in the batch reuse the first occurrence's
   :class:`~repro.qa.question.ProcessedQuestion` (re-wrapped with their
   own qid) instead of re-running QP.

2. **Shared posting fetches.**  While the batch is active every
   :class:`~repro.retrieval.boolean.BooleanRetriever` resolves posting
   lists through a batch-scoped :class:`~repro.retrieval.boolean.SharedPostings`
   map, so each collection fetches each distinct stem once per batch —
   the Zipf head makes cross-question sharing common.  The fetch count
   saved is the ``retrieval.batch.postings_shared`` metric.

3. **Vectorized paragraph scoring.**  PS and AP resolve each keyword's
   vocabulary ids once per question
   (:class:`~repro.qa.paragraph_scoring.KeywordIdResolver`) and score
   paragraphs with packed-array binary searches only — no per-paragraph
   dict walks.

Correctness under caching is the subtle part: serial execution of a
duplicate question still *touches* the shared stem cache (QP keyword
selection, AP candidate filtering) and the per-collection conjunction
LRUs (one get per relaxation round), and those touches move LRU state
and hit/miss counters.  The batch path therefore records, during a
question's first execution, (a) the stem-cache lookup sequence and
(b) the conjunction key of every relaxation round per collection, and
**replays** both for each duplicate — recomputing and re-inserting on a
cache miss exactly as serial would.  Since every recomputation is a pure
function of the key, the replayed counters, LRU orders and logical work
charges equal serial execution under any eviction pattern, while the
expensive deterministic results (paragraph extraction, scoring, answer
windows) are reused.
"""

from __future__ import annotations

import time
import typing as t
from dataclasses import dataclass, field

from ..nlp.stemming import SHARED_STEM_CACHE
from ..observability.names import (
    AP_PARAGRAPH_BYTES,
    DOC_BYTES_READ,
    N_KEYWORDS,
    POSTINGS_SCANNED,
    PS_PARAGRAPH_BYTES,
    RELAXATION_ROUNDS,
)
from ..retrieval.boolean import SharedPostings
from .paragraph_retrieval import CollectionWork, PRResult
from .paragraph_scoring import KeywordIdResolver
from .question import ModuleTimings, ProcessedQuestion, QAResult, Question

if t.TYPE_CHECKING:  # pragma: no cover
    from .pipeline import QAPipeline

__all__ = ["BatchStats", "execute_batch"]


@dataclass(slots=True)
class BatchStats:
    """Sharing/amortization accounting for one executed batch."""

    #: Questions in the batch and distinct question texts executed.
    n_questions: int = 0
    n_distinct: int = 0
    #: Posting lists resolved against the indexes vs served from the
    #: batch-shared map (summed over collections).
    postings_fetches: int = 0
    postings_shared: int = 0
    #: Total logical postings charge across the batch (duplicates charge
    #: the same work as serial execution — the cost model is unchanged).
    postings_scanned: float = 0.0
    #: Wall seconds spent in the PR phase across the batch.
    pr_wall_s: float = 0.0

    @property
    def sharing_factor(self) -> float:
        """Questions per distinct execution (1.0 = no sharing)."""
        return self.n_questions / self.n_distinct if self.n_distinct else 1.0

    @property
    def amortized_postings_scanned(self) -> float:
        """Logical postings charge per batched question."""
        return (
            self.postings_scanned / self.n_questions if self.n_questions else 0.0
        )

    def to_dict(self) -> dict[str, float]:
        return {
            "n_questions": self.n_questions,
            "n_distinct": self.n_distinct,
            "sharing_factor": self.sharing_factor,
            "postings_fetches": self.postings_fetches,
            "postings_shared": self.postings_shared,
            "postings_scanned": self.postings_scanned,
            "amortized_postings_scanned": self.amortized_postings_scanned,
        }


@dataclass(slots=True)
class _QuestionRecord:
    """Everything a duplicate question needs from its first execution."""

    processed: ProcessedQuestion
    #: Raw words passed through the shared stem cache (QP + AP).
    stem_trace: list[str]
    #: Conjunction keys per relaxation round, per collection — the
    #: conjunction-cache replay script.  Pruned (unvisited) collections
    #: hold an empty list: their replay is a no-op, exactly matching
    #: serial execution under the same selector.
    rounds_per_collection: list[list[tuple[str, ...]]]
    #: The collection selector's routing decision (None = broadcast).
    decision: t.Any = None
    #: The (deterministic) outputs to reuse.
    answers: list[t.Any] = field(default_factory=list)
    n_retrieved: int = 0
    n_accepted: int = 0
    work: dict[str, float] = field(default_factory=dict)
    paragraph_ranks: tuple[t.Any, ...] = ()


def _answer_first(
    pipeline: "QAPipeline", question: Question, stats: BatchStats
) -> tuple[_QuestionRecord, QAResult]:
    """Full pipeline execution with trace recording (first occurrence)."""
    timings = ModuleTimings()
    work: dict[str, float] = {}
    SHARED_STEM_CACHE.start_trace()
    try:
        t0 = time.perf_counter()
        processed = pipeline.qp.process(question)
        timings.qp = time.perf_counter() - t0

        t0 = time.perf_counter()
        indexed = pipeline.indexed
        pr_result = PRResult(paragraphs=[])
        rounds_per_collection: list[list[tuple[str, ...]]] = []
        keywords = list(processed.keywords)
        # Collection selection runs once per *distinct* question; its
        # decision (and synthesized work, in exact mode) is recorded so
        # duplicates reuse it without re-scoring the sketches.
        selector = pipeline.pr.selector
        decision = selector.select(keywords) if selector is not None else None
        selected = set(decision.selected) if decision is not None else None
        synthesized = (
            {w.collection_id: w for w in decision.synthesized}
            if decision is not None
            else {}
        )
        for cid in range(indexed.n_collections):
            rounds: list[tuple[str, ...]] = []
            rounds_per_collection.append(rounds)
            if selected is not None and cid not in selected:
                pruned = synthesized.get(cid)
                if pruned is not None:
                    pr_result.per_collection.append(
                        CollectionWork(
                            collection_id=cid,
                            n_paragraphs=0,
                            postings_scanned=pruned.postings_scanned,
                            doc_bytes_read=0,
                            relaxation_rounds=pruned.relaxation_rounds,
                        )
                    )
                continue
            r = indexed.retrievers[cid].retrieve(keywords, round_trace=rounds)
            pr_result.paragraphs.extend(r.paragraphs)
            pr_result.per_collection.append(
                CollectionWork(
                    collection_id=cid,
                    n_paragraphs=len(r.paragraphs),
                    postings_scanned=r.postings_scanned,
                    doc_bytes_read=r.doc_bytes_read,
                    relaxation_rounds=r.relaxation_rounds,
                )
            )
        timings.pr = time.perf_counter() - t0
        stats.pr_wall_s += timings.pr
        work[POSTINGS_SCANNED] = float(pr_result.postings_scanned)
        work[DOC_BYTES_READ] = float(pr_result.doc_bytes_read)
        work[RELAXATION_ROUNDS] = float(
            sum(w.relaxation_rounds for w in pr_result.per_collection)
        )

        resolver = KeywordIdResolver([kw.stems for kw in processed.keywords])
        t0 = time.perf_counter()
        scored = pipeline.ps.score(
            processed, pr_result.paragraphs, resolver=resolver
        )
        timings.ps = time.perf_counter() - t0
        work[PS_PARAGRAPH_BYTES] = float(
            sum(p.size_bytes for p in pr_result.paragraphs)
        )

        t0 = time.perf_counter()
        accepted = pipeline.po.order(scored)
        timings.po = time.perf_counter() - t0

        t0 = time.perf_counter()
        answers = pipeline.ap.extract(processed, accepted, resolver=resolver)
        timings.ap = time.perf_counter() - t0
    finally:
        stem_trace = SHARED_STEM_CACHE.stop_trace()
    work[AP_PARAGRAPH_BYTES] = float(
        sum(sp.paragraph.size_bytes for sp in accepted)
    )
    work[N_KEYWORDS] = float(len(processed.keywords))
    if pipeline.metrics is not None:
        pipeline._record(work)
        pipeline._record_selection(decision)

    result = QAResult(
        processed=processed,
        answers=answers,
        n_retrieved=len(pr_result.paragraphs),
        n_accepted=len(accepted),
        timings=timings,
        work=work,
        paragraph_ranks=tuple(sp.paragraph.key for sp in accepted),
    )
    record = _QuestionRecord(
        processed=processed,
        stem_trace=stem_trace,
        rounds_per_collection=rounds_per_collection,
        decision=decision,
        answers=answers,
        n_retrieved=result.n_retrieved,
        n_accepted=result.n_accepted,
        work=work,
        paragraph_ranks=result.paragraph_ranks,
    )
    return record, result


def _answer_repeat(
    pipeline: "QAPipeline",
    question: Question,
    record: _QuestionRecord,
    stats: BatchStats,
) -> QAResult:
    """Duplicate question: replay cache touches, reuse the outputs.

    The stem-trace replay covers QP keyword selection and AP candidate
    filtering (both funnel through :data:`SHARED_STEM_CACHE`); the
    conjunction replay issues the recorded relaxation-round gets against
    each collection's LRU, recomputing evicted entries.  All other
    per-question state transitions of serial execution are pure
    recomputations of these recorded outputs.
    """
    timings = ModuleTimings()
    t0 = time.perf_counter()
    processed = ProcessedQuestion(
        question=question,
        answer_type=record.processed.answer_type,
        keywords=record.processed.keywords,
    )
    SHARED_STEM_CACHE.replay(record.stem_trace)
    timings.qp = time.perf_counter() - t0

    t0 = time.perf_counter()
    retrievers = pipeline.indexed.retrievers
    for cid, rounds in enumerate(record.rounds_per_collection):
        retrievers[cid].replay_rounds(rounds)
    pr = time.perf_counter() - t0
    timings.pr = pr
    stats.pr_wall_s += pr

    work = dict(record.work)
    if pipeline.metrics is not None:
        pipeline._record(work)
        pipeline._record_selection(record.decision)
    return QAResult(
        processed=processed,
        answers=list(record.answers),
        n_retrieved=record.n_retrieved,
        n_accepted=record.n_accepted,
        timings=timings,
        work=work,
        paragraph_ranks=record.paragraph_ranks,
    )


def execute_batch(
    pipeline: "QAPipeline", questions: t.Sequence[Question]
) -> tuple[list[QAResult], BatchStats]:
    """Answer ``questions`` as one batch; results match serial bit-for-bit.

    The contract — enforced by the bench equivalence gate and the batch
    property tests — is ``execute_batch(p, qs)[0]`` fingerprint-equal to
    ``[p.answer(q) for q in qs]`` run from the same starting cache state,
    including conjunction/stem cache statistics afterwards.
    """
    stats = BatchStats(n_questions=len(questions))
    if not questions:
        return [], stats

    retrievers = pipeline.indexed.retrievers
    shared = [SharedPostings() for _ in retrievers]
    records: dict[str, _QuestionRecord] = {}
    results: list[QAResult] = []
    for r, s in zip(retrievers, shared):
        r.begin_batch(s)
    try:
        for question in questions:
            record = records.get(question.text)
            if record is None:
                record, result = _answer_first(pipeline, question, stats)
                records[question.text] = record
            else:
                result = _answer_repeat(pipeline, question, record, stats)
            results.append(result)
    finally:
        for r in retrievers:
            r.end_batch()

    stats.n_distinct = len(records)
    stats.postings_fetches = sum(s.fetches for s in shared)
    stats.postings_shared = sum(s.shared for s in shared)
    stats.postings_scanned = sum(r.work[POSTINGS_SCANNED] for r in results)
    return results, stats
