"""PR — paragraph retrieval module.

Uses the Boolean IR engine to extract, per sub-collection, the paragraphs
containing the question keywords (Section 2.1).  PR is the disk-bound
bottleneck (80 % disk time, Table 3) and is *iterative at collection
granularity* (Table 2) — `retrieve` therefore accepts an explicit subset
of collection ids, which is exactly the interface the distributed system's
partitioners drive.

When constructed with a :class:`~repro.retrieval.selection.CollectionSelector`,
the fan-out is routed instead of broadcast: an **exact** selector prunes
only provably-empty collections and synthesizes their logical work from
the sketch (the :class:`PRResult` — paragraphs, per-collection work,
counter totals — is bit-identical to exhaustive retrieval); a
**predictive** selector visits only the collections it scored in, so its
results may differ from exhaustive search.  Explicit ``collection_ids``
always bypass the selector — a partitioner that asks for collection 3
gets collection 3.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field

from ..nlp.keywords import Keyword
from ..retrieval.collection import IndexedCorpus
from ..retrieval.paragraphs import Paragraph
from ..retrieval.selection import CollectionSelector, SelectionDecision
from .question import ProcessedQuestion

__all__ = [
    "CollectionWork",
    "PRResult",
    "ParagraphRetriever",
    "resolve_collections",
]


@dataclass(frozen=True, slots=True)
class CollectionWork:
    """Work performed retrieving from one sub-collection."""

    collection_id: int
    n_paragraphs: int
    postings_scanned: int
    doc_bytes_read: int
    relaxation_rounds: int


@dataclass(slots=True)
class PRResult:
    """Paragraphs plus per-collection work accounting."""

    paragraphs: list[Paragraph]
    per_collection: list[CollectionWork] = field(default_factory=list)

    @property
    def postings_scanned(self) -> int:
        return sum(w.postings_scanned for w in self.per_collection)

    @property
    def doc_bytes_read(self) -> int:
        return sum(w.doc_bytes_read for w in self.per_collection)


def resolve_collections(
    n_collections: int,
    collection_ids: t.Sequence[int] | None,
    selector: CollectionSelector | None = None,
    keywords: t.Sequence[Keyword] | None = None,
) -> tuple[list[int], SelectionDecision | None]:
    """The one place the PR fan-out is decided.

    Explicit ``collection_ids`` always win (partitioners drive exact
    subsets); otherwise the selector routes the question's keywords, and
    with no selector the legacy default — every collection — applies.
    Returns the collection ids to visit plus the selector's decision
    (``None`` when no selection happened).
    """
    if collection_ids is not None:
        return list(collection_ids), None
    if selector is None or keywords is None:
        return list(range(n_collections)), None
    decision = selector.select(keywords)
    return list(decision.selected), decision


class ParagraphRetriever:
    """The PR module."""

    def __init__(
        self,
        indexed: IndexedCorpus,
        selector: CollectionSelector | None = None,
    ) -> None:
        self.indexed = indexed
        self.selector = selector
        #: The selector's decision for the most recent :meth:`retrieve`
        #: call (``None`` when no selection happened) — pipelines read
        #: this to record ``retrieval.selector.*`` metrics.
        self.last_decision: SelectionDecision | None = None

    @property
    def n_collections(self) -> int:
        return self.indexed.n_collections

    def retrieve(
        self,
        processed: ProcessedQuestion,
        collection_ids: t.Sequence[int] | None = None,
    ) -> PRResult:
        """Retrieve paragraphs from the given sub-collections (default all).

        Collections are processed one at a time — the iterative structure
        the RECV partitioner exploits by letting under-loaded processors
        pull one collection at a time (Fig 7a).
        """
        keywords = list(processed.keywords)
        ids, decision = resolve_collections(
            self.indexed.n_collections, collection_ids, self.selector, keywords
        )
        self.last_decision = decision
        synthesized = (
            {w.collection_id: w for w in decision.synthesized}
            if decision is not None
            else {}
        )
        # Exact-mode pruned collections report their (provably empty)
        # work in collection order, interleaved with the visited ones, so
        # per_collection reads identically to exhaustive retrieval.
        visit = sorted({*ids, *synthesized}) if synthesized else ids
        result = PRResult(paragraphs=[])
        for cid in visit:
            work = synthesized.get(cid)
            if work is not None:
                result.per_collection.append(
                    CollectionWork(
                        collection_id=cid,
                        n_paragraphs=0,
                        postings_scanned=work.postings_scanned,
                        doc_bytes_read=0,
                        relaxation_rounds=work.relaxation_rounds,
                    )
                )
                continue
            r = self.indexed.retrieve_collection(cid, keywords)
            result.paragraphs.extend(r.paragraphs)
            result.per_collection.append(
                CollectionWork(
                    collection_id=cid,
                    n_paragraphs=len(r.paragraphs),
                    postings_scanned=r.postings_scanned,
                    doc_bytes_read=r.doc_bytes_read,
                    relaxation_rounds=r.relaxation_rounds,
                )
            )
        return result
