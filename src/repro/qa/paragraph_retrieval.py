"""PR — paragraph retrieval module.

Uses the Boolean IR engine to extract, per sub-collection, the paragraphs
containing the question keywords (Section 2.1).  PR is the disk-bound
bottleneck (80 % disk time, Table 3) and is *iterative at collection
granularity* (Table 2) — `retrieve` therefore accepts an explicit subset
of collection ids, which is exactly the interface the distributed system's
partitioners drive.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field

from ..retrieval.collection import IndexedCorpus
from ..retrieval.paragraphs import Paragraph
from .question import ProcessedQuestion

__all__ = ["CollectionWork", "PRResult", "ParagraphRetriever"]


@dataclass(frozen=True, slots=True)
class CollectionWork:
    """Work performed retrieving from one sub-collection."""

    collection_id: int
    n_paragraphs: int
    postings_scanned: int
    doc_bytes_read: int
    relaxation_rounds: int


@dataclass(slots=True)
class PRResult:
    """Paragraphs plus per-collection work accounting."""

    paragraphs: list[Paragraph]
    per_collection: list[CollectionWork] = field(default_factory=list)

    @property
    def postings_scanned(self) -> int:
        return sum(w.postings_scanned for w in self.per_collection)

    @property
    def doc_bytes_read(self) -> int:
        return sum(w.doc_bytes_read for w in self.per_collection)


class ParagraphRetriever:
    """The PR module."""

    def __init__(self, indexed: IndexedCorpus) -> None:
        self.indexed = indexed

    @property
    def n_collections(self) -> int:
        return self.indexed.n_collections

    def retrieve(
        self,
        processed: ProcessedQuestion,
        collection_ids: t.Sequence[int] | None = None,
    ) -> PRResult:
        """Retrieve paragraphs from the given sub-collections (default all).

        Collections are processed one at a time — the iterative structure
        the RECV partitioner exploits by letting under-loaded processors
        pull one collection at a time (Fig 7a).
        """
        if collection_ids is None:
            collection_ids = range(self.indexed.n_collections)
        result = PRResult(paragraphs=[])
        for cid in collection_ids:
            r = self.indexed.retrieve_collection(cid, list(processed.keywords))
            result.paragraphs.extend(r.paragraphs)
            result.per_collection.append(
                CollectionWork(
                    collection_id=cid,
                    n_paragraphs=len(r.paragraphs),
                    postings_scanned=r.postings_scanned,
                    doc_bytes_read=r.doc_bytes_read,
                    relaxation_rounds=r.relaxation_rounds,
                )
            )
        return result
