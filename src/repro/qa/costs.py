"""Cost model: translating Q/A work into simulated resource demands.

The reproduction runs the *real* pipeline on a laptop-scale synthetic
corpus, but the paper's timings come from a 3 GB collection on 500 MHz
Pentium III nodes.  The cost model bridges the two: it converts the work
counters the pipeline reports (postings scanned, bytes read, paragraph
bytes, candidate counts) into simulated CPU-seconds and disk-bytes on the
modelled reference node, with rates calibrated so the *average* simulated
question matches Table 2's module breakdown (QP 1.2 %, PR 26.5 %, PS
2.2 %, PO 0.1 %, AP 69.7 %, ~94 s total) and the resource splits match
Table 3 (QA 0.79/0.21, PR 0.20/0.80, AP 1.00/0.00).

All rates are explicit dataclass fields; :func:`calibrate` fits them to
any pipeline + question set, and ``CostModel.default()`` carries the
values fitted against the default corpus (see EXPERIMENTS.md).
"""

from __future__ import annotations

import math
import typing as t
from dataclasses import dataclass, replace

__all__ = ["ReferenceHardware", "CostModel", "ModuleCost"]


@dataclass(frozen=True, slots=True)
class ReferenceHardware:
    """The modelled node: 500 MHz PIII, 256 MB RAM, one IDE disk.

    ``disk_bandwidth`` is the effective sequential read rate used to turn
    disk-bytes into seconds; 2001-era IDE disks streamed ~25 MB/s.
    """

    cpu_speed: float = 1.0  # reference CPU-seconds per second
    disk_bandwidth: float = 25e6  # bytes/second
    memory_bytes: float = 256e6


@dataclass(frozen=True, slots=True)
class ModuleCost:
    """Simulated resource demand of one module execution (or sub-task)."""

    cpu_s: float
    disk_bytes: float

    def seconds_on(self, hw: ReferenceHardware) -> float:
        """Uncontended duration on ``hw`` (CPU and disk serialised)."""
        return self.cpu_s / hw.cpu_speed + self.disk_bytes / hw.disk_bandwidth

    def scaled(self, factor: float) -> "ModuleCost":
        return ModuleCost(self.cpu_s * factor, self.disk_bytes * factor)

    def __add__(self, other: "ModuleCost") -> "ModuleCost":
        return ModuleCost(self.cpu_s + other.cpu_s, self.disk_bytes + other.disk_bytes)


_ZERO = ModuleCost(0.0, 0.0)


@dataclass(frozen=True, slots=True)
class CostModel:
    """Per-unit rates converting pipeline work counters into demands.

    The defaults reproduce the paper's module-time breakdown on the default
    corpus; ``calibrate`` refits them for other corpora.
    """

    # QP: flat semantic analysis plus per-keyword lexicon work.  Pure CPU.
    qp_base_cpu_s: float = 0.70
    qp_per_keyword_cpu_s: float = 0.06

    # PR: dominated by index/posting/document disk reads (Table 3: 80 %
    # disk).  ``pr_byte_scale`` maps laptop-corpus bytes to 3 GB-corpus
    # equivalents; cpu is charged proportionally to disk time to hold the
    # 20/80 split.
    pr_base_bytes: float = 2.0e6  # per-collection index lookup floor
    pr_byte_scale: float = 1.17e4
    pr_cpu_per_disk_s: float = 0.25  # cpu seconds per disk second => 20/80

    # PS: light surface scoring, pure CPU, proportional to scanned bytes.
    ps_cpu_per_byte: float = 4.4e-6

    # PO: centralized sort, pure CPU.
    po_base_cpu_s: float = 0.005
    po_cpu_per_paragraph_s: float = 3.0e-5

    # AP: named-entity recognition + window scoring, pure CPU (Table 3:
    # 100 % CPU), superlinear in candidate density.
    ap_cpu_per_byte: float = 1.38e-4
    ap_cpu_per_candidate_s: float = 0.044

    # Messaging/memory constants (the analytical model's S_* parameters).
    answer_bytes: float = 250.0  # long-answer size (Table 1)
    memory_per_question: tuple[float, float] = (25e6, 40e6)

    hardware: ReferenceHardware = ReferenceHardware()

    # -- per-module demand constructors ------------------------------------------
    def qp_cost(self, n_keywords: int) -> ModuleCost:
        return ModuleCost(
            self.qp_base_cpu_s + self.qp_per_keyword_cpu_s * n_keywords, 0.0
        )

    def pr_collection_cost(
        self, postings_scanned: float, doc_bytes_read: float
    ) -> ModuleCost:
        """One PR sub-task (one sub-collection)."""
        disk = self.pr_base_bytes + self.pr_byte_scale * (
            8.0 * postings_scanned + doc_bytes_read
        )
        disk_seconds = disk / self.hardware.disk_bandwidth
        return ModuleCost(self.pr_cpu_per_disk_s * disk_seconds, disk)

    # PS/AP operate on real paragraph bytes; scale them like PR scales
    # disk bytes so module proportions survive the corpus-size
    # substitution (the synthetic corpus is ~1000x smaller than TREC-9).
    work_scale: float = 60.0

    def ps_cost(self, paragraph_bytes: float) -> ModuleCost:
        return ModuleCost(
            self.ps_cpu_per_byte * self.work_scale * paragraph_bytes, 0.0
        )

    def po_cost(self, n_paragraphs: int) -> ModuleCost:
        n = max(1, n_paragraphs)
        return ModuleCost(
            self.po_base_cpu_s
            + self.po_cpu_per_paragraph_s * n * math.log2(n + 1) / 10.0,
            0.0,
        )

    def ap_paragraph_cost(
        self, paragraph_bytes: float, n_candidates: int
    ) -> ModuleCost:
        """One AP sub-task unit (one accepted paragraph)."""
        return ModuleCost(
            self.ap_cpu_per_byte * self.work_scale * paragraph_bytes
            + self.ap_cpu_per_candidate_s * n_candidates,
            0.0,
        )

    # -- convenience -------------------------------------------------------------
    def with_rates(self, **kwargs: float) -> "CostModel":
        """Copy with some rates replaced (used by calibration)."""
        return replace(self, **kwargs)

    @classmethod
    def default(cls) -> "CostModel":
        """Rates fitted against the default corpus (see calibration test)."""
        return cls()
