"""PO — paragraph ordering module.

Sorts the scored paragraphs in descending rank order and passes only those
above a threshold to answer processing (Section 2.1).  PO is inherently
sequential ("the paragraph ordering time cannot be improved due to the
inherent sequential nature of the corresponding module", Section 5.2) and
is the reason the distributed design centralises paragraph merging: the
partitioned system must accept *the same* paragraphs the sequential system
would (Section 3.2).

A useful side-effect the paper leans on (Section 4.1.3): the rank order is
correlated with answer-processing cost, which is what makes the ISEND
partitioner's interleaving balanced.
"""

from __future__ import annotations

import typing as t

from .question import ScoredParagraph

__all__ = ["ParagraphOrderer"]


class ParagraphOrderer:
    """The PO module.

    Parameters
    ----------
    threshold_fraction:
        Keep paragraphs scoring at least this fraction of the best score.
    max_accepted:
        Hard cap on paragraphs passed to AP (response-time guard).
    """

    def __init__(
        self, threshold_fraction: float = 0.25, max_accepted: int = 600
    ) -> None:
        if not 0.0 <= threshold_fraction <= 1.0:
            raise ValueError("threshold_fraction must be in [0, 1]")
        if max_accepted < 1:
            raise ValueError("max_accepted must be >= 1")
        self.threshold_fraction = threshold_fraction
        self.max_accepted = max_accepted

    def order(
        self, scored: t.Sequence[ScoredParagraph]
    ) -> list[ScoredParagraph]:
        """Sort descending by score and apply the acceptance threshold.

        Ties break on (doc_id, paragraph index) so output order is total
        and deterministic — a requirement for reproducing the sequential
        system's output from the distributed one.
        """
        ordered = sorted(
            scored,
            key=lambda sp: (-sp.score, sp.paragraph.key),
        )
        if not ordered:
            return []
        best = ordered[0].score
        if best <= 0.0:
            return []
        cutoff = best * self.threshold_fraction
        accepted = [sp for sp in ordered if sp.score >= cutoff]
        return accepted[: self.max_accepted]
