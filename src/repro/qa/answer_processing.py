"""AP — answer processing module.

The CPU-bound bottleneck (Table 3: 100 % CPU; Table 2: up to 69.7 % of the
task).  Per Section 2.1:

* candidate answers are "lexico-semantic entities with the same type as
  the question answer type" found inside accepted paragraphs;
* around each candidate the system builds an *answer window* — "a text
  span that includes the candidate answer and one of each of the question
  keywords";
* each window is scored by "a combination of seven heuristics" using
  frequency and distance metrics like PS's, but requiring the candidate.

AP is iterative at paragraph granularity, and `extract` accepts any subset
of scored paragraphs — the unit the AP partitioners distribute.  Each AP
replica returns its local best ``n_answers``; the answer-sorting stage
merges local results into the global order (Fig 3).
"""

from __future__ import annotations

import typing as t

from ..nlp.entities import Entity, EntityRecognizer, EntityType
from ..nlp.stemming import cached_stem as stem
from ..nlp.tokenizer import Token, tokenize
from .paragraph_scoring import (
    KeywordIdResolver,
    TermLookup,
    keyword_positions_from_ids,
    keyword_positions_from_terms,
)
from .question import Answer, ProcessedQuestion, ScoredParagraph

__all__ = ["AnswerProcessor", "merge_answers"]

# The seven answer-window heuristics' weights (empirical combination, in
# the spirit of Falcon's [27]).  Names follow the docstring below.
_W = {
    "sequence": 1.0,
    "keywords_in_window": 2.0,
    "nearest_distance": 1.5,
    "total_distance": 1.0,
    "apposition": 0.5,
    "coverage": 1.5,
    "paragraph_rank": 1.0,
}

_WINDOW_RADIUS = 12  # tokens either side of the candidate
_SHORT_BYTES = 50
_LONG_BYTES = 250


class AnswerProcessor:
    """The AP module.

    With a ``term_lookup`` (the indexed corpus'
    :meth:`~repro.retrieval.collection.IndexedCorpus.term_lookup`), the
    paragraph's tokens, stemmed token sequence and keyword positions come
    from the index's precomputed term layer instead of a per-question
    tokenize + Porter-stem pass — AP is the CPU bottleneck (Table 3), so
    this is the single hottest saving in the pipeline.  Unresolvable
    paragraphs fall back to the re-tokenize reference path.
    """

    def __init__(
        self,
        recognizer: EntityRecognizer,
        n_answers: int = 5,
        term_lookup: TermLookup | None = None,
    ) -> None:
        if n_answers < 1:
            raise ValueError("n_answers must be >= 1")
        self.recognizer = recognizer
        self.n_answers = n_answers
        self.term_lookup = term_lookup

    # -- public API --------------------------------------------------------------
    def extract(
        self,
        processed: ProcessedQuestion,
        accepted: t.Sequence[ScoredParagraph],
        resolver: KeywordIdResolver | None = None,
    ) -> list[Answer]:
        """Extract and rank answers from ``accepted`` paragraphs.

        Returns the local best ``n_answers`` in descending score order.
        ``resolver`` (the batch path) hoists per-paragraph keyword-id
        lookups exactly as in :meth:`ParagraphScorer.score`.
        """
        answers: list[Answer] = []
        max_rank = max((sp.score for sp in accepted), default=1.0) or 1.0
        for sp in accepted:
            answers.extend(
                self._process_paragraph(processed, sp, max_rank, resolver)
            )
        return merge_answers([answers], self.n_answers)

    # -- internals ---------------------------------------------------------------
    def _process_paragraph(
        self,
        processed: ProcessedQuestion,
        sp: ScoredParagraph,
        max_rank: float,
        resolver: KeywordIdResolver | None = None,
    ) -> list[Answer]:
        text = sp.paragraph.text
        terms = self.term_lookup(sp.paragraph) if self.term_lookup else None
        tokens: t.Sequence[Token]
        if terms is not None:
            tokens = terms.tokens
        else:
            tokens = tokenize(text)
        candidates = self._candidates(processed, text, tokens)
        if not candidates:
            return []

        # Token positions of each keyword (stem match, phrases in order).
        kstems = [kw.stems for kw in processed.keywords]
        if terms is not None and resolver is not None:
            kw_positions = keyword_positions_from_ids(
                terms, resolver.resolve(terms.vocab)
            )
        elif terms is not None:
            kw_positions = keyword_positions_from_terms(terms, kstems)
        else:
            stems_at = [
                stem(tok.text) if tok.is_word else tok.text for tok in tokens
            ]
            kw_positions = []
            for ks in kstems:
                pos = [
                    i
                    for i in range(len(stems_at))
                    if stems_at[i] == ks[0]
                    and (
                        len(ks) == 1
                        or tuple(stems_at[i : i + len(ks)]) == tuple(ks)
                    )
                ]
                kw_positions.append(pos)
        n_keywords = len(kstems) or 1
        present_keywords = sum(1 for p in kw_positions if p)

        out: list[Answer] = []
        for cand in candidates:
            score = self._score_window(
                cand, tokens, kw_positions, present_keywords, n_keywords,
                sp.score, max_rank,
            )
            if score <= 0.0:
                continue
            out.append(
                Answer(
                    text=cand.text,
                    short=self._clip(text, cand, _SHORT_BYTES),
                    long=self._clip(text, cand, _LONG_BYTES),
                    score=score,
                    paragraph_key=sp.paragraph.key,
                    entity_type=cand.type,
                )
            )
        return out

    def _candidates(
        self,
        processed: ProcessedQuestion,
        text: str,
        tokens: t.Sequence[Token],
    ) -> list[Entity]:
        """Typed entities matching the expected answer type.

        For DEFINITION/UNKNOWN questions any entity qualifies (Falcon falls
        back to its full entity inventory there).  Candidates that merely
        repeat a question keyword are discarded — the question's own words
        cannot answer it.
        """
        atype = processed.answer_type
        if atype in (EntityType.DEFINITION, EntityType.UNKNOWN):
            cands = self.recognizer.recognize(text, tokens)
        else:
            cands = self.recognizer.recognize_typed(text, atype, tokens)
        question_stems = {
            s for kw in processed.keywords for s in kw.stems
        }
        out = []
        for c in cands:
            cand_stems = {
                stem(w) for w in c.text.split() if w and w[0].isalpha()
            }
            if cand_stems and cand_stems <= question_stems:
                continue
            out.append(c)
        return out

    def _score_window(
        self,
        cand: Entity,
        tokens: t.Sequence[Token],
        kw_positions: list[list[int]],
        present_keywords: int,
        n_keywords: int,
        paragraph_score: float,
        max_rank: float,
    ) -> float:
        """Combine the seven heuristics for one candidate's window.

        1. *sequence*: keywords adjacent to the candidate in question
           order (frequency analogue of PS heuristic 1);
        2. *keywords_in_window*: how many keywords fall inside the window;
        3. *nearest_distance*: inverse distance to the closest keyword;
        4. *total_distance*: inverse mean distance to all in-window
           keywords;
        5. *apposition*: candidate flanked by a comma/parenthesis —
           appositions often restate the sought entity;
        6. *coverage*: fraction of all question keywords present in the
           paragraph;
        7. *paragraph_rank*: the PS rank, normalised — answers from better
           paragraphs win ties.
        """
        c_lo = cand.token_start
        c_hi = cand.token_end - 1
        w_lo = max(0, c_lo - _WINDOW_RADIUS)
        w_hi = min(len(tokens) - 1, c_hi + _WINDOW_RADIUS)

        in_window = 0
        distances: list[int] = []
        sequence = 0
        prev_in = False
        for pos_list in kw_positions:
            best = None
            for p in pos_list:
                if w_lo <= p <= w_hi:
                    d = min(abs(p - c_lo), abs(p - c_hi))
                    if best is None or d < best:
                        best = d
            if best is not None:
                in_window += 1
                distances.append(best)
                if best <= 2:
                    sequence += 1 if prev_in else 0
                prev_in = True
            else:
                prev_in = False
        if in_window == 0:
            return 0.0

        nearest = min(distances)
        mean_d = sum(distances) / len(distances)
        apposition = 0.0
        if c_lo > 0 and tokens[c_lo - 1].text in (",", "(", "-"):
            apposition += 1.0
        if c_hi + 1 < len(tokens) and tokens[c_hi + 1].text in (",", ")", "-"):
            apposition += 1.0

        return (
            _W["sequence"] * sequence
            + _W["keywords_in_window"] * in_window
            + _W["nearest_distance"] / (1.0 + nearest)
            + _W["total_distance"] / (1.0 + mean_d)
            + _W["apposition"] * apposition
            + _W["coverage"] * present_keywords / n_keywords
            + _W["paragraph_rank"] * paragraph_score / max_rank
        )

    @staticmethod
    def _clip(text: str, cand: Entity, nbytes: int) -> str:
        """A ~``nbytes`` window of text centred on the candidate."""
        margin = max(0, (nbytes - (cand.end - cand.start)) // 2)
        lo = max(0, cand.start - margin)
        hi = min(len(text), cand.end + margin)
        return text[lo:hi]


def merge_answers(
    groups: t.Sequence[t.Sequence[Answer]], n_answers: int
) -> list[Answer]:
    """Answer merging + sorting (Fig 3's final stages).

    Combines per-partition local answers, de-duplicates identical answer
    texts (keeping the best-scoring window) and returns the global top
    ``n_answers`` — the same output the sequential system would produce.
    """
    best: dict[str, Answer] = {}
    for group in groups:
        for ans in group:
            key = ans.text.lower()
            old = best.get(key)
            if old is None or ans.score > old.score:
                best[key] = ans
    ranked = sorted(
        best.values(), key=lambda a: (-a.score, a.paragraph_key, a.text)
    )
    return ranked[:n_answers]
