"""Shared, bounded stem cache.

Porter stemming is pure and the working vocabulary is small (a Zipfian
corpus re-uses its head words constantly), so every module that stems —
keyword selection, index construction, paragraph scoring, answer
processing — should hit one process-wide memo instead of re-deriving
stems or growing private caches.  Before this module existed the index
used a module-global cache while QP/PS/AP called :func:`repro.nlp.porter.stem`
raw, and :class:`~repro.retrieval.collection.IndexedCorpus` built a fresh
cache per corpus; everything now funnels through :data:`SHARED_STEM_CACHE`.

The cache is a bounded LRU so that adversarial or very large vocabularies
cannot grow memory without limit.  ``stem()`` lower-cases its input, so
caching on the lower-cased key loses nothing.
"""

from __future__ import annotations

import typing as t
from collections import OrderedDict

from .porter import stem

__all__ = ["StemCache", "SHARED_STEM_CACHE", "cached_stem"]


class StemCache:
    """Memoized Porter stemming with an LRU bound.

    Instances are callable: ``cache("Running") == "run"``.
    """

    def __init__(self, maxsize: int = 1 << 17) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._cache: OrderedDict[str, str] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self._trace: list[str] | None = None

    def __call__(self, word: str) -> str:
        if self._trace is not None:
            self._trace.append(word)
        key = word.lower()
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            self._cache.move_to_end(key)
            return cached
        self.misses += 1
        cached = stem(key)
        self._cache[key] = cached
        if len(self._cache) > self.maxsize:
            self._cache.popitem(last=False)
        return cached

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        self._cache.clear()
        self.hits = 0
        self.misses = 0

    # -- lookup tracing (the batched-execution replay hook) ----------------------
    def start_trace(self) -> None:
        """Begin recording every raw word passed to :meth:`__call__`.

        The batch execution engine (:mod:`repro.qa.batch`) records the
        lookup sequence of a question's first execution; replaying the
        trace for a duplicate question touches this cache — hit/miss
        counters and LRU order included — exactly as re-running the
        question would, without re-deriving any stems downstream.
        """
        self._trace = []

    def stop_trace(self) -> list[str]:
        """Stop recording and return the captured lookup sequence."""
        trace = self._trace if self._trace is not None else []
        self._trace = None
        return trace

    def replay(self, trace: t.Sequence[str]) -> None:
        """Re-issue a recorded lookup sequence against the cache."""
        for word in trace:
            self(word)


#: Process-wide cache shared by QP, indexing, PS and AP.
SHARED_STEM_CACHE = StemCache()


def cached_stem(word: str) -> str:
    """Porter stem of ``word`` through the shared process-wide cache."""
    return SHARED_STEM_CACHE(word)
