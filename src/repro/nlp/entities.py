"""Lexico-semantic entity model and recognizer.

The paper's answer-processing module identifies *candidate answers* as
"lexico-semantic entities with the same type as the question answer type"
(Section 2.1).  Falcon used a trained named-entity recognizer; our
substitute combines:

* a **gazetteer** — phrase -> type lookup populated from the synthetic
  corpus' knowledge base (the corpus generator and the recognizer share
  the same entity inventory, mirroring how Falcon's NER vocabulary covered
  the TREC collection), and
* **surface patterns** — dates, years, money, percentages, plain numbers,
  honorific-marked person names, and unknown capitalized sequences.

This keeps the *data flow* of the real system (text in, typed spans out)
with a cost profile dominated by scanning, like the original.
"""

from __future__ import annotations

import enum
import typing as t
from dataclasses import dataclass

from .tokenizer import Token, is_capitalized, is_number_token, tokenize

__all__ = ["EntityType", "Entity", "Gazetteer", "EntityRecognizer"]


class EntityType(enum.Enum):
    """Answer-entity taxonomy (superset of the paper's examples).

    Table 1 of the paper shows DISEASE, LOCATION and NATIONALITY answers;
    the TREC-8/9 question sets behind it also require the other classes.
    """

    PERSON = "PERSON"
    LOCATION = "LOCATION"
    ORGANIZATION = "ORGANIZATION"
    DATE = "DATE"
    MONEY = "MONEY"
    NUMBER = "NUMBER"
    PERCENT = "PERCENT"
    NATIONALITY = "NATIONALITY"
    DISEASE = "DISEASE"
    DISTANCE = "DISTANCE"
    DURATION = "DURATION"
    PRODUCT = "PRODUCT"
    DEFINITION = "DEFINITION"
    UNKNOWN = "UNKNOWN"


@dataclass(frozen=True, slots=True)
class Entity:
    """A typed text span."""

    text: str
    type: EntityType
    start: int
    end: int
    token_start: int
    token_end: int


_MONTHS = frozenset(
    "january february march april may june july august september october"
    " november december".split()
)

_DISTANCE_UNITS = frozenset(
    "mile miles kilometer kilometers km meter meters feet foot yards".split()
)

_DURATION_UNITS = frozenset(
    "second seconds minute minutes hour hours day days week weeks month"
    " months year years decade decades century centuries".split()
)

# Common nationality adjectives; the corpus knowledge base extends this.
_NATIONALITIES = frozenset(
    "american british french german italian spanish polish russian chinese"
    " japanese indian mexican canadian australian brazilian egyptian greek"
    " turkish dutch swedish norwegian danish irish scottish portuguese"
    " austrian swiss belgian korean vietnamese thai argentine chilean".split()
)

_HONORIFICS = frozenset(
    "mr mrs ms dr prof president senator general sir lady lord pope".split()
)


class Gazetteer:
    """Longest-match phrase dictionary mapping surface forms to types."""

    def __init__(self) -> None:
        self._entries: dict[tuple[str, ...], EntityType] = {}
        self._max_len = 1
        #: First-word index so the scanner can skip non-starting tokens.
        self._starts: set[str] = set()

    def add(self, phrase: str, etype: EntityType) -> None:
        """Register ``phrase`` (case-insensitive) as an entity of ``etype``."""
        words = tuple(w.lower() for w in phrase.split())
        if not words:
            raise ValueError("empty gazetteer phrase")
        self._entries[words] = etype
        self._max_len = max(self._max_len, len(words))
        self._starts.add(words[0])

    def add_many(self, phrases: t.Iterable[str], etype: EntityType) -> None:
        for p in phrases:
            self.add(p, etype)

    def lookup(self, words: t.Sequence[str]) -> EntityType | None:
        return self._entries.get(tuple(w.lower() for w in words))

    def may_start(self, word: str) -> bool:
        return word.lower() in self._starts

    @property
    def max_phrase_len(self) -> int:
        return self._max_len

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, phrase: str) -> bool:
        return tuple(phrase.lower().split()) in self._entries


class EntityRecognizer:
    """Gazetteer + pattern entity recognizer.

    Parameters
    ----------
    gazetteer:
        Phrase dictionary (typically built by the corpus knowledge base).
    extra_nationalities:
        Additional nationality adjectives recognized beyond the built-ins.
    """

    def __init__(
        self,
        gazetteer: Gazetteer | None = None,
        extra_nationalities: t.Iterable[str] = (),
    ) -> None:
        self.gazetteer = gazetteer or Gazetteer()
        self._nationalities = _NATIONALITIES | {
            n.lower() for n in extra_nationalities
        }

    # -- public API -----------------------------------------------------------
    def recognize(self, text: str, tokens: t.Sequence[Token] | None = None) -> list[Entity]:
        """Find all entities in ``text`` (longest-match, left to right)."""
        if tokens is None:
            tokens = tokenize(text)
        entities: list[Entity] = []
        i = 0
        n = len(tokens)
        while i < n:
            ent = self._match_at(text, tokens, i)
            if ent is not None:
                entities.append(ent)
                i = ent.token_end
            else:
                i += 1
        return entities

    def recognize_typed(
        self, text: str, etype: EntityType, tokens: t.Sequence[Token] | None = None
    ) -> list[Entity]:
        """Entities of one type — what AP candidate detection needs.

        UNKNOWN capitalized sequences are also returned for PERSON /
        LOCATION / ORGANIZATION queries (Falcon treats out-of-vocabulary
        proper names as weak candidates).
        """
        fuzzy = etype in (
            EntityType.PERSON,
            EntityType.LOCATION,
            EntityType.ORGANIZATION,
        )
        out = []
        for ent in self.recognize(text, tokens):
            if ent.type is etype or (fuzzy and ent.type is EntityType.UNKNOWN):
                out.append(ent)
        return out

    # -- matching internals -------------------------------------------------------
    def _match_at(self, text: str, tokens: t.Sequence[Token], i: int) -> Entity | None:
        tok = tokens[i]

        # 1. Gazetteer longest match.
        if self.gazetteer.may_start(tok.text):
            limit = min(len(tokens), i + self.gazetteer.max_phrase_len)
            for j in range(limit, i, -1):
                words = [tk.text for tk in tokens[i:j]]
                etype = self.gazetteer.lookup(words)
                if etype is not None:
                    return self._make(text, tokens, i, j, etype)

        # 2. Nationality adjectives.
        if tok.lower in self._nationalities:
            return self._make(text, tokens, i, i + 1, EntityType.NATIONALITY)

        # 3. Dates: "<month> <num>(, <year>)" | "<month> <year>" | bare year.
        if tok.lower in _MONTHS:
            j = i + 1
            if j < len(tokens) and is_number_token(tokens[j]):
                j += 1
                if (
                    j + 1 < len(tokens)
                    and tokens[j].text == ","
                    and is_number_token(tokens[j + 1])
                ):
                    j += 2
            return self._make(text, tokens, i, j, EntityType.DATE)
        if is_number_token(tok) and self._looks_like_year(tok.text):
            return self._make(text, tokens, i, i + 1, EntityType.DATE)

        # 4. Money / percent / quantity+unit / plain numbers.
        if is_number_token(tok):
            if tok.text.startswith("$"):
                j = i + 1
                if j < len(tokens) and tokens[j].lower in ("million", "billion"):
                    j += 1
                return self._make(text, tokens, i, j, EntityType.MONEY)
            if tok.text.endswith("%"):
                return self._make(text, tokens, i, i + 1, EntityType.PERCENT)
            if i + 1 < len(tokens):
                nxt = tokens[i + 1].lower
                if nxt in _DISTANCE_UNITS:
                    return self._make(text, tokens, i, i + 2, EntityType.DISTANCE)
                if nxt in _DURATION_UNITS:
                    return self._make(text, tokens, i, i + 2, EntityType.DURATION)
                if nxt == "percent":
                    return self._make(text, tokens, i, i + 2, EntityType.PERCENT)
            return self._make(text, tokens, i, i + 1, EntityType.NUMBER)

        # 5. Honorific-marked person names: "Dr. Jane Doe" (the tokenizer
        # splits the period off the honorific, so skip over it).
        if tok.lower in _HONORIFICS and i + 1 < len(tokens):
            j = i + 1
            if j < len(tokens) and tokens[j].text == ".":
                j += 1
            name_start = j
            while j < len(tokens) and is_capitalized(tokens[j]):
                j += 1
            if j > name_start:
                return self._make(text, tokens, i, j, EntityType.PERSON)

        # 6. Unknown capitalized run (not sentence-initial single stopword).
        if is_capitalized(tok) and not self._sentence_initial_common(tokens, i):
            j = i + 1
            while j < len(tokens) and is_capitalized(tokens[j]):
                # Stop if the extension is itself a gazetteer start that
                # would be split off as its own entity anyway.
                j += 1
            return self._make(text, tokens, i, j, EntityType.UNKNOWN)

        return None

    @staticmethod
    def _looks_like_year(text: str) -> bool:
        return len(text) == 4 and text.isdigit() and text[0] in "12"

    @staticmethod
    def _sentence_initial_common(tokens: t.Sequence[Token], i: int) -> bool:
        """A capitalized common word right after start/period is not a name."""
        from .stopwords import is_stopword

        at_start = i == 0 or tokens[i - 1].text in ".!?"
        return at_start and is_stopword(tokens[i].text)

    @staticmethod
    def _make(
        text: str, tokens: t.Sequence[Token], i: int, j: int, etype: EntityType
    ) -> Entity:
        start = tokens[i].start
        end = tokens[j - 1].end
        return Entity(
            text=text[start:end],
            type=etype,
            start=start,
            end=end,
            token_start=i,
            token_end=j,
        )
