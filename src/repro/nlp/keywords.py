"""Keyword selection for document retrieval.

The second goal of question processing "is to select the keywords for
document retrieval" (Section 2.1).  Following the LASSO/Falcon heuristics,
keywords are ranked so that the Boolean retrieval engine can *relax* the
query (drop the lowest-priority keyword) when a conjunction of all
keywords retrieves nothing:

1. named entities and quoted phrases (highest priority — they must match),
2. other capitalized proper names,
3. remaining content words (non-stopword nouns/verbs/adjectives),
   longer/rarer words first.

Each keyword carries its Porter stem, which is what the inverted index
stores.
"""

from __future__ import annotations

import typing as t
from dataclasses import dataclass, field

from .entities import EntityRecognizer, EntityType
from .stemming import cached_stem as stem
from .stopwords import is_stopword
from .tokenizer import is_capitalized, tokenize

__all__ = ["Keyword", "select_keywords"]

_QUESTION_WORDS = frozenset(
    "who whom whose what which where when why how name whats".split()
)


@dataclass(frozen=True, slots=True)
class Keyword:
    """A retrieval keyword.

    ``stems`` has one entry per word for phrase keywords; the retrieval
    engine requires all of them to co-occur in a paragraph.
    """

    text: str
    stems: tuple[str, ...]
    priority: int  # lower = more important, dropped last during relaxation
    is_phrase: bool = False

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.text


def select_keywords(
    question: str,
    recognizer: EntityRecognizer | None = None,
    max_keywords: int = 8,
) -> list[Keyword]:
    """Extract ranked retrieval keywords from a question.

    Parameters
    ----------
    question:
        Natural-language question text.
    recognizer:
        Entity recognizer used to detect phrase keywords; optional.
    max_keywords:
        Hard cap — Falcon keeps the strongest handful of keywords and lets
        relaxation handle recall.
    """
    tokens = tokenize(question)
    keywords: list[Keyword] = []
    consumed: set[int] = set()

    # 1. Named-entity phrases.
    if recognizer is not None:
        for ent in recognizer.recognize(question, tokens):
            if ent.type in (EntityType.NUMBER, EntityType.PERCENT):
                continue  # bare numbers in questions are rarely good keys
            words = [
                tokens[k].text
                for k in range(ent.token_start, ent.token_end)
                if tokens[k].is_word or tokens[k].text[0].isdigit()
            ]
            words = [w for w in words if not is_stopword(w)]
            if not words:
                continue
            keywords.append(
                Keyword(
                    text=" ".join(words),
                    stems=tuple(stem(w) for w in words),
                    priority=0,
                    is_phrase=len(words) > 1,
                )
            )
            consumed.update(range(ent.token_start, ent.token_end))

    # 2. Other capitalized proper names (skip the sentence-initial word
    #    when it is an interrogative).
    for i, tok in enumerate(tokens):
        if i in consumed or not tok.is_word:
            continue
        if tok.lower in _QUESTION_WORDS or is_stopword(tok.text):
            continue
        if is_capitalized(tok) and i > 0:
            keywords.append(
                Keyword(text=tok.text, stems=(stem(tok.text),), priority=1)
            )
            consumed.add(i)

    # 3. Remaining content words, longer words first (a crude rarity proxy
    #    that matches Zipfian vocabularies well).
    content = [
        (i, tok)
        for i, tok in enumerate(tokens)
        if i not in consumed
        and tok.is_word
        and tok.lower not in _QUESTION_WORDS
        and not is_stopword(tok.text)
    ]
    content.sort(key=lambda pair: (-len(pair[1].text), pair[0]))
    for rank, (i, tok) in enumerate(content):
        keywords.append(
            Keyword(text=tok.text, stems=(stem(tok.text),), priority=2 + rank)
        )

    # De-duplicate by stem tuple, keeping the best priority.
    seen: dict[tuple[str, ...], Keyword] = {}
    for kw in keywords:
        old = seen.get(kw.stems)
        if old is None or kw.priority < old.priority:
            seen[kw.stems] = kw
    unique = sorted(seen.values(), key=lambda k: k.priority)
    return unique[:max_keywords]
